//! The sans-io actor contract and clocks.
//!
//! A protocol worker (Kite worker, ZAB worker, Derecho io thread) is written
//! once as an [`Actor`]: a state machine that reacts to delivered envelopes
//! and periodic ticks, emitting messages into an [`Outbox`]. The threaded
//! runtime and the deterministic simulator drive the same actor code —
//! protocol logic cannot tell which scheduler it runs under except through
//! the clock values it is handed.

use kite_common::NodeId;

use crate::outbox::Outbox;

/// A deterministic, single-threaded protocol state machine bound to one
/// `(node, worker)` slot.
pub trait Actor: Send {
    /// Protocol message type carried by the fabric.
    type Msg: Send + Clone + std::fmt::Debug + 'static;

    /// A batch of messages from `src` arrived. The actor **drains** `msgs`
    /// (e.g. `for m in msgs.drain(..)`); the driving scheduler recycles the
    /// emptied buffer into the outbox pool afterwards, which is what keeps
    /// the steady-state fabric allocation-free (see
    /// [`crate::outbox`]'s buffer-recycling contract). `now` is nanoseconds
    /// on the driving scheduler's clock.
    fn on_envelope(
        &mut self,
        src: NodeId,
        msgs: &mut Vec<Self::Msg>,
        now: u64,
        out: &mut Outbox<Self::Msg>,
    );

    /// [`Actor::on_envelope`] plus the sender's membership-epoch stamp
    /// (`Envelope::mepoch` / the wire frame's `mepoch` field). Runtimes
    /// call *this* entry point; the default discards the stamp and
    /// delegates, so membership-oblivious actors (the ZAB and Derecho
    /// baselines, unit-test actors) need no changes. Kite's worker
    /// overrides it to gate stale-epoch traffic.
    fn on_envelope_stamped(
        &mut self,
        src: NodeId,
        mepoch: u32,
        msgs: &mut Vec<Self::Msg>,
        now: u64,
        out: &mut Outbox<Self::Msg>,
    ) {
        let _ = mepoch;
        self.on_envelope(src, msgs, now, out);
    }

    /// Periodic invocation: pump sessions, check protocol timeouts, issue
    /// retransmissions. Called at the scheduler's tick cadence and after
    /// every envelope delivery in the threaded runtime. Returns `true` if
    /// local progress was made (lets the threaded driver back off when the
    /// worker is truly idle without missing purely-local work such as ES
    /// reads).
    fn on_tick(&mut self, now: u64, out: &mut Outbox<Self::Msg>) -> bool;

    /// `true` when the actor has no outstanding work of its own (all
    /// sessions finished their scripts, no in-flight quorums). Used by the
    /// simulator's quiescence detection; throughput actors never go idle.
    fn is_idle(&self) -> bool {
        false
    }

    /// Append a human-readable snapshot of the actor's internal state to
    /// `out` — sessions, in-flight rounds, timers. Called by the threaded
    /// runtime's watchdog path (see `StopHandle::dump_flag`) from the
    /// actor's own thread, so implementations may read any owned state.
    /// The default writes nothing.
    fn describe(&self, out: &mut String) {
        let _ = out;
    }
}

/// Nanosecond clock abstraction. The threaded runtime uses [`WallClock`];
/// tests can hand actors a [`ManualClock`].
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds.
    fn now(&self) -> u64;
}

/// Monotonic wall-clock time relative to construction.
pub struct WallClock {
    base: std::time::Instant,
}

impl WallClock {
    /// A clock at time 0.
    pub fn new() -> Self {
        WallClock { base: std::time::Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    #[inline]
    fn now(&self) -> u64 {
        self.base.elapsed().as_nanos() as u64
    }
}

/// A clock advanced explicitly — for unit tests of timeout logic.
#[derive(Default)]
pub struct ManualClock(std::sync::atomic::AtomicU64);

impl ManualClock {
    /// A clock at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `ns`.
    pub fn advance(&self, ns: u64) {
        self.0.fetch_add(ns, std::sync::atomic::Ordering::SeqCst);
    }

    /// Set the clock to `ns`.
    pub fn set(&self, ns: u64) {
        self.0.store(ns, std::sync::atomic::Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    #[inline]
    fn now(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_only_on_demand() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0);
        c.advance(5);
        assert_eq!(c.now(), 5);
        c.set(100);
        assert_eq!(c.now(), 100);
    }

    // A trivial actor used to confirm object-safety and default idle.
    struct Echo {
        me: NodeId,
        got: usize,
    }

    impl Actor for Echo {
        type Msg = u32;

        fn on_envelope(
            &mut self,
            src: NodeId,
            msgs: &mut Vec<u32>,
            _now: u64,
            out: &mut Outbox<u32>,
        ) {
            self.got += msgs.len();
            for m in msgs.drain(..) {
                out.send(src, m + 1);
            }
        }

        fn on_tick(&mut self, _now: u64, _out: &mut Outbox<u32>) -> bool {
            false
        }

        fn is_idle(&self) -> bool {
            self.me.0 > 0 // arbitrary: node 0 is never idle
        }
    }

    #[test]
    fn actor_contract_smoke() {
        let mut a = Echo { me: NodeId(1), got: 0 };
        let mut out = Outbox::new(2);
        a.on_envelope(NodeId(0), &mut vec![1, 2], 0, &mut out);
        assert_eq!(a.got, 2);
        let mut echoed = Vec::new();
        out.flush(|d, b| echoed.push((d, b)));
        assert_eq!(echoed, vec![(NodeId(0), vec![2, 3])]);
        assert!(a.is_idle());
    }
}
