//! Shared fault-injection state for the threaded runtime (§8.4 failure study).
//!
//! The paper's failure experiment forces a replica to *sleep* — "a bigger
//! challenge than simply killing it" because the system must both tolerate
//! its absence and absorb its return. The `FaultPlane` supports:
//!
//! * **node sleep** — the node's workers stop processing until a deadline;
//!   messages to it are buffered, not lost (a GC pause / overload model);
//! * **crash-stop** — the node stops forever and its messages are dropped;
//! * **lossy links** — per-link drop probability (RDMA UD loss model);
//! * **partitions** — drop probability 1.0 on both directions of a link.
//!
//! All checks on the send/receive hot path are single atomic loads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use kite_common::NodeId;

/// Per-directed-link configuration, fixed-point probabilities on atomics so
/// the data plane never takes a lock.
pub struct LinkCfg {
    /// Drop probability in units of 1/2^32 (0 = reliable, u32::MAX ≈ 1.0).
    drop_fp: AtomicU64,
    /// Extra one-way delay in nanoseconds.
    delay_ns: AtomicU64,
}

impl LinkCfg {
    fn new() -> Self {
        LinkCfg { drop_fp: AtomicU64::new(0), delay_ns: AtomicU64::new(0) }
    }
}

/// Cluster-wide fault state shared by all worker threads.
pub struct FaultPlane {
    n: usize,
    crashed: Vec<AtomicBool>,
    /// Absolute wall-clock deadline (ns on the cluster clock) until which
    /// the node sleeps; 0 = awake.
    sleep_until: Vec<AtomicU64>,
    /// Row-major `links[src * n + dst]`.
    links: Vec<LinkCfg>,
}

impl FaultPlane {
    /// A fault-free plane for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        FaultPlane {
            n: nodes,
            crashed: (0..nodes).map(|_| AtomicBool::new(false)).collect(),
            sleep_until: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            links: (0..nodes * nodes).map(|_| LinkCfg::new()).collect(),
        }
    }

    /// Number of nodes the plane covers.
    pub fn nodes(&self) -> usize {
        self.n
    }

    #[inline]
    fn link(&self, src: NodeId, dst: NodeId) -> &LinkCfg {
        &self.links[src.idx() * self.n + dst.idx()]
    }

    // ---- control plane -------------------------------------------------

    /// Crash a node permanently (crash-stop model, §2.1).
    pub fn crash(&self, node: NodeId) {
        self.crashed[node.idx()].store(true, Ordering::SeqCst);
    }

    /// Put a node to sleep until the given cluster-clock deadline.
    pub fn sleep_node_until(&self, node: NodeId, deadline_ns: u64) {
        self.sleep_until[node.idx()].store(deadline_ns, Ordering::SeqCst);
    }

    /// Set the drop probability of the directed link `src → dst`.
    pub fn set_drop(&self, src: NodeId, dst: NodeId, p: f64) {
        let fp = (p.clamp(0.0, 1.0) * u32::MAX as f64) as u64;
        self.link(src, dst).drop_fp.store(fp, Ordering::SeqCst);
    }

    /// Symmetric partition between `a` and `b`: both directions drop all.
    pub fn partition(&self, a: NodeId, b: NodeId) {
        self.set_drop(a, b, 1.0);
        self.set_drop(b, a, 1.0);
    }

    /// Heal the link between `a` and `b` in both directions.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        self.set_drop(a, b, 0.0);
        self.set_drop(b, a, 0.0);
    }

    /// Add one-way delay on `src → dst`.
    pub fn set_delay(&self, src: NodeId, dst: NodeId, delay_ns: u64) {
        self.link(src, dst).delay_ns.store(delay_ns, Ordering::SeqCst);
    }

    // ---- data plane ----------------------------------------------------

    /// Should a message `src → dst` be dropped? `coin` is a uniform u32 from
    /// the sender's PRNG (passed in so the plane itself stays stateless).
    #[inline]
    pub fn should_drop(&self, src: NodeId, dst: NodeId, coin: u32) -> bool {
        if self.crashed[src.idx()].load(Ordering::Relaxed)
            || self.crashed[dst.idx()].load(Ordering::Relaxed)
        {
            return true;
        }
        let fp = self.link(src, dst).drop_fp.load(Ordering::Relaxed);
        fp != 0 && (coin as u64) < fp
    }

    /// Extra delay for `src → dst` in nanoseconds (0 in the common case).
    #[inline]
    pub fn extra_delay(&self, src: NodeId, dst: NodeId) -> u64 {
        self.link(src, dst).delay_ns.load(Ordering::Relaxed)
    }

    /// Is the node crashed?
    #[inline]
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node.idx()].load(Ordering::Relaxed)
    }

    /// Is the node sleeping at cluster-clock time `now`?
    #[inline]
    pub fn is_sleeping(&self, node: NodeId, now: u64) -> bool {
        self.sleep_until[node.idx()].load(Ordering::Relaxed) > now
    }

    /// The node's wake deadline (0 if awake).
    #[inline]
    pub fn wake_deadline(&self, node: NodeId) -> u64 {
        self.sleep_until[node.idx()].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_faultless() {
        let f = FaultPlane::new(3);
        for s in 0..3u8 {
            for d in 0..3u8 {
                assert!(!f.should_drop(NodeId(s), NodeId(d), u32::MAX - 1));
                assert_eq!(f.extra_delay(NodeId(s), NodeId(d)), 0);
            }
        }
        assert!(!f.is_crashed(NodeId(0)));
        assert!(!f.is_sleeping(NodeId(0), 123));
    }

    #[test]
    fn crash_drops_both_directions() {
        let f = FaultPlane::new(3);
        f.crash(NodeId(1));
        assert!(f.should_drop(NodeId(0), NodeId(1), 0));
        assert!(f.should_drop(NodeId(1), NodeId(0), 0));
        assert!(!f.should_drop(NodeId(0), NodeId(2), u32::MAX - 1));
        assert!(f.is_crashed(NodeId(1)));
    }

    #[test]
    fn drop_probability_thresholds_coin() {
        let f = FaultPlane::new(2);
        f.set_drop(NodeId(0), NodeId(1), 0.5);
        // coin far below 0.5 * 2^32 → dropped; far above → kept
        assert!(f.should_drop(NodeId(0), NodeId(1), 1000));
        assert!(!f.should_drop(NodeId(0), NodeId(1), u32::MAX));
        // reverse direction untouched
        assert!(!f.should_drop(NodeId(1), NodeId(0), 1000));
    }

    #[test]
    fn partition_and_heal() {
        let f = FaultPlane::new(3);
        f.partition(NodeId(0), NodeId(2));
        assert!(f.should_drop(NodeId(0), NodeId(2), u32::MAX - 1));
        assert!(f.should_drop(NodeId(2), NodeId(0), u32::MAX - 1));
        f.heal(NodeId(0), NodeId(2));
        assert!(!f.should_drop(NodeId(0), NodeId(2), u32::MAX - 1));
    }

    #[test]
    fn sleep_is_deadline_based() {
        let f = FaultPlane::new(2);
        f.sleep_node_until(NodeId(0), 1_000);
        assert!(f.is_sleeping(NodeId(0), 999));
        assert!(!f.is_sleeping(NodeId(0), 1_000));
        assert_eq!(f.wake_deadline(NodeId(0)), 1_000);
    }

    #[test]
    fn delay_is_per_direction() {
        let f = FaultPlane::new(2);
        f.set_delay(NodeId(0), NodeId(1), 5_000);
        assert_eq!(f.extra_delay(NodeId(0), NodeId(1)), 5_000);
        assert_eq!(f.extra_delay(NodeId(1), NodeId(0)), 0);
    }
}
