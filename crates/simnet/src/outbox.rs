//! Per-step message accumulation and envelopes (§6.3 opportunistic
//! batching), with recycled batch buffers.
//!
//! # Buffer-recycling contract
//!
//! The steady-state send path is allocation-free. Every batch handed out by
//! [`Outbox::flush`] is a `Vec` drawn from the outbox's internal pool (or
//! freshly allocated only when the pool is dry). Whoever ends up owning a
//! batch buffer once its messages are consumed returns it with
//! [`Outbox::recycle`]:
//!
//! * the **threaded runtime** ships batches to peers inside [`Envelope`]s;
//!   the *receiving* worker drains the messages and recycles the emptied
//!   buffer into its own outbox — buffers circulate around the cluster
//!   rather than being freed and reallocated (all workers speak the same
//!   message type, so any pool may adopt any buffer);
//! * the **simulator** recycles each delivered envelope's buffer into its
//!   scratch outbox after the destination actor has drained it.
//!
//! Buffers lost to fault injection (dropped envelopes) are simply freed;
//! the pool refills from subsequent deliveries. The pool is bounded
//! ([`POOL_CAP`]) so a burst cannot pin memory forever.

use kite_common::NodeId;

/// One network datagram: every protocol message the source worker produced
/// for this destination during one scheduling step, delivered together.
///
/// Batching "across all protocols" is a first-class design point of Kite
/// (§6.3): ES acks, ABD rounds and Paxos phases destined to the same node
/// share an envelope, amortizing per-packet overhead.
#[derive(Debug, Clone)]
pub struct Envelope<P> {
    /// Sending node.
    pub src: NodeId,
    /// The sender's membership epoch when the batch was flushed (see
    /// `kite_common::membership`). Actors that never reconfigure leave
    /// their outbox stamp at 0 and ignore it on receive.
    pub mepoch: u32,
    /// The batched protocol messages.
    pub msgs: Vec<P>,
}

/// Upper bound on pooled spare buffers (per outbox).
const POOL_CAP: usize = 64;

/// Initial capacity of fresh batch buffers.
const BUF_CAP: usize = 64;

/// Accumulates outgoing messages during one actor step, batched per
/// destination node. Flushed by the scheduler at the end of the step.
///
/// Per-destination buffers are replaced from the recycle pool on flush (see
/// the module docs), so steady-state sends allocate nothing.
pub struct Outbox<P> {
    bufs: Vec<Vec<P>>,
    /// Destinations with at least one pending message (push order, small:
    /// ≤ nodes).
    dirty: Vec<u8>,
    /// Spare buffers returned by consumers, handed back out on flush.
    pool: Vec<Vec<P>>,
    /// The sender's current membership epoch, copied into every
    /// [`Envelope`]/frame at flush time by the driving runtime. The actor
    /// refreshes it at the end of each step (after any batch it produced
    /// was composed under that epoch's membership view). Defaults to 0 —
    /// correct forever for actors that never reconfigure.
    stamp: u32,
}

impl<P> Outbox<P> {
    /// An outbox addressing `nodes` destinations.
    pub fn new(nodes: usize) -> Self {
        Outbox {
            bufs: (0..nodes).map(|_| Vec::with_capacity(BUF_CAP)).collect(),
            dirty: Vec::new(),
            pool: Vec::new(),
            stamp: 0,
        }
    }

    /// Set the membership-epoch stamp runtimes copy into flushed batches.
    #[inline]
    pub fn set_stamp(&mut self, mepoch: u32) {
        self.stamp = mepoch;
    }

    /// The current membership-epoch stamp.
    #[inline]
    pub fn stamp(&self) -> u32 {
        self.stamp
    }

    /// Number of destinations this outbox can address.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.bufs.len()
    }

    /// Queue `msg` for `dst`. Sending to one's own node id is allowed (the
    /// scheduler will loop it back); Kite's workers shortcut self-delivery
    /// instead, but baselines may rely on loopback.
    #[inline]
    pub fn send(&mut self, dst: NodeId, msg: P) {
        let buf = &mut self.bufs[dst.idx()];
        if buf.is_empty() {
            self.dirty.push(dst.0);
        }
        buf.push(msg);
    }

    /// Queue a clone of `msg` for every node except `me` — the broadcast
    /// primitive, implemented as unicasts exactly like the paper (§6.3).
    /// The N−1 clones copy only the message value itself; Kite keeps
    /// `Msg` at one cache line with its large payloads `Arc`-shared, so a
    /// broadcast writes the payload once and the clones are refcount
    /// bumps plus a 64-byte memcpy each.
    #[inline]
    pub fn broadcast(&mut self, me: NodeId, msg: P)
    where
        P: Clone,
    {
        let n = self.bufs.len();
        for dst in 0..n {
            if dst != me.idx() {
                self.send(NodeId(dst as u8), msg.clone());
            }
        }
    }

    /// Queue a clone of `msg` for every member of `set` except `me`.
    #[inline]
    pub fn multicast(&mut self, me: NodeId, set: kite_common::NodeSet, msg: P)
    where
        P: Clone,
    {
        for dst in set {
            if dst != me {
                self.send(dst, msg.clone());
            }
        }
    }

    /// True if no messages are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Total messages pending across all destinations.
    pub fn pending(&self) -> usize {
        self.bufs.iter().map(Vec::len).sum()
    }

    /// Return an emptied batch buffer to the pool (see the module docs for
    /// who calls this). Contents are cleared; capacity is retained.
    #[inline]
    pub fn recycle(&mut self, mut buf: Vec<P>) {
        if self.pool.len() < POOL_CAP && buf.capacity() > 0 {
            buf.clear();
            self.pool.push(buf);
        }
    }

    /// Number of spare buffers currently pooled (diagnostics/tests).
    #[inline]
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Drain all pending batches, invoking `f(dst, batch)` per destination.
    /// Handed-out buffers come back via [`Outbox::recycle`]; replacements
    /// are drawn from the pool, so a steady cycle allocates nothing.
    // kite-lint: no-alloc
    pub fn flush(&mut self, mut f: impl FnMut(NodeId, Vec<P>)) {
        for &d in &self.dirty {
            let buf = &mut self.bufs[d as usize];
            if !buf.is_empty() {
                // kite-lint: allow(no-alloc) — pool-dry cold path only: a
                // steady flush→recycle cycle always finds a pooled buffer;
                // the dynamic alloc-guard test asserts exactly that.
                let replacement =
                    self.pool.pop().unwrap_or_else(|| Vec::with_capacity(BUF_CAP));
                let batch = std::mem::replace(buf, replacement);
                f(NodeId(d), batch);
            }
        }
        self.dirty.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_common::NodeSet;

    #[test]
    fn send_and_flush_batches_per_destination() {
        let mut ob: Outbox<u32> = Outbox::new(3);
        ob.send(NodeId(1), 10);
        ob.send(NodeId(1), 11);
        ob.send(NodeId(2), 20);
        assert_eq!(ob.pending(), 3);
        let mut got = Vec::new();
        ob.flush(|dst, batch| got.push((dst, batch)));
        got.sort_by_key(|(d, _)| d.0);
        assert_eq!(got, vec![(NodeId(1), vec![10, 11]), (NodeId(2), vec![20])]);
        assert!(ob.is_empty());
    }

    #[test]
    fn flush_on_empty_is_noop() {
        let mut ob: Outbox<u32> = Outbox::new(2);
        let mut calls = 0;
        ob.flush(|_, _| calls += 1);
        assert_eq!(calls, 0);
    }

    #[test]
    fn broadcast_skips_self() {
        let mut ob: Outbox<u8> = Outbox::new(5);
        ob.broadcast(NodeId(2), 7);
        let mut dsts = Vec::new();
        ob.flush(|d, b| {
            assert_eq!(b, vec![7]);
            dsts.push(d.0);
        });
        dsts.sort_unstable();
        assert_eq!(dsts, vec![0, 1, 3, 4]);
    }

    #[test]
    fn multicast_targets_set_minus_self() {
        let mut ob: Outbox<u8> = Outbox::new(5);
        let set: NodeSet = [NodeId(0), NodeId(2), NodeId(4)].into_iter().collect();
        ob.multicast(NodeId(2), set, 9);
        let mut dsts = Vec::new();
        ob.flush(|d, _| dsts.push(d.0));
        dsts.sort_unstable();
        assert_eq!(dsts, vec![0, 4]);
    }

    #[test]
    fn reuse_after_flush() {
        let mut ob: Outbox<u8> = Outbox::new(2);
        ob.send(NodeId(0), 1);
        ob.flush(|_, _| {});
        ob.send(NodeId(0), 2);
        let mut total = 0;
        ob.flush(|_, b| total += b.len());
        assert_eq!(total, 1);
    }

    #[test]
    fn recycled_buffers_are_handed_back_out() {
        let mut ob: Outbox<u8> = Outbox::new(2);
        ob.send(NodeId(0), 1);
        let mut batch = None;
        ob.flush(|_, b| batch = Some(b));
        let buf = batch.unwrap();
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        ob.recycle(buf);
        assert_eq!(ob.pooled(), 1);
        // Next flush hands the pooled buffer back out: same allocation.
        ob.send(NodeId(1), 2);
        let mut batch = None;
        ob.flush(|_, b| batch = Some(b));
        ob.send(NodeId(1), 3);
        let mut second = None;
        ob.flush(|_, b| second = Some(b));
        let reused = second.unwrap();
        assert_eq!(reused.capacity(), cap);
        assert_eq!(reused.as_ptr(), ptr, "pooled allocation must be reused");
        let _ = batch;
    }

    #[test]
    fn pool_is_bounded() {
        let mut ob: Outbox<u8> = Outbox::new(1);
        for _ in 0..200 {
            ob.recycle(Vec::with_capacity(8));
        }
        assert!(ob.pooled() <= 64);
    }

    #[test]
    fn steady_state_flush_does_not_allocate() {
        // Prime the pool, then check that repeated broadcast/flush/recycle
        // cycles recirculate the same allocations.
        let mut ob: Outbox<u64> = Outbox::new(5);
        let mut returned: Vec<Vec<u64>> = Vec::new();
        for round in 0..50 {
            ob.broadcast(NodeId(0), round);
            ob.flush(|_, b| returned.push(b));
            let mut ptrs: Vec<*const u64> = returned.iter().map(|b| b.as_ptr()).collect();
            for b in returned.drain(..) {
                ob.recycle(b);
            }
            if round > 0 {
                // All four batch buffers must be recycled allocations.
                ptrs.sort_unstable();
                assert_eq!(ptrs.len(), 4);
            }
        }
        assert!(ob.pooled() >= 4);
    }
}
