//! The threaded runtime: one OS thread per worker, crossbeam channels as
//! NICs, wall-clock time. This is the scheduler used for throughput
//! experiments, mirroring Kite's busy-polling RDMA workers (§6).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use kite_common::rng::SplitMix64;
use kite_common::stats::ProtoCounters;
use kite_common::NodeId;

use crate::actor::{Actor, Clock, WallClock};
use crate::faults::FaultPlane;
use crate::outbox::{Envelope, Outbox};

/// Everything a worker thread needs to talk to the fabric.
pub struct WorkerIo<P> {
    /// Node this IO bundle belongs to.
    pub node: NodeId,
    /// Worker index within the node.
    pub worker: usize,
    /// Incoming envelopes addressed to this `(node, worker)`.
    pub rx: Receiver<Envelope<P>>,
    /// Outgoing side.
    pub net: NetHandle<P>,
}

/// Sending half bound to one source worker. Routes by
/// `(destination node, own worker index)` — worker peering as in §6.3.
pub struct NetHandle<P> {
    me: NodeId,
    worker: usize,
    senders: Arc<Vec<Vec<Sender<Envelope<P>>>>>,
    faults: Arc<FaultPlane>,
    delay_tx: Sender<Delayed<P>>,
    clock: Arc<WallClock>,
    rng: SplitMix64,
    counters: Arc<ProtoCounters>,
}

impl<P: Send + 'static> NetHandle<P> {
    /// Send a batch of protocol messages to `dst` as a single envelope.
    /// Subject to the fault plane: may be dropped or delayed. Returns `true`
    /// if the envelope was handed to the fabric (not necessarily delivered).
    pub fn send(&mut self, dst: NodeId, msgs: Vec<P>) -> bool {
        self.send_stamped(dst, 0, msgs)
    }

    /// [`NetHandle::send`] with an explicit membership-epoch stamp (what
    /// [`NetHandle::flush`] uses, copying the outbox's stamp).
    pub fn send_stamped(&mut self, dst: NodeId, mepoch: u32, msgs: Vec<P>) -> bool {
        debug_assert!(!msgs.is_empty());
        self.counters.msgs_sent.add(msgs.len() as u64);
        self.counters.envelopes_sent.incr();
        let coin = (self.rng.next_u64() >> 32) as u32;
        if self.faults.should_drop(self.me, dst, coin) {
            return false;
        }
        let env = Envelope { src: self.me, mepoch, msgs };
        let delay = self.faults.extra_delay(self.me, dst);
        if delay == 0 {
            // Receiver may have been dropped during shutdown — not an error.
            let _ = self.senders[dst.idx()][self.worker].send(env);
        } else {
            let _ = self.delay_tx.send(Delayed {
                deliver_at: self.clock.now() + delay,
                dst,
                worker: self.worker,
                env,
            });
        }
        true
    }

    /// Flush a whole outbox through this handle, routing each batch
    /// directly to the fabric — no intermediate collection.
    pub fn flush(&mut self, out: &mut Outbox<P>) {
        let stamp = out.stamp();
        out.flush(|dst, batch| {
            self.send_stamped(dst, stamp, batch);
        });
    }

    /// The node this handle belongs to.
    pub fn node(&self) -> NodeId {
        self.me
    }
}

struct Delayed<P> {
    deliver_at: u64,
    dst: NodeId,
    worker: usize,
    env: Envelope<P>,
}

/// The fabric: channel matrix plus the shared clock, fault plane and
/// per-node counters. Build once per cluster.
pub struct ThreadedNet<P> {
    /// Shared wall clock.
    pub clock: Arc<WallClock>,
    /// Shared fault plane (drops, delays, sleeps).
    pub faults: Arc<FaultPlane>,
    /// Per-node message counters (envelopes/msgs sent by that node's workers).
    pub counters: Vec<Arc<ProtoCounters>>,
    delayer: Option<JoinHandle<()>>,
    /// Held only so the channel outlives the net (workers' clones come and
    /// go); dropped in `Drop`, which keeps the disconnect exit path alive
    /// as a fallback.
    _delay_tx: Sender<Delayed<P>>,
    /// Explicit delayer shutdown flag. Every live `NetHandle` holds a
    /// `delay_tx` clone, so "drop the last sender" only terminates the
    /// delayer if the workers happen to be joined before the net — an
    /// ordering this flag makes teardown independent of.
    delayer_stop: Arc<AtomicBool>,
}

impl<P: Send + 'static> ThreadedNet<P> {
    /// Create the fabric for `nodes × workers` endpoints and return the
    /// per-worker IO bundles, indexed `[node][worker]`.
    pub fn build(nodes: usize, workers: usize, seed: u64) -> (Self, Vec<Vec<WorkerIo<P>>>) {
        let clock = Arc::new(WallClock::new());
        let faults = Arc::new(FaultPlane::new(nodes));
        let counters: Vec<Arc<ProtoCounters>> =
            (0..nodes).map(|_| Arc::new(ProtoCounters::default())).collect();

        let mut senders: Vec<Vec<Sender<Envelope<P>>>> = Vec::with_capacity(nodes);
        let mut receivers: Vec<Vec<Receiver<Envelope<P>>>> = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let mut stx = Vec::with_capacity(workers);
            let mut srx = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (tx, rx) = unbounded();
                stx.push(tx);
                srx.push(rx);
            }
            senders.push(stx);
            receivers.push(srx);
        }
        let senders = Arc::new(senders);

        let (delay_tx, delay_rx) = unbounded::<Delayed<P>>();
        let delayer_stop = Arc::new(AtomicBool::new(false));
        let delayer = {
            let senders = Arc::clone(&senders);
            let clock = Arc::clone(&clock);
            let stop = Arc::clone(&delayer_stop);
            std::thread::Builder::new()
                .name("simnet-delayer".into())
                .spawn(move || delayer_loop(delay_rx, senders, clock, stop))
                .expect("spawn delayer")
        };

        let mut seed_rng = SplitMix64::new(seed);
        let mut ios = Vec::with_capacity(nodes);
        for (n, rxs) in receivers.into_iter().enumerate() {
            let mut per_node = Vec::with_capacity(workers);
            for (w, rx) in rxs.into_iter().enumerate() {
                per_node.push(WorkerIo {
                    node: NodeId(n as u8),
                    worker: w,
                    rx,
                    net: NetHandle {
                        me: NodeId(n as u8),
                        worker: w,
                        senders: Arc::clone(&senders),
                        faults: Arc::clone(&faults),
                        delay_tx: delay_tx.clone(),
                        clock: Arc::clone(&clock),
                        rng: seed_rng.split(),
                        counters: Arc::clone(&counters[n]),
                    },
                });
            }
            ios.push(per_node);
        }

        (ThreadedNet { clock, faults, counters, delayer: Some(delayer), _delay_tx: delay_tx, delayer_stop }, ios)
    }
}

impl<P> Drop for ThreadedNet<P> {
    fn drop(&mut self) {
        // Explicit shutdown: workers may still hold `delay_tx` clones (the
        // sender count alone cannot signal termination), so raise the stop
        // flag; the delayer notices within one poll interval, drains its
        // queue, flushes every in-heap envelope in deadline order, and
        // exits. `delay_tx` being dropped here as well keeps the old
        // disconnect path working when the net outlives every handle.
        self.delayer_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.delayer.take() {
            let _ = h.join();
        }
    }
}

/// A delayed envelope in the delayer's heap, ordered by `(deliver_at, seq)`
/// — seq breaks deadline ties FIFO. The envelope lives *in* the heap entry:
/// no side-table, no hash per delayed envelope.
struct Pending<P> {
    deliver_at: u64,
    seq: u64,
    d: Delayed<P>,
}

impl<P> PartialEq for Pending<P> {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}
impl<P> Eq for Pending<P> {}
impl<P> PartialOrd for Pending<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Pending<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

fn delayer_loop<P: Send>(
    rx: Receiver<Delayed<P>>,
    senders: Arc<Vec<Vec<Sender<Envelope<P>>>>>,
    clock: Arc<WallClock>,
    stop: Arc<AtomicBool>,
) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<Pending<P>>> = BinaryHeap::new();
    let mut seq = 0u64;
    // On shutdown, whatever is still delayed is delivered immediately in
    // `(deadline, submission)` order — a deterministic flush, so teardown
    // never depends on whether workers or the net drop first.
    let flush = |heap: &mut BinaryHeap<Reverse<Pending<P>>>| {
        while let Some(Reverse(p)) = heap.pop() {
            let _ = senders[p.d.dst.idx()][p.d.worker].send(p.d.env);
        }
    };
    loop {
        if stop.load(Ordering::SeqCst) {
            // Drain everything submitted so far, then flush
            // deterministically and exit. A worker that hands an envelope
            // to the (now gone) delay path *after* this drain loses it —
            // that is a torn-down fabric dropping in-flight traffic, the
            // same as a real NIC going away; the guarantees here are "no
            // wedge" and "nothing submitted before the stop is lost", not
            // delivery during teardown. `Cluster` joins its workers before
            // dropping the net, so the race never bites there.
            while let Ok(d) = rx.try_recv() {
                heap.push(Reverse(Pending { deliver_at: d.deliver_at, seq, d }));
                seq += 1;
            }
            flush(&mut heap);
            return;
        }
        // Deliver everything due.
        let now = clock.now();
        while heap.peek().is_some_and(|Reverse(p)| p.deliver_at <= now) {
            let Some(Reverse(p)) = heap.pop() else { unreachable!() };
            let _ = senders[p.d.dst.idx()][p.d.worker].send(p.d.env);
        }
        // Cap the wait so the stop flag is observed promptly even when the
        // heap is empty or the next deadline is far out.
        let timeout = heap
            .peek()
            .map(|Reverse(p)| Duration::from_nanos(p.deliver_at.saturating_sub(clock.now())))
            .unwrap_or(Duration::from_millis(50))
            .min(Duration::from_millis(5));
        match rx.recv_timeout(timeout) {
            Ok(d) => {
                heap.push(Reverse(Pending { deliver_at: d.deliver_at, seq, d }));
                seq += 1;
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                flush(&mut heap);
                return;
            }
        }
    }
}

/// Handle to stop and join a set of spawned worker threads.
pub struct StopHandle {
    stop: Arc<AtomicBool>,
    dump: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl StopHandle {
    /// Signal all workers to stop and wait for them to exit.
    pub fn stop_and_join(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// The shared stop flag (lets callers embed it in their own loops).
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// The shared diagnostics flag: raising it makes every worker print an
    /// [`Actor::describe`] snapshot of its own state to stderr (once) from
    /// its own thread — the watchdog's view into otherwise thread-owned
    /// protocol state when a test wedges.
    pub fn dump_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.dump)
    }
}

impl Drop for StopHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Spawn one busy-polling thread per `(actor, io)` pair.
///
/// The loop mirrors Kite's worker structure: drain incoming envelopes,
/// pump sessions/timeouts via `on_tick`, flush the outbox as opportunistic
/// batches. Backoff kicks in only when the worker made no progress at all
/// (idle sessions, empty NIC) to stay friendly on small machines.
pub fn spawn_workers<A: Actor + 'static>(
    rigs: Vec<(A, WorkerIo<A::Msg>)>,
    net: &ThreadedNet<A::Msg>,
) -> StopHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let dump = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::with_capacity(rigs.len());
    for (actor, io) in rigs {
        let stop = Arc::clone(&stop);
        let dump = Arc::clone(&dump);
        let clock = Arc::clone(&net.clock);
        let faults = Arc::clone(&net.faults);
        let name = format!("kite-{}-w{}", io.node, io.worker);
        handles.push(
            std::thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(actor, io, clock, faults, stop, dump))
                .expect("spawn worker"),
        );
    }
    StopHandle { stop, dump, handles }
}

fn worker_loop<A: Actor>(
    mut actor: A,
    io: WorkerIo<A::Msg>,
    clock: Arc<WallClock>,
    faults: Arc<FaultPlane>,
    stop: Arc<AtomicBool>,
    dump: Arc<AtomicBool>,
) {
    let me = io.node;
    let mut net = io.net;
    let rx = io.rx;
    let nodes = faults.nodes();
    let mut out: Outbox<A::Msg> = Outbox::new(nodes);
    let mut idle_iters: u32 = 0;
    let mut dumped = false;
    // An envelope received by the blocking idle path, delivered on the
    // next pass (ahead of the try_recv drain, preserving channel order).
    let mut carry: Option<Envelope<A::Msg>> = None;
    const MAX_ENVELOPES_PER_ITER: usize = 64;

    while !stop.load(Ordering::Relaxed) {
        let now = clock.now();

        // Watchdog diagnostics: dump this worker's state once when asked.
        // Checked before the fault gates so even crashed/sleeping workers
        // report (their buffered state is often exactly what wedged).
        if !dumped && dump.load(Ordering::Relaxed) {
            dumped = true;
            let mut s = format!("==== watchdog dump {me} w{} (t={now}ns) ====\n", io.worker);
            actor.describe(&mut s);
            eprintln!("{s}");
        }

        if faults.is_crashed(me) {
            // Crash-stop: discard traffic, do nothing, stay parked.
            carry = None;
            while rx.try_recv().is_ok() {}
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        if faults.is_sleeping(me, now) {
            // Sleeping replica (§8.4): do not process; messages buffer up
            // (a carried envelope waits with them).
            std::thread::sleep(Duration::from_micros(200));
            continue;
        }

        let mut progress = false;
        let mut budget = MAX_ENVELOPES_PER_ITER;
        if let Some(mut env) = carry.take() {
            actor.on_envelope_stamped(env.src, env.mepoch, &mut env.msgs, clock.now(), &mut out);
            out.recycle(env.msgs);
            progress = true;
            budget -= 1;
        }
        for _ in 0..budget {
            match rx.try_recv() {
                Ok(mut env) => {
                    actor.on_envelope_stamped(env.src, env.mepoch, &mut env.msgs, clock.now(), &mut out);
                    // The drained buffer feeds this worker's own send pool:
                    // buffers circulate around the cluster instead of being
                    // freed and reallocated per envelope.
                    out.recycle(env.msgs);
                    progress = true;
                }
                Err(_) => break,
            }
        }
        if actor.on_tick(clock.now(), &mut out) {
            progress = true;
        }
        if !out.is_empty() {
            net.flush(&mut out);
            progress = true;
        }

        if progress {
            idle_iters = 0;
        } else {
            idle_iters = idle_iters.saturating_add(1);
            if idle_iters < 64 {
                std::hint::spin_loop();
            } else if idle_iters < 256 {
                std::thread::yield_now();
            } else {
                // Block on the channel itself: the sender's condvar notify
                // wakes this worker the moment an envelope lands, and the
                // next pass drains a whole batch behind it via try_recv —
                // one wakeup amortises across up to MAX_ENVELOPES_PER_ITER
                // envelopes instead of one park/unpark round-trip each.
                // The timeout bounds on_tick latency for protocol timers.
                if let Ok(env) = rx.recv_timeout(Duration::from_micros(500)) {
                    carry = Some(env);
                    idle_iters = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // An actor that counts pings and replies with pongs; node 0 initiates.
    #[derive(Debug)]
    struct PingPong {
        me: NodeId,
        peers: usize,
        sent: bool,
        pongs: Arc<kite_common::stats::Counter>,
    }

    impl Actor for PingPong {
        type Msg = &'static str;

        fn on_envelope(
            &mut self,
            src: NodeId,
            msgs: &mut Vec<&'static str>,
            _now: u64,
            out: &mut Outbox<&'static str>,
        ) {
            for m in msgs.drain(..) {
                match m {
                    "ping" => out.send(src, "pong"),
                    "pong" => self.pongs.incr(),
                    _ => unreachable!(),
                }
            }
        }

        fn on_tick(&mut self, _now: u64, out: &mut Outbox<&'static str>) -> bool {
            if self.me == NodeId(0) && !self.sent {
                self.sent = true;
                for p in 1..self.peers {
                    out.send(NodeId(p as u8), "ping");
                }
                return true;
            }
            false
        }
    }

    #[test]
    fn ping_pong_across_three_nodes() {
        let (net, ios) = ThreadedNet::<&'static str>::build(3, 1, 42);
        let pongs = Arc::new(kite_common::stats::Counter::new());
        let mut rigs = Vec::new();
        for per_node in ios {
            for io in per_node {
                rigs.push((
                    PingPong { me: io.node, peers: 3, sent: false, pongs: Arc::clone(&pongs) },
                    io,
                ));
            }
        }
        let h = spawn_workers(rigs, &net);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pongs.get() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        h.stop_and_join();
        assert_eq!(pongs.get(), 2, "node 0 should get pongs from nodes 1 and 2");
    }

    #[test]
    fn crashed_node_stays_silent() {
        let (net, ios) = ThreadedNet::<&'static str>::build(3, 1, 7);
        net.faults.crash(NodeId(2));
        let pongs = Arc::new(kite_common::stats::Counter::new());
        let mut rigs = Vec::new();
        for per_node in ios {
            for io in per_node {
                rigs.push((
                    PingPong { me: io.node, peers: 3, sent: false, pongs: Arc::clone(&pongs) },
                    io,
                ));
            }
        }
        let h = spawn_workers(rigs, &net);
        std::thread::sleep(Duration::from_millis(100));
        h.stop_and_join();
        assert_eq!(pongs.get(), 1, "only node 1 should answer");
    }

    #[test]
    fn delayed_link_still_delivers() {
        let (net, ios) = ThreadedNet::<&'static str>::build(3, 1, 9);
        net.faults.set_delay(NodeId(0), NodeId(1), 20_000_000); // 20 ms out
        let pongs = Arc::new(kite_common::stats::Counter::new());
        let mut rigs = Vec::new();
        for per_node in ios {
            for io in per_node {
                rigs.push((
                    PingPong { me: io.node, peers: 3, sent: false, pongs: Arc::clone(&pongs) },
                    io,
                ));
            }
        }
        let h = spawn_workers(rigs, &net);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pongs.get() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        h.stop_and_join();
        assert_eq!(pongs.get(), 2, "delayed ping must still arrive");
    }

    /// Teardown must not depend on drop order: here the net is dropped
    /// while every `NetHandle` (each holding a live `delay_tx` clone) still
    /// exists — the stop flag terminates the delayer anyway, and the
    /// delayed envelope still in its heap is flushed to the destination
    /// rather than lost. Before the explicit-stop fix this join hung until
    /// the handles happened to be dropped.
    #[test]
    fn delayer_stops_and_flushes_while_handles_alive() {
        let (net, mut ios) = ThreadedNet::<&'static str>::build(2, 1, 13);
        net.faults.set_delay(NodeId(0), NodeId(1), 60_000_000_000); // 60 s out
        let mut io0 = ios.remove(0).remove(0);
        let io1 = ios.remove(0).remove(0);
        let faults = Arc::clone(&net.faults);
        assert!(io0.net.send(NodeId(1), vec!["delayed"]));
        // Drop the net: the delayer must exit promptly (stop flag) and
        // deterministically flush the 60s-delayed envelope on its way out.
        drop(net);
        faults.set_delay(NodeId(0), NodeId(1), 0); // undelayed path stays usable
        let env = io1
            .rx
            .recv_timeout(Duration::from_secs(5))
            .expect("flushed envelope must be delivered, not lost");
        assert_eq!(env.src, NodeId(0));
        assert_eq!(env.msgs, vec!["delayed"]);
        // Handles still alive and usable for direct (undelayed) traffic.
        assert!(io0.net.send(NodeId(1), vec!["direct"]));
        assert_eq!(io1.rx.recv_timeout(Duration::from_secs(1)).unwrap().msgs, vec!["direct"]);
    }

    #[test]
    fn counters_track_messages() {
        let (net, ios) = ThreadedNet::<&'static str>::build(3, 1, 11);
        let pongs = Arc::new(kite_common::stats::Counter::new());
        let mut rigs = Vec::new();
        for per_node in ios {
            for io in per_node {
                rigs.push((
                    PingPong { me: io.node, peers: 3, sent: false, pongs: Arc::clone(&pongs) },
                    io,
                ));
            }
        }
        let h = spawn_workers(rigs, &net);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pongs.get() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        h.stop_and_join();
        assert!(net.counters[0].msgs_sent.get() >= 2, "node 0 sent 2 pings");
    }
}
