//! # kite-simnet
//!
//! The in-process "datacenter network" that replaces the paper's RDMA
//! fabric (5 machines on 56 Gb InfiniBand, §7). It preserves the properties
//! Kite's protocols actually depend on:
//!
//! * **Unreliable, unordered datagrams** — like RDMA UD sends, messages may
//!   be dropped or delayed; nothing is retransmitted by the network.
//!   Protocol-level recovery (ack timeouts, the delinquency mechanism) is
//!   exactly what the paper builds on top.
//! * **Unicast only** — broadcasts are loops of unicasts (§6.3).
//! * **Worker peering** — worker *w* of a node exchanges messages only with
//!   worker *w* of each remote node (§6.3), so the fabric routes envelopes
//!   by `(destination node, source worker index)`.
//! * **Opportunistic batching** — an [`Outbox`] accumulates the messages a
//!   worker produces during one scheduling step and flushes them as one
//!   envelope per destination (§6.3: workers never wait to fill a quota).
//!
//! Two interchangeable schedulers drive the same sans-io protocol actors:
//!
//! * [`threaded`] — one OS thread per worker, crossbeam channels as NICs,
//!   wall-clock time. Used for throughput experiments (Fig 5–9).
//! * [`sim`] — a single-threaded discrete-event executor with virtual time
//!   and a seeded RNG for latency jitter, drops, partitions, node sleeps and
//!   crashes. Used for reproducible correctness tests: a seed fully
//!   determines the execution, including fast/slow-path transitions.
//!
//! Fault injection ([`FaultPlane`] for the threaded runtime, fault methods
//! on [`sim::Sim`] for the simulator) models the failure study of §8.4:
//! sleeping replicas, crash-stop failures, lossy links and partitions.

#![warn(missing_docs)]

pub mod actor;
pub mod faults;
pub mod outbox;
pub mod sim;
pub mod threaded;

pub use actor::{Actor, Clock, ManualClock, WallClock};
pub use faults::{FaultPlane, LinkCfg};
pub use outbox::{Envelope, Outbox};
pub use sim::{Sim, SimCfg};
pub use threaded::{spawn_workers, NetHandle, StopHandle, ThreadedNet, WorkerIo};
