//! Deterministic discrete-event simulator.
//!
//! Runs the same [`Actor`]s as the threaded runtime, single-threaded, on
//! virtual time: a binary heap of events (envelope deliveries and worker
//! ticks) with seeded latency jitter, message drops, partitions, node sleeps
//! and crashes. Given the same seed, configuration and actor behaviour, the
//! execution — including every fast/slow-path transition of Kite — replays
//! identically. The correctness test-suites are built on this.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kite_common::rng::SplitMix64;
use kite_common::NodeId;

use crate::actor::Actor;
use crate::outbox::Outbox;

/// Simulator timing/fault defaults. Latencies are loosely modeled on the
/// paper's testbed (single-switch InfiniBand: a few microseconds per hop).
#[derive(Clone, Debug)]
pub struct SimCfg {
    /// Base one-way latency, nanoseconds.
    pub base_latency_ns: u64,
    /// Uniform extra jitter in `[0, jitter_ns)`.
    pub jitter_ns: u64,
    /// Worker tick cadence (sessions pumped, timeouts checked).
    pub tick_ns: u64,
    /// RNG seed: determines jitter, drops, and therefore the whole run.
    pub seed: u64,
    /// Virtual CPU cost charged to the *receiving* worker per envelope.
    /// Together with `service_per_msg_ns` this turns the simulator into a
    /// queueing model: a worker flooded with messages (e.g. a ZAB leader)
    /// saturates, delaying everything behind it — which is exactly the
    /// bottleneck structure the paper's throughput figures measure.
    pub service_per_envelope_ns: u64,
    /// Additional virtual CPU cost per message inside an envelope. Batching
    /// (§6.3) amortizes the envelope cost but not this one.
    pub service_per_msg_ns: u64,
    /// Virtual CPU cost charged to the *sender* per envelope posted — the
    /// NIC-doorbell half of the model. Issue rates throttle naturally: a
    /// worker blasting broadcasts becomes busy and its next tick (hence its
    /// sessions' next ops) slides.
    pub send_per_envelope_ns: u64,
    /// Additional sender-side cost per message (inlining/DMA per WQE).
    pub send_per_msg_ns: u64,
    /// Per-worker receive-queue capacity. Like RDMA UD receive queues,
    /// arrivals beyond the capacity are *dropped* (counted in
    /// [`Sim::dropped`]) — this is what bounds the backlog a §8.4 sleeping
    /// replica wakes up to, and it is precisely the loss mode Kite's
    /// delinquency machinery exists to absorb.
    pub recv_queue_cap: usize,
    /// Maximum protocol messages per network envelope; `0` means unbounded
    /// (§6.3's opportunistic batching, the default). `1` disables batching
    /// entirely — every message pays its own envelope service/send cost —
    /// which is the `ablation_opts` measurement of what batching buys.
    pub max_batch: usize,
}

impl Default for SimCfg {
    fn default() -> Self {
        SimCfg {
            base_latency_ns: 5_000,
            jitter_ns: 2_000,
            tick_ns: 2_000,
            seed: 1,
            service_per_envelope_ns: 200,
            service_per_msg_ns: 100,
            send_per_envelope_ns: 150,
            send_per_msg_ns: 40,
            recv_queue_cap: 4096,
            max_batch: 0,
        }
    }
}

enum EventKind<P> {
    Deliver { dst: NodeId, worker: usize, src: NodeId, mepoch: u32, msgs: Vec<P> },
    Tick { node: NodeId, worker: usize },
    /// Pop one envelope from the worker's receive FIFO (scheduled whenever
    /// envelopes arrive while the worker's virtual CPU is busy).
    Drain { node: NodeId, worker: usize },
}

struct Event<P> {
    time: u64,
    seq: u64,
    kind: EventKind<P>,
}

// Order events by (time, seq): deterministic tie-break.
impl<P> PartialEq for Event<P> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl<P> Eq for Event<P> {}
impl<P> PartialOrd for Event<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Event<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Per-directed-link fault state (single-threaded: plain fields).
#[derive(Clone, Copy, Default)]
struct Link {
    drop_prob: f64,
    extra_delay_ns: u64,
}

/// The deterministic executor.
pub struct Sim<A: Actor> {
    /// Actors indexed `[node][worker]`.
    pub actors: Vec<Vec<A>>,
    cfg: SimCfg,
    now: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<Event<A::Msg>>>,
    deliveries_pending: usize,
    rng: SplitMix64,
    links: Vec<Link>,
    crashed: Vec<bool>,
    wake_at: Vec<u64>,
    /// Virtual CPU availability per `(node, worker)` — the queueing model's
    /// server clock: a worker busy until `t` defers deliveries and ticks.
    busy_until: Vec<u64>,
    /// Per-worker receive FIFO: envelopes that arrived while busy. One
    /// `Drain` event at a time serves each FIFO (O(1) events per envelope —
    /// re-enqueueing every waiter would be quadratic under load).
    waiting: Vec<std::collections::VecDeque<(NodeId, u32, Vec<A::Msg>)>>,
    drain_scheduled: Vec<bool>,
    workers: usize,
    nodes: usize,
    scratch: Outbox<A::Msg>,
    /// Total envelopes delivered (for tests asserting traffic happened).
    pub delivered: u64,
    /// Total envelopes dropped by fault injection.
    pub dropped: u64,
}

impl<A: Actor> Sim<A> {
    /// Build a simulator over `actors[node][worker]` and schedule the first
    /// tick of every worker at staggered offsets (deterministic).
    pub fn new(actors: Vec<Vec<A>>, cfg: SimCfg) -> Self {
        let nodes = actors.len();
        let workers = actors.first().map(|v| v.len()).unwrap_or(0);
        assert!(nodes > 0 && workers > 0, "need at least one actor");
        assert!(actors.iter().all(|v| v.len() == workers), "ragged actor matrix");
        let mut sim = Sim {
            actors,
            rng: SplitMix64::new(cfg.seed),
            cfg,
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            deliveries_pending: 0,
            links: vec![Link::default(); nodes * nodes],
            crashed: vec![false; nodes],
            wake_at: vec![0; nodes],
            busy_until: vec![0; nodes * workers],
            waiting: (0..nodes * workers).map(|_| std::collections::VecDeque::new()).collect(),
            drain_scheduled: vec![false; nodes * workers],
            workers,
            nodes,
            scratch: Outbox::new(nodes),
            delivered: 0,
            dropped: 0,
        };
        for n in 0..nodes {
            for w in 0..workers {
                // Stagger initial ticks so nodes don't act in lockstep.
                let t = (n * workers + w) as u64 * 97;
                sim.push(t, EventKind::Tick { node: NodeId(n as u8), worker: w });
            }
        }
        sim
    }

    /// Current virtual time (ns).
    pub fn now(&self) -> u64 {
        self.now
    }

    fn push(&mut self, time: u64, kind: EventKind<A::Msg>) {
        if matches!(kind, EventKind::Deliver { .. }) {
            self.deliveries_pending += 1;
        }
        self.queue.push(Reverse(Event { time, seq: self.seq, kind }));
        self.seq += 1;
    }

    // ---- fault control (virtual-time variants of `FaultPlane`) ---------

    /// Crash-stop `node`: nothing is delivered to or ticked on it again.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed[node.idx()] = true;
    }

    /// Whether `node` has crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node.idx()]
    }

    /// Sleep `node` for `dur_ns` of virtual time starting now.
    pub fn sleep_node(&mut self, node: NodeId, dur_ns: u64) {
        self.wake_at[node.idx()] = self.now + dur_ns;
    }

    /// Set the drop probability on the directed link `src → dst`.
    pub fn set_drop(&mut self, src: NodeId, dst: NodeId, p: f64) {
        self.links[src.idx() * self.nodes + dst.idx()].drop_prob = p.clamp(0.0, 1.0);
    }

    /// Partition `a` from `b` (both directions drop everything).
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.set_drop(a, b, 1.0);
        self.set_drop(b, a, 1.0);
    }

    /// Heal both directions between `a` and `b` (delivery resumes; drop
    /// probability and extra delay reset).
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.set_drop(a, b, 0.0);
        self.set_drop(b, a, 0.0);
    }

    /// Add `extra_ns` of one-way delay on the directed link `src → dst`.
    pub fn set_link_delay(&mut self, src: NodeId, dst: NodeId, extra_ns: u64) {
        self.links[src.idx() * self.nodes + dst.idx()].extra_delay_ns = extra_ns;
    }

    // ---- execution ------------------------------------------------------

    /// Deliver one envelope to an actor: charge receive cost, run the
    /// handlers, route the output (charging send cost). The drained
    /// envelope buffer is recycled into the scratch outbox's pool.
    fn process_envelope(
        &mut self,
        dst: NodeId,
        worker: usize,
        src: NodeId,
        mepoch: u32,
        mut msgs: Vec<A::Msg>,
    ) {
        self.deliveries_pending -= 1;
        let slot = dst.idx() * self.workers + worker;
        let cost =
            self.cfg.service_per_envelope_ns + self.cfg.service_per_msg_ns * msgs.len() as u64;
        self.busy_until[slot] = self.now.max(self.busy_until[slot]) + cost;
        self.delivered += 1;
        let mut out = std::mem::replace(&mut self.scratch, Outbox::new(0));
        let a = &mut self.actors[dst.idx()][worker];
        a.on_envelope_stamped(src, mepoch, &mut msgs, self.now, &mut out);
        // Pump immediately after delivery (protocol progress should not
        // wait for the next tick).
        a.on_tick(self.now, &mut out);
        out.recycle(msgs);
        self.route(dst, worker, &mut out);
        self.scratch = out;
    }

    /// Schedule the drain event for a worker's receive FIFO if needed.
    fn ensure_drain(&mut self, node: NodeId, worker: usize) {
        let slot = node.idx() * self.workers + worker;
        if !self.drain_scheduled[slot] && !self.waiting[slot].is_empty() {
            self.drain_scheduled[slot] = true;
            let at = self.busy_until[slot].max(self.now);
            self.push(at, EventKind::Drain { node, worker });
        }
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "time went backwards");
        self.now = ev.time;
        match ev.kind {
            EventKind::Deliver { dst, worker, src, mepoch, msgs } => {
                if self.crashed[dst.idx()] {
                    self.deliveries_pending -= 1; // dropped at a dead NIC
                    return true;
                }
                let wake = self.wake_at[dst.idx()];
                if wake > self.now {
                    // Sleeping node: buffer (redeliver at wake time).
                    self.deliveries_pending -= 1; // push() re-increments
                    self.push(wake, EventKind::Deliver { dst, worker, src, mepoch, msgs });
                    return true;
                }
                // Queueing model: a busy worker's envelopes wait in FIFO
                // order; a single Drain event serves the queue.
                let slot = dst.idx() * self.workers + worker;
                if self.busy_until[slot] > self.now || !self.waiting[slot].is_empty() {
                    if self.waiting[slot].len() >= self.cfg.recv_queue_cap {
                        // UD receive-queue overflow: the datagram is lost.
                        self.deliveries_pending -= 1;
                        self.dropped += 1;
                        return true;
                    }
                    self.waiting[slot].push_back((src, mepoch, msgs));
                    self.ensure_drain(dst, worker);
                    return true;
                }
                self.process_envelope(dst, worker, src, mepoch, msgs);
            }
            EventKind::Drain { node, worker } => {
                let slot = node.idx() * self.workers + worker;
                self.drain_scheduled[slot] = false;
                if self.crashed[node.idx()] {
                    // drop the whole backlog at a dead node
                    let n = self.waiting[slot].len();
                    self.waiting[slot].clear();
                    self.deliveries_pending -= n;
                    return true;
                }
                let wake = self.wake_at[node.idx()];
                if wake > self.now {
                    self.drain_scheduled[slot] = true;
                    self.push(wake, EventKind::Drain { node, worker });
                    return true;
                }
                if self.busy_until[slot] > self.now {
                    self.drain_scheduled[slot] = true;
                    self.push(self.busy_until[slot], EventKind::Drain { node, worker });
                    return true;
                }
                if let Some((src, mepoch, msgs)) = self.waiting[slot].pop_front() {
                    self.process_envelope(node, worker, src, mepoch, msgs);
                }
                self.ensure_drain(node, worker);
            }
            EventKind::Tick { node, worker } => {
                if self.crashed[node.idx()] {
                    return true; // crashed nodes stop ticking forever
                }
                let wake = self.wake_at[node.idx()];
                if wake > self.now {
                    self.push(wake, EventKind::Tick { node, worker });
                    return true;
                }
                let slot = node.idx() * self.workers + worker;
                if self.busy_until[slot] > self.now {
                    self.push(self.busy_until[slot], EventKind::Tick { node, worker });
                    return true;
                }
                let mut out = std::mem::replace(&mut self.scratch, Outbox::new(0));
                self.actors[node.idx()][worker].on_tick(self.now, &mut out);
                self.route(node, worker, &mut out);
                self.scratch = out;
                let next = self.now + self.cfg.tick_ns;
                self.push(next, EventKind::Tick { node, worker });
            }
        }
        true
    }

    fn route(&mut self, src: NodeId, worker: usize, out: &mut Outbox<A::Msg>) {
        if out.is_empty() {
            return;
        }
        let max_batch = self.cfg.max_batch;
        let stamp = out.stamp();
        // Each batch is posted to the fabric straight out of the flush —
        // no intermediate collection.
        out.flush(|dst, batch| {
            // A batch cap (ablation: `max_batch = 1` disables batching)
            // splits one step's output into several envelopes, each paying
            // its own envelope costs.
            if max_batch > 0 && batch.len() > max_batch {
                let mut batch = batch;
                while batch.len() > max_batch {
                    let rest = batch.split_off(max_batch);
                    self.post(src, worker, dst, stamp, std::mem::replace(&mut batch, rest));
                }
                if !batch.is_empty() {
                    self.post(src, worker, dst, stamp, batch);
                }
            } else {
                self.post(src, worker, dst, stamp, batch);
            }
        });
    }

    /// Post one envelope from `(src, worker)` to the fabric: charge the
    /// sender-side cost, roll the fault/jitter dice, schedule delivery (to
    /// the peered worker at `dst` — §6.3 worker peering).
    fn post(&mut self, src: NodeId, worker: usize, dst: NodeId, mepoch: u32, msgs: Vec<A::Msg>) {
        let slot = src.idx() * self.workers + worker;
        // Sender-side cost (NIC posting): charged whether or not the
        // fault plane then drops the envelope.
        self.busy_until[slot] = self.busy_until[slot].max(self.now)
            + self.cfg.send_per_envelope_ns
            + self.cfg.send_per_msg_ns * msgs.len() as u64;
        let link = self.links[src.idx() * self.nodes + dst.idx()];
        if link.drop_prob > 0.0 && self.rng.chance(link.drop_prob) {
            self.dropped += 1;
            return;
        }
        let jitter =
            if self.cfg.jitter_ns == 0 { 0 } else { self.rng.next_below(self.cfg.jitter_ns) };
        let latency = if dst == src {
            200 // loopback
        } else {
            self.cfg.base_latency_ns + jitter + link.extra_delay_ns
        };
        let t = self.now + latency;
        self.push(t, EventKind::Deliver { dst, worker, src, mepoch, msgs });
    }

    /// Run until virtual time passes `deadline_ns`.
    pub fn run_until(&mut self, deadline_ns: u64) {
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.time > deadline_ns {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline_ns);
    }

    /// Run `dur_ns` of virtual time from now.
    pub fn run_for(&mut self, dur_ns: u64) {
        let deadline = self.now + dur_ns;
        self.run_until(deadline);
    }

    /// Run until every actor reports idle and no deliveries are in flight,
    /// or until `max_ns` virtual time is reached. Returns `true` on
    /// quiescence. Crashed nodes' actors are exempt: they stop ticking, so
    /// their own idleness bookkeeping (e.g. an anti-entropy cool-down) can
    /// never advance, and a crash-stopped node has no outstanding work by
    /// definition.
    pub fn run_until_quiesce(&mut self, max_ns: u64) -> bool {
        loop {
            if self.deliveries_pending == 0
                && self
                    .actors
                    .iter()
                    .enumerate()
                    .filter(|(n, _)| !self.crashed[*n])
                    .flat_map(|(_, v)| v)
                    .all(|a| a.is_idle())
            {
                return true;
            }
            match self.queue.peek() {
                Some(Reverse(ev)) if ev.time <= max_ns => {
                    self.step();
                }
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test actor: node 0 sends `count` pings to everyone; everyone pongs;
    /// node 0 counts pongs.
    struct Pinger {
        me: NodeId,
        to_send: usize,
        pongs: usize,
        sent: usize,
    }

    impl Pinger {
        fn new(me: NodeId, to_send: usize) -> Self {
            Pinger { me, to_send, pongs: 0, sent: 0 }
        }
    }

    impl Actor for Pinger {
        type Msg = u8;

        fn on_envelope(&mut self, src: NodeId, msgs: &mut Vec<u8>, _now: u64, out: &mut Outbox<u8>) {
            for m in msgs.drain(..) {
                if m == 0 {
                    out.send(src, 1);
                } else {
                    self.pongs += 1;
                }
            }
        }

        fn on_tick(&mut self, _now: u64, out: &mut Outbox<u8>) -> bool {
            if self.me == NodeId(0) && self.sent < self.to_send {
                self.sent += 1;
                out.broadcast(self.me, 0u8);
                true
            } else {
                false
            }
        }

        fn is_idle(&self) -> bool {
            self.me != NodeId(0) || self.sent == self.to_send
        }
    }

    fn build(nodes: usize, to_send: usize, seed: u64) -> Sim<Pinger> {
        let actors: Vec<Vec<Pinger>> = (0..nodes)
            .map(|n| vec![Pinger::new(NodeId(n as u8), to_send)])
            .collect();
        Sim::new(actors, SimCfg { seed, ..Default::default() })
    }

    #[test]
    fn all_pings_answered_without_faults() {
        let mut sim = build(3, 5, 42);
        assert!(sim.run_until_quiesce(1_000_000_000));
        assert_eq!(sim.actors[0][0].pongs, 10); // 5 rounds × 2 peers
        assert_eq!(sim.dropped, 0);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed| {
            let mut sim = build(5, 20, seed);
            sim.set_drop(NodeId(0), NodeId(1), 0.3);
            sim.run_for(50_000_000);
            (sim.delivered, sim.dropped, sim.actors[0][0].pongs, sim.now())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn drops_reduce_pongs() {
        let mut sim = build(3, 50, 3);
        sim.set_drop(NodeId(0), NodeId(1), 1.0);
        sim.run_for(100_000_000);
        // All pings to node 1 dropped: only node 2 answers.
        assert_eq!(sim.actors[0][0].pongs, 50);
        assert_eq!(sim.dropped, 50);
    }

    #[test]
    fn crashed_node_never_answers() {
        let mut sim = build(3, 10, 5);
        sim.crash(NodeId(2));
        sim.run_for(100_000_000);
        assert_eq!(sim.actors[0][0].pongs, 10);
    }

    #[test]
    fn sleeping_node_answers_late() {
        let mut sim = build(3, 1, 9);
        sim.sleep_node(NodeId(1), 10_000_000); // 10 ms
        sim.run_for(5_000_000);
        assert_eq!(sim.actors[0][0].pongs, 1, "only node 2 so far");
        sim.run_for(20_000_000);
        assert_eq!(sim.actors[0][0].pongs, 2, "node 1 answers after waking");
    }

    #[test]
    fn partition_heals() {
        let mut sim = build(3, 1, 11);
        sim.partition(NodeId(0), NodeId(1));
        sim.run_for(5_000_000);
        assert_eq!(sim.actors[0][0].pongs, 1);
        sim.heal(NodeId(0), NodeId(1));
        // another round of pings
        sim.actors[0][0].sent = 0;
        sim.run_for(5_000_000);
        assert_eq!(sim.actors[0][0].pongs, 3);
    }

    #[test]
    fn virtual_time_advances_only_with_events() {
        let mut sim = build(3, 0, 1);
        sim.run_until(1_000_000);
        assert_eq!(sim.now(), 1_000_000);
    }

    #[test]
    fn quiesce_times_out_when_work_remains() {
        let mut sim = build(3, 1_000_000_000, 1); // effectively endless
        assert!(!sim.run_until_quiesce(1_000_000));
    }

    /// One step's output to a single destination: sent whole by default,
    /// split into per-message envelopes under the batching ablation.
    struct Burst {
        me: NodeId,
        burst: usize,
        sent: bool,
        got: usize,
    }

    impl Actor for Burst {
        type Msg = u8;

        fn on_envelope(&mut self, _src: NodeId, msgs: &mut Vec<u8>, _now: u64, _out: &mut Outbox<u8>) {
            self.got += msgs.len();
            msgs.clear();
        }

        fn on_tick(&mut self, _now: u64, out: &mut Outbox<u8>) -> bool {
            if self.me == NodeId(0) && !self.sent {
                self.sent = true;
                for i in 0..self.burst {
                    out.send(NodeId(1), i as u8);
                }
                true
            } else {
                false
            }
        }

        fn is_idle(&self) -> bool {
            self.me != NodeId(0) || self.sent
        }
    }

    fn burst_sim(max_batch: usize) -> Sim<Burst> {
        let actors = (0..2)
            .map(|n| vec![Burst { me: NodeId(n as u8), burst: 10, sent: false, got: 0 }])
            .collect();
        Sim::new(actors, SimCfg { seed: 1, max_batch, ..Default::default() })
    }

    #[test]
    fn batch_cap_splits_envelopes_but_loses_nothing() {
        let mut whole = burst_sim(0);
        assert!(whole.run_until_quiesce(1_000_000_000));
        let mut capped = burst_sim(3);
        assert!(capped.run_until_quiesce(1_000_000_000));
        let mut single = burst_sim(1);
        assert!(single.run_until_quiesce(1_000_000_000));

        for sim in [&whole, &capped, &single] {
            assert_eq!(sim.actors[1][0].got, 10, "every message delivered");
        }
        assert_eq!(whole.delivered, 1, "default: one envelope per step+dst");
        assert_eq!(capped.delivered, 4, "10 msgs at cap 3 → 4 envelopes");
        assert_eq!(single.delivered, 10, "cap 1: batching disabled");
    }
}
