//! Per-node shared state for the ZAB baseline.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kite_common::stats::ProtoCounters;
use kite_common::{ClusterConfig, Key, Lc, NodeId, Val};
use kite_kvs::Store;
use parking_lot::Mutex;

/// The per-node in-order write applier. This is ZAB's throughput
/// constraint made concrete: all workers of a node funnel committed writes
/// through one ordered stream (§8.2: "ZAB constrains parallelism by totally
/// ordering all of the writes and applying them in the same order in all
/// nodes").
#[derive(Default)]
pub struct ApplyBuf {
    /// Proposals received, waiting for commit + their turn.
    pending: BTreeMap<u64, (Key, Val)>,
    /// Commit notices received (the fabric is unordered, so commits may
    /// arrive out of order; pruned as entries apply).
    committed: BTreeSet<u64>,
    /// Next zxid to apply.
    next_apply: u64,
}

impl ApplyBuf {
    /// Record a proposal.
    pub fn propose(&mut self, zxid: u64, key: Key, val: Val) {
        self.pending.insert(zxid, (key, val));
    }

    /// Record a commit notice.
    pub fn commit(&mut self, zxid: u64) {
        self.committed.insert(zxid);
    }

    /// Apply everything contiguous: entries apply in strict zxid order once
    /// both the proposal and its commit are present. Returns the number of
    /// writes applied.
    pub fn drain(&mut self, store: &Store) -> usize {
        let mut applied = 0;
        while self.committed.contains(&self.next_apply) {
            let Some((key, val)) = self.pending.remove(&self.next_apply) else { break };
            // zxid doubles as the version: the externally imposed total
            // order replaces LLC arbitration entirely.
            store.apply_ordered(key, &val, Lc::new(self.next_apply + 1, kite_common::NodeId(0)));
            self.committed.remove(&self.next_apply);
            self.next_apply += 1;
            applied += 1;
        }
        applied
    }

    /// Outstanding (unapplied) entries — diagnostics.
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// Next zxid this node will apply.
    pub fn next_zxid(&self) -> u64 {
        self.next_apply
    }
}

/// One ZAB node's shared state.
pub struct ZabShared {
    /// This node's id.
    pub me: NodeId,
    /// Deployment configuration.
    pub cfg: ClusterConfig,
    /// The node's replica store.
    pub store: Store,
    /// The in-order applier, shared by the node's workers.
    pub apply: Mutex<ApplyBuf>,
    /// The global write sequencer — used only on the leader.
    zxid: AtomicU64,
    /// Per-node counters.
    pub counters: Arc<ProtoCounters>,
}

impl ZabShared {
    /// Build the shared state for node `me`.
    pub fn new(me: NodeId, cfg: ClusterConfig, counters: Arc<ProtoCounters>) -> Arc<Self> {
        Arc::new(ZabShared {
            me,
            store: Store::new(cfg.keys),
            apply: Mutex::new(ApplyBuf::default()),
            zxid: AtomicU64::new(0),
            counters,
            cfg,
        })
    }

    /// Allocate the next zxid (leader only).
    pub fn next_zxid(&self) -> u64 {
        self.zxid.fetch_add(1, Ordering::Relaxed)
    }

    /// Majority quorum size.
    pub fn quorum(&self) -> usize {
        self.cfg.quorum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_applies_in_zxid_order_despite_reordering() {
        let store = Store::new(64);
        let mut buf = ApplyBuf::default();
        // Proposals and commits arrive shuffled.
        buf.propose(2, Key(1), Val::from_u64(30));
        buf.propose(0, Key(1), Val::from_u64(10));
        buf.commit(2);
        assert_eq!(buf.drain(&store), 0, "zxid 0 not committed yet");
        buf.commit(0);
        assert_eq!(buf.drain(&store), 1, "only zxid 0 is contiguous");
        assert_eq!(store.view(Key(1)).val.as_u64(), 10);
        buf.propose(1, Key(1), Val::from_u64(20));
        buf.commit(1);
        assert_eq!(buf.drain(&store), 2, "1 and 2 apply together");
        // Final value is zxid 2's write even though it was proposed first.
        assert_eq!(store.view(Key(1)).val.as_u64(), 30);
        assert_eq!(buf.next_zxid(), 3);
        assert_eq!(buf.backlog(), 0);
    }

    #[test]
    fn ordered_apply_ignores_llc_would_be_winners() {
        // A lower zxid applied later must still lose to a higher zxid
        // applied earlier? No — ordered application means LAST in zxid order
        // wins, period. Verify via interleaving.
        let store = Store::new(64);
        let mut buf = ApplyBuf::default();
        for z in 0..5u64 {
            buf.propose(z, Key(9), Val::from_u64(z));
            buf.commit(z);
        }
        buf.drain(&store);
        assert_eq!(store.view(Key(9)).val.as_u64(), 4);
    }

    #[test]
    fn zxid_allocation_is_dense() {
        let s = ZabShared::new(
            NodeId(0),
            ClusterConfig::small(),
            Arc::new(ProtoCounters::default()),
        );
        assert_eq!(s.next_zxid(), 0);
        assert_eq!(s.next_zxid(), 1);
        assert_eq!(s.next_zxid(), 2);
    }
}
