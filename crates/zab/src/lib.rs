//! # kite-zab
//!
//! The paper's in-house **ZAB** baseline (§7): Zookeeper Atomic Broadcast
//! re-implemented over the same KVS and network substrate as Kite, with the
//! same session/worker structure and opportunistic batching.
//!
//! Design, as characterized by the paper:
//!
//! * **Total order of writes.** Every write is forwarded to the leader
//!   (node 0), which assigns it a cluster-wide sequence number (*zxid*)
//!   and broadcasts a proposal; after a quorum acks, the leader broadcasts
//!   a commit. All nodes apply writes in strict zxid order through a
//!   per-node reorder buffer.
//! * **Local reads.** Because every replica applies the same write
//!   sequence, reads are served locally (SC reads — weaker than Kite's
//!   lin acquires, which is the paper's point in §8.1).
//! * **RMW-strength writes.** Totally ordered writes give ZAB writes the
//!   semantics of RMWs (§8.2 compares them against per-key Paxos and finds
//!   ZAB slower at high write ratios: total order constrains parallelism —
//!   in this implementation the leader's service queue and the shared
//!   in-order applier are precisely those constraints).
//!
//! Scope notes (documented deviations):
//! * No leader election/recovery: the paper's evaluation never fails the
//!   leader; this baseline exists for the throughput comparisons.
//! * RMW API calls are mapped to ZAB writes (values computed at the
//!   origin). The figures only use reads/writes for ZAB; Figure 8's
//!   "ZAB-ideal" is derived analytically exactly as the paper does.

#![warn(missing_docs)]

pub mod shared;
pub mod worker;
pub mod zcluster;

pub use shared::{ApplyBuf, ZabShared};
pub use worker::{ZabMsg, ZabWorker};
pub use zcluster::ZabSimCluster;

/// The fixed leader of the deployment.
pub const LEADER: kite_common::NodeId = kite_common::NodeId(0);
