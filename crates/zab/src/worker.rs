//! The ZAB worker: leader sequencing, quorum commit, in-order apply.
//!
//! Reuses Kite's session machinery ([`kite::session`]) and API types so the
//! workload generators drive both systems identically.

use std::collections::HashMap;
use std::sync::Arc;

use kite::api::{CompletionHook, Op, OpOutput};
use kite::session::Session;
use kite_common::{Key, NodeId, NodeSet, OpId, Val};
use kite_simnet::{Actor, Outbox};

use crate::shared::ZabShared;
use crate::LEADER;

/// ZAB wire protocol.
#[derive(Clone, Debug)]
pub enum ZabMsg {
    /// Follower → leader: please order this write. `rid` is the follower
    /// worker's request id for the completion round-trip.
    WriteReq {
        /// Sender's request id (completion routing).
        rid: u64,
        /// Key to write.
        key: Key,
        /// New value.
        val: Val,
    },
    /// Leader → all: proposal at `zxid`.
    Proposal {
        /// Global total-order id assigned by the leader.
        zxid: u64,
        /// Key to write.
        key: Key,
        /// New value.
        val: Val,
    },
    /// Follower → leader: proposal received and logged.
    PropAck {
        /// The acknowledged proposal.
        zxid: u64,
    },
    /// Leader → all: `zxid` is committed (quorum of acks).
    CommitMsg {
        /// Apply everything up to and including this zxid, in order.
        zxid: u64,
    },
    /// Leader → origin worker: your write committed.
    WriteDone {
        /// The originating request id.
        rid: u64,
    },
}

/// Leader-side bookkeeping for an in-flight proposal.
struct Pending {
    acked: NodeSet,
    committed: bool,
    /// Who to notify on commit: a remote worker's rid, or a local session.
    origin: Origin,
}

enum Origin {
    Local { si: usize, op_id: OpId, op: Op, invoked_at: u64 },
    Remote { node: NodeId, rid: u64 },
}

/// Follower-side bookkeeping for a forwarded write.
struct Forwarded {
    si: usize,
    op_id: OpId,
    op: Op,
    invoked_at: u64,
    last_sent: u64,
    key: Key,
    val: Val,
}

/// A ZAB protocol worker (leader or follower role decided by node id).
pub struct ZabWorker {
    me: NodeId,
    #[allow(dead_code)]
    wid: usize,
    #[allow(dead_code)]
    shared: Arc<ZabShared>,
    sessions: Vec<Session>,
    /// Leader: zxid → pending proposal state.
    pending: HashMap<u64, Pending>,
    /// Follower: rid → forwarded write awaiting `WriteDone`.
    forwarded: HashMap<u64, Forwarded>,
    next_rid: u64,
    hook: Option<CompletionHook>,
    quorum: usize,
    ops_per_tick: usize,
    retransmit: u64,
    last_scan: u64,
}

impl ZabWorker {
    /// Build one ZAB worker.
    pub fn new(
        wid: usize,
        shared: Arc<ZabShared>,
        sessions: Vec<Session>,
        hook: Option<CompletionHook>,
    ) -> Self {
        let cfg = &shared.cfg;
        ZabWorker {
            me: shared.me,
            wid,
            sessions,
            pending: HashMap::new(),
            forwarded: HashMap::new(),
            next_rid: 1,
            hook,
            quorum: cfg.quorum(),
            ops_per_tick: cfg.ops_per_tick,
            retransmit: cfg.retransmit_ns,
            last_scan: 0,
            shared,
        }
    }

    /// The node-shared ZAB state.
    pub fn shared(&self) -> &Arc<ZabShared> {
        &self.shared
    }

    fn is_leader(&self) -> bool {
        self.me == LEADER
    }

    fn complete(&mut self, si: usize, op_id: OpId, op: Op, output: OpOutput, invoked_at: u64, now: u64) {
        self.shared.counters.completed.incr();
        let c = kite::api::Completion { op_id, op, output, invoked_at, completed_at: now };
        if let Some(hook) = &self.hook {
            hook(&c);
        }
        let sess = &mut self.sessions[si];
        sess.deliver(c);
        sess.blocked_on = None;
    }

    /// Translate an API op into (key, value-to-write) for write-class ops,
    /// or complete it locally for read-class ops. ZAB gives every write
    /// RMW-strength ordering, so RMWs are just writes whose value was
    /// computed at the origin (see crate docs for the caveat).
    fn start_op(&mut self, si: usize, op_id: OpId, op: Op, now: u64, out: &mut Outbox<ZabMsg>) -> bool {
        let (key, val) = match op.clone() {
            Op::Read { key } | Op::Acquire { key } => {
                // Local SC read (§7: "this approach allows ZAB to perform SC
                // reads locally").
                self.shared.counters.local_reads.incr();
                let v = self.shared.store.view(key).val;
                self.complete(si, op_id, op, OpOutput::Value(v), now, now);
                return false;
            }
            Op::Write { key, val } | Op::Release { key, val } => (key, val),
            Op::Faa { key, delta } => {
                let base = self.shared.store.view(key).val.as_u64();
                (key, Val::from_u64(base.wrapping_add(delta)))
            }
            Op::CasWeak { key, new, .. } | Op::CasStrong { key, new, .. } => (key, new),
        };
        if self.is_leader() {
            let zxid = self.shared.next_zxid();
            self.pending.insert(
                zxid,
                Pending {
                    acked: NodeSet::singleton(self.me),
                    committed: false,
                    origin: Origin::Local { si, op_id, op, invoked_at: now },
                },
            );
            {
                let mut buf = self.shared.apply.lock();
                buf.propose(zxid, key, val.clone());
            }
            out.broadcast(self.me, ZabMsg::Proposal { zxid, key, val });
        } else {
            let rid = self.next_rid;
            self.next_rid += 1;
            self.forwarded.insert(
                rid,
                Forwarded { si, op_id, op, invoked_at: now, last_sent: now, key, val: val.clone() },
            );
            out.send(LEADER, ZabMsg::WriteReq { rid, key, val });
        }
        true // blocks the session until commit
    }

    fn handle(&mut self, src: NodeId, m: ZabMsg, now: u64, out: &mut Outbox<ZabMsg>) {
        match m {
            ZabMsg::WriteReq { rid, key, val } => {
                debug_assert!(self.is_leader(), "WriteReq must target the leader");
                let zxid = self.shared.next_zxid();
                self.pending.insert(
                    zxid,
                    Pending {
                        acked: NodeSet::singleton(self.me),
                        committed: false,
                        origin: Origin::Remote { node: src, rid },
                    },
                );
                {
                    let mut buf = self.shared.apply.lock();
                    buf.propose(zxid, key, val.clone());
                }
                out.broadcast(self.me, ZabMsg::Proposal { zxid, key, val });
            }
            ZabMsg::Proposal { zxid, key, val } => {
                {
                    let mut buf = self.shared.apply.lock();
                    buf.propose(zxid, key, val);
                }
                out.send(src, ZabMsg::PropAck { zxid });
            }
            ZabMsg::PropAck { zxid } => {
                let Some(p) = self.pending.get_mut(&zxid) else { return };
                p.acked.insert(src);
                if !p.committed && p.acked.len() >= self.quorum {
                    p.committed = true;
                    {
                        let mut buf = self.shared.apply.lock();
                        buf.commit(zxid);
                        buf.drain(&self.shared.store);
                    }
                    out.broadcast(self.me, ZabMsg::CommitMsg { zxid });
                    let p = self.pending.remove(&zxid).unwrap();
                    match p.origin {
                        Origin::Local { si, op_id, op, invoked_at } => {
                            let output = write_output(&op);
                            self.complete(si, op_id, op, output, invoked_at, now);
                        }
                        Origin::Remote { node, rid } => {
                            out.send(node, ZabMsg::WriteDone { rid });
                        }
                    }
                }
            }
            ZabMsg::CommitMsg { zxid } => {
                let mut buf = self.shared.apply.lock();
                buf.commit(zxid);
                buf.drain(&self.shared.store);
            }
            ZabMsg::WriteDone { rid } => {
                if let Some(f) = self.forwarded.remove(&rid) {
                    let output = write_output(&f.op);
                    self.complete(f.si, f.op_id, f.op, output, f.invoked_at, now);
                }
            }
        }
    }
}

/// Output for a committed ZAB write given its originating op.
fn write_output(op: &Op) -> OpOutput {
    match op {
        Op::Faa { .. } => OpOutput::Faa(0),
        Op::CasWeak { expect, .. } | Op::CasStrong { expect, .. } => {
            OpOutput::Cas { ok: true, observed: expect.clone() }
        }
        _ => OpOutput::Done,
    }
}

impl Actor for ZabWorker {
    type Msg = ZabMsg;

    fn on_envelope(
        &mut self,
        src: NodeId,
        msgs: &mut Vec<ZabMsg>,
        now: u64,
        out: &mut Outbox<ZabMsg>,
    ) {
        for m in msgs.drain(..) {
            self.handle(src, m, now, out);
        }
    }

    fn on_tick(&mut self, now: u64, out: &mut Outbox<ZabMsg>) -> bool {
        let mut progress = false;
        for si in 0..self.sessions.len() {
            let mut budget = self.ops_per_tick;
            while budget > 0 && self.sessions[si].is_free() {
                let Some(op) = self.sessions[si].next_op() else { break };
                budget -= 1;
                progress = true;
                let seq = self.sessions[si].seq;
                self.sessions[si].seq += 1;
                let op_id = OpId::new(self.sessions[si].id, seq);
                if self.start_op(si, op_id, op, now, out) {
                    self.sessions[si].blocked_on = Some(u64::MAX); // blocked on commit
                    break;
                }
            }
        }
        // Retransmit forwarded writes whose WriteDone seems lost. (The
        // leader dedups by… nothing — WriteReq retransmission can double-
        // order a write; ZAB over TCP does not need this. We retransmit only
        // when the fabric is lossy, which the ZAB benchmarks never enable;
        // correctness tests for loss target Kite.)
        if now.saturating_sub(self.last_scan) >= self.retransmit {
            self.last_scan = now;
            let mut resend: Vec<(u64, Key, Val)> = self
                .forwarded
                .iter()
                .filter(|(_, f)| now.saturating_sub(f.last_sent) >= self.retransmit * 4)
                .map(|(rid, f)| (*rid, f.key, f.val.clone()))
                .collect();
            resend.sort_unstable_by_key(|(rid, _, _)| *rid); // deterministic order
            for (rid, key, val) in resend {
                if let Some(f) = self.forwarded.get_mut(&rid) {
                    f.last_sent = now;
                }
                out.send(LEADER, ZabMsg::WriteReq { rid, key, val });
            }
        }
        progress
    }

    fn is_idle(&self) -> bool {
        self.pending.is_empty()
            && self.forwarded.is_empty()
            && self.sessions.iter().all(|s| s.is_idle())
    }
}
