//! ZAB deployments on the deterministic simulator.

use std::sync::Arc;

use kite::api::CompletionHook;
use kite::session::{Session, SessionDriver};
use kite_common::stats::ProtoCounters;
use kite_common::{ClusterConfig, NodeId, SessionId};
use kite_simnet::{Sim, SimCfg};

use crate::shared::ZabShared;
use crate::worker::ZabWorker;

/// A deterministic, single-threaded ZAB deployment (virtual time), mirroring
/// [`kite::SimCluster`] so benchmark harnesses treat both uniformly.
pub struct ZabSimCluster {
    /// The discrete-event executor running the ZAB workers.
    pub sim: Sim<ZabWorker>,
    shared: Vec<Arc<ZabShared>>,
    counters: Vec<Arc<ProtoCounters>>,
}

impl ZabSimCluster {
    /// Build a simulated ZAB deployment.
    pub fn build(
        cfg: ClusterConfig,
        sim_cfg: SimCfg,
        mut drivers: impl FnMut(SessionId) -> SessionDriver,
        hook: Option<CompletionHook>,
    ) -> Self {
        cfg.validate().expect("invalid cluster config");
        let counters: Vec<Arc<ProtoCounters>> =
            (0..cfg.nodes).map(|_| Arc::new(ProtoCounters::default())).collect();
        let shared: Vec<Arc<ZabShared>> = (0..cfg.nodes)
            .map(|n| ZabShared::new(NodeId(n as u8), cfg.clone(), Arc::clone(&counters[n])))
            .collect();

        let mut actors: Vec<Vec<ZabWorker>> = Vec::with_capacity(cfg.nodes);
        #[allow(clippy::needless_range_loop)] // n doubles as the NodeId
        for n in 0..cfg.nodes {
            let mut per_node = Vec::with_capacity(cfg.workers_per_node);
            for w in 0..cfg.workers_per_node {
                let mut sessions = Vec::with_capacity(cfg.sessions_per_worker);
                for i in 0..cfg.sessions_per_worker {
                    let slot = (w * cfg.sessions_per_worker + i) as u32;
                    let sid = SessionId::new(NodeId(n as u8), slot);
                    let mut sess = Session::new(sid);
                    sess.driver = drivers(sid);
                    sessions.push(sess);
                }
                per_node.push(ZabWorker::new(w, Arc::clone(&shared[n]), sessions, hook.clone()));
            }
            actors.push(per_node);
        }
        ZabSimCluster { sim: Sim::new(actors, sim_cfg), shared, counters }
    }

    /// One node's shared state.
    pub fn shared(&self, node: NodeId) -> &Arc<ZabShared> {
        &self.shared[node.idx()]
    }

    /// One node's counters.
    pub fn counters(&self, node: NodeId) -> &ProtoCounters {
        &self.counters[node.idx()]
    }

    /// Completed requests across the deployment.
    pub fn total_completed(&self) -> u64 {
        self.counters.iter().map(|c| c.completed.get()).sum()
    }

    /// Run `dur_ns` of virtual time.
    pub fn run_for(&mut self, dur_ns: u64) {
        self.sim.run_for(dur_ns);
    }

    /// Run until quiescent or `max_ns`; true on quiescence.
    pub fn run_until_quiesce(&mut self, max_ns: u64) -> bool {
        self.sim.run_until_quiesce(max_ns)
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.sim.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite::api::Op;
    use kite_common::{Key, Val};

    fn one_shot_writer(sid_match: SessionId, key: Key, val: u64) -> impl FnMut(SessionId) -> SessionDriver {
        move |sid| {
            if sid == sid_match {
                SessionDriver::Script(Box::new(move |seq| {
                    (seq == 0).then(|| Op::Write { key, val: Val::from_u64(val) })
                }))
            } else {
                SessionDriver::Idle
            }
        }
    }

    #[test]
    fn leader_write_reaches_all_replicas() {
        let mut zc = ZabSimCluster::build(
            ClusterConfig::small(),
            SimCfg::default(),
            one_shot_writer(SessionId::new(NodeId(0), 0), Key(5), 77),
            None,
        );
        assert!(zc.run_until_quiesce(1_000_000_000));
        for n in 0..3u8 {
            assert_eq!(zc.shared(NodeId(n)).store.view(Key(5)).val.as_u64(), 77);
        }
    }

    #[test]
    fn follower_write_is_forwarded_and_committed() {
        let mut zc = ZabSimCluster::build(
            ClusterConfig::small(),
            SimCfg::default(),
            one_shot_writer(SessionId::new(NodeId(2), 0), Key(6), 88),
            None,
        );
        assert!(zc.run_until_quiesce(1_000_000_000));
        for n in 0..3u8 {
            assert_eq!(zc.shared(NodeId(n)).store.view(Key(6)).val.as_u64(), 88);
        }
        assert_eq!(zc.total_completed(), 1);
    }

    #[test]
    fn all_nodes_apply_identical_write_order() {
        // Several sessions on several nodes write the same key; after
        // quiescence every replica must hold the same value (agreement) —
        // the total order guarantees it even without LLC arbitration.
        let mut zc = ZabSimCluster::build(
            ClusterConfig::small(),
            SimCfg::default(),
            |sid| {
                SessionDriver::Script(Box::new(move |seq| {
                    (seq < 10).then(|| Op::Write {
                        key: Key(1),
                        val: Val::from_u64(sid.global_idx(2) as u64 * 1000 + seq),
                    })
                }))
            },
            None,
        );
        assert!(zc.run_until_quiesce(60_000_000_000));
        let v0 = zc.shared(NodeId(0)).store.view(Key(1)).val.as_u64();
        for n in 1..3u8 {
            assert_eq!(zc.shared(NodeId(n)).store.view(Key(1)).val.as_u64(), v0);
        }
        // 3 nodes × 2 sessions × 10 writes
        assert_eq!(zc.total_completed(), 60);
        // and every replica applied all 60 writes
        for n in 0..3u8 {
            assert_eq!(zc.shared(NodeId(n)).apply.lock().next_zxid(), 60);
        }
    }

    #[test]
    fn reads_are_local() {
        let mut zc = ZabSimCluster::build(
            ClusterConfig::small(),
            SimCfg::default(),
            |sid| {
                if sid == SessionId::new(NodeId(1), 0) {
                    SessionDriver::Script(Box::new(|seq| {
                        (seq < 5).then_some(Op::Read { key: Key(3) })
                    }))
                } else {
                    SessionDriver::Idle
                }
            },
            None,
        );
        assert!(zc.run_until_quiesce(1_000_000_000));
        assert_eq!(zc.counters(NodeId(1)).local_reads.get(), 5);
        assert_eq!(zc.total_completed(), 5);
    }
}
