//! Log2-bucketed latency histogram with lock-free recording and mergeable
//! snapshots.
//!
//! Each worker (or subsystem) owns a [`Histogram`] and records into it with a
//! handful of relaxed `fetch_add`s — no locks, no allocation, no contention
//! beyond the cache line of the touched bucket. A scraper takes a
//! [`HistogramSnapshot`] (a plain array copy), merges snapshots from many
//! workers with [`HistogramSnapshot::merge`], and reads quantiles off the
//! merged counts. Merging is associative and commutative (it is element-wise
//! `u64` addition), which is what makes per-worker histograms equivalent to
//! one shared histogram for p50/p99/p999 reporting.
//!
//! Bucket `i` covers values in `[2^i, 2^(i+1))`; value 0 lands in bucket 0.
//! With 64 buckets the full `u64` range is covered, so nanosecond latencies
//! never saturate. A quantile query returns the *upper bound* of the bucket
//! containing that rank — a conservative (over-)estimate with relative error
//! bounded by 2x, the standard trade-off for log2 buckets.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: covers the whole `u64` range.
pub const BUCKETS: usize = 64;

/// Bucket index for a value: `floor(log2(v))`, with 0 mapping to bucket 0.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// Lock-free log2 histogram. All state is inline fixed-size atomics, so
/// construction is the only allocation (of the containing `Arc`, if any) and
/// recording is allocation-free by construction.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample. Hot path: three relaxed `fetch_add`s, no branches
    /// beyond the bucket computation, no allocation.
    // kite-lint: no-alloc
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current bucket counts out. The copy is not atomic across
    /// buckets (a concurrent `record` may be half-visible), which is fine
    /// for monitoring: every bucket value is a real count that was true at
    /// some point during the copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut s = HistogramSnapshot::default();
        for (i, b) in self.buckets.iter().enumerate() {
            s.buckets[i] = b.load(Ordering::Relaxed);
        }
        s.count = s.buckets.iter().sum();
        s.sum = self.sum.load(Ordering::Relaxed);
        s
    }

    /// Reset all buckets to zero (tests / epoch-based windows).
    pub fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Plain-data snapshot of a [`Histogram`]: mergeable, clonable, queryable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Element-wise addition: associative and commutative, so per-worker
    /// snapshots merge into the same result in any order or grouping.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        // sum wraps, matching the atomic fetch_add semantics of `record`
        // (a wrapped sum only skews `mean`, never the bucket quantiles).
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0.0 < q <= 1.0`). Returns 0 for an empty snapshot. Monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // rank in [1, count]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i is 2^(i+1) - 1; saturate at the top.
                return if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
            }
        }
        u64::MAX
    }

    /// Mean of recorded samples (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn record_and_quantile() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 8, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert!(s.quantile(1.0) >= 1_000_000);
        assert!(s.p50() >= 4);
        // quantile is an upper bound of the containing bucket
        assert!(s.p50() <= 8 * 2);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p999(), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
