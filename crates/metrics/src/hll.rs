//! HyperLogLog distinct-value sketch with lock-free CAS-max registers.
//!
//! # Register layout
//!
//! The sketch is a flat array of `m = 2^B` one-byte registers (`B = 12`,
//! `m = 4096`, 4 KiB total — one page). An observed key is first avalanched
//! through a SplitMix64 finalizer so consecutive keys (the common case for a
//! KVS keyspace) spread uniformly over 64 bits. The hash is then split:
//!
//! ```text
//!   63            52 51                                0
//!  +----------------+----------------------------------+
//!  |  register idx  |  suffix w (52 bits)              |
//!  +----------------+----------------------------------+
//!        B bits        rho(w) = leading zeros of w + 1
//! ```
//!
//! * the top `B` bits select which register the observation lands in;
//! * the remaining `64 - B` bits form the suffix `w`, and the register
//!   stores the *maximum* `rho(w)` ever seen, where `rho` is the position
//!   of the highest set bit counted from the top (i.e. `leading zeros + 1`,
//!   capped at `64 - B + 1` for the all-zero suffix).
//!
//! A register value of `r` is evidence of roughly `2^r` distinct suffixes
//! hashed into that register; the harmonic mean across all `m` registers
//! gives the cardinality estimate with standard error `1.04 / sqrt(m)` —
//! about **1.6%** at `B = 12`, comfortably inside the 5% bound the e2e
//! acceptance test asserts.
//!
//! # Concurrency
//!
//! Updates are a CAS-max loop on an `AtomicU8`: load, and only if the new
//! rank is larger, `compare_exchange_weak` it in, retrying on races. The
//! register value only ever grows, so the loop terminates after at most a
//! few iterations (a racing writer that beats us either wrote a larger
//! value — we stop — or a smaller one — impossible, it would not have CASed).
//! No locks, no allocation: `observe` is a no-alloc region and is covered by
//! the allocation-guard test in `crates/lint/tests/alloc_guard.rs`.
//!
//! Estimation reads every register with relaxed loads; like every scrape in
//! this crate it is a monitoring-grade snapshot, not a linearizable one.

use std::sync::atomic::{AtomicU8, Ordering};

/// log2 of the register count. 12 → 4096 registers → ~1.6% standard error.
pub const HLL_B: u32 = 12;
/// Number of registers (`2^HLL_B`).
pub const HLL_M: usize = 1 << HLL_B;

/// SplitMix64 finalizer: full-avalanche 64-bit mix. Public so tests and
/// callers that need a matching "exact" distinct count can hash the same way.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Lock-free HyperLogLog sketch. See the module docs for the register layout.
pub struct Hll {
    registers: Box<[AtomicU8; HLL_M]>,
}

impl Default for Hll {
    fn default() -> Self {
        Self::new()
    }
}

impl Hll {
    pub fn new() -> Self {
        // Construction is the only allocation this type ever performs; the
        // 4 KiB register page lives behind one Box so Hll itself stays small
        // enough to embed in shared structs without bloating them.
        Hll {
            registers: Box::new(std::array::from_fn(|_| AtomicU8::new(0))),
        }
    }

    /// Observe one key. Lock-free CAS-max on a single register byte.
    // kite-lint: no-alloc
    #[inline]
    pub fn observe(&self, key: u64) {
        let h = mix64(key);
        let idx = (h >> (64 - HLL_B)) as usize;
        let w = h << HLL_B; // suffix shifted to the top; zeros shift in below
        // rho: leading zeros of the (64-B)-bit suffix + 1, capped for w == 0.
        let rank = if w == 0 {
            (64 - HLL_B + 1) as u8
        } else {
            (w.leading_zeros() + 1) as u8
        };
        let reg = &self.registers[idx];
        let mut cur = reg.load(Ordering::Relaxed);
        while rank > cur {
            match reg.compare_exchange_weak(cur, rank, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Cardinality estimate with the standard small-range (linear counting)
    /// correction. 64-bit hashes make the classic large-range correction
    /// unnecessary at any cardinality this system can produce.
    pub fn estimate(&self) -> u64 {
        let m = HLL_M as f64;
        let mut inv_sum = 0.0f64;
        let mut zeros = 0u64;
        for reg in self.registers.iter() {
            let r = reg.load(Ordering::Relaxed);
            if r == 0 {
                zeros += 1;
            }
            inv_sum += 1.0 / (1u64 << r.min(63)) as f64;
        }
        // alpha_m for m >= 128
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha * m * m / inv_sum;
        let est = if raw <= 2.5 * m && zeros > 0 {
            // linear counting: far more accurate when most registers are empty
            m * (m / zeros as f64).ln()
        } else {
            raw
        };
        est.round() as u64
    }

    /// Reset every register (tests / epoch windows).
    pub fn clear(&self) {
        for reg in self.registers.iter() {
            reg.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimates_zero() {
        assert_eq!(Hll::new().estimate(), 0);
    }

    #[test]
    fn observe_is_idempotent() {
        let h = Hll::new();
        for _ in 0..1000 {
            h.observe(42);
        }
        let e = h.estimate();
        assert!(e >= 1 && e <= 2, "single key estimated as {e}");
    }

    #[test]
    fn small_cardinalities_near_exact() {
        let h = Hll::new();
        for k in 0..100u64 {
            h.observe(k);
        }
        let e = h.estimate() as i64;
        assert!((e - 100).abs() <= 5, "estimate {e} for 100 distinct keys");
    }
}
