//! kite-metrics: live observability primitives for the Kite reproduction.
//!
//! Dependency-free by design (like `kite-lint`): this crate sits *below*
//! every other workspace crate, so the kvs store, the protocol core, the WAL
//! and the TCP fabric can all record into it without dependency cycles.
//!
//! Three primitives plus a registry:
//!
//! * [`Counter`] / [`Gauge`] — cache-line-padded relaxed atomics;
//! * [`Histogram`] — log2-bucketed, lock-free to record, snapshots merge
//!   across workers so p50/p99/p999 can be reported cluster-wide;
//! * [`Hll`] — HyperLogLog distinct-keys sketch with CAS-max registers
//!   (cardinality is the one statistic plain counters cannot give).
//!
//! All *recording* paths (`Counter::add`, `Gauge::set`, `Histogram::record`,
//! `Hll::observe`) are lock-free and allocation-free — they are `// kite-lint:
//! no-alloc` regions and covered by the allocation-guard test. The
//! [`Registry`] itself uses a mutex, but only for registration (startup) and
//! rendering (scrape time); nothing on an op's critical path touches it.
//!
//! Rendering is a plain-text `key value` line per metric — no wire format,
//! no HTTP, greppable from a shell. Histograms render four lines
//! (`_count`, `_p50`, `_p99`, `_p999`), sketches one (`_est`).

pub mod histogram;
pub mod hll;

pub use histogram::{bucket_of, Histogram, HistogramSnapshot, BUCKETS};
pub use hll::{mix64, Hll, HLL_B, HLL_M};

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotone counter, padded to its own cache-line pair so independent
/// counters never false-share.
#[repr(align(128))]
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Bump by one. Lock-free, allocation-free.
    // kite-lint: no-alloc
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Bump by `n`. Lock-free, allocation-free.
    // kite-lint: no-alloc
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge (watermarks, queue depths, backoff phases).
#[repr(align(128))]
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the value. Lock-free, allocation-free.
    // kite-lint: no-alloc
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One registered metric. `Poll` adapts pre-existing atomics (e.g. the
/// protocol's `ProtoCounters`, per-link fabric stats, WAL watermarks) into
/// the registry without copying them into new storage: the closure reads the
/// live value at scrape time.
pub enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Hll(Arc<Hll>),
    Poll(Box<dyn Fn() -> u64 + Send + Sync>),
    /// Snapshot-at-scrape-time histogram owned elsewhere (e.g. embedded in
    /// a shared struct the registry cannot hold an `Arc<Histogram>` into).
    PollHistogram(Box<dyn Fn() -> HistogramSnapshot + Send + Sync>),
}

/// Name → metric table rendered as `key value` lines. Registration and
/// rendering take a mutex; the metrics themselves are lock-free, so nothing
/// on a request's critical path ever blocks here.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<(String, Metric)>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            entries: Mutex::new(Vec::new()),
        }
    }

    pub fn register(&self, name: &str, metric: Metric) {
        self.entries
            .lock()
            .expect("metrics registry poisoned")
            .push((name.to_string(), metric));
    }

    /// Create and register a counter in one step.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.register(name, Metric::Counter(Arc::clone(&c)));
        c
    }

    /// Create and register a gauge in one step.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.register(name, Metric::Gauge(Arc::clone(&g)));
        g
    }

    /// Create and register a histogram in one step.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.register(name, Metric::Histogram(Arc::clone(&h)));
        h
    }

    /// Create and register an HLL sketch in one step.
    pub fn hll(&self, name: &str) -> Arc<Hll> {
        let h = Arc::new(Hll::new());
        self.register(name, Metric::Hll(Arc::clone(&h)));
        h
    }

    /// Register a closure polled at scrape time — the bridge for atomics
    /// that already live elsewhere (ProtoCounters, LinkState, WalStats).
    pub fn poll_fn<F>(&self, name: &str, f: F)
    where
        F: Fn() -> u64 + Send + Sync + 'static,
    {
        self.register(name, Metric::Poll(Box::new(f)));
    }

    /// Register a histogram snapshotted at scrape time — the bridge for
    /// histograms embedded in structs owned by other layers.
    pub fn poll_histogram<F>(&self, name: &str, f: F)
    where
        F: Fn() -> HistogramSnapshot + Send + Sync + 'static,
    {
        self.register(name, Metric::PollHistogram(Box::new(f)));
    }

    /// Render every metric as `key value\n` in registration order.
    pub fn render(&self, out: &mut String) {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        for (name, m) in entries.iter() {
            match m {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{} {}", name, c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", name, g.get());
                }
                Metric::Poll(f) => {
                    let _ = writeln!(out, "{} {}", name, f());
                }
                Metric::Histogram(h) => {
                    render_hist(out, name, &h.snapshot());
                }
                Metric::PollHistogram(f) => {
                    render_hist(out, name, &f());
                }
                Metric::Hll(h) => {
                    let _ = writeln!(out, "{}_est {}", name, h.estimate());
                }
            }
        }
    }

    /// Convenience: render into a fresh string.
    pub fn render_to_string(&self) -> String {
        let mut s = String::new();
        self.render(&mut s);
        s
    }
}

fn render_hist(out: &mut String, name: &str, s: &HistogramSnapshot) {
    let _ = writeln!(out, "{}_count {}", name, s.count);
    let _ = writeln!(out, "{}_p50 {}", name, s.p50());
    let _ = writeln!(out, "{}_p99 {}", name, s.p99());
    let _ = writeln!(out, "{}_p999 {}", name, s.p999());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_renders_key_value_lines() {
        let r = Registry::new();
        let c = r.counter("ops");
        let g = r.gauge("depth");
        let h = r.histogram("lat");
        let sk = r.hll("keys");
        r.poll_fn("answer", || 42);
        c.add(3);
        g.set(7);
        h.record(100);
        sk.observe(1);
        sk.observe(2);
        let out = r.render_to_string();
        assert!(out.contains("ops 3\n"), "{out}");
        assert!(out.contains("depth 7\n"), "{out}");
        assert!(out.contains("answer 42\n"), "{out}");
        assert!(out.contains("lat_count 1\n"), "{out}");
        assert!(out.contains("lat_p99 "), "{out}");
        assert!(out.contains("keys_est 2\n"), "{out}");
        // every line is exactly `key value`
        for line in out.lines() {
            assert_eq!(line.split_whitespace().count(), 2, "bad line: {line}");
        }
    }
}
