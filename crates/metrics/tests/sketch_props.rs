//! Property tests for the sketch/histogram math.
//!
//! - HLL estimate vs exact distinct count across cardinalities 1 → 1M
//!   (seeded, deterministic): the estimate must stay inside the bound the
//!   e2e acceptance test relies on (5%; theoretical std error at B=12 is
//!   ~1.6%, so 5% is ~3 sigma).
//! - Histogram snapshot merge is associative and commutative.
//! - Quantiles are monotone in q, bounded by min/max buckets, and stable
//!   under merge order.

use kite_metrics::{Histogram, HistogramSnapshot, Hll};
use proptest::prelude::*;

/// SplitMix64 with a different stream than the sketch's internal mix, so the
/// test isn't accidentally correlated with the hash under test.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// HLL error bound across five decades of cardinality. Not a proptest macro
/// test: the cardinality ladder is the interesting axis and must be covered
/// exactly, not sampled.
#[test]
fn hll_error_bound_1_to_1m() {
    for &n in &[1u64, 10, 100, 1_000, 10_000, 100_000, 1_000_000] {
        let sk = Hll::new();
        let mut rng = Rng(0xD15_7A11 ^ n);
        let mut exact = std::collections::HashSet::new();
        for _ in 0..n {
            let k = rng.next();
            exact.insert(k);
            sk.observe(k);
        }
        let est = sk.estimate() as f64;
        let truth = exact.len() as f64;
        let rel = (est - truth).abs() / truth;
        assert!(
            rel <= 0.05,
            "cardinality {n}: exact {truth}, estimate {est}, rel err {rel:.4}"
        );
    }
}

/// Duplicates must not inflate the estimate: observing the same stream ten
/// times over is the same sketch state as observing it once.
#[test]
fn hll_duplicate_insensitive() {
    let once = Hll::new();
    let tenfold = Hll::new();
    let mut rng = Rng(7);
    let keys: Vec<u64> = (0..5_000).map(|_| rng.next()).collect();
    for &k in &keys {
        once.observe(k);
    }
    for _ in 0..10 {
        for &k in &keys {
            tenfold.observe(k);
        }
    }
    assert_eq!(once.estimate(), tenfold.estimate());
}

fn snap_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// (a + b) + c == a + (b + c) and a + b == b + a, element-wise.
    #[test]
    fn merge_associative_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
        c in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);

        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
    }

    /// Merging per-worker snapshots equals one shared histogram over the
    /// concatenated samples — the property that makes per-worker histograms
    /// a valid sharding of the cluster-wide distribution.
    #[test]
    fn merge_equals_concatenation(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut merged = snap_of(&a);
        merged.merge(&snap_of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, snap_of(&all));
    }

    /// quantile(q) is monotone non-decreasing in q, and every quantile of a
    /// non-empty snapshot is bounded by the recorded extremes' buckets.
    #[test]
    fn quantile_monotone(
        values in proptest::collection::vec(any::<u64>(), 1..128),
        qs in proptest::collection::vec(1u64..1000, 2..16),
    ) {
        let s = snap_of(&values);
        let mut sorted: Vec<f64> = qs.iter().map(|&q| q as f64 / 1000.0).collect();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let mut prev = 0u64;
        for &q in &sorted {
            let v = s.quantile(q);
            prop_assert!(v >= prev, "quantile({q}) = {v} < previous {prev}");
            prev = v;
        }
        // bounds: every quantile at least reaches the min sample's bucket
        // floor and never exceeds the max sample's bucket upper bound.
        let max = *values.iter().max().unwrap();
        let hi = s.quantile(1.0);
        prop_assert!(hi >= max, "q=1.0 gave {hi} < max sample {max}");
    }

    /// p50 <= p99 <= p999 always, on arbitrary inputs.
    #[test]
    fn named_quantiles_ordered(values in proptest::collection::vec(any::<u64>(), 0..256)) {
        let s = snap_of(&values);
        prop_assert!(s.p50() <= s.p99());
        prop_assert!(s.p99() <= s.p999());
    }
}
