//! Divergence-fuzzing equivalence harness for Merkle-range anti-entropy.
//!
//! The Merkle mode is an *optimization of how divergence is found*, never
//! of what gets repaired — so for any divergence pattern whatsoever, a
//! Merkle sweep must converge the cluster to the **identical** final store
//! state the flat sweep produces (which is itself forced by LLC-max: the
//! highest-stamped copy of every key wins everywhere). This harness fuzzes
//! random per-replica divergence patterns — missing keys, stale clocks,
//! empty stores, single-key stores — plants them directly in the replicas'
//! stores, lets each mode's sweep heal the cluster on the deterministic
//! simulator, and asserts:
//!
//! * both modes quiesce with every replica holding the LLC-max winner of
//!   every key (and still missing the keys nobody held);
//! * the two final states are identical, key for key;
//! * the Merkle drill-down message count is O(diverged · log store) —
//!   and exactly **zero** when the replicas are identical, the property
//!   that makes summary sweeps O(log store) bytes at steady state;
//! * Merkle mode ships no flat digest keys beyond the drill-down leaves
//!   (`ae_digest_keys` stays 0 on converged stores).

use std::collections::BTreeMap;

use kite::session::SessionDriver;
use kite::{ProtocolMode, SimCluster};
use kite_common::{ClusterConfig, Key, Lc, NodeId, Val};
use kite_simnet::SimCfg;
use proptest::prelude::*;
use proptest::test_runner::TestRng;

const SEC: u64 = 1_000_000_000;
const NODES: usize = 3;

/// How one key is placed on each replica: `None` = the replica never saw
/// it; `Some((version, owner))` = it holds the value stamped
/// `Lc::new(version, owner)`.
#[derive(Clone, Debug)]
struct KeyPlan {
    key: u64,
    state: [Option<(u64, u8)>; NODES],
}

impl KeyPlan {
    /// The LLC-max winner every replica must converge to (None if nobody
    /// holds the key).
    fn expected(&self) -> Option<(u64, u8)> {
        self.state
            .iter()
            .flatten()
            .copied()
            .max_by_key(|&(v, o)| Lc::new(v, NodeId(o)))
    }

    /// Does any replica disagree with any other on this key?
    fn diverged(&self) -> bool {
        self.state.windows(2).any(|w| w[0] != w[1])
    }
}

#[derive(Clone, Debug)]
struct DivergencePlan {
    keys: Vec<KeyPlan>,
    seed: u64,
}

/// The (unique-per-stamp) value a replica holds for `key` at `(v, o)` —
/// derived, so two replicas holding the same stamp hold the same bytes.
fn val_for(key: u64, v: u64, o: u8) -> Val {
    Val::from_u64((key << 20) ^ (v << 8) ^ (o as u64 + 1))
}

struct Plans;

impl proptest::strategy::Strategy for Plans {
    type Value = DivergencePlan;
    fn generate(&self, rng: &mut TestRng) -> DivergencePlan {
        // Edge cases get their own arms: empty stores and single-key
        // stores are exactly where "advertise nothing" asymmetries hide.
        let nkeys = match rng.below(8) {
            0 => 0,
            1 => 1,
            _ => 2 + rng.below(23),
        };
        let mut seen = std::collections::BTreeSet::new();
        let mut keys = Vec::new();
        for _ in 0..nkeys {
            let key = rng.next_u64() >> 1; // avoid the reserved u64::MAX
            if !seen.insert(key) {
                continue;
            }
            let latest_v = 2 + rng.below(5);
            let latest_o = rng.below(NODES as u64) as u8;
            let mut state = [None; NODES];
            for slot in state.iter_mut() {
                *slot = match rng.below(4) {
                    0 => None, // missing: the replica slept through the key
                    1 => {
                        // stale: an earlier stamp of the same key
                        let v = 1 + rng.below(latest_v - 1);
                        Some((v, rng.below(NODES as u64) as u8))
                    }
                    _ => Some((latest_v, latest_o)),
                };
            }
            keys.push(KeyPlan { key, state });
        }
        DivergencePlan { keys, seed: rng.next_u64() | 1 }
    }
}

/// Final per-replica store content over the plan's keys, read with the
/// non-claiming probe so the readback itself cannot perturb the store.
type StoreState = Vec<BTreeMap<u64, (Lc, u64)>>;

struct RunOut {
    state: StoreState,
    merkle_reqs: u64,
    summaries: u64,
    digest_keys: u64,
}

fn converge(merkle: bool, plan: &DivergencePlan) -> RunOut {
    let cfg = ClusterConfig::small()
        .keys(256) // capacity 512; leaf span 8 → 64 leaves; fanout 4 → depth 3
        .anti_entropy_interval_ns(50_000)
        .anti_entropy_chunk(512)
        .merkle_digests(merkle)
        .merkle_fanout(4)
        .merkle_leaf_span(8)
        .commit_fill(false);
    let mut sc = SimCluster::build(
        cfg,
        ProtocolMode::Kite,
        SimCfg { seed: plan.seed, ..Default::default() },
        |_| SessionDriver::Idle,
        None,
    );
    // Plant the divergence directly in the stores (the protocols are not
    // running: this *is* the post-fault state the sweep must heal).
    for (n, _) in (0..NODES).enumerate() {
        let store = &sc.shared(NodeId(n as u8)).store;
        for kp in &plan.keys {
            if let Some((v, o)) = kp.state[n] {
                store.apply_max(Key(kp.key), &val_for(kp.key, v, o), Lc::new(v, NodeId(o)));
            }
        }
    }
    assert!(
        sc.run_until_quiesce(600 * SEC),
        "sweep must converge and wind down (merkle={merkle}, seed={})",
        plan.seed
    );
    let state: StoreState = (0..NODES)
        .map(|n| {
            let store = &sc.shared(NodeId(n as u8)).store;
            plan.keys
                .iter()
                .filter_map(|kp| {
                    store
                        .probe_lc(Key(kp.key))
                        .filter(|&lc| lc > Lc::ZERO)
                        .map(|lc| (kp.key, (lc, store.view(Key(kp.key)).val.as_u64())))
                })
                .collect()
        })
        .collect();
    let sum = |f: fn(&kite_common::stats::ProtoCounters) -> u64| -> u64 {
        (0..NODES).map(|n| f(sc.counters(NodeId(n as u8)))).sum()
    };
    RunOut {
        state,
        merkle_reqs: sum(|c| c.ae_merkle_reqs.get()),
        summaries: sum(|c| c.ae_summaries_sent.get()),
        digest_keys: sum(|c| c.ae_digest_keys.get()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn merkle_sweep_converges_identically_to_flat_sweep(plan in Plans) {
        let merkle = converge(true, &plan);
        let flat = converge(false, &plan);

        // Both modes actually ran the machinery they claim to.
        prop_assert!(merkle.summaries > 0, "Merkle sweeps must broadcast summaries");
        prop_assert_eq!(flat.merkle_reqs, 0, "flat mode must never drill down");

        // Every replica, in both modes, holds exactly the LLC-max winner
        // of every key the pattern placed anywhere — and nothing at all
        // where nobody held the key.
        for kp in &plan.keys {
            let want = kp.expected().map(|(v, o)| (Lc::new(v, NodeId(o)), val_for(kp.key, v, o).as_u64()));
            for (mode, out) in [("merkle", &merkle), ("flat", &flat)] {
                for (n, st) in out.state.iter().enumerate() {
                    prop_assert_eq!(
                        st.get(&kp.key).copied(),
                        want,
                        "{}: replica {} wrong on key {} (plan {:?})",
                        mode, n, kp.key, kp.state
                    );
                }
            }
        }
        // ... which also makes the two final states bytewise identical.
        for n in 0..NODES {
            prop_assert_eq!(&merkle.state[n], &flat.state[n], "mode divergence at replica {}", n);
        }

        // Drill-down traffic is O(diverged · log store): zero when the
        // replicas agree, and bounded by a small constant per diverged key
        // per lattice level otherwise (64 leaves, fanout 4 → 3 levels).
        let diverged = plan.keys.iter().filter(|kp| kp.diverged()).count() as u64;
        if diverged == 0 {
            prop_assert_eq!(merkle.merkle_reqs, 0, "identical replicas must not drill down");
            prop_assert_eq!(
                merkle.digest_keys, 0,
                "identical replicas must exchange no per-key digest entries"
            );
        } else {
            let levels = 3u64;
            let bound = 64 * (1 + diverged * levels);
            prop_assert!(
                merkle.merkle_reqs <= bound,
                "drill-down blow-up: {} reqs for {} diverged keys (bound {})",
                merkle.merkle_reqs, diverged, bound
            );
        }
    }
}
