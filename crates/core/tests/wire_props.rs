//! Property tests of the wire codec: every `Msg` variant round-trips
//! through encode → frame → decode, and malformed input of every flavour
//! (truncation, oversize, bit-flips, garbage) decodes to an error — never
//! a panic, because a malformed peer frame costs the sender its connection
//! and must not cost the receiving worker its process.

use std::sync::Arc;

use kite::msg::{
    CatchUp, Cmd, CommitPayload, DigestChunk, MerkleSummary, Msg, PromiseOutcome, Repair, WriteBack,
};
use kite::wire::{self, WireError};
use kite_common::{Key, Lc, NodeId, NodeSet, OpId, SessionId, Val};
use kite_kvs::RmwCommit;
use proptest::prelude::*;
use proptest::test_runner::TestRng;

// ---------------------------------------------------------------------------
// Generators (the proptest shim's Strategy surface)
// ---------------------------------------------------------------------------

fn gen_val(rng: &mut TestRng) -> Val {
    match rng.below(4) {
        0 => Val::EMPTY,
        1 => Val::from_u64(rng.next_u64()),
        2 => {
            // Inline boundary (32 bytes).
            let b: Vec<u8> = (0..32).map(|_| rng.next_u64() as u8).collect();
            Val::from_bytes(&b)
        }
        _ => {
            // Heap flavour.
            let n = 33 + rng.below(64) as usize;
            let b: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
            Val::from_bytes(&b)
        }
    }
}

fn gen_lc(rng: &mut TestRng) -> Lc {
    Lc::new(rng.below(1 << 40), NodeId(rng.below(16) as u8))
}

fn gen_op_id(rng: &mut TestRng) -> OpId {
    OpId::new(
        SessionId::new(NodeId(rng.below(16) as u8), rng.below(1 << 10) as u32),
        rng.below(1 << 30),
    )
}

fn gen_ring(rng: &mut TestRng) -> Vec<RmwCommit> {
    (0..rng.below(5))
        .map(|_| RmwCommit { op: gen_op_id(rng), slot: rng.below(1 << 20), result: gen_val(rng) })
        .collect()
}

fn gen_key(rng: &mut TestRng) -> Key {
    Key(rng.next_u64())
}

/// One random message covering **every** variant (tag picked uniformly).
fn gen_msg(rng: &mut TestRng) -> Msg {
    let rid = rng.next_u64();
    match rng.below(23) {
        0 => Msg::EsWrite { rid, key: gen_key(rng), val: gen_val(rng), lc: gen_lc(rng) },
        1 => Msg::Ack { rid },
        2 => Msg::AckBatch { rids: (0..rng.below(20)).map(|_| rng.next_u64()).collect() },
        3 => Msg::RtsReq { rid, key: gen_key(rng) },
        4 => Msg::RtsRep { rid, lc: gen_lc(rng) },
        5 => {
            let acq = if rng.below(2) == 0 { Some(gen_op_id(rng)) } else { None };
            Msg::ReadReq { rid, key: gen_key(rng), acq }
        }
        6 => Msg::ReadRep {
            rid,
            val: gen_val(rng),
            lc: gen_lc(rng),
            delinquent: rng.below(2) == 0,
        },
        7 => Msg::WriteMsg { rid, key: gen_key(rng), val: gen_val(rng), lc: gen_lc(rng) },
        8 => Msg::WriteAcq {
            rid,
            wb: Arc::new(WriteBack {
                key: gen_key(rng),
                val: gen_val(rng),
                lc: gen_lc(rng),
                acq: gen_op_id(rng),
            }),
        },
        9 => Msg::WriteAck { rid, delinquent: rng.below(2) == 0 },
        10 => Msg::SlowRelease { rid, dm: NodeSet(rng.next_u64() as u16) },
        11 => Msg::SlowReleaseAck { rid },
        12 => Msg::ResetBit { acq: gen_op_id(rng) },
        13 => Msg::Propose {
            rid,
            key: gen_key(rng),
            slot: rng.below(1 << 20),
            ballot: gen_lc(rng),
            op: gen_op_id(rng),
        },
        14 => {
            let outcome = match rng.below(5) {
                0 => PromiseOutcome::Promised { accepted: None },
                1 => PromiseOutcome::Promised {
                    accepted: Some(Box::new((
                        gen_lc(rng),
                        Cmd {
                            op: gen_op_id(rng),
                            new_val: gen_val(rng),
                            result: gen_val(rng),
                            lc: gen_lc(rng),
                        },
                    ))),
                },
                2 => PromiseOutcome::NackBallot { promised: gen_lc(rng) },
                3 => PromiseOutcome::AlreadyCommitted(Box::new(CatchUp {
                    slot: rng.below(1 << 20),
                    cur_val: gen_val(rng),
                    cur_lc: gen_lc(rng),
                    done: if rng.below(2) == 0 { Some(gen_val(rng)) } else { None },
                    ring: gen_ring(rng),
                })),
                _ => PromiseOutcome::Lagging { slot: rng.below(1 << 20) },
            };
            Msg::PromiseRep { rid, ballot: gen_lc(rng), outcome, delinquent: rng.below(2) == 0 }
        }
        15 => Msg::Accept {
            rid,
            key: gen_key(rng),
            slot: rng.below(1 << 20),
            ballot: gen_lc(rng),
            cmd: Arc::new(Cmd {
                op: gen_op_id(rng),
                new_val: gen_val(rng),
                result: gen_val(rng),
                lc: gen_lc(rng),
            }),
        },
        16 => Msg::AcceptRep {
            rid,
            ballot: gen_lc(rng),
            ok: rng.below(2) == 0,
            promised: gen_lc(rng),
            delinquent: rng.below(2) == 0,
        },
        17 => Msg::Commit {
            rid,
            key: gen_key(rng),
            c: Arc::new(CommitPayload {
                slot: rng.below(1 << 20),
                val: gen_val(rng),
                lc: gen_lc(rng),
                meta: if rng.below(2) == 0 { Some((gen_op_id(rng), gen_val(rng))) } else { None },
            }),
        },
        18 => Msg::Digest {
            d: Arc::new(DigestChunk {
                entries: (0..rng.below(40)).map(|_| (gen_key(rng), gen_lc(rng))).collect(),
            }),
        },
        19 => Msg::RepairReq {
            keys: (0..rng.below(20)).map(|_| gen_key(rng)).collect::<Vec<_>>().into_boxed_slice(),
        },
        20 => Msg::MerkleSummary {
            s: Arc::new(MerkleSummary {
                level: rng.below(8) as u8,
                start: rng.below(1 << 20) as u32,
                hashes: (0..rng.below(40)).map(|_| rng.next_u64()).collect(),
            }),
        },
        21 => Msg::MerkleReq {
            level: rng.below(8) as u8,
            buckets: (0..rng.below(30))
                .map(|_| rng.below(1 << 20) as u32)
                .collect::<Vec<_>>()
                .into(),
        },
        _ => Msg::RepairVal {
            r: Box::new(Repair {
                key: gen_key(rng),
                val: gen_val(rng),
                lc: gen_lc(rng),
                slot: rng.below(1 << 20),
                ring: gen_ring(rng),
            }),
        },
    }
}

/// Structural equality via Debug — `Msg` deliberately has no PartialEq
/// (Arc payloads), and the Debug form prints every field.
fn same(a: &Msg, b: &Msg) -> bool {
    format!("{a:?}") == format!("{b:?}")
}

struct MsgBatch;

impl proptest::strategy::Strategy for MsgBatch {
    type Value = Vec<Msg>;
    fn generate(&self, rng: &mut TestRng) -> Vec<Msg> {
        (0..1 + rng.below(16)).map(|_| gen_msg(rng)).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// encode → frame → decode is the identity on every variant, and the
    /// decode lands in a recycled buffer without disturbing prior content.
    #[test]
    fn frame_round_trips_every_variant(msgs in MsgBatch, src in 0u8..16, mepoch in any::<u32>()) {
        let mut buf = Vec::new();
        wire::encode_frame(NodeId(src), mepoch, &msgs, &mut buf);
        let body_len = wire::frame_body_len(buf[..4].try_into().unwrap()).unwrap();
        prop_assert_eq!(body_len, buf.len() - 4);
        let mut out = Vec::new();
        let (got_src, got_mepoch) = wire::decode_frame_body(&buf[4..], &mut out).unwrap();
        prop_assert_eq!(got_src, NodeId(src));
        prop_assert_eq!(got_mepoch, mepoch);
        prop_assert_eq!(out.len(), msgs.len());
        for (a, b) in msgs.iter().zip(&out) {
            prop_assert!(same(a, b), "mismatch: {:?} vs {:?}", a, b);
        }
    }

    /// Every truncation of a valid frame decodes to an error (never panics,
    /// never fabricates messages) and leaves the output buffer clean.
    #[test]
    fn truncated_frames_error_cleanly(msgs in MsgBatch, cut_at in any::<proptest::sample::Index>()) {
        let mut buf = Vec::new();
        wire::encode_frame(NodeId(1), 0, &msgs, &mut buf);
        let body = &buf[4..];
        let cut = cut_at.index(body.len().max(1));
        let mut out = Vec::new();
        let r = wire::decode_frame_body(&body[..cut], &mut out);
        prop_assert!(r.is_err(), "decoding a {cut}-byte prefix of {} must fail", body.len());
        prop_assert!(out.is_empty(), "failed decode must truncate its output buffer");
    }

    /// Flipping any byte of a frame either still decodes (the flip hit a
    /// payload byte) or errors — it never panics and never over-reads.
    #[test]
    fn bit_flips_never_panic(msgs in MsgBatch, at in any::<proptest::sample::Index>(), flip in 1u8..=255) {
        let mut buf = Vec::new();
        wire::encode_frame(NodeId(0), 0, &msgs, &mut buf);
        let i = 4 + at.index(buf.len() - 4);
        buf[i] ^= flip;
        let mut out = Vec::new();
        let _ = wire::decode_frame_body(&buf[4..], &mut out); // must return, not panic
    }

    /// Pure garbage bodies decode to an error.
    #[test]
    fn garbage_bodies_error(len in 9usize..64, seed in any::<u64>()) {
        let mut rng = TestRng::from_seed(seed);
        // Every byte is forced ≥ 0x80, far past the last valid msg tag
        // (22), so at least the first message is guaranteed invalid.
        let mut body = vec![0u8; len];
        for b in body.iter_mut() {
            *b = (rng.next_u64() | 0x80) as u8;
        }
        body[0] = 1; // src
        // count = huge → Oversized, or plausible → BadTag/Truncated later.
        let mut out = Vec::new();
        prop_assert!(wire::decode_frame_body(&body, &mut out).is_err());
    }
}

#[test]
fn oversized_collections_are_rejected_not_allocated() {
    // An AckBatch announcing 2^32-ish rids must be rejected by the length
    // gate before any allocation happens.
    let mut body = Vec::new();
    body.push(0); // src
    body.extend_from_slice(&0u32.to_le_bytes()); // mepoch
    body.extend_from_slice(&1u32.to_le_bytes()); // one message
    body.push(2); // T_ACK_BATCH
    body.extend_from_slice(&(u32::MAX).to_le_bytes()); // ludicrous count
    let mut out = Vec::new();
    assert!(matches!(
        wire::decode_frame_body(&body, &mut out),
        Err(WireError::Oversized { .. })
    ));
}

#[test]
fn oversized_merkle_collections_are_rejected_not_allocated() {
    // A summary (or drill-down request) announcing more entries than
    // MAX_SEQ must be rejected by the length gate before any allocation.
    for (tag, extra) in [(21u8, 5u32), (22, 0)] {
        let mut body = Vec::new();
        body.push(0); // src
        body.extend_from_slice(&0u32.to_le_bytes()); // mepoch
        body.extend_from_slice(&1u32.to_le_bytes()); // one message
        body.push(tag);
        body.push(3); // level
        if extra > 0 {
            body.extend_from_slice(&extra.to_le_bytes()); // summary start
        }
        body.extend_from_slice(&(u32::MAX).to_le_bytes()); // ludicrous count
        let mut out = Vec::new();
        assert!(
            matches!(wire::decode_frame_body(&body, &mut out), Err(WireError::Oversized { .. })),
            "tag {tag} must hit the length gate"
        );
        assert!(out.is_empty());
    }
}

#[test]
fn summary_batch_splits_at_max_frame() {
    // A sweep's worth of big summaries that cannot fit one frame must
    // split at MAX_FRAME and decode back to the original sequence — the
    // same no-poison-frame property the flat-digest batches rely on.
    let hashes: Vec<u64> = (0..wire::MAX_SEQ as u64).collect(); // 512 KiB encoded
    let msgs: Vec<Msg> = (0..12)
        .map(|i| {
            Msg::MerkleSummary {
                s: Arc::new(MerkleSummary { level: 2, start: i * 64, hashes: hashes.clone() }),
            }
        })
        .collect();
    let mut buf = Vec::new();
    let frames = wire::encode_frames(NodeId(2), 3, &msgs, &mut buf);
    assert!(frames > 1, "6 MiB of summaries cannot fit one {}-byte frame", wire::MAX_FRAME);
    let mut out = Vec::new();
    let mut off = 0;
    for _ in 0..frames {
        let len = wire::frame_body_len(buf[off..off + 4].try_into().unwrap()).unwrap();
        assert!(len <= wire::MAX_FRAME, "every emitted frame must satisfy the receive gate");
        let (src, mepoch) = wire::decode_frame_body(&buf[off + 4..off + 4 + len], &mut out).unwrap();
        assert_eq!(src, NodeId(2));
        assert_eq!(mepoch, 3, "every split frame carries the same stamp");
        off += 4 + len;
    }
    assert_eq!(off, buf.len(), "no trailing bytes between frames");
    assert_eq!(out.len(), msgs.len());
    for (a, b) in msgs.iter().zip(&out) {
        assert!(same(a, b));
    }
}

#[test]
fn decode_reuses_the_provided_buffer() {
    // The transport decodes into pool-recycled buffers: capacity must be
    // reused, not reallocated, when it suffices.
    let msgs = vec![Msg::Ack { rid: 7 }, Msg::Ack { rid: 8 }];
    let mut buf = Vec::new();
    wire::encode_frame(NodeId(0), 0, &msgs, &mut buf);
    let mut out: Vec<Msg> = Vec::with_capacity(64);
    let cap = out.capacity();
    let ptr = out.as_ptr();
    wire::decode_frame_body(&buf[4..], &mut out).unwrap();
    assert_eq!(out.len(), 2);
    assert_eq!(out.capacity(), cap);
    assert_eq!(out.as_ptr(), ptr, "decode must fill the recycled buffer in place");
}

#[test]
fn oversized_batches_split_across_frames() {
    // A batch that cannot fit one frame must split, and every frame must
    // decode back to the original sequence — otherwise one big outbox
    // flush (e.g. a digest chunk's worth of repairs) would produce a frame
    // every receiver rejects, flapping the link forever.
    let big = Val::from_bytes(&vec![7u8; 60_000]);
    let msgs: Vec<Msg> = (0..100)
        .map(|i| Msg::WriteMsg { rid: i, key: Key(i), val: big.clone(), lc: Lc::ZERO })
        .collect();
    let mut buf = Vec::new();
    let frames = wire::encode_frames(NodeId(3), 0, &msgs, &mut buf);
    assert!(frames > 1, "6 MB of messages cannot fit one {}-byte frame", wire::MAX_FRAME);
    // Walk the concatenated frames exactly as a reader thread would.
    let mut out = Vec::new();
    let mut off = 0;
    for _ in 0..frames {
        let len = wire::frame_body_len(buf[off..off + 4].try_into().unwrap()).unwrap();
        let (src, _) = wire::decode_frame_body(&buf[off + 4..off + 4 + len], &mut out).unwrap();
        assert_eq!(src, NodeId(3));
        off += 4 + len;
    }
    assert_eq!(off, buf.len(), "no trailing bytes between frames");
    assert_eq!(out.len(), msgs.len());
    for (a, b) in msgs.iter().zip(&out) {
        assert!(same(a, b));
    }
}

#[test]
fn empty_batch_still_produces_one_frame() {
    let mut buf = Vec::new();
    assert_eq!(wire::encode_frames(NodeId(0), 0, &[], &mut buf), 1);
    let len = wire::frame_body_len(buf[..4].try_into().unwrap()).unwrap();
    let mut out = Vec::new();
    wire::decode_frame_body(&buf[4..4 + len], &mut out).unwrap();
    assert!(out.is_empty());
}
