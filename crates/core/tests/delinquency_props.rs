//! Model-based property test of the delinquency bit state machine
//! (§4.2.1, Figure 3) — the safety side of Lemma 5.7 under arbitrary
//! interleavings of slow-releases, acquire probes, and resets.
//!
//! The oracle tracks, per acquire tag, the *mark epoch* at which its probe
//! observed the bit. The invariant Kite's correctness rests on: a reset
//! may only clear the bit if **no slow-release marked it since the probe
//! that created the tag** — otherwise an acquire racing with a new
//! delinquency event could wipe evidence the next acquire needs (§5.5).
//! Tag replacement and the defensive tag cap may *refuse* extra resets
//! (that is safe, only costing a redundant slow path), so the oracle
//! checks soundness of successful resets, not completeness.

use std::collections::HashMap;

use kite::delinquency::DelinquencyTable;
use kite_common::{NodeId, NodeSet, OpId, SessionId};
use proptest::prelude::*;

/// One scripted action against the table (single bit: machine 0).
#[derive(Clone, Debug)]
enum Action {
    /// A slow-release marks the machine delinquent.
    Mark,
    /// An acquire probe from session `s` (sequence numbers assigned in
    /// script order, as real sessions do).
    Probe { s: u8 },
    /// A reset from session `s`, using the tag of its most recent probe.
    Reset { s: u8 },
    /// A reset replaying a stale (older) tag of session `s`.
    StaleReset { s: u8 },
}

fn actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(
        prop_oneof![
            2 => Just(Action::Mark),
            4 => (0u8..4).prop_map(|s| Action::Probe { s }),
            3 => (0u8..4).prop_map(|s| Action::Reset { s }),
            1 => (0u8..4).prop_map(|s| Action::StaleReset { s }),
        ],
        1..200,
    )
}

proptest! {
    #[test]
    fn resets_never_erase_newer_delinquency(script in actions()) {
        let machine = NodeId(0);
        let table = DelinquencyTable::new(1);
        let dm: NodeSet = [machine].into_iter().collect();

        // Oracle state.
        let mut mark_epoch = 0u64;
        let mut seqs = [0u64; 4]; // per-session sequence counter
        let mut last_tag: [Option<OpId>; 4] = [None; 4];
        let mut first_tag: [Option<OpId>; 4] = [None; 4];
        let mut tag_epoch: HashMap<OpId, u64> = HashMap::new();
        let mut marked = false; // oracle's view of "Set or Transient"

        for a in script {
            match a {
                Action::Mark => {
                    table.mark_delinquent(dm);
                    mark_epoch += 1;
                    marked = true;
                    prop_assert!(table.is_marked(machine), "mark must mark");
                }
                Action::Probe { s } => {
                    let si = s as usize;
                    let tag = OpId::new(SessionId::new(machine, s as u32), seqs[si]);
                    seqs[si] += 1;
                    let verdict = table.probe(machine, tag);
                    prop_assert_eq!(
                        verdict, marked,
                        "probe verdict must reflect the bit at probe time"
                    );
                    if verdict {
                        tag_epoch.insert(tag, mark_epoch);
                        last_tag[si] = Some(tag);
                        first_tag[si].get_or_insert(tag);
                    }
                }
                Action::Reset { s } | Action::StaleReset { s } => {
                    let si = s as usize;
                    let which = if matches!(a, Action::Reset { .. }) {
                        last_tag[si]
                    } else {
                        first_tag[si]
                    };
                    let Some(tag) = which else { continue };
                    let cleared = table.reset(machine, tag);
                    if cleared {
                        // Lemma 5.7 soundness: no mark intervened since the
                        // probe that created this tag.
                        prop_assert_eq!(
                            tag_epoch.get(&tag).copied(), Some(mark_epoch),
                            "reset cleared across an intervening slow-release"
                        );
                        prop_assert!(!table.is_marked(machine));
                        marked = false;
                    }
                }
            }
        }

        // The oracle's marked flag always agrees with the table at the end.
        prop_assert_eq!(table.is_marked(machine), marked);
    }
}
