//! Property tests for the in-flight table's generational rid scheme and an
//! end-to-end check that a worker drops stale replies carrying a recycled
//! slot's old rid (no cross-op completion, no panic).

use std::sync::Arc;

use kite::api::Op;
use kite::inflight::{EsWriteState, InFlight, InFlightTable, Meta};
use kite::msg::Msg;
use kite::{NodeShared, ProtocolMode, Session, SessionDriver, Worker};
use kite_common::stats::ProtoCounters;
use kite_common::{ClusterConfig, Key, Lc, NodeId, NodeSet, OpId, SessionId, Val};
use kite_simnet::{Actor, Outbox};
use proptest::prelude::*;

fn entry(tag: u64) -> InFlight {
    InFlight::EsWrite(EsWriteState {
        meta: Meta {
            sess: 0,
            op_id: OpId::new(SessionId::new(NodeId(0), 0), tag),
            key: Key(1),
            op: Op::Read { key: Key(1) },
            invoked_at: tag, // unique marker
            last_sent: 0,
        },
        val: Val::EMPTY,
        lc: Lc::ZERO,
        acked: NodeSet::EMPTY,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Model check: under arbitrary insert/remove interleavings, live rids
    /// resolve to exactly their entry and every dead rid (including ones
    /// whose slot has been recycled many times) resolves to nothing.
    #[test]
    fn dead_rids_never_resolve(ops in proptest::collection::vec((any::<bool>(), any::<u8>()), 1..200)) {
        let mut table = InFlightTable::new();
        let mut live: Vec<(u64, u64)> = Vec::new(); // (rid, marker)
        let mut dead: Vec<u64> = Vec::new();
        let mut next_tag = 0u64;
        for (insert, pick) in ops {
            if insert || live.is_empty() {
                next_tag += 1;
                let rid = table.insert(entry(next_tag));
                live.push((rid, next_tag));
            } else {
                let idx = pick as usize % live.len();
                let (rid, tag) = live.swap_remove(idx);
                let removed = table.remove(rid).expect("live rid must remove");
                prop_assert_eq!(removed.meta().invoked_at, tag);
                dead.push(rid);
            }
            prop_assert_eq!(table.len(), live.len());
            for &(rid, tag) in &live {
                prop_assert_eq!(table.get(rid).expect("live rid").meta().invoked_at, tag);
            }
            for &rid in &dead {
                prop_assert!(table.get(rid).is_none(), "dead rid resolved");
                prop_assert!(!table.contains(rid));
            }
        }
    }

    /// Hammering one slot through many generations never lets an old rid
    /// alias the current occupant.
    #[test]
    fn slot_reuse_is_aba_safe(reuses in 1usize..512) {
        let mut table = InFlightTable::new();
        let mut old_rids = Vec::with_capacity(reuses);
        for i in 0..reuses {
            let rid = table.insert(entry(i as u64));
            table.remove(rid);
            old_rids.push(rid);
        }
        let current = table.insert(entry(9999));
        for rid in old_rids {
            prop_assert_ne!(rid, current);
            prop_assert!(table.get(rid).is_none());
        }
        prop_assert_eq!(table.get(current).unwrap().meta().invoked_at, 9999);
    }
}

// ===========================================================================
// End-to-end: a worker must drop stale replies for recycled rids
// ===========================================================================

/// Build a single standalone Kite worker for node 0 of a 3-node cluster,
/// with one externally driven session (ops are fed through the returned
/// channel on demand).
fn worker_with_external_session() -> (Worker, crossbeam::channel::Sender<Op>) {
    let cfg = ClusterConfig::small();
    let shared = NodeShared::new(NodeId(0), cfg, Arc::new(ProtoCounters::default()));
    let (op_tx, op_rx) = crossbeam::channel::unbounded();
    // Completion sends to a dropped receiver are ignored by the session.
    let (done_tx, _done_rx) = crossbeam::channel::unbounded();
    let mut sess = Session::new(SessionId::new(NodeId(0), 0));
    sess.driver = SessionDriver::External { rx: op_rx, tx: done_tx };
    (Worker::new(0, shared, ProtocolMode::Kite, vec![sess], None), op_tx)
}

/// Drive one tick and collect the rids of EsWrite broadcasts it emitted.
fn tick_collect_es_rids(w: &mut Worker, now: u64, out: &mut Outbox<Msg>) -> Vec<u64> {
    w.on_tick(now, out);
    let mut rids = Vec::new();
    out.flush(|_dst, batch| {
        for m in batch {
            if let Msg::EsWrite { rid, .. } = m {
                if !rids.contains(&rid) {
                    rids.push(rid);
                }
            }
        }
    });
    rids
}

#[test]
fn stale_es_ack_for_recycled_rid_is_dropped() {
    let (mut w, ops) = worker_with_external_session();
    let mut out: Outbox<Msg> = Outbox::new(3);

    // First write: one tracked EsWrite in flight.
    ops.send(Op::Write { key: Key(7), val: Val::from_u64(1) }).unwrap();
    let rids = tick_collect_es_rids(&mut w, 0, &mut out);
    assert_eq!(rids.len(), 1, "one relaxed write broadcast");
    let old_rid = rids[0];
    assert_eq!(w.inflight_len(), 1);

    // Both peers ack: the entry retires and its slot is freed.
    w.on_envelope(NodeId(1), &mut vec![Msg::Ack { rid: old_rid }], 10, &mut out);
    w.on_envelope(NodeId(2), &mut vec![Msg::Ack { rid: old_rid }], 20, &mut out);
    out.flush(|_, _| {});
    assert_eq!(w.inflight_len(), 0, "fully acked write retires");

    // Second write: the slab recycles the slot under a new generation.
    ops.send(Op::Write { key: Key(7), val: Val::from_u64(2) }).unwrap();
    let rids = tick_collect_es_rids(&mut w, 30, &mut out);
    assert_eq!(rids.len(), 1);
    let new_rid = rids[0];
    assert_eq!(old_rid & 0xFFFF_FFFF, new_rid & 0xFFFF_FFFF, "slot recycled");
    assert_ne!(old_rid, new_rid, "generation must differ");
    assert_eq!(w.inflight_len(), 1);

    // A duplicate (retransmitted) ack carrying the OLD rid arrives: the
    // generation check must drop it — the new write's ack set is untouched,
    // so a single further ack cannot spuriously retire it.
    w.on_envelope(NodeId(1), &mut vec![Msg::Ack { rid: old_rid }], 40, &mut out);
    assert_eq!(w.inflight_len(), 1, "stale ack must not touch the recycled slot");

    // One genuine ack: still in flight (needs all three machines).
    w.on_envelope(NodeId(1), &mut vec![Msg::Ack { rid: new_rid }], 50, &mut out);
    assert_eq!(w.inflight_len(), 1, "one peer ack of two is not all-acked");

    // A stale ack from the *other* peer must not complete it either.
    w.on_envelope(NodeId(2), &mut vec![Msg::Ack { rid: old_rid }], 60, &mut out);
    assert_eq!(w.inflight_len(), 1, "stale ack from second peer dropped too");

    // The genuine second ack retires it.
    w.on_envelope(NodeId(2), &mut vec![Msg::Ack { rid: new_rid }], 70, &mut out);
    assert_eq!(w.inflight_len(), 0);
    out.flush(|_, _| {});
}

/// A coalesced ack batch mixing a stale (recycled-slot) rid with a live one
/// must apply the live ack and drop the stale one individually — coalescing
/// must not weaken the generation check.
#[test]
fn stale_rid_inside_ack_batch_is_dropped_individually() {
    let (mut w, ops) = worker_with_external_session();
    let mut out: Outbox<Msg> = Outbox::new(3);

    // Retire a first write to obtain a stale rid for a recycled slot.
    ops.send(Op::Write { key: Key(7), val: Val::from_u64(1) }).unwrap();
    let old_rid = tick_collect_es_rids(&mut w, 0, &mut out)[0];
    w.on_envelope(NodeId(1), &mut vec![Msg::Ack { rid: old_rid }], 10, &mut out);
    w.on_envelope(NodeId(2), &mut vec![Msg::Ack { rid: old_rid }], 20, &mut out);
    assert_eq!(w.inflight_len(), 0);

    // Second write reuses the slot under a new generation.
    ops.send(Op::Write { key: Key(7), val: Val::from_u64(2) }).unwrap();
    let new_rid = tick_collect_es_rids(&mut w, 30, &mut out)[0];
    assert_ne!(old_rid, new_rid);

    // One batch carrying both: only the live rid may count. After it, one
    // peer has acked — the entry must still be in flight.
    w.on_envelope(NodeId(1), &mut vec![Msg::AckBatch { rids: vec![old_rid, new_rid] }], 40, &mut out);
    assert_eq!(w.inflight_len(), 1, "stale rid in batch must not double-count");

    // The second peer's batch (stale first again) retires it.
    w.on_envelope(NodeId(2), &mut vec![Msg::AckBatch { rids: vec![old_rid, new_rid] }], 50, &mut out);
    assert_eq!(w.inflight_len(), 0, "live rids in batches must still resolve");
    out.flush(|_, _| {});
}

/// Replies whose rid was never issued (arbitrary garbage, untracked-space
/// ids, rid 0) must be ignored across all reply kinds without panicking.
#[test]
fn unknown_rids_are_ignored_across_reply_kinds() {
    let (mut w, ops) = worker_with_external_session();
    let mut out: Outbox<Msg> = Outbox::new(3);
    ops.send(Op::Write { key: Key(7), val: Val::from_u64(1) }).unwrap();
    let rids = tick_collect_es_rids(&mut w, 0, &mut out);
    let live = rids[0];

    for bogus in [0u64, live ^ (1 << 32), 1 << 63, u64::MAX, live + 1] {
        let mut msgs = vec![
            Msg::Ack { rid: bogus },
            Msg::RtsRep { rid: bogus, lc: Lc::ZERO },
            Msg::ReadRep { rid: bogus, val: Val::EMPTY, lc: Lc::ZERO, delinquent: false },
            Msg::WriteAck { rid: bogus, delinquent: false },
            Msg::SlowReleaseAck { rid: bogus },
            Msg::AckBatch { rids: vec![bogus, bogus] },
        ];
        w.on_envelope(NodeId(1), &mut msgs, 100, &mut out);
    }
    assert_eq!(w.inflight_len(), 1, "live entry unaffected by garbage rids");
    out.flush(|_, _| {});
}
