//! The wire protocol: every message exchanged by Kite workers.
//!
//! One enum carries all three protocols (ES §3.2, ABD §3.3, per-key Paxos
//! §3.4) plus the barrier-mechanism messages (§4.2): slow-release, reset-bit.
//! Batching works *across* protocols (§6.3) because envelopes are just
//! `Vec<Msg>`.
//!
//! Request/response pairs are matched by `rid`, a worker-local request id —
//! replies always return to the issuing worker because workers are peered
//! one-to-one across nodes (§6.3).

use kite_common::{Key, Lc, NodeSet, OpId, Val};

/// A Paxos command: everything an acceptor stores for an accepted RMW and a
/// committer needs to finish it (§3.4; DESIGN.md §3.4 for the dedup scheme).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cmd {
    /// Owning operation (used for helping + exactly-once completion).
    pub op: OpId,
    /// The value written if this command commits.
    pub new_val: Val,
    /// The RMW's return value (base value observed), carried so helpers can
    /// complete the owner's op with the right result.
    pub result: Val,
    /// The clock the committed value will be stamped with, fixed when the
    /// command is created and carried through accepts and helping, so that
    /// *every* committer of a slot broadcasts the same `(value, lc)` pair.
    /// If the owner and a helper each stamped their own clock instead, a
    /// successor slot's commit built on the lower-clock branch could lose
    /// the `apply_max` race at a replica holding the higher stamp of an
    /// *older* slot's value — that replica would advance its slot with a
    /// stale store and the next RMW would decide from a stale base (lost
    /// FAA increment; caught by `tests/chaos.rs` seed 8).
    pub lc: Lc,
}

/// Acceptor's answer to a `Propose`.
#[derive(Clone, Debug)]
pub enum PromiseOutcome {
    /// Promised: will not accept lower ballots for this slot. Carries the
    /// previously accepted command, if any (the proposer must adopt the
    /// highest-ballot one — classic Paxos phase 1).
    Promised {
        /// `(ballot, cmd)` previously accepted for this slot.
        accepted: Option<(Lc, Cmd)>,
    },
    /// A higher ballot was already promised.
    NackBallot {
        /// The ballot the acceptor has promised instead.
        promised: Lc,
    },
    /// The acceptor has already moved past the proposer's slot: the slot is
    /// decided. Carries the acceptor's current slot, the key's current
    /// value/clock for catch-up, and — if the proposer's own command is in
    /// the committed ring — its recorded result (the op was helped).
    AlreadyCommitted {
        /// The acceptor's current (next undecided) slot.
        slot: u64,
        /// The key's current value at the acceptor (summarizes the decided
        /// prefix).
        cur_val: Val,
        /// Its clock.
        cur_lc: Lc,
        /// The proposer's own command's recorded result, if it was helped
        /// to commit.
        done: Option<Val>,
    },
    /// The acceptor is *behind* the proposer's slot (missed a commit); the
    /// proposer answers with a `Commit` fill.
    Lagging {
        /// The acceptor's (stale) slot.
        slot: u64,
    },
}

/// Protocol messages. `rid` is the sender's request id; replies echo it.
#[derive(Clone, Debug)]
pub enum Msg {
    // ------------------------------------------------------------------ ES
    /// Relaxed-write propagation (§3.2): apply iff `lc` beats the stored
    /// clock; always acknowledged (the release barrier counts acks).
    EsWrite {
        /// Sender's request id; the ack echoes it.
        rid: u64,
        /// Key being written.
        key: Key,
        /// New value.
        val: Val,
        /// The write's Lamport stamp (LLC-max apply rule).
        lc: Lc,
    },
    /// Ack for `EsWrite`.
    EsAck {
        /// Echoed request id.
        rid: u64,
    },

    // ----------------------------------------------------------- ABD rounds
    /// Read-the-stamp: fetch the key's current LLC (ABD write round 1;
    /// also the slow-path relaxed write's first round, §4.3).
    RtsReq {
        /// Sender's request id.
        rid: u64,
        /// Key whose clock is requested.
        key: Key,
    },
    /// Reply to [`Msg::RtsReq`].
    RtsRep {
        /// Echoed request id.
        rid: u64,
        /// The key's current clock at the replying replica.
        lc: Lc,
    },

    /// ABD read round 1 (acquires and slow-path relaxed reads). When `acq`
    /// is set this probe performs the delinquency check for the sender's
    /// machine and the Set→Transient transition (§4.2.1), tagged by the
    /// acquire's unique `op` id.
    ReadReq {
        /// Sender's request id.
        rid: u64,
        /// Key being read.
        key: Key,
        /// `Some(op)` iff this is an acquire's round: probe delinquency.
        acq: Option<OpId>,
    },
    /// Reply to [`Msg::ReadReq`].
    ReadRep {
        /// Echoed request id.
        rid: u64,
        /// The key's value at the replying replica.
        val: Val,
        /// Its clock (the reader keeps the highest).
        lc: Lc,
        /// Delinquency verdict for the *sender's* machine (§4.2).
        delinquent: bool,
    },

    /// ABD value broadcast: release round 2, or an acquire's read
    /// write-back round. Applied under the LLC-max rule; always acked.
    /// Acquire write-backs carry `acq` so the second round also collects
    /// delinquency verdicts (§5 Lemma 5.3 case a-2 relies on the second
    /// round's quorum intersecting the DM-set quorum).
    WriteMsg {
        /// Sender's request id.
        rid: u64,
        /// Key being written.
        key: Key,
        /// Value to apply.
        val: Val,
        /// Stamp to apply it under (LLC-max rule).
        lc: Lc,
        /// `Some(op)` iff this is an acquire's write-back round.
        acq: Option<OpId>,
    },
    /// Ack for [`Msg::WriteMsg`].
    WriteAck {
        /// Echoed request id.
        rid: u64,
        /// Delinquency verdict for the sender's machine.
        delinquent: bool,
    },

    // ------------------------------------------------------------- barrier
    /// Slow-path release barrier (§4.2): "these machines are delinquent".
    /// The release executes only after a quorum acks this.
    SlowRelease {
        /// The owning release/RMW's request id.
        rid: u64,
        /// The DM-set: machines suspected to have missed barrier writes.
        dm: NodeSet,
    },
    /// Ack for [`Msg::SlowRelease`].
    SlowReleaseAck {
        /// Echoed request id.
        rid: u64,
    },
    /// Best-effort delinquency reset, sent *after* the acquirer incremented
    /// its machine epoch (§4.2.1, Lemma 5.6). Fire-and-forget.
    ResetBit {
        /// The acquire whose probe transitioned the bit to Transient.
        acq: OpId,
    },

    // --------------------------------------------------------------- Paxos
    /// Phase-1 propose for `(key, slot)` at `ballot`. Carries the
    /// proposer's op id (ring lookup for helped commands) and performs the
    /// acquire-side delinquency probe (RMWs have acquire semantics, §4.2).
    Propose {
        /// Proposer's request id.
        rid: u64,
        /// Key whose per-key Paxos instance this round belongs to.
        key: Key,
        /// Slot (index in the key's commit sequence) being proposed for.
        slot: u64,
        /// Proposal ballot (an LLC: unique, totally ordered).
        ballot: Lc,
        /// The proposer's RMW op id (committed-ring dedup lookup).
        op: OpId,
    },
    /// Reply to `Propose`. Echoes the ballot so replies from a superseded
    /// proposal round are recognized and discarded by the proposer.
    PromiseRep {
        /// Echoed request id.
        rid: u64,
        /// Echoed ballot (stale-round filter).
        ballot: Lc,
        /// Promise / nack / already-committed / lagging (see
        /// [`PromiseOutcome`]).
        outcome: PromiseOutcome,
        /// Delinquency verdict for the proposer's machine.
        delinquent: bool,
    },

    /// Phase-2 accept.
    Accept {
        /// Proposer's request id.
        rid: u64,
        /// Key of the per-key instance.
        key: Key,
        /// Slot being decided.
        slot: u64,
        /// Ballot this accept runs under.
        ballot: Lc,
        /// The command to accept (op id + value + result + commit stamp).
        cmd: Cmd,
    },
    /// Reply to `Accept` (ballot echoed, as in `PromiseRep`).
    AcceptRep {
        /// Echoed request id.
        rid: u64,
        /// Echoed ballot (stale-round filter).
        ballot: Lc,
        /// Whether the acceptor accepted.
        ok: bool,
        /// On a nack: the higher ballot the acceptor has promised.
        promised: Lc,
        /// Delinquency verdict for the proposer's machine.
        delinquent: bool,
    },

    /// Commit/learn broadcast (also used as catch-up fill for lagging
    /// replicas). `meta` is `Some((op, result))` for real commits — recorded
    /// in the key's committed ring — and `None` for fills. Idempotent.
    /// Acked: an RMW completes only once its commit is visible at a quorum
    /// of stores (the third of the paper's "three broadcast rounds", §3.4 —
    /// without it a linearizable read could miss a completed RMW).
    Commit {
        /// Committer's request id (`0` for fills: the ack is discarded).
        rid: u64,
        /// Key of the per-key instance.
        key: Key,
        /// Slot this commit decides (receivers advance past it).
        slot: u64,
        /// The committed value.
        val: Val,
        /// The decide-time commit stamp (see [`Cmd::lc`]).
        lc: Lc,
        /// `Some((op, result))` for real commits (ring entry); `None` for
        /// catch-up fills.
        meta: Option<(OpId, Val)>,
    },
    /// Ack for [`Msg::Commit`] (visibility quorum).
    CommitAck {
        /// Echoed request id.
        rid: u64,
    },
}

impl Msg {
    /// Short tag for trace/debug output.
    pub fn tag(&self) -> &'static str {
        match self {
            Msg::EsWrite { .. } => "es-write",
            Msg::EsAck { .. } => "es-ack",
            Msg::RtsReq { .. } => "rts-req",
            Msg::RtsRep { .. } => "rts-rep",
            Msg::ReadReq { .. } => "read-req",
            Msg::ReadRep { .. } => "read-rep",
            Msg::WriteMsg { .. } => "write",
            Msg::WriteAck { .. } => "write-ack",
            Msg::SlowRelease { .. } => "slow-release",
            Msg::SlowReleaseAck { .. } => "slow-release-ack",
            Msg::ResetBit { .. } => "reset-bit",
            Msg::Propose { .. } => "propose",
            Msg::PromiseRep { .. } => "promise",
            Msg::Accept { .. } => "accept",
            Msg::AcceptRep { .. } => "accept-rep",
            Msg::Commit { .. } => "commit",
            Msg::CommitAck { .. } => "commit-ack",
        }
    }

    /// Is this a reply message (routed by rid at the receiver)?
    pub fn is_reply(&self) -> bool {
        matches!(
            self,
            Msg::EsAck { .. }
                | Msg::RtsRep { .. }
                | Msg::ReadRep { .. }
                | Msg::WriteAck { .. }
                | Msg::SlowReleaseAck { .. }
                | Msg::PromiseRep { .. }
                | Msg::AcceptRep { .. }
                | Msg::CommitAck { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_common::{NodeId, SessionId};

    #[test]
    fn tags_cover_all_variants() {
        let op = OpId::new(SessionId::new(NodeId(0), 0), 0);
        let msgs = vec![
            Msg::EsWrite { rid: 0, key: Key(1), val: Val::EMPTY, lc: Lc::ZERO },
            Msg::EsAck { rid: 0 },
            Msg::RtsReq { rid: 0, key: Key(1) },
            Msg::RtsRep { rid: 0, lc: Lc::ZERO },
            Msg::ReadReq { rid: 0, key: Key(1), acq: Some(op) },
            Msg::ReadRep { rid: 0, val: Val::EMPTY, lc: Lc::ZERO, delinquent: false },
            Msg::WriteMsg { rid: 0, key: Key(1), val: Val::EMPTY, lc: Lc::ZERO, acq: None },
            Msg::WriteAck { rid: 0, delinquent: false },
            Msg::SlowRelease { rid: 0, dm: NodeSet::EMPTY },
            Msg::SlowReleaseAck { rid: 0 },
            Msg::ResetBit { acq: op },
            Msg::Propose { rid: 0, key: Key(1), slot: 0, ballot: Lc::ZERO, op },
            Msg::PromiseRep {
                rid: 0,
                ballot: Lc::ZERO,
                outcome: PromiseOutcome::Promised { accepted: None },
                delinquent: false,
            },
            Msg::Accept {
                rid: 0,
                key: Key(1),
                slot: 0,
                ballot: Lc::ZERO,
                cmd: Cmd { op, new_val: Val::EMPTY, result: Val::EMPTY, lc: Lc::ZERO },
            },
            Msg::AcceptRep { rid: 0, ballot: Lc::ZERO, ok: true, promised: Lc::ZERO, delinquent: false },
            Msg::Commit { rid: 0, key: Key(1), slot: 0, val: Val::EMPTY, lc: Lc::ZERO, meta: None },
            Msg::CommitAck { rid: 0 },
        ];
        let tags: std::collections::HashSet<_> = msgs.iter().map(|m| m.tag()).collect();
        assert_eq!(tags.len(), msgs.len(), "tags must be distinct");
    }

    #[test]
    fn reply_classification() {
        assert!(Msg::EsAck { rid: 1 }.is_reply());
        assert!(!Msg::EsWrite { rid: 1, key: Key(0), val: Val::EMPTY, lc: Lc::ZERO }.is_reply());
        assert!(!Msg::ResetBit { acq: OpId::new(SessionId::new(NodeId(0), 0), 0) }.is_reply());
        assert!(!Msg::Commit {
            rid: 0,
            key: Key(0),
            slot: 0,
            val: Val::EMPTY,
            lc: Lc::ZERO,
            meta: None
        }
        .is_reply());
        assert!(Msg::CommitAck { rid: 0 }.is_reply());
    }
}
