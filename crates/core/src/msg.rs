//! The wire protocol: every message exchanged by Kite workers.
//!
//! One enum carries all three protocols (ES §3.2, ABD §3.3, per-key Paxos
//! §3.4) plus the barrier-mechanism messages (§4.2): slow-release, reset-bit.
//! Batching works *across* protocols (§6.3) because envelopes are just
//! `Vec<Msg>`.
//!
//! Request/response pairs are matched by `rid`, a worker-local request id —
//! replies always return to the issuing worker because workers are peered
//! one-to-one across nodes (§6.3).
//!
//! # Wire layout: one cache line per message
//!
//! `size_of::<Msg>()` is pinned at **≤ 64 bytes** by a compile-time
//! assertion below. Every `Vec<Msg>` push, broadcast clone, channel hop and
//! dispatch memcpys a full `Msg`, so the hot variants must not pay for the
//! cold ones. The budget works out as follows:
//!
//! * [`Lc`] is a packed `u64` and [`Val`] is 33 bytes with alignment 1
//!   (see `kite-common`), so the hot value-carrying variants —
//!   [`Msg::EsWrite`], [`Msg::WriteMsg`], [`Msg::ReadRep`] — fit exactly:
//!   rid + key + clock + value + tag = 8+8+8+33+1 = 58 → 64 padded.
//! * The large, cold Paxos payloads are boxed:
//!   - [`Msg::Accept`] carries `Arc<Cmd>` (a `Cmd` is ~90 bytes: two
//!     values plus op id and stamp). `Arc` rather than `Box` so the N−1
//!     broadcast unicasts and every retransmission share one allocation —
//!     cloning the message is a refcount bump, not a deep copy.
//!   - [`Msg::Commit`] carries `Arc<CommitPayload>` for the same reason
//!     (the commit round broadcasts and retransmits from the same
//!     allocation).
//!   - [`PromiseOutcome`]'s two large variants are `Box`ed: they are
//!     unicast replies built once, and `Promised { accepted: None }` — the
//!     overwhelmingly common promise — allocates nothing.
//! * The anti-entropy digest plane is `Arc`-boxed end to end:
//!   [`Msg::Digest`] and [`Msg::MerkleSummary`] carry whole key-range
//!   advertisements (far over a cache line) and are broadcast, so the
//!   N−1 unicasts share one allocation; [`Msg::MerkleReq`]'s bucket list
//!   rides an `Arc<[u32]>` fat pointer for the same reason.
//! * The acquire-tagged ABD write-back rides its own boxed variant
//!   ([`Msg::WriteAcq`]): the acquire op id does not fit next to an inline
//!   value, and tagged write-backs only occur when round 1 found no value
//!   quorum. Untagged write-backs (releases, slow-path rounds) use the flat
//!   [`Msg::WriteMsg`].
//! * Plain acks carry nothing but the echoed rid. [`Msg::Ack`] is the
//!   single flavour; [`Msg::AckBatch`] coalesces every ack generated while
//!   draining one inbound envelope into one message (see
//!   `Worker::flush_acks`). The receiver resolves each rid through the
//!   in-flight slab, whose entry kind recovers what was acked — which is
//!   why one neutral ack type can answer ES writes, value broadcasts and
//!   commit rounds alike. [`Msg::SlowReleaseAck`] stays separate: a
//!   release/RMW's slow-release barrier reuses the *same* rid as its value
//!   or commit round, so a typeless ack would be ambiguous.
//! * [`Msg::WriteAck`] survives only for the delinquency verdict: a
//!   replica that judged the sender's machine delinquent answers a
//!   [`Msg::WriteAcq`] individually; verdict-free acks coalesce.

use std::sync::Arc;

use kite_common::{Key, Lc, NodeSet, OpId, Val};

/// A Paxos command: everything an acceptor stores for an accepted RMW and a
/// committer needs to finish it (§3.4; DESIGN.md §3.4 for the dedup scheme).
///
/// ~90 bytes — always behind an `Arc`/`Box` on the wire (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cmd {
    /// Owning operation (used for helping + exactly-once completion).
    pub op: OpId,
    /// The value written if this command commits.
    pub new_val: Val,
    /// The RMW's return value (base value observed), carried so helpers can
    /// complete the owner's op with the right result.
    pub result: Val,
    /// The clock the committed value will be stamped with, fixed when the
    /// command is created and carried through accepts and helping, so that
    /// *every* committer of a slot broadcasts the same `(value, lc)` pair.
    /// If the owner and a helper each stamped their own clock instead, a
    /// successor slot's commit built on the lower-clock branch could lose
    /// the `apply_max` race at a replica holding the higher stamp of an
    /// *older* slot's value — that replica would advance its slot with a
    /// stale store and the next RMW would decide from a stale base (lost
    /// FAA increment; caught by `tests/chaos.rs` seed 8).
    pub lc: Lc,
}

/// The payload of a commit/learn broadcast, shared behind an `Arc` by the
/// broadcast unicasts and retransmissions.
#[derive(Clone, Debug)]
pub struct CommitPayload {
    /// Slot this commit decides (receivers advance past it).
    pub slot: u64,
    /// The committed value.
    pub val: Val,
    /// The decide-time commit stamp (see [`Cmd::lc`]).
    pub lc: Lc,
    /// `Some((op, result))` for real commits (ring entry); `None` for the
    /// visibility round a proposer runs over an `AlreadyCommitted` catch-up
    /// (the value summarizes a decided prefix, no single ring entry).
    pub meta: Option<(OpId, Val)>,
}

/// Catch-up payload of [`PromiseOutcome::AlreadyCommitted`].
#[derive(Clone, Debug)]
pub struct CatchUp {
    /// The acceptor's current (next undecided) slot.
    pub slot: u64,
    /// The key's current value at the acceptor (summarizes the decided
    /// prefix).
    pub cur_val: Val,
    /// Its clock.
    pub cur_lc: Lc,
    /// The proposer's own command's recorded result, if it was helped
    /// to commit.
    pub done: Option<Val>,
    /// The acceptor's committed ring for the key — dedup evidence that
    /// must travel with any slot advancement (see [`Repair::ring`]).
    pub ring: Vec<kite_kvs::RmwCommit>,
}

/// Payload of one repaired key ([`Msg::RepairVal`]), boxed: anti-entropy
/// pull answers, digest-diff pushes, completion-time fills and the
/// Paxos-lagging catch-up all ride this.
#[derive(Clone, Debug)]
pub struct Repair {
    /// Key being repaired.
    pub key: Key,
    /// The sender's current value for it.
    pub val: Val,
    /// Its stamp (receiver applies under LLC-max: stale repairs no-op).
    pub lc: Lc,
    /// The sender's next undecided Paxos slot for the key (0 = the key
    /// never carried an RMW); the receiver advances past `slot - 1`.
    pub slot: u64,
    /// The sender's committed ring for the key. **Slot advancement must
    /// always travel with its dedup evidence**: a replica whose slot (and
    /// value) advance ring-lessly can answer a plain promise for an
    /// operation that in fact committed, letting that operation's own
    /// strong CAS fail its comparison against its *own* committed value —
    /// the rare residual hang mode of `threaded_mutex_exact_under_message
    /// _loss`. The receiver merges these entries *before* advancing.
    pub ring: Vec<kite_kvs::RmwCommit>,
}

/// Payload of an anti-entropy digest message ([`Msg::Digest`]): the
/// sender's `(key, packed Lc)` pairs for one contiguous range of its store
/// slots. `Arc`-shared — a digest easily exceeds the cache-line budget and
/// is broadcast to every peer (so any single fresh replica can repair a
/// stale one within one sweep cycle); the N−1 unicast clones are refcount
/// bumps.
#[derive(Clone, Debug)]
pub struct DigestChunk {
    /// `(key, clock)` for every live slot in the swept range. Slot indices
    /// are replica-local, so only the keys travel; the receiver diffs each
    /// entry against its own store by key.
    pub entries: Vec<(Key, Lc)>,
}

/// Payload of a Merkle-range anti-entropy summary ([`Msg::MerkleSummary`]):
/// a run of range hashes at one level of the store's hash lattice.
/// `Arc`-shared — the sweep broadcasts the top-level summary to every peer
/// (drill-down child summaries are unicast, but share the type).
///
/// Geometry is implied, not carried: every replica derives the same leaf
/// count from the shared `ClusterConfig` (`keys` rounds to the same store
/// capacity, `merkle_leaf_span`/`merkle_fanout` are cluster-wide), so
/// `(level, start)` names the same leaf range on both sides. A summary
/// whose level exceeds the local lattice depth is dropped as malformed.
#[derive(Clone, Debug)]
pub struct MerkleSummary {
    /// Lattice level: 0 = leaves; level `l` buckets cover `fanout^l`
    /// leaves each.
    pub level: u8,
    /// Index of the first bucket covered, at `level`.
    pub start: u32,
    /// One fold per consecutive bucket from `start`.
    pub hashes: Vec<u64>,
}

/// Payload of an acquire-tagged ABD write-back round ([`Msg::WriteAcq`]),
/// `Arc`-shared by the broadcast unicasts and retransmissions.
#[derive(Clone, Debug)]
pub struct WriteBack {
    /// Key being written.
    pub key: Key,
    /// Value to apply.
    pub val: Val,
    /// Stamp to apply it under (LLC-max rule).
    pub lc: Lc,
    /// The acquire whose round this is: the replica probes delinquency for
    /// the sender's machine (§5 Lemma 5.3 case a-2 relies on the second
    /// round's quorum intersecting the DM-set quorum).
    pub acq: OpId,
}

/// Acceptor's answer to a `Propose`.
#[derive(Clone, Debug)]
pub enum PromiseOutcome {
    /// Promised: will not accept lower ballots for this slot. Carries the
    /// previously accepted command, if any (the proposer must adopt the
    /// highest-ballot one — classic Paxos phase 1). Boxed: the common
    /// promise carries nothing.
    Promised {
        /// `(ballot, cmd)` previously accepted for this slot.
        accepted: Option<Box<(Lc, Cmd)>>,
    },
    /// A higher ballot was already promised.
    NackBallot {
        /// The ballot the acceptor has promised instead.
        promised: Lc,
    },
    /// The acceptor has already moved past the proposer's slot: the slot is
    /// decided. Boxed catch-up payload (two values).
    AlreadyCommitted(Box<CatchUp>),
    /// The acceptor is *behind* the proposer's slot (missed a commit); the
    /// proposer answers with a `Commit` fill.
    Lagging {
        /// The acceptor's (stale) slot.
        slot: u64,
    },
}

/// Protocol messages. `rid` is the sender's request id; replies echo it.
/// Layout budget: see the module docs — and keep the compile-time size
/// assertion below green when adding variants.
#[derive(Clone, Debug)]
pub enum Msg {
    // ------------------------------------------------------------------ ES
    /// Relaxed-write propagation (§3.2): apply iff `lc` beats the stored
    /// clock; always acknowledged (the release barrier counts acks).
    EsWrite {
        /// Sender's request id; the ack echoes it.
        rid: u64,
        /// Key being written.
        key: Key,
        /// New value.
        val: Val,
        /// The write's Lamport stamp (LLC-max apply rule).
        lc: Lc,
    },

    // ---------------------------------------------------------- plain acks
    /// A single plain ack: answers an [`Msg::EsWrite`], an untagged
    /// [`Msg::WriteMsg`], a non-delinquent [`Msg::WriteAcq`] or an
    /// [`Msg::Commit`] — the receiver's in-flight entry kind disambiguates.
    Ack {
        /// Echoed request id.
        rid: u64,
    },
    /// Every plain ack generated while draining one inbound envelope,
    /// coalesced into a single message back to its source. Stale rids
    /// inside the batch are dropped individually by the receiver's
    /// generation check.
    AckBatch {
        /// Echoed request ids (buffer recycled through the workers' ack
        /// pools, like envelope buffers).
        rids: Vec<u64>,
    },

    // ----------------------------------------------------------- ABD rounds
    /// Read-the-stamp: fetch the key's current LLC (ABD write round 1;
    /// also the slow-path relaxed write's first round, §4.3).
    RtsReq {
        /// Sender's request id.
        rid: u64,
        /// Key whose clock is requested.
        key: Key,
    },
    /// Reply to [`Msg::RtsReq`].
    RtsRep {
        /// Echoed request id.
        rid: u64,
        /// The key's current clock at the replying replica.
        lc: Lc,
    },

    /// ABD read round 1 (acquires and slow-path relaxed reads). When `acq`
    /// is set this probe performs the delinquency check for the sender's
    /// machine and the Set→Transient transition (§4.2.1), tagged by the
    /// acquire's unique `op` id.
    ReadReq {
        /// Sender's request id.
        rid: u64,
        /// Key being read.
        key: Key,
        /// `Some(op)` iff this is an acquire's round: probe delinquency.
        acq: Option<OpId>,
    },
    /// Reply to [`Msg::ReadReq`].
    ReadRep {
        /// Echoed request id.
        rid: u64,
        /// The key's value at the replying replica.
        val: Val,
        /// Its clock (the reader keeps the highest).
        lc: Lc,
        /// Delinquency verdict for the *sender's* machine (§4.2).
        delinquent: bool,
    },

    /// ABD value broadcast without an acquire tag: release round 2,
    /// slow-path rounds, and acquire write-backs that need no probe.
    /// Applied under the LLC-max rule; answered with a plain ack.
    WriteMsg {
        /// Sender's request id.
        rid: u64,
        /// Key being written.
        key: Key,
        /// Value to apply.
        val: Val,
        /// Stamp to apply it under (LLC-max rule).
        lc: Lc,
    },
    /// Acquire-tagged ABD write-back (§3.3 + §4.2): like [`Msg::WriteMsg`]
    /// but the replica also probes delinquency for the sender under the
    /// acquire's op id. Boxed payload — see the module docs.
    WriteAcq {
        /// Sender's request id.
        rid: u64,
        /// Key, value, stamp and acquire tag (`Arc`-shared across the
        /// broadcast).
        wb: Arc<WriteBack>,
    },
    /// Individual ack for a [`Msg::WriteAcq`] whose probe judged the
    /// sender's machine delinquent. Non-delinquent verdicts ride the plain
    /// ack path.
    WriteAck {
        /// Echoed request id.
        rid: u64,
        /// Delinquency verdict for the sender's machine.
        delinquent: bool,
    },

    // ------------------------------------------------------------- barrier
    /// Slow-path release barrier (§4.2): "these machines are delinquent".
    /// The release executes only after a quorum acks this.
    SlowRelease {
        /// The owning release/RMW's request id.
        rid: u64,
        /// The DM-set: machines suspected to have missed barrier writes.
        dm: NodeSet,
    },
    /// Ack for [`Msg::SlowRelease`]. Never coalesced: the barrier reuses
    /// its owning release/RMW's rid, so this ack must stay distinguishable
    /// from that rid's value/commit-round acks.
    SlowReleaseAck {
        /// Echoed request id.
        rid: u64,
    },
    /// Best-effort delinquency reset, sent *after* the acquirer incremented
    /// its machine epoch (§4.2.1, Lemma 5.6). Fire-and-forget.
    ResetBit {
        /// The acquire whose probe transitioned the bit to Transient.
        acq: OpId,
    },

    // --------------------------------------------------------------- Paxos
    /// Phase-1 propose for `(key, slot)` at `ballot`. Carries the
    /// proposer's op id (ring lookup for helped commands) and performs the
    /// acquire-side delinquency probe (RMWs have acquire semantics, §4.2).
    Propose {
        /// Proposer's request id.
        rid: u64,
        /// Key whose per-key Paxos instance this round belongs to.
        key: Key,
        /// Slot (index in the key's commit sequence) being proposed for.
        slot: u64,
        /// Proposal ballot (an LLC: unique, totally ordered).
        ballot: Lc,
        /// The proposer's RMW op id (committed-ring dedup lookup).
        op: OpId,
    },
    /// Reply to `Propose`. Echoes the ballot so replies from a superseded
    /// proposal round are recognized and discarded by the proposer.
    PromiseRep {
        /// Echoed request id.
        rid: u64,
        /// Echoed ballot (stale-round filter).
        ballot: Lc,
        /// Promise / nack / already-committed / lagging (see
        /// [`PromiseOutcome`]).
        outcome: PromiseOutcome,
        /// Delinquency verdict for the proposer's machine.
        delinquent: bool,
    },

    /// Phase-2 accept. The command is `Arc`-shared across the broadcast
    /// unicasts and retransmissions (one allocation per round).
    Accept {
        /// Proposer's request id.
        rid: u64,
        /// Key of the per-key instance.
        key: Key,
        /// Slot being decided.
        slot: u64,
        /// Ballot this accept runs under.
        ballot: Lc,
        /// The command to accept (op id + value + result + commit stamp).
        cmd: Arc<Cmd>,
    },
    /// Reply to `Accept` (ballot echoed, as in `PromiseRep`).
    AcceptRep {
        /// Echoed request id.
        rid: u64,
        /// Echoed ballot (stale-round filter).
        ballot: Lc,
        /// Whether the acceptor accepted.
        ok: bool,
        /// On a nack: the higher ballot the acceptor has promised.
        promised: Lc,
        /// Delinquency verdict for the proposer's machine.
        delinquent: bool,
    },

    /// Commit/learn broadcast. Idempotent. Acked (plain): an RMW completes
    /// only once its commit is visible at a quorum of stores (the third of
    /// the paper's "three broadcast rounds", §3.4 — without it a
    /// linearizable read could miss a completed RMW). Catch-up for replicas
    /// *outside* the round rides the anti-entropy repair path
    /// ([`Msg::RepairVal`]) instead of untracked rid-0 commits.
    Commit {
        /// Committer's request id.
        rid: u64,
        /// Key of the per-key instance.
        key: Key,
        /// Slot, value, stamp and ring metadata (`Arc`-shared across the
        /// broadcast and retransmissions).
        c: Arc<CommitPayload>,
    },

    // ------------------------------------------------- anti-entropy repair
    /// Periodic anti-entropy digest: the sender's `(key, Lc)` pairs for one
    /// range of its store slots, broadcast to every peer. Unsolicited and
    /// unacked — liveness comes from the next sweep, not from
    /// retransmission. The receiver pulls keys where the sender is fresher
    /// ([`Msg::RepairReq`]) and pushes back keys where the *sender* is
    /// stale ([`Msg::RepairVal`]). An **empty** digest is the post-wake
    /// resync ping (ordinary sweeps skip empty ranges): it re-arms the
    /// receiver's sweep so a full cycle of its digests reaches a replica
    /// that may hold no slot for the keys it slept through.
    Digest {
        /// The digest body (`Arc`: shared by the broadcast unicasts).
        d: Arc<DigestChunk>,
    },
    /// Merkle-mode anti-entropy summary: a run of range hashes folded from
    /// the sender's leaf lattice. The sweep broadcasts the **top-level**
    /// summary (whole store in O(fanout) hashes) once per interval;
    /// drill-down answers to a [`Msg::MerkleReq`] carry child-level
    /// summaries. Receivers compare each hash against their own fold of
    /// the same range and answer mismatches with a [`Msg::MerkleReq`] —
    /// matching ranges generate **no** traffic, which is the whole point.
    /// Unsolicited and unacked, like [`Msg::Digest`].
    MerkleSummary {
        /// The summary body (`Arc`: shared by the broadcast unicasts).
        s: Arc<MerkleSummary>,
    },
    /// Merkle drill-down: "your summary's buckets `buckets` (at `level`)
    /// hash differently here — show me more". The receiver answers each
    /// bucket with its child-level [`Msg::MerkleSummary`], or — at level
    /// 0 — with a flat [`Msg::Digest`] of the leaf's `(key, Lc)` entries,
    /// bottoming out in the per-key diff/pull/push machinery unchanged.
    /// Fire-and-forget: a lost request is re-triggered by the next sweep's
    /// summary.
    MerkleReq {
        /// Lattice level the buckets index into (0 = leaves).
        level: u8,
        /// Mismatched bucket indices at that level.
        buckets: Arc<[u32]>,
    },
    /// Repair pull: "send me your current values for these keys" —
    /// answered with one [`Msg::RepairVal`] per key. Fire-and-forget.
    RepairReq {
        /// Keys the digest showed the requester to be behind on.
        keys: Box<[Key]>,
    },
    /// One repaired key: applied under the LLC-max rule, never acked, and
    /// never touches the key's epoch (an out-of-epoch key still needs a
    /// §4.2 quorum read — one peer's value is not a quorum). Also carries
    /// the sender's next undecided Paxos slot — with the committed-ring
    /// evidence backing it (see [`Repair`]) — so a replica that slept
    /// through a key's last RMW commit catches its consensus state up too.
    /// Sent as pull answers, digest-diff pushes, the commit round's
    /// completion-time fill, and the Paxos-lagging catch-up (all triggers
    /// of the same mechanism).
    RepairVal {
        /// The boxed payload (value + slot + ring: well over a cache line).
        r: Box<Repair>,
    },
}

// The tentpole invariant: one cache line per message. Everything bigger
// must go behind a Box/Arc (see the module docs for the budget).
const _: () = assert!(std::mem::size_of::<Msg>() <= 64);

impl Msg {
    /// Short tag for trace/debug output.
    pub fn tag(&self) -> &'static str {
        match self {
            Msg::EsWrite { .. } => "es-write",
            Msg::Ack { .. } => "ack",
            Msg::AckBatch { .. } => "ack-batch",
            Msg::RtsReq { .. } => "rts-req",
            Msg::RtsRep { .. } => "rts-rep",
            Msg::ReadReq { .. } => "read-req",
            Msg::ReadRep { .. } => "read-rep",
            Msg::WriteMsg { .. } => "write",
            Msg::WriteAcq { .. } => "write-acq",
            Msg::WriteAck { .. } => "write-ack",
            Msg::SlowRelease { .. } => "slow-release",
            Msg::SlowReleaseAck { .. } => "slow-release-ack",
            Msg::ResetBit { .. } => "reset-bit",
            Msg::Propose { .. } => "propose",
            Msg::PromiseRep { .. } => "promise",
            Msg::Accept { .. } => "accept",
            Msg::AcceptRep { .. } => "accept-rep",
            Msg::Commit { .. } => "commit",
            Msg::Digest { .. } => "digest",
            Msg::MerkleSummary { .. } => "merkle-summary",
            Msg::MerkleReq { .. } => "merkle-req",
            Msg::RepairReq { .. } => "repair-req",
            Msg::RepairVal { .. } => "repair-val",
        }
    }

    /// Is this a reply message (routed by rid at the receiver)?
    pub fn is_reply(&self) -> bool {
        matches!(
            self,
            Msg::Ack { .. }
                | Msg::AckBatch { .. }
                | Msg::RtsRep { .. }
                | Msg::ReadRep { .. }
                | Msg::WriteAck { .. }
                | Msg::SlowReleaseAck { .. }
                | Msg::PromiseRep { .. }
                | Msg::AcceptRep { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_common::{NodeId, SessionId};

    #[test]
    fn tags_cover_all_variants() {
        let op = OpId::new(SessionId::new(NodeId(0), 0), 0);
        let msgs = vec![
            Msg::EsWrite { rid: 0, key: Key(1), val: Val::EMPTY, lc: Lc::ZERO },
            Msg::Ack { rid: 0 },
            Msg::AckBatch { rids: vec![1, 2] },
            Msg::RtsReq { rid: 0, key: Key(1) },
            Msg::RtsRep { rid: 0, lc: Lc::ZERO },
            Msg::ReadReq { rid: 0, key: Key(1), acq: Some(op) },
            Msg::ReadRep { rid: 0, val: Val::EMPTY, lc: Lc::ZERO, delinquent: false },
            Msg::WriteMsg { rid: 0, key: Key(1), val: Val::EMPTY, lc: Lc::ZERO },
            Msg::WriteAcq {
                rid: 0,
                wb: Arc::new(WriteBack { key: Key(1), val: Val::EMPTY, lc: Lc::ZERO, acq: op }),
            },
            Msg::WriteAck { rid: 0, delinquent: true },
            Msg::SlowRelease { rid: 0, dm: NodeSet::EMPTY },
            Msg::SlowReleaseAck { rid: 0 },
            Msg::ResetBit { acq: op },
            Msg::Propose { rid: 0, key: Key(1), slot: 0, ballot: Lc::ZERO, op },
            Msg::PromiseRep {
                rid: 0,
                ballot: Lc::ZERO,
                outcome: PromiseOutcome::Promised { accepted: None },
                delinquent: false,
            },
            Msg::Accept {
                rid: 0,
                key: Key(1),
                slot: 0,
                ballot: Lc::ZERO,
                cmd: Arc::new(Cmd { op, new_val: Val::EMPTY, result: Val::EMPTY, lc: Lc::ZERO }),
            },
            Msg::AcceptRep { rid: 0, ballot: Lc::ZERO, ok: true, promised: Lc::ZERO, delinquent: false },
            Msg::Commit {
                rid: 0,
                key: Key(1),
                c: Arc::new(CommitPayload { slot: 0, val: Val::EMPTY, lc: Lc::ZERO, meta: None }),
            },
            Msg::Digest { d: Arc::new(DigestChunk { entries: vec![(Key(1), Lc::ZERO)] }) },
            Msg::MerkleSummary {
                s: Arc::new(MerkleSummary { level: 1, start: 0, hashes: vec![7, 8] }),
            },
            Msg::MerkleReq { level: 1, buckets: vec![0u32, 3].into() },
            Msg::RepairReq { keys: vec![Key(1)].into_boxed_slice() },
            Msg::RepairVal {
                r: Box::new(Repair { key: Key(1), val: Val::EMPTY, lc: Lc::ZERO, slot: 0, ring: vec![] }),
            },
        ];
        let tags: std::collections::HashSet<_> = msgs.iter().map(|m| m.tag()).collect();
        assert_eq!(tags.len(), msgs.len(), "tags must be distinct");
    }

    #[test]
    fn reply_classification() {
        assert!(Msg::Ack { rid: 1 }.is_reply());
        assert!(Msg::AckBatch { rids: vec![1] }.is_reply());
        assert!(!Msg::EsWrite { rid: 1, key: Key(0), val: Val::EMPTY, lc: Lc::ZERO }.is_reply());
        assert!(!Msg::ResetBit { acq: OpId::new(SessionId::new(NodeId(0), 0), 0) }.is_reply());
        assert!(!Msg::Commit {
            rid: 0,
            key: Key(0),
            c: Arc::new(CommitPayload { slot: 0, val: Val::EMPTY, lc: Lc::ZERO, meta: None }),
        }
        .is_reply());
        // Anti-entropy traffic is rid-less and never routed as a reply.
        assert!(!Msg::Digest { d: Arc::new(DigestChunk { entries: vec![] }) }.is_reply());
        assert!(!Msg::MerkleSummary {
            s: Arc::new(MerkleSummary { level: 0, start: 0, hashes: vec![] })
        }
        .is_reply());
        assert!(!Msg::MerkleReq { level: 0, buckets: Vec::new().into() }.is_reply());
        assert!(!Msg::RepairReq { keys: Box::new([]) }.is_reply());
        assert!(!Msg::RepairVal {
            r: Box::new(Repair { key: Key(0), val: Val::EMPTY, lc: Lc::ZERO, slot: 0, ring: vec![] })
        }
        .is_reply());
    }

    #[test]
    fn msg_fits_one_cache_line() {
        // The const assertion pins ≤ 64; this records the exact numbers so
        // a layout regression is visible in test output (run with
        // `--nocapture` for the full report).
        use std::mem::{align_of, size_of};
        let report = [
            ("Msg", size_of::<Msg>(), align_of::<Msg>()),
            ("PromiseOutcome", size_of::<PromiseOutcome>(), align_of::<PromiseOutcome>()),
            ("Val", size_of::<Val>(), align_of::<Val>()),
            ("Lc", size_of::<Lc>(), align_of::<Lc>()),
            ("Cmd", size_of::<Cmd>(), align_of::<Cmd>()),
            ("CommitPayload", size_of::<CommitPayload>(), align_of::<CommitPayload>()),
            (
                "Envelope<Msg>",
                size_of::<kite_simnet::Envelope<Msg>>(),
                align_of::<kite_simnet::Envelope<Msg>>(),
            ),
        ];
        for (name, size, align) in report {
            println!("{name:<16} size {size:>3}  align {align}");
        }
        assert!(size_of::<Msg>() <= 64, "Msg = {}", size_of::<Msg>());
        assert!(size_of::<PromiseOutcome>() <= 24);
        assert_eq!(size_of::<Val>(), 33);
        assert_eq!(size_of::<Lc>(), 8);
        // An envelope is one line of header + the batch Vec: src + Vec.
        assert!(size_of::<kite_simnet::Envelope<Msg>>() <= 32);
    }

    #[test]
    fn arc_payload_clone_is_shallow() {
        let op = OpId::new(SessionId::new(NodeId(0), 0), 0);
        let m = Msg::Accept {
            rid: 1,
            key: Key(2),
            slot: 3,
            ballot: Lc::ZERO,
            cmd: Arc::new(Cmd {
                op,
                new_val: Val::from_bytes(&[9u8; 32]),
                result: Val::EMPTY,
                lc: Lc::ZERO,
            }),
        };
        let m2 = m.clone();
        let (Msg::Accept { cmd: a, .. }, Msg::Accept { cmd: b, .. }) = (&m, &m2) else {
            unreachable!()
        };
        assert!(Arc::ptr_eq(a, b), "broadcast clones must share the boxed payload");
    }
}
