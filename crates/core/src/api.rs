//! The Kite client API (§6.1): relaxed reads/writes, release-writes,
//! acquire-reads, Fetch-&-Add, and weak/strong Compare-&-Swap.

use kite_common::{Key, OpId, Val};

/// One operation submitted by a client session. The RC ordering each kind
/// obeys is Table 1 of the paper:
///
/// | kind          | ordering                 | protocol     |
/// |---------------|--------------------------|--------------|
/// | `Read`/`Write`| none (relaxed)           | Eventual Store |
/// | `Release`     | all ⇒ release            | ABD          |
/// | `Acquire`     | acquire ⇒ all            | ABD          |
/// | `Faa`/`Cas*`  | all ⇒ RMW ⇒ all          | per-key Paxos |
#[derive(Clone, Debug)]
pub enum Op {
    /// Relaxed read.
    Read {
        /// Key to read.
        key: Key,
    },
    /// Relaxed write.
    Write {
        /// Key to write.
        key: Key,
        /// New value.
        val: Val,
    },
    /// Release write: one-way barrier for everything earlier in the session.
    Release {
        /// Key to write.
        key: Key,
        /// New value.
        val: Val,
    },
    /// Acquire read: one-way barrier for everything later in the session.
    Acquire {
        /// Key to read.
        key: Key,
    },
    /// Fetch-and-add on a little-endian `u64` value; returns the old value.
    Faa {
        /// Key holding the counter.
        key: Key,
        /// The addend.
        delta: u64,
    },
    /// Compare-and-swap, weak flavor (§6.1): if the comparison fails
    /// *locally*, the operation completes locally with failure — no network
    /// round. Used by the lock-free data structures to absorb conflict
    /// retries cheaply (§8.3).
    CasWeak {
        /// Key to swap.
        key: Key,
        /// Expected current value.
        expect: Val,
        /// Replacement value.
        new: Val,
    },
    /// Compare-and-swap, strong flavor: always checks remote replicas.
    CasStrong {
        /// Key to swap.
        key: Key,
        /// Expected current value.
        expect: Val,
        /// Replacement value.
        new: Val,
    },
}

impl Op {
    /// The key the operation targets.
    pub fn key(&self) -> Key {
        match self {
            Op::Read { key }
            | Op::Write { key, .. }
            | Op::Release { key, .. }
            | Op::Acquire { key }
            | Op::Faa { key, .. }
            | Op::CasWeak { key, .. }
            | Op::CasStrong { key, .. } => *key,
        }
    }

    /// Does this op have release-barrier semantics (wait for prior writes)?
    pub fn is_release_like(&self) -> bool {
        matches!(
            self,
            Op::Release { .. } | Op::Faa { .. } | Op::CasWeak { .. } | Op::CasStrong { .. }
        )
    }

    /// Does this op have acquire-barrier semantics (delinquency probe)?
    pub fn is_acquire_like(&self) -> bool {
        matches!(
            self,
            Op::Acquire { .. } | Op::Faa { .. } | Op::CasWeak { .. } | Op::CasStrong { .. }
        )
    }

    /// Is this an RMW (consensus-backed)?
    pub fn is_rmw(&self) -> bool {
        matches!(self, Op::Faa { .. } | Op::CasWeak { .. } | Op::CasStrong { .. })
    }
}

/// Result of a completed operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpOutput {
    /// Write or release completed.
    Done,
    /// Read or acquire: the observed value.
    Value(Val),
    /// FAA: the previous value.
    Faa(u64),
    /// CAS: whether it swapped, plus the value observed.
    Cas {
        /// Whether the swap happened.
        ok: bool,
        /// The value the comparison ran against.
        observed: Val,
    },
}

impl OpOutput {
    /// The observed value for read-like outputs.
    pub fn value(&self) -> Option<&Val> {
        match self {
            OpOutput::Value(v) => Some(v),
            OpOutput::Cas { observed, .. } => Some(observed),
            _ => None,
        }
    }
}

/// A completed operation, as delivered to completion hooks and client
/// handles. Timestamps are scheduler-clock nanoseconds.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The completed operation's id.
    pub op_id: OpId,
    /// The operation as submitted.
    pub op: Op,
    /// Its result.
    pub output: OpOutput,
    /// Invocation timestamp.
    pub invoked_at: u64,
    /// Completion timestamp.
    pub completed_at: u64,
}

/// Callback invoked by workers when an operation completes. Used by the
/// history recorders in tests and by the measurement harnesses.
pub type CompletionHook = std::sync::Arc<dyn Fn(&Completion) + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let k = Key(1);
        assert!(!Op::Read { key: k }.is_release_like());
        assert!(!Op::Write { key: k, val: Val::EMPTY }.is_release_like());
        assert!(Op::Release { key: k, val: Val::EMPTY }.is_release_like());
        assert!(!Op::Release { key: k, val: Val::EMPTY }.is_acquire_like());
        assert!(Op::Acquire { key: k }.is_acquire_like());
        assert!(!Op::Acquire { key: k }.is_rmw());
        for rmw in [
            Op::Faa { key: k, delta: 1 },
            Op::CasWeak { key: k, expect: Val::EMPTY, new: Val::EMPTY },
            Op::CasStrong { key: k, expect: Val::EMPTY, new: Val::EMPTY },
        ] {
            assert!(rmw.is_rmw() && rmw.is_release_like() && rmw.is_acquire_like());
        }
    }

    #[test]
    fn key_extraction() {
        assert_eq!(Op::Faa { key: Key(9), delta: 1 }.key(), Key(9));
        assert_eq!(Op::Read { key: Key(3) }.key(), Key(3));
    }

    #[test]
    fn output_value() {
        assert_eq!(OpOutput::Value(Val::from_u64(5)).value().unwrap().as_u64(), 5);
        assert_eq!(OpOutput::Done.value(), None);
        assert!(OpOutput::Cas { ok: false, observed: Val::from_u64(2) }.value().is_some());
    }
}
