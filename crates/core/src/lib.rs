//! # kite
//!
//! A Rust reproduction of **Kite: Efficient and Available Release
//! Consistency for the Datacenter** (Gavrielatos, Katsarakis, Nagarajan,
//! Grot, Joshi — PPoPP 2020).
//!
//! Kite is a replicated, in-memory key-value store offering **RCLin** — a
//! linearizable variant of Release Consistency — in an asynchronous setting
//! with crash-stop and network failures. It maps the RC API onto three
//! protocols (Table 1 of the paper):
//!
//! * relaxed reads/writes → **Eventual Store** (per-key SC, local reads);
//! * releases/acquires → **multi-writer ABD** (linearizable reads/writes);
//! * RMWs → **per-key leaderless Paxos** (consensus).
//!
//! and enforces the RC barrier semantics with a **fast/slow-path
//! mechanism** (§4): releases wait for *all* acks in the fast path; under
//! asynchrony they publish a delinquency set to a quorum, acquires discover
//! their delinquency through quorum intersection, invalidate their whole
//! local store by bumping a machine epoch-id, and refresh keys lazily
//! through quorum reads.
//!
//! ## Crate layout
//!
//! * [`api`] — the client-facing operation types (Table 1 + §6.1).
//! * [`msg`] — the wire protocol.
//! * [`worker`], [`replica`], [`initiator`] — the sans-io protocol engine.
//! * [`antientropy`] — background digest/repair convergence (replicas
//!   converge on every key's last write without per-op fills).
//! * [`session`], [`inflight`] — program-order and in-flight bookkeeping.
//! * [`delinquency`], [`nodestate`] — the barrier mechanism's node state.
//! * [`wire`] — the binary codec carrying [`msg::Msg`] batches (and remote
//!   client sessions) across real sockets (see the `kite-net` crate).
//! * [`cluster`] — a threaded in-process deployment with a blocking client
//!   API ([`Cluster`], [`SessionHandle`]).
//! * [`simcluster`] — the same system on the deterministic simulator, for
//!   reproducible correctness tests and the benchmark harness.
//!
//! ## Quick start
//!
//! ```
//! use kite::{Cluster, ProtocolMode};
//! use kite_common::{ClusterConfig, Key};
//!
//! let cfg = ClusterConfig::small().keys(128);
//! let cluster = Cluster::launch(cfg, ProtocolMode::Kite).unwrap();
//! let mut producer = cluster.session(kite_common::NodeId(0), 0).unwrap();
//! let mut consumer = cluster.session(kite_common::NodeId(1), 0).unwrap();
//!
//! producer.write(Key(1), b"payload").unwrap();
//! producer.release(Key(0), b"ready").unwrap();
//!
//! // Spin until the consumer acquires the flag, then the payload is
//! // guaranteed visible (RC barrier invariant).
//! loop {
//!     let flag = consumer.acquire(Key(0)).unwrap();
//!     if flag.as_bytes() == b"ready" {
//!         break;
//!     }
//! }
//! assert_eq!(consumer.read(Key(1)).unwrap().as_bytes(), b"payload");
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

pub mod antientropy;
pub mod api;
pub mod cluster;
pub mod delinquency;
pub mod inflight;
pub mod initiator;
pub mod msg;
pub mod nodestate;
pub mod replica;
pub mod session;
pub mod simcluster;
pub mod wire;
pub mod worker;

pub use api::{Completion, CompletionHook, Op, OpOutput};
pub use cluster::{Cluster, SessionHandle};
pub use msg::Msg;
pub use nodestate::{NodeShared, OpLatency};
pub use session::{ClientSm, ProtocolMode, Session, SessionDriver};
pub use simcluster::SimCluster;
pub use worker::Worker;
