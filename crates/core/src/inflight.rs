//! In-flight operation state: one entry per outstanding protocol
//! operation, held in a generational slab ([`InFlightTable`]) indexed by
//! the worker-local request id (`rid`).
//!
//! # rid encoding
//!
//! A rid packs a slab slot and that slot's generation:
//!
//! ```text
//! bit 63           bits 62..32          bits 31..0
//! +---+--------------------------+--------------------+
//! | U |        generation        |        slot        |
//! +---+--------------------------+--------------------+
//! ```
//!
//! * **slot** — dense index into the worker's slab. Replies resolve their
//!   entry with one bounds check and one generation compare: no hashing.
//! * **generation** — starts at 1 and is bumped every time the slot is
//!   freed, so a retransmitted reply carrying a *recycled* slot's old rid
//!   fails the compare and is dropped (no ABA completion of an unrelated
//!   op). Generations wrap after 2³¹−1 reuses of a single slot, skipping 0;
//!   a stale reply would additionally have to survive in the network across
//!   that entire wrap to alias, which the retransmit timeout makes
//!   impossible in practice.
//! * **U (bit 63)** — set on *untracked* rids: fire-and-forget broadcasts
//!   (e.g. ES writes in modes without ack tracking) draw ids from a plain
//!   counter with this bit set. They can never alias a slab entry, and the
//!   slab never issues them.
//!
//! rid 0 is never issued (generation ≥ 1), so a stray ack carrying rid 0
//! can never resolve an entry (anti-entropy repair traffic is entirely
//! rid-less instead of borrowing a sentinel).

use std::sync::Arc;

use kite_common::{Epoch, Key, Lc, NodeSet, OpId, Val};

use crate::api::Op;
use crate::msg::{Cmd, CommitPayload};

/// Common fields shared by all in-flight entries.
#[derive(Clone, Debug)]
pub struct Meta {
    /// Owning session's local index within the worker.
    pub sess: usize,
    /// Globally unique operation id (session id + session sequence).
    pub op_id: OpId,
    /// Key the operation targets.
    pub key: Key,
    /// The originating API operation (returned in the completion record).
    pub op: Op,
    /// When the op was invoked (for completions and timeouts).
    pub invoked_at: u64,
    /// Last (re)transmission time — drives retransmission.
    pub last_sent: u64,
}

/// A relaxed write whose `EsWrite` broadcast is gathering acks (§3.2). It
/// completed from the client's perspective when issued; the entry exists so
/// the next release knows which machines acked (§4.2).
#[derive(Clone, Debug)]
pub struct EsWriteState {
    /// Common in-flight fields.
    pub meta: Meta,
    /// The written value (kept for retransmission).
    pub val: Val,
    /// The write's stamp.
    pub lc: Lc,
    /// Machines that acknowledged (includes self).
    pub acked: NodeSet,
}

/// Slow-path relaxed read (§4.1 "On a relaxed access"): one quorum round,
/// then restore the key in-epoch. With `stripped_slow_path` off (ablation),
/// a full-ABD write-back round runs when the freshest value was not already
/// held by a quorum.
#[derive(Clone, Debug)]
pub struct SlowReadState {
    /// Common in-flight fields.
    pub meta: Meta,
    /// Machine-epoch snapshot taken at op start (§4.2 fine print).
    pub snapshot: Epoch,
    /// Freshest value seen so far.
    pub best_val: Val,
    /// Its clock.
    pub best_lc: Lc,
    /// Replicas that answered round 1 (includes self).
    pub reps: NodeSet,
    /// Replicas that reported the current best value (ablation only: the
    /// stripped slow path never needs a write-back, §4.3).
    pub holders: NodeSet,
    /// Write-back round progress; `None` until started (ablation only).
    pub w2: Option<NodeSet>,
}

/// Slow-path relaxed write (§4.3): one LLC-read quorum round so the fresh
/// write dominates anything missed, then an ES-style value broadcast that
/// completes without waiting for acks. With `stripped_slow_path` off
/// (ablation), completion instead waits for a quorum of value-round acks,
/// as a full ABD write would.
#[derive(Clone, Debug)]
pub struct SlowWriteState {
    /// Common in-flight fields.
    pub meta: Meta,
    /// Machine-epoch snapshot taken at op start.
    pub snapshot: Epoch,
    /// The value to write.
    pub val: Val,
    /// Highest clock seen in the stamp round.
    pub max_lc: Lc,
    /// Replicas that answered the stamp round (includes self).
    pub reps: NodeSet,
    /// Value-round `(stamp, acks)` progress; `None` until started
    /// (ablation only).
    pub w2: Option<(Lc, NodeSet)>,
}

/// The slow-path release barrier sub-round (§4.2): DM-set broadcast.
#[derive(Clone, Debug)]
pub struct SlowReleaseSub {
    /// The published DM-set.
    pub dm: NodeSet,
    /// Machines that acked the DM broadcast (includes self).
    pub acked: NodeSet,
}

/// Release barrier progress, shared by releases and RMWs (§4.2 "RMWs").
#[derive(Clone, Debug)]
pub struct Barrier {
    /// rids of the session's relaxed writes outstanding when the barrier
    /// started (the "writes before the release in session order").
    pub writes: Vec<u64>,
    /// Slow-path sub-round, if the timeout fired.
    pub slow: Option<SlowReleaseSub>,
    /// Barrier resolved: either all writes acked by all machines (fast
    /// path) or quorum-acked writes + quorum-acked DM broadcast (slow path).
    pub done: bool,
}

impl Barrier {
    /// A barrier over the given outstanding write rids (resolved
    /// immediately when there are none).
    pub fn new(writes: Vec<u64>) -> Self {
        let done = writes.is_empty();
        Barrier { writes, slow: None, done }
    }

    /// A pre-resolved barrier (modes without barrier semantics).
    pub fn resolved() -> Self {
        Barrier { writes: Vec::new(), slow: None, done: true }
    }
}

/// A release in flight: overlapped barrier + ABD write (§4.3 optimization:
/// the LLC-read round runs while waiting for acks).
#[derive(Clone, Debug)]
pub struct ReleaseState {
    /// Common in-flight fields.
    pub meta: Meta,
    /// The released value.
    pub val: Val,
    /// Barrier progress over the session's prior writes (§4.2).
    pub barrier: Barrier,
    /// Whether the LLC-read round has been broadcast. Always true with
    /// `overlap_release` (the §4.3 default); with the ablation the round
    /// is deferred until the barrier resolves.
    pub rts_sent: bool,
    /// Round 1 (read-the-stamps) progress.
    pub rts_reps: NodeSet,
    /// Highest stamp seen in round 1.
    pub rts_max: Lc,
    /// Round 2 (value broadcast) progress; `None` until started.
    pub w2: Option<(Lc, NodeSet)>,
}

/// An acquire in flight: ABD read + delinquency discovery (§4.2).
#[derive(Clone, Debug)]
pub struct AcquireState {
    /// Common in-flight fields.
    pub meta: Meta,
    /// Replicas that answered round 1 (includes self).
    pub reps: NodeSet,
    /// Freshest value seen so far.
    pub best_val: Val,
    /// Its clock.
    pub best_lc: Lc,
    /// Replicas that reported the current best value (write-back needed if
    /// they don't reach a quorum).
    pub holders: NodeSet,
    /// OR of delinquency verdicts across rounds.
    pub delinquent: bool,
    /// Write-back round progress.
    pub w2: Option<NodeSet>,
    /// True once round 1 has acted (quorum reached) — late replies ignored.
    pub decided: bool,
}

/// What an RMW computes, once its base value is known.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmwKind {
    /// fetch-and-add on a LE u64.
    Faa {
        /// The addend.
        delta: u64,
    },
    /// compare-and-swap (weak already passed its local check).
    Cas {
        /// `true` for the strong flavor (§6.1); the weak flavor reaching
        /// here has already passed its local comparison.
        strong: bool,
    },
    /// unconditional consensus write (the PaxosOnly mode's write).
    Put,
}

/// Paxos proposer phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RmwPhase {
    /// Nothing broadcast yet: waiting for the release barrier before even
    /// proposing (the `overlap_release = false` ablation; the §4.3 default
    /// overlaps the propose phase with the barrier wait).
    WaitBarrierPropose,
    /// Phase 1 in progress.
    Propose,
    /// Phase 1 done, waiting for the release barrier before accepting.
    WaitBarrier,
    /// Phase 2 in progress.
    Accept,
    /// Decided; commit broadcast gathering a visibility quorum (the third
    /// broadcast round of §3.4).
    Commit,
}

/// An RMW in flight (§3.4): per-key leaderless Basic Paxos with the
/// release/acquire barrier semantics of §4.2.
#[derive(Clone, Debug)]
pub struct RmwState {
    /// Common in-flight fields.
    pub meta: Meta,
    /// What the RMW computes (FAA / CAS / unconditional put).
    pub kind: RmwKind,
    /// CAS expect (unused for FAA/Put).
    pub expect: Val,
    /// CAS/Put new value (unused for FAA).
    pub new: Val,
    /// Release-barrier progress (§4.2 "RMWs").
    pub barrier: Barrier,
    /// Proposer phase for the current round.
    pub phase: RmwPhase,
    /// Slot the current round proposes for.
    pub slot: u64,
    /// Ballot of the current round.
    pub ballot: Lc,
    /// Phase-1 promises gathered (includes self).
    pub promises: NodeSet,
    /// Highest accepted command seen in phase 1 (to adopt).
    pub best_accepted: Option<(Lc, Cmd)>,
    /// The command being accepted in phase 2 — `Arc`-shared with the
    /// `Accept` broadcast and its retransmissions (one allocation per
    /// round, refcount bumps per unicast).
    pub cmd: Option<Arc<Cmd>>,
    /// True if `cmd` belongs to another proposer (helping): on commit we
    /// restart our own RMW instead of completing.
    pub helping: bool,
    /// Phase-2 accepts gathered (includes self).
    pub accepts: NodeSet,
    /// Commit-round visibility acks.
    pub commits: NodeSet,
    /// The commit being broadcast — the same `Arc` the `Commit` unicasts,
    /// retransmissions and catch-up fills carry.
    pub commit_bcast: Option<Arc<CommitPayload>>,
    /// Output to deliver when the commit round completes (None while
    /// helping: a new round starts instead).
    pub pending_output: Option<crate::api::OpOutput>,
    /// OR of delinquency verdicts (acquire semantics, §4.2 "RMWs").
    pub delinquent: bool,
    /// Earliest time a nacked round may retry (0 = no retry scheduled).
    pub retry_at: u64,
    /// Consecutive nacked rounds (drives exponential backoff).
    pub backoff_exp: u8,
    /// Lower bound for the next round's ballot version (from nacks).
    pub ballot_floor: u64,
}

/// Write-window relief (see `initiator.rs`): when a session's write window
/// fills with writes that only unresponsive replicas haven't acked, the
/// worker publishes their delinquency to a quorum (a value-less slow
/// release) and then retires the quorum-acked writes — the session resumes
/// instead of stalling for the whole outage. Ordering matters: the DM-set
/// reaches a quorum *before* tracking is dropped, so the §4.2 release
/// invariant is preserved for every later release.
#[derive(Clone, Debug)]
pub struct WindowReliefState {
    /// Common in-flight fields (synthetic op id; no completion).
    pub meta: Meta,
    /// The published DM-set.
    pub dm: NodeSet,
    /// Machines that acked the DM broadcast (includes self).
    pub acked: NodeSet,
    /// The window snapshot this relief covers.
    pub writes: Vec<u64>,
}

/// The in-flight table entry.
///
/// Variant sizes differ (an `RmwState` carries Paxos round state) but the
/// table holds few entries per session, so boxing would cost more in
/// indirection than it saves in padding.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum InFlight {
    /// Tracked relaxed write gathering acks (§3.2 / §4.2).
    EsWrite(EsWriteState),
    /// Slow-path relaxed read (§4.1).
    SlowRead(SlowReadState),
    /// Slow-path relaxed write (§4.3).
    SlowWrite(SlowWriteState),
    /// Release: barrier + ABD write (§4.2).
    Release(ReleaseState),
    /// Acquire: ABD read + delinquency discovery (§4.2).
    Acquire(AcquireState),
    /// RMW: per-key Paxos round (§3.4).
    Rmw(RmwState),
    /// Write-window relief round (see `initiator.rs`).
    WindowRelief(WindowReliefState),
}

impl InFlight {
    /// The entry's common fields.
    pub fn meta(&self) -> &Meta {
        match self {
            InFlight::EsWrite(s) => &s.meta,
            InFlight::SlowRead(s) => &s.meta,
            InFlight::SlowWrite(s) => &s.meta,
            InFlight::Release(s) => &s.meta,
            InFlight::Acquire(s) => &s.meta,
            InFlight::Rmw(s) => &s.meta,
            InFlight::WindowRelief(s) => &s.meta,
        }
    }

    /// Mutable access to the entry's common fields.
    pub fn meta_mut(&mut self) -> &mut Meta {
        match self {
            InFlight::EsWrite(s) => &mut s.meta,
            InFlight::SlowRead(s) => &mut s.meta,
            InFlight::SlowWrite(s) => &mut s.meta,
            InFlight::Release(s) => &mut s.meta,
            InFlight::Acquire(s) => &mut s.meta,
            InFlight::Rmw(s) => &mut s.meta,
            InFlight::WindowRelief(s) => &mut s.meta,
        }
    }

    /// Does this entry block its session?
    pub fn blocks_session(&self) -> bool {
        !matches!(self, InFlight::EsWrite(_) | InFlight::WindowRelief(_))
    }

    /// Short tag for trace/diagnostic output.
    pub fn tag(&self) -> &'static str {
        match self {
            InFlight::EsWrite(_) => "es-write",
            InFlight::SlowRead(_) => "slow-read",
            InFlight::SlowWrite(_) => "slow-write",
            InFlight::Release(_) => "release",
            InFlight::Acquire(_) => "acquire",
            InFlight::Rmw(_) => "rmw",
            InFlight::WindowRelief(_) => "window-relief",
        }
    }
}

// ===========================================================================
// The generational slab
// ===========================================================================

/// Number of low bits holding the slot index.
const SLOT_BITS: u32 = 32;
/// Mask extracting the slot index from a rid.
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;
/// Generations live in bits 62..32; bit 63 is the untracked-rid flag, so a
/// slab rid never collides with the untracked id space.
const GEN_MASK: u32 = 0x7FFF_FFFF;

/// Marks rids drawn from the untracked (fire-and-forget) counter.
pub const UNTRACKED_RID_BIT: u64 = 1 << 63;

/// The in-flight table: a generational slab (see the module docs for the
/// rid layout).
///
/// Replaces the seed's `HashMap<u64, InFlight>` on the reply hot path:
/// lookups are an array index plus a generation compare, entries are
/// mutated **in place** (reply handlers never remove-and-reinsert), freed
/// slots are recycled LIFO so the table stays dense, and the retransmit
/// scan walks the slab in slot order without collecting/sorting keys.
pub struct InFlightTable {
    slots: Vec<TableSlot>,
    /// Freed slot indices, reused LIFO (keeps the occupied prefix dense).
    free: Vec<u32>,
    live: usize,
}

struct TableSlot {
    /// Generation of the current (or, when vacant, the next) occupant.
    /// Always ≥ 1 and ≤ [`GEN_MASK`].
    generation: u32,
    entry: Option<InFlight>,
}

impl Default for InFlightTable {
    fn default() -> Self {
        Self::new()
    }
}

impl InFlightTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty table with room for `cap` entries before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        InFlightTable { slots: Vec::with_capacity(cap), free: Vec::with_capacity(cap), live: 0 }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    #[inline]
    fn rid_of(slot: u32, generation: u32) -> u64 {
        ((generation as u64) << SLOT_BITS) | slot as u64
    }

    /// Insert `entry`, returning its freshly minted rid.
    pub fn insert(&mut self, entry: InFlight) -> u64 {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                assert!(self.slots.len() < SLOT_MASK as usize, "in-flight table overflow");
                self.slots.push(TableSlot { generation: 1, entry: None });
                (self.slots.len() - 1) as u32
            }
        };
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.entry.is_none(), "free list pointed at an occupied slot");
        s.entry = Some(entry);
        self.live += 1;
        Self::rid_of(slot, s.generation)
    }

    /// Resolve `rid` to its slot index iff its generation is current.
    #[inline]
    // kite-lint: no-alloc
    fn slot_of(&self, rid: u64) -> Option<usize> {
        if rid & UNTRACKED_RID_BIT != 0 {
            return None;
        }
        let slot = (rid & SLOT_MASK) as usize;
        let generation = (rid >> SLOT_BITS) as u32;
        match self.slots.get(slot) {
            Some(s) if s.generation == generation && s.entry.is_some() => Some(slot),
            _ => None,
        }
    }

    /// Whether `rid` names a live entry.
    #[inline]
    pub fn contains(&self, rid: u64) -> bool {
        self.slot_of(rid).is_some()
    }

    /// Shared access to the entry for `rid`. Stale rids (freed or recycled
    /// slots) resolve to `None`.
    #[inline]
    // kite-lint: no-alloc
    pub fn get(&self, rid: u64) -> Option<&InFlight> {
        self.slot_of(rid).and_then(|s| self.slots[s].entry.as_ref())
    }

    /// In-place mutable access to the entry for `rid`.
    #[inline]
    // kite-lint: no-alloc
    pub fn get_mut(&mut self, rid: u64) -> Option<&mut InFlight> {
        self.slot_of(rid).and_then(|s| self.slots[s].entry.as_mut())
    }

    /// Remove and return the entry for `rid`, bumping the slot's generation
    /// so the rid (and any copies of it still in the network) goes stale.
    // kite-lint: no-alloc
    pub fn remove(&mut self, rid: u64) -> Option<InFlight> {
        let slot = self.slot_of(rid)?;
        let s = &mut self.slots[slot];
        let entry = s.entry.take();
        debug_assert!(entry.is_some());
        s.generation = if s.generation >= GEN_MASK { 1 } else { s.generation + 1 };
        self.free.push(slot as u32);
        self.live -= 1;
        entry
    }

    /// Iterate live entries in slot order (deterministic), yielding
    /// `(rid, &mut entry)`. This is a dense slab walk: no key collection,
    /// no sort, no hashing.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut InFlight)> + '_ {
        self.slots.iter_mut().enumerate().filter_map(|(i, s)| {
            let generation = s.generation;
            s.entry.as_mut().map(move |e| (Self::rid_of(i as u32, generation), e))
        })
    }

    /// Iterate live entries in slot order, yielding `(rid, &entry)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &InFlight)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.entry.as_ref().map(|e| (Self::rid_of(i as u32, s.generation), e))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_common::{NodeId, SessionId};

    fn meta() -> Meta {
        Meta {
            sess: 0,
            op_id: OpId::new(SessionId::new(NodeId(0), 0), 0),
            key: Key(1),
            op: Op::Read { key: Key(1) },
            invoked_at: 0,
            last_sent: 0,
        }
    }

    #[test]
    fn barrier_with_no_writes_is_immediately_done() {
        assert!(Barrier::new(vec![]).done);
        assert!(!Barrier::new(vec![1, 2]).done);
        assert!(Barrier::resolved().done);
    }

    #[test]
    fn blocking_classification() {
        let es = InFlight::EsWrite(EsWriteState {
            meta: meta(),
            val: Val::EMPTY,
            lc: Lc::ZERO,
            acked: NodeSet::EMPTY,
        });
        assert!(!es.blocks_session(), "relaxed writes don't block (§3.2)");
        let acq = InFlight::Acquire(AcquireState {
            meta: meta(),
            reps: NodeSet::EMPTY,
            best_val: Val::EMPTY,
            best_lc: Lc::ZERO,
            holders: NodeSet::EMPTY,
            delinquent: false,
            w2: None,
            decided: false,
        });
        assert!(acq.blocks_session(), "acquires block the session (§4.2)");
    }

    fn es_entry(tag: u64) -> InFlight {
        let mut m = meta();
        m.invoked_at = tag; // marker to tell entries apart
        InFlight::EsWrite(EsWriteState {
            meta: m,
            val: Val::EMPTY,
            lc: Lc::ZERO,
            acked: NodeSet::EMPTY,
        })
    }

    #[test]
    fn slab_insert_get_remove_round_trip() {
        let mut t = InFlightTable::new();
        assert!(t.is_empty());
        let a = t.insert(es_entry(1));
        let b = t.insert(es_entry(2));
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a).unwrap().meta().invoked_at, 1);
        assert_eq!(t.get_mut(b).unwrap().meta().invoked_at, 2);
        assert_eq!(t.remove(a).unwrap().meta().invoked_at, 1);
        assert!(t.get(a).is_none());
        assert!(t.remove(a).is_none(), "double remove is a no-op");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn recycled_slot_rejects_stale_rid() {
        let mut t = InFlightTable::new();
        let old = t.insert(es_entry(1));
        t.remove(old);
        let new = t.insert(es_entry(2));
        // Same slot, new generation: the old rid must not resolve.
        assert_eq!(old & 0xFFFF_FFFF, new & 0xFFFF_FFFF, "LIFO slot reuse");
        assert_ne!(old, new);
        assert!(t.get(old).is_none(), "stale rid must be rejected");
        assert!(!t.contains(old));
        assert_eq!(t.get(new).unwrap().meta().invoked_at, 2);
    }

    #[test]
    fn rids_are_never_zero_or_untracked() {
        let mut t = InFlightTable::new();
        for i in 0..100 {
            let rid = t.insert(es_entry(i));
            assert_ne!(rid, 0, "rid 0 is the discard sentinel");
            assert_eq!(rid & UNTRACKED_RID_BIT, 0, "slab rids never set the untracked bit");
            t.remove(rid);
        }
    }

    #[test]
    fn untracked_rids_never_resolve() {
        let mut t = InFlightTable::new();
        let rid = t.insert(es_entry(1));
        let fake = UNTRACKED_RID_BIT | rid;
        assert!(t.get(fake).is_none());
        assert!(!t.contains(fake));
        assert!(t.remove(fake).is_none());
        assert!(t.contains(rid), "live entry unaffected");
    }

    #[test]
    fn iteration_is_dense_and_slot_ordered() {
        let mut t = InFlightTable::new();
        let rids: Vec<u64> = (0..8).map(|i| t.insert(es_entry(i))).collect();
        t.remove(rids[3]);
        t.remove(rids[6]);
        let walked: Vec<u64> = t.iter_mut().map(|(rid, _)| rid).collect();
        let expected: Vec<u64> =
            rids.iter().enumerate().filter(|(i, _)| *i != 3 && *i != 6).map(|(_, r)| *r).collect();
        assert_eq!(walked, expected, "slot order, holes skipped");
        assert_eq!(t.iter().count(), 6);
    }

    #[test]
    fn meta_accessors() {
        let mut e = InFlight::SlowRead(SlowReadState {
            meta: meta(),
            snapshot: Epoch(0),
            best_val: Val::EMPTY,
            best_lc: Lc::ZERO,
            reps: NodeSet::EMPTY,
            holders: NodeSet::EMPTY,
            w2: None,
        });
        assert_eq!(e.meta().key, Key(1));
        e.meta_mut().last_sent = 99;
        assert_eq!(e.meta().last_sent, 99);
    }
}
