//! In-flight operation state: one entry per outstanding protocol operation,
//! keyed by the worker-local request id (`rid`).

use kite_common::{Epoch, Key, Lc, NodeSet, OpId, Val};

use crate::api::Op;
use crate::msg::Cmd;

/// A commit broadcast kept for retransmission: `(slot, val, lc, ring-meta)`.
pub type CommitBcast = Box<(u64, Val, Lc, Option<(OpId, Val)>)>;

/// Common fields shared by all in-flight entries.
#[derive(Clone, Debug)]
pub struct Meta {
    /// Owning session's local index within the worker.
    pub sess: usize,
    /// Globally unique operation id (session id + session sequence).
    pub op_id: OpId,
    /// Key the operation targets.
    pub key: Key,
    /// The originating API operation (returned in the completion record).
    pub op: Op,
    /// When the op was invoked (for completions and timeouts).
    pub invoked_at: u64,
    /// Last (re)transmission time — drives retransmission.
    pub last_sent: u64,
}

/// A relaxed write whose `EsWrite` broadcast is gathering acks (§3.2). It
/// completed from the client's perspective when issued; the entry exists so
/// the next release knows which machines acked (§4.2).
#[derive(Clone, Debug)]
pub struct EsWriteState {
    /// Common in-flight fields.
    pub meta: Meta,
    /// The written value (kept for retransmission).
    pub val: Val,
    /// The write's stamp.
    pub lc: Lc,
    /// Machines that acknowledged (includes self).
    pub acked: NodeSet,
}

/// Slow-path relaxed read (§4.1 "On a relaxed access"): one quorum round,
/// then restore the key in-epoch. With `stripped_slow_path` off (ablation),
/// a full-ABD write-back round runs when the freshest value was not already
/// held by a quorum.
#[derive(Clone, Debug)]
pub struct SlowReadState {
    /// Common in-flight fields.
    pub meta: Meta,
    /// Machine-epoch snapshot taken at op start (§4.2 fine print).
    pub snapshot: Epoch,
    /// Freshest value seen so far.
    pub best_val: Val,
    /// Its clock.
    pub best_lc: Lc,
    /// Replicas that answered round 1 (includes self).
    pub reps: NodeSet,
    /// Replicas that reported the current best value (ablation only: the
    /// stripped slow path never needs a write-back, §4.3).
    pub holders: NodeSet,
    /// Write-back round progress; `None` until started (ablation only).
    pub w2: Option<NodeSet>,
}

/// Slow-path relaxed write (§4.3): one LLC-read quorum round so the fresh
/// write dominates anything missed, then an ES-style value broadcast that
/// completes without waiting for acks. With `stripped_slow_path` off
/// (ablation), completion instead waits for a quorum of value-round acks,
/// as a full ABD write would.
#[derive(Clone, Debug)]
pub struct SlowWriteState {
    /// Common in-flight fields.
    pub meta: Meta,
    /// Machine-epoch snapshot taken at op start.
    pub snapshot: Epoch,
    /// The value to write.
    pub val: Val,
    /// Highest clock seen in the stamp round.
    pub max_lc: Lc,
    /// Replicas that answered the stamp round (includes self).
    pub reps: NodeSet,
    /// Value-round `(stamp, acks)` progress; `None` until started
    /// (ablation only).
    pub w2: Option<(Lc, NodeSet)>,
}

/// The slow-path release barrier sub-round (§4.2): DM-set broadcast.
#[derive(Clone, Debug)]
pub struct SlowReleaseSub {
    /// The published DM-set.
    pub dm: NodeSet,
    /// Machines that acked the DM broadcast (includes self).
    pub acked: NodeSet,
}

/// Release barrier progress, shared by releases and RMWs (§4.2 "RMWs").
#[derive(Clone, Debug)]
pub struct Barrier {
    /// rids of the session's relaxed writes outstanding when the barrier
    /// started (the "writes before the release in session order").
    pub writes: Vec<u64>,
    /// Slow-path sub-round, if the timeout fired.
    pub slow: Option<SlowReleaseSub>,
    /// Barrier resolved: either all writes acked by all machines (fast
    /// path) or quorum-acked writes + quorum-acked DM broadcast (slow path).
    pub done: bool,
}

impl Barrier {
    /// A barrier over the given outstanding write rids (resolved
    /// immediately when there are none).
    pub fn new(writes: Vec<u64>) -> Self {
        let done = writes.is_empty();
        Barrier { writes, slow: None, done }
    }

    /// A pre-resolved barrier (modes without barrier semantics).
    pub fn resolved() -> Self {
        Barrier { writes: Vec::new(), slow: None, done: true }
    }
}

/// A release in flight: overlapped barrier + ABD write (§4.3 optimization:
/// the LLC-read round runs while waiting for acks).
#[derive(Clone, Debug)]
pub struct ReleaseState {
    /// Common in-flight fields.
    pub meta: Meta,
    /// The released value.
    pub val: Val,
    /// Barrier progress over the session's prior writes (§4.2).
    pub barrier: Barrier,
    /// Whether the LLC-read round has been broadcast. Always true with
    /// `overlap_release` (the §4.3 default); with the ablation the round
    /// is deferred until the barrier resolves.
    pub rts_sent: bool,
    /// Round 1 (read-the-stamps) progress.
    pub rts_reps: NodeSet,
    /// Highest stamp seen in round 1.
    pub rts_max: Lc,
    /// Round 2 (value broadcast) progress; `None` until started.
    pub w2: Option<(Lc, NodeSet)>,
}

/// An acquire in flight: ABD read + delinquency discovery (§4.2).
#[derive(Clone, Debug)]
pub struct AcquireState {
    /// Common in-flight fields.
    pub meta: Meta,
    /// Replicas that answered round 1 (includes self).
    pub reps: NodeSet,
    /// Freshest value seen so far.
    pub best_val: Val,
    /// Its clock.
    pub best_lc: Lc,
    /// Replicas that reported the current best value (write-back needed if
    /// they don't reach a quorum).
    pub holders: NodeSet,
    /// OR of delinquency verdicts across rounds.
    pub delinquent: bool,
    /// Write-back round progress.
    pub w2: Option<NodeSet>,
    /// True once round 1 has acted (quorum reached) — late replies ignored.
    pub decided: bool,
}

/// What an RMW computes, once its base value is known.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmwKind {
    /// fetch-and-add on a LE u64.
    Faa {
        /// The addend.
        delta: u64,
    },
    /// compare-and-swap (weak already passed its local check).
    Cas {
        /// `true` for the strong flavor (§6.1); the weak flavor reaching
        /// here has already passed its local comparison.
        strong: bool,
    },
    /// unconditional consensus write (the PaxosOnly mode's write).
    Put,
}

/// Paxos proposer phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RmwPhase {
    /// Nothing broadcast yet: waiting for the release barrier before even
    /// proposing (the `overlap_release = false` ablation; the §4.3 default
    /// overlaps the propose phase with the barrier wait).
    WaitBarrierPropose,
    /// Phase 1 in progress.
    Propose,
    /// Phase 1 done, waiting for the release barrier before accepting.
    WaitBarrier,
    /// Phase 2 in progress.
    Accept,
    /// Decided; commit broadcast gathering a visibility quorum (the third
    /// broadcast round of §3.4).
    Commit,
}

/// An RMW in flight (§3.4): per-key leaderless Basic Paxos with the
/// release/acquire barrier semantics of §4.2.
#[derive(Clone, Debug)]
pub struct RmwState {
    /// Common in-flight fields.
    pub meta: Meta,
    /// What the RMW computes (FAA / CAS / unconditional put).
    pub kind: RmwKind,
    /// CAS expect (unused for FAA/Put).
    pub expect: Val,
    /// CAS/Put new value (unused for FAA).
    pub new: Val,
    /// Release-barrier progress (§4.2 "RMWs").
    pub barrier: Barrier,
    /// Proposer phase for the current round.
    pub phase: RmwPhase,
    /// Slot the current round proposes for.
    pub slot: u64,
    /// Ballot of the current round.
    pub ballot: Lc,
    /// Phase-1 promises gathered (includes self).
    pub promises: NodeSet,
    /// Highest accepted command seen in phase 1 (to adopt).
    pub best_accepted: Option<(Lc, Cmd)>,
    /// The command being accepted in phase 2.
    pub cmd: Option<Cmd>,
    /// True if `cmd` belongs to another proposer (helping): on commit we
    /// restart our own RMW instead of completing.
    pub helping: bool,
    /// Phase-2 accepts gathered (includes self).
    pub accepts: NodeSet,
    /// Commit-round visibility acks.
    pub commits: NodeSet,
    /// The commit being broadcast: `(slot, val, lc, ring-meta)` — kept for
    /// retransmission and completion.
    pub commit_bcast: Option<CommitBcast>,
    /// Output to deliver when the commit round completes (None while
    /// helping: a new round starts instead).
    pub pending_output: Option<crate::api::OpOutput>,
    /// OR of delinquency verdicts (acquire semantics, §4.2 "RMWs").
    pub delinquent: bool,
    /// Earliest time a nacked round may retry (0 = no retry scheduled).
    pub retry_at: u64,
    /// Consecutive nacked rounds (drives exponential backoff).
    pub backoff_exp: u8,
    /// Lower bound for the next round's ballot version (from nacks).
    pub ballot_floor: u64,
}

/// Write-window relief (see `initiator.rs`): when a session's write window
/// fills with writes that only unresponsive replicas haven't acked, the
/// worker publishes their delinquency to a quorum (a value-less slow
/// release) and then retires the quorum-acked writes — the session resumes
/// instead of stalling for the whole outage. Ordering matters: the DM-set
/// reaches a quorum *before* tracking is dropped, so the §4.2 release
/// invariant is preserved for every later release.
#[derive(Clone, Debug)]
pub struct WindowReliefState {
    /// Common in-flight fields (synthetic op id; no completion).
    pub meta: Meta,
    /// The published DM-set.
    pub dm: NodeSet,
    /// Machines that acked the DM broadcast (includes self).
    pub acked: NodeSet,
    /// The window snapshot this relief covers.
    pub writes: Vec<u64>,
}

/// The in-flight table entry.
///
/// Variant sizes differ (an `RmwState` carries Paxos round state) but the
/// table holds few entries per session, so boxing would cost more in
/// indirection than it saves in padding.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum InFlight {
    /// Tracked relaxed write gathering acks (§3.2 / §4.2).
    EsWrite(EsWriteState),
    /// Slow-path relaxed read (§4.1).
    SlowRead(SlowReadState),
    /// Slow-path relaxed write (§4.3).
    SlowWrite(SlowWriteState),
    /// Release: barrier + ABD write (§4.2).
    Release(ReleaseState),
    /// Acquire: ABD read + delinquency discovery (§4.2).
    Acquire(AcquireState),
    /// RMW: per-key Paxos round (§3.4).
    Rmw(RmwState),
    /// Write-window relief round (see `initiator.rs`).
    WindowRelief(WindowReliefState),
}

impl InFlight {
    /// The entry's common fields.
    pub fn meta(&self) -> &Meta {
        match self {
            InFlight::EsWrite(s) => &s.meta,
            InFlight::SlowRead(s) => &s.meta,
            InFlight::SlowWrite(s) => &s.meta,
            InFlight::Release(s) => &s.meta,
            InFlight::Acquire(s) => &s.meta,
            InFlight::Rmw(s) => &s.meta,
            InFlight::WindowRelief(s) => &s.meta,
        }
    }

    /// Mutable access to the entry's common fields.
    pub fn meta_mut(&mut self) -> &mut Meta {
        match self {
            InFlight::EsWrite(s) => &mut s.meta,
            InFlight::SlowRead(s) => &mut s.meta,
            InFlight::SlowWrite(s) => &mut s.meta,
            InFlight::Release(s) => &mut s.meta,
            InFlight::Acquire(s) => &mut s.meta,
            InFlight::Rmw(s) => &mut s.meta,
            InFlight::WindowRelief(s) => &mut s.meta,
        }
    }

    /// Does this entry block its session?
    pub fn blocks_session(&self) -> bool {
        !matches!(self, InFlight::EsWrite(_) | InFlight::WindowRelief(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_common::{NodeId, SessionId};

    fn meta() -> Meta {
        Meta {
            sess: 0,
            op_id: OpId::new(SessionId::new(NodeId(0), 0), 0),
            key: Key(1),
            op: Op::Read { key: Key(1) },
            invoked_at: 0,
            last_sent: 0,
        }
    }

    #[test]
    fn barrier_with_no_writes_is_immediately_done() {
        assert!(Barrier::new(vec![]).done);
        assert!(!Barrier::new(vec![1, 2]).done);
        assert!(Barrier::resolved().done);
    }

    #[test]
    fn blocking_classification() {
        let es = InFlight::EsWrite(EsWriteState {
            meta: meta(),
            val: Val::EMPTY,
            lc: Lc::ZERO,
            acked: NodeSet::EMPTY,
        });
        assert!(!es.blocks_session(), "relaxed writes don't block (§3.2)");
        let acq = InFlight::Acquire(AcquireState {
            meta: meta(),
            reps: NodeSet::EMPTY,
            best_val: Val::EMPTY,
            best_lc: Lc::ZERO,
            holders: NodeSet::EMPTY,
            delinquent: false,
            w2: None,
            decided: false,
        });
        assert!(acq.blocks_session(), "acquires block the session (§4.2)");
    }

    #[test]
    fn meta_accessors() {
        let mut e = InFlight::SlowRead(SlowReadState {
            meta: meta(),
            snapshot: Epoch(0),
            best_val: Val::EMPTY,
            best_lc: Lc::ZERO,
            reps: NodeSet::EMPTY,
            holders: NodeSet::EMPTY,
            w2: None,
        });
        assert_eq!(e.meta().key, Key(1));
        e.meta_mut().last_sent = 99;
        assert_eq!(e.meta().last_sent, 99);
    }
}
