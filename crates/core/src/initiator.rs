//! Initiator-side protocol logic: starting client operations, folding
//! replies, the release barrier (§4.2), and the Paxos proposer (§3.4).
//!
//! Reply handlers resolve their in-flight entry **in place** through the
//! generational slab ([`crate::inflight::InFlightTable`]): a reply is one
//! O(1) slot lookup plus a generation compare, the entry is mutated where
//! it sits, and it is removed only when the operation's life ends. Replies
//! for unknown rids (stale rounds, duplicated acks, recycled slots) fail
//! the generation compare and are silently discarded — every protocol step
//! is idempotent at the replicas.
//!
//! Helpers that run while the table is borrowed are associated functions
//! over the worker's *other* fields (store, sessions, hook), so the borrow
//! checker sees the disjointness.

#![allow(clippy::too_many_arguments)] // protocol handlers thread (now, cfg, outbox, ...) explicitly

use std::sync::Arc;

use kite_common::{Key, Lc, NodeId, NodeSet, OpId, Val};
use kite_kvs::paxos_meta::{AcceptedCmd, RmwCommit};
use kite_simnet::Outbox;

use crate::api::{Op, OpOutput};
use crate::inflight::{
    AcquireState, Barrier, EsWriteState, InFlight, Meta, ReleaseState, RmwKind, RmwPhase,
    RmwState, SlowReadState, SlowReleaseSub, SlowWriteState, WindowReliefState,
};
use crate::msg::{Cmd, CommitPayload, Msg, PromiseOutcome, Repair, WriteBack};
use crate::nodestate::NodeShared;
use crate::session::{ProtocolMode, Session};
use crate::worker::{StartResult, Worker};
use crate::api::CompletionHook;

/// Outcome of [`Worker::rmw_decide_cmd`] at a phase-1 quorum.
enum RmwDecision {
    /// A command was chosen (adopted or freshly evaluated): enter accept.
    Cmd,
    /// The operation completed inline (failed CAS against a stable base,
    /// or a command discovered to have already committed).
    Finished(OpOutput),
    /// The key's slot advanced *under* this round, so the local base may
    /// embody a commit this round knows nothing about — possibly our own
    /// command's (an anti-entropy repair can deliver a commit's value and
    /// slot before the commit message itself). Deciding against such a
    /// base is unsound; re-propose instead, which routes through the ring
    /// checks (local at round start, acceptor-side at every promise).
    Restart,
}

/// Base backoff before retrying a nacked Paxos round (dueling proposers):
/// roughly one commit latency, so the loser's next round usually lands on
/// the freshly advanced slot instead of re-dueling. Jittered per request id
/// to break symmetry deterministically.
const RMW_BACKOFF_NS: u64 = 10_000;

#[inline]
fn rmw_backoff(rid: u64, exp: u8) -> u64 {
    (RMW_BACKOFF_NS << exp.min(5)) + (rid % 8) * 2_500
}

impl Worker {
    fn meta(&self, si: usize, op_id: OpId, key: Key, op: Op, now: u64) -> Meta {
        Meta { sess: si, op_id, key, op, invoked_at: now, last_sent: now }
    }

    // =====================================================================
    // Operation start
    // =====================================================================

    pub(crate) fn start_op(
        &mut self,
        si: usize,
        op_id: OpId,
        op: Op,
        now: u64,
        out: &mut Outbox<Msg>,
    ) -> StartResult {
        use ProtocolMode::*;
        match op.clone() {
            Op::Read { key } => match self.mode {
                Kite | EsOnly => self.start_relaxed_read(si, op_id, key, op, now, out),
                AbdOnly | PaxosOnly => self.start_acquire(si, op_id, key, op, now, out, false),
            },
            Op::Write { key, val } => match self.mode {
                Kite | EsOnly => self.start_relaxed_write(si, op_id, key, val, op, now, out),
                AbdOnly => self.start_release(si, op_id, key, val, op, now, out, false),
                PaxosOnly => {
                    self.start_rmw(si, op_id, key, RmwKind::Put, Val::EMPTY, val, op, now, out, false)
                }
            },
            Op::Release { key, val } => match self.mode {
                Kite => self.start_release(si, op_id, key, val, op, now, out, true),
                EsOnly => self.start_relaxed_write(si, op_id, key, val, op, now, out),
                AbdOnly => self.start_release(si, op_id, key, val, op, now, out, false),
                PaxosOnly => {
                    self.start_rmw(si, op_id, key, RmwKind::Put, Val::EMPTY, val, op, now, out, false)
                }
            },
            Op::Acquire { key } => match self.mode {
                Kite => self.start_acquire(si, op_id, key, op, now, out, true),
                EsOnly => self.start_relaxed_read(si, op_id, key, op, now, out),
                AbdOnly | PaxosOnly => self.start_acquire(si, op_id, key, op, now, out, false),
            },
            Op::Faa { key, delta } => {
                let sync = self.mode.has_barriers();
                self.start_rmw(si, op_id, key, RmwKind::Faa { delta }, Val::EMPTY, Val::EMPTY, op, now, out, sync)
            }
            Op::CasWeak { key, expect, new } => {
                // Weak CAS (§6.1): a comparison that fails *locally* completes
                // locally — this is what absorbs data-structure conflicts
                // cheaply in §8.3.
                let local = self.shared.store.view(key).val;
                if local != expect {
                    self.complete(si, op_id, op, OpOutput::Cas { ok: false, observed: local }, now, now);
                    return StartResult::Inline;
                }
                let sync = self.mode.has_barriers();
                self.start_rmw(si, op_id, key, RmwKind::Cas { strong: false }, expect, new, op, now, out, sync)
            }
            Op::CasStrong { key, expect, new } => {
                let sync = self.mode.has_barriers();
                self.start_rmw(si, op_id, key, RmwKind::Cas { strong: true }, expect, new, op, now, out, sync)
            }
        }
    }

    /// Relaxed read (§3.2): local if the key is in-epoch, slow-path quorum
    /// read otherwise (§4.1).
    fn start_relaxed_read(
        &mut self,
        si: usize,
        op_id: OpId,
        key: Key,
        op: Op,
        now: u64,
        out: &mut Outbox<Msg>,
    ) -> StartResult {
        let snapshot = self.shared.epoch();
        let view = self.shared.store.view(key);
        if view.epoch == snapshot {
            self.shared.counters.local_reads.incr();
            self.complete(si, op_id, op, OpOutput::Value(view.val), now, now);
            return StartResult::Inline;
        }
        // Out-of-epoch: one quorum round, no write-back (§4.3).
        self.shared.counters.slow_path_accesses.incr();
        let state = SlowReadState {
            meta: self.meta(si, op_id, key, op, now),
            snapshot,
            best_val: view.val,
            best_lc: view.lc,
            reps: NodeSet::singleton(self.me),
            holders: NodeSet::singleton(self.me),
            w2: None,
        };
        let rid = self.inflight.insert(InFlight::SlowRead(state));
        out.multicast(self.me, self.voters(), Msg::ReadReq { rid, key, acq: None });
        StartResult::Blocked(rid)
    }

    /// Relaxed write (§3.2): stamp with the key's next clock, apply locally,
    /// broadcast; completes immediately. Out-of-epoch keys take the §4.3
    /// slow path (LLC quorum round first).
    fn start_relaxed_write(
        &mut self,
        si: usize,
        op_id: OpId,
        key: Key,
        val: Val,
        op: Op,
        now: u64,
        out: &mut Outbox<Msg>,
    ) -> StartResult {
        let track = self.mode.has_barriers();
        if track && self.sessions[si].write_window.len() >= self.window_cap {
            return StartResult::Stall(op);
        }
        let snapshot = self.shared.epoch();
        match self.shared.store.fast_write(key, &val, self.me, snapshot) {
            Some(lc) => {
                let rid = if track {
                    let state = EsWriteState {
                        meta: self.meta(si, op_id, key, op.clone(), now),
                        val: val.clone(),
                        lc,
                        acked: NodeSet::singleton(self.me),
                    };
                    let rid = self.inflight.insert(InFlight::EsWrite(state));
                    self.sessions[si].write_window.push_back(rid);
                    rid
                } else {
                    self.untracked_rid()
                };
                out.multicast(self.me, self.voters(), Msg::EsWrite { rid, key, val, lc });
                self.complete(si, op_id, op, OpOutput::Done, now, now);
                StartResult::Inline
            }
            None => {
                // Out-of-epoch (Kite only): read LLCs from a quorum so the new
                // write dominates anything this machine may have missed (§4.3).
                self.shared.counters.slow_path_accesses.incr();
                let state = SlowWriteState {
                    meta: self.meta(si, op_id, key, op, now),
                    snapshot,
                    val,
                    max_lc: self.shared.store.read_lc(key),
                    reps: NodeSet::singleton(self.me),
                    w2: None,
                };
                let rid = self.inflight.insert(InFlight::SlowWrite(state));
                out.multicast(self.me, self.voters(), Msg::RtsReq { rid, key });
                StartResult::Blocked(rid)
            }
        }
    }

    /// Release (§4.2): the barrier (gather acks for all prior session
    /// writes) overlapped with ABD write round 1 (§4.3 optimization).
    fn start_release(
        &mut self,
        si: usize,
        op_id: OpId,
        key: Key,
        val: Val,
        op: Op,
        now: u64,
        out: &mut Outbox<Msg>,
        with_barrier: bool,
    ) -> StartResult {
        let writes: Vec<u64> =
            if with_barrier { self.sessions[si].write_window.iter().copied().collect() } else { Vec::new() };
        let barrier = Barrier::new(writes);
        let barrier_pending = !barrier.done;
        // §4.3 optimization: the LLC-read round is benign (it does not make
        // the release visible), so it normally overlaps the barrier wait.
        // The ablation defers it until the barrier resolves.
        let rts_sent = self.overlap_release || barrier.done;
        let state = ReleaseState {
            meta: self.meta(si, op_id, key, op, now),
            val,
            barrier,
            rts_sent,
            rts_reps: NodeSet::singleton(self.me),
            rts_max: self.shared.store.read_lc(key),
            w2: None,
        };
        let rid = self.inflight.insert(InFlight::Release(state));
        if barrier_pending {
            self.barrier_waiters.push(rid);
        }
        if rts_sent {
            out.multicast(self.me, self.voters(), Msg::RtsReq { rid, key });
        }
        StartResult::Blocked(rid)
    }

    /// Acquire (§4.2): ABD read with delinquency discovery piggybacked on
    /// both rounds; blocks the session until complete.
    fn start_acquire(
        &mut self,
        si: usize,
        op_id: OpId,
        key: Key,
        op: Op,
        now: u64,
        out: &mut Outbox<Msg>,
        sync: bool,
    ) -> StartResult {
        let view = self.shared.store.view(key);
        // The local replica participates in the quorum; probe our own table
        // too (a slow-release may have told *us* that we are delinquent).
        let delinquent = if sync { self.shared.delinquency.probe(self.me, op_id) } else { false };
        let state = AcquireState {
            meta: self.meta(si, op_id, key, op, now),
            reps: NodeSet::singleton(self.me),
            best_val: view.val,
            best_lc: view.lc,
            holders: NodeSet::singleton(self.me),
            delinquent,
            w2: None,
            decided: false,
        };
        let rid = self.inflight.insert(InFlight::Acquire(state));
        out.multicast(self.me, self.voters(), Msg::ReadReq { rid, key, acq: sync.then_some(op_id) });
        StartResult::Blocked(rid)
    }

    /// RMW (§3.4): leaderless per-key Paxos, with release-barrier semantics
    /// (accept gated on the barrier) and acquire semantics (delinquency
    /// piggybacked on phase replies).
    #[allow(clippy::too_many_arguments)]
    fn start_rmw(
        &mut self,
        si: usize,
        op_id: OpId,
        key: Key,
        kind: RmwKind,
        expect: Val,
        new: Val,
        op: Op,
        now: u64,
        out: &mut Outbox<Msg>,
        with_barrier: bool,
    ) -> StartResult {
        let writes: Vec<u64> =
            if with_barrier { self.sessions[si].write_window.iter().copied().collect() } else { Vec::new() };
        let barrier = Barrier::new(writes);
        let barrier_pending = !barrier.done;
        let mut state = RmwState {
            meta: self.meta(si, op_id, key, op, now),
            kind,
            expect,
            new,
            barrier,
            phase: RmwPhase::Propose,
            slot: 0,
            ballot: Lc::ZERO,
            promises: NodeSet::EMPTY,
            best_accepted: None,
            cmd: None,
            helping: false,
            accepts: NodeSet::EMPTY,
            commits: NodeSet::EMPTY,
            commit_bcast: None,
            pending_output: None,
            delinquent: false,
            retry_at: 0,
            backoff_exp: 0,
            ballot_floor: 0,
        };
        // §4.3 optimization: the propose phase carries no value, so it
        // normally overlaps the barrier wait (like the release's LLC-read
        // round). The ablation holds the whole Paxos exchange back until
        // the barrier resolves.
        if !self.overlap_release && barrier_pending {
            state.phase = RmwPhase::WaitBarrierPropose;
            let rid = self.inflight.insert(InFlight::Rmw(state));
            self.barrier_waiters.push(rid);
            return StartResult::Blocked(rid);
        }
        let rid = self.inflight.insert(InFlight::Rmw(state));
        if barrier_pending {
            self.barrier_waiters.push(rid);
        }
        let Some(InFlight::Rmw(state)) = self.inflight.get_mut(rid) else { unreachable!() };
        if let Some(output) = Self::rmw_new_round_in(&self.shared, self.me, rid, state, out) {
            Self::rmw_finish_in(
                &self.shared, &self.hook, &mut self.sessions, self.mode, self.me, state, output,
                now, out,
            );
            // Any stale barrier_waiters entry is swept by check_barriers.
            self.inflight.remove(rid);
            return StartResult::Inline;
        }
        StartResult::Blocked(rid)
    }

    /// Begin a fresh proposal round: self-promise under the key's Paxos
    /// lock, then broadcast `Propose`.
    ///
    /// Returns `Some(output)` if the operation's command turns out to have
    /// already committed (another proposer *helped* it while we were backing
    /// off — the commit's ring entry proves it). The caller must then finish
    /// the op with that output instead of proposing: re-proposing would
    /// execute the RMW a second time.
    ///
    /// Associated fn over the non-table worker fields so it can run while
    /// `state` is borrowed from the in-flight slab.
    #[must_use]
    fn rmw_new_round_in(
        shared: &NodeShared,
        me: NodeId,
        rid: u64,
        state: &mut RmwState,
        out: &mut Outbox<Msg>,
    ) -> Option<OpOutput> {
        let key = state.meta.key;
        let (slot, ballot, accepted) = {
            let pax = shared.store.paxos(key);
            let mut pax = pax.lock();
            if let Some(done) = pax.committed.find(state.meta.op_id) {
                return Some(rmw_output(state.kind, &done.result));
            }
            // Strictly above every ballot THIS request ever used, not just
            // the acceptor floor: `advance_past` resets `promised` to ZERO
            // at a slot transition, so without the `state.ballot` term the
            // new slot's first ballot can collide exactly with the old
            // slot's last one — and since promise/accept replies echo only
            // the ballot (no slot), a stale reply from the previous slot's
            // round then passes the stale-round filter and hands this
            // round a *previous slot's* accepted command to adopt. That
            // command re-commits at the new slot: duplicate RMW execution
            // (two FAAs observing the same base — caught by
            // `tests/chaos.rs::crash_stop_preserves_progress_and_rc` once
            // the TCP-duel backoff perturbed the interleaving). Per-rid
            // ballot monotonicity makes every stale reply unmistakable.
            let version =
                pax.promised.version().max(state.ballot_floor).max(state.ballot.version()) + 1;
            let ballot = Lc::new(version, me);
            pax.promised = ballot;
            let accepted = pax.accepted.as_ref().map(|a| {
                (
                    a.ballot,
                    Cmd { op: a.op, new_val: a.new_val.clone(), result: a.result.clone(), lc: a.lc },
                )
            });
            (pax.slot, ballot, accepted)
        };
        state.slot = slot;
        state.ballot = ballot;
        state.phase = RmwPhase::Propose;
        state.promises = NodeSet::singleton(me);
        state.best_accepted = accepted;
        state.cmd = None;
        state.helping = false;
        state.accepts = NodeSet::EMPTY;
        state.commits = NodeSet::EMPTY;
        state.commit_bcast = None;
        state.pending_output = None;
        state.retry_at = 0;
        out.multicast(me, shared.voters(), Msg::Propose { rid, key, slot, ballot, op: state.meta.op_id });
        None
    }

    // =====================================================================
    // Reply handlers
    // =====================================================================

    /// Ack for a tracked relaxed write: when *all* machines acked, the write
    /// stops being a barrier obligation (§4.2 fast path).
    pub(crate) fn on_es_ack(&mut self, src: kite_common::NodeId, rid: u64, _now: u64) {
        let voters = self.voters();
        let Some(InFlight::EsWrite(state)) = self.inflight.get_mut(rid) else { return };
        state.acked.insert(src);
        if voters.minus(state.acked).is_empty() {
            let si = state.meta.sess;
            self.inflight.remove(rid);
            self.remove_from_window(si, rid);
        }
    }

    pub(crate) fn on_rts_rep(
        &mut self,
        src: kite_common::NodeId,
        rid: u64,
        lc: Lc,
        now: u64,
        out: &mut Outbox<Msg>,
    ) {
        let quorum = self.quorum();
        let voters = self.voters();
        match self.inflight.get_mut(rid) {
            Some(InFlight::Release(state)) => {
                state.rts_reps.insert(src);
                state.rts_max = state.rts_max.max(lc);
                Self::try_advance_release(self.me, quorum, &self.shared, rid, state, out);
            }
            Some(InFlight::SlowWrite(state)) => {
                if state.w2.is_some() {
                    // Value round already started (full-ABD ablation); this
                    // is a late stamp reply.
                    return;
                }
                state.reps.insert(src);
                state.max_lc = state.max_lc.max(lc);
                if state.reps.len() < quorum {
                    return;
                }
                // Quorum of stamps: the write now dominates anything this
                // machine missed. Mint + apply + restore in-epoch under
                // one lock — a `succ` of the gathered max computed outside
                // the key's seqlock can collide with a concurrent sibling
                // session's fast-write stamp (same `(version, mid)`, two
                // values), a divergence no LLC-max repair can ever heal.
                let wlc = self.shared.store.stamp_apply(
                    state.meta.key,
                    &state.val,
                    state.max_lc,
                    self.me,
                    Some(state.snapshot),
                );
                if !self.stripped_slow {
                    // Full-ABD ablation: the value round must be
                    // quorum-acked before the write completes.
                    state.w2 = Some((wlc, NodeSet::singleton(self.me)));
                    state.meta.last_sent = now;
                    out.multicast(
                        self.me,
                        voters,
                        Msg::WriteMsg { rid, key: state.meta.key, val: state.val.clone(), lc: wlc },
                    );
                    return;
                }
                // §4.3 default: broadcast the value ES-style under a fresh
                // rid; completion does not wait for acks — the next release
                // in session order is responsible for quorum visibility.
                let si = state.meta.sess;
                let op_id = state.meta.op_id;
                let key = state.meta.key;
                let op = state.meta.op.clone();
                let invoked_at = state.meta.invoked_at;
                let val = state.val.clone();
                self.inflight.remove(rid); // slow write finished
                let wrid = if self.mode.has_barriers() {
                    let es = EsWriteState {
                        meta: self.meta(si, op_id, key, op.clone(), now),
                        val: val.clone(),
                        lc: wlc,
                        acked: NodeSet::singleton(self.me),
                    };
                    let wrid = self.inflight.insert(InFlight::EsWrite(es));
                    self.sessions[si].write_window.push_back(wrid);
                    wrid
                } else {
                    self.untracked_rid()
                };
                out.multicast(self.me, voters, Msg::EsWrite { rid: wrid, key, val, lc: wlc });
                self.complete(si, op_id, op, OpOutput::Done, invoked_at, now);
            }
            _ => {}
        }
    }

    pub(crate) fn on_read_rep(
        &mut self,
        src: kite_common::NodeId,
        rid: u64,
        val: Val,
        lc: Lc,
        delinquent: bool,
        now: u64,
        out: &mut Outbox<Msg>,
    ) {
        let quorum = self.quorum();
        let voters = self.voters();
        match self.inflight.get_mut(rid) {
            Some(InFlight::SlowRead(state)) => {
                if state.w2.is_some() {
                    // Write-back round already started (full-ABD ablation);
                    // this is a late round-1 reply.
                    return;
                }
                state.reps.insert(src);
                if lc > state.best_lc {
                    state.best_lc = lc;
                    state.best_val = val;
                    state.holders = NodeSet::singleton(src);
                } else if lc == state.best_lc {
                    state.holders.insert(src);
                }
                if state.reps.len() < quorum {
                    return;
                }
                // Freshest of a quorum; restore the key in-epoch at the
                // snapshot taken when the access started (§4.2).
                self.shared.store.apply_max_restore(
                    state.meta.key,
                    &state.best_val,
                    state.best_lc,
                    state.snapshot,
                );
                state.holders.insert(self.me);
                if !self.stripped_slow && state.holders.len() < quorum {
                    // Full-ABD ablation: make the value quorum-visible
                    // before returning it (the §4.3 default skips this —
                    // RC only needs the read to observe missed writes).
                    state.w2 = Some(NodeSet::singleton(self.me));
                    state.meta.last_sent = now;
                    out.multicast(
                        self.me,
                        voters,
                        Msg::WriteMsg {
                            rid,
                            key: state.meta.key,
                            val: state.best_val.clone(),
                            lc: state.best_lc,
                        },
                    );
                    return;
                }
                Self::complete_in(
                    &self.shared,
                    &self.hook,
                    &mut self.sessions,
                    state.meta.sess,
                    state.meta.op_id,
                    state.meta.op.clone(),
                    OpOutput::Value(state.best_val.clone()),
                    state.meta.invoked_at,
                    now,
                );
                self.inflight.remove(rid);
            }
            Some(InFlight::Acquire(state)) => {
                state.delinquent |= delinquent;
                if state.decided {
                    // Round 1 already acted; this is a late replica.
                    return;
                }
                state.reps.insert(src);
                if lc > state.best_lc {
                    state.best_lc = lc;
                    state.best_val = val;
                    state.holders = NodeSet::singleton(src);
                } else if lc == state.best_lc {
                    state.holders.insert(src);
                }
                if state.reps.len() < quorum {
                    return;
                }
                state.decided = true;
                // Apply the freshest value locally either way.
                self.shared.store.apply_max(state.meta.key, &state.best_val, state.best_lc);
                if state.holders.len() >= quorum {
                    Self::finish_acquire_in(
                        &self.shared, &self.hook, &mut self.sessions, self.mode, self.me, state,
                        now, out,
                    );
                    self.inflight.remove(rid); // acquire complete
                    return;
                }
                // Write-back round (§3.3): make the value quorum-visible
                // before returning it. Acquires carry their tag (in the
                // boxed `WriteAcq` flavour) so the round's quorum also
                // performs delinquency discovery (Lemma 5.3).
                let acq_tag = match state.meta.op {
                    Op::Acquire { .. } if self.mode.has_barriers() => Some(state.meta.op_id),
                    _ => None,
                };
                state.w2 = Some(NodeSet::singleton(self.me));
                let (key, val, lc) = (state.meta.key, state.best_val.clone(), state.best_lc);
                match acq_tag {
                    Some(acq) => out.multicast(
                        self.me,
                        voters,
                        Msg::WriteAcq { rid, wb: Arc::new(WriteBack { key, val, lc, acq }) },
                    ),
                    None => out.multicast(self.me, voters, Msg::WriteMsg { rid, key, val, lc }),
                }
            }
            _ => {}
        }
    }

    pub(crate) fn on_write_ack(
        &mut self,
        src: kite_common::NodeId,
        rid: u64,
        delinquent: bool,
        now: u64,
        out: &mut Outbox<Msg>,
    ) {
        let quorum = self.quorum();
        let voters = self.voters();
        let Some(entry) = self.inflight.get_mut(rid) else { return };
        match entry {
            InFlight::Release(state) => {
                let finished = if let Some((_, acked)) = &mut state.w2 {
                    acked.insert(src);
                    acked.len() >= quorum
                } else {
                    false
                };
                if finished {
                    if state.barrier.slow.is_some() {
                        self.shared.counters.slow_releases.incr();
                    } else {
                        self.shared.counters.fast_releases.incr();
                    }
                    Self::complete_in(
                        &self.shared,
                        &self.hook,
                        &mut self.sessions,
                        state.meta.sess,
                        state.meta.op_id,
                        state.meta.op.clone(),
                        OpOutput::Done,
                        state.meta.invoked_at,
                        now,
                    );
                    // The value round stops retransmitting here; a replica
                    // whose copy was dropped would otherwise stay stale
                    // until the anti-entropy sweep finds it (the old
                    // livelock behind `threaded_mutex_exact_under_message
                    // _loss`: a strong CAS reads its base locally, so a
                    // replica that missed the last unlock spun forever).
                    // The value moves out of the removed entry — the
                    // common no-fill case never clones it.
                    let Some(InFlight::Release(s)) = self.inflight.remove(rid) else {
                        unreachable!("entry matched above")
                    };
                    let (lc, acked) = s.w2.expect("finished implies w2");
                    let missing = self.voters().minus(acked);
                    self.ae_completion_fill(missing, s.meta.key, s.val, lc, 0, out);
                }
            }
            InFlight::Acquire(state) => {
                state.delinquent |= delinquent;
                let finished = if let Some(acked) = &mut state.w2 {
                    acked.insert(src);
                    acked.len() >= quorum
                } else {
                    false
                };
                if finished {
                    Self::finish_acquire_in(
                        &self.shared, &self.hook, &mut self.sessions, self.mode, self.me, state,
                        now, out,
                    );
                    // Same completion-time repair as the release: the
                    // write-back round's non-ackers stop being
                    // retransmitted to now.
                    let Some(InFlight::Acquire(s)) = self.inflight.remove(rid) else {
                        unreachable!("entry matched above")
                    };
                    let acked = s.w2.expect("finished implies w2");
                    let missing = self.voters().minus(acked);
                    self.ae_completion_fill(missing, s.meta.key, s.best_val, s.best_lc, 0, out);
                }
            }
            InFlight::SlowRead(state) => {
                // Write-back round of the full-ABD ablation.
                let finished = if let Some(acked) = &mut state.w2 {
                    acked.insert(src);
                    acked.len() >= quorum
                } else {
                    false
                };
                if finished {
                    Self::complete_in(
                        &self.shared,
                        &self.hook,
                        &mut self.sessions,
                        state.meta.sess,
                        state.meta.op_id,
                        state.meta.op.clone(),
                        OpOutput::Value(state.best_val.clone()),
                        state.meta.invoked_at,
                        now,
                    );
                    self.inflight.remove(rid);
                }
            }
            InFlight::SlowWrite(state) => {
                // Value round of the full-ABD ablation: complete at a
                // quorum, then keep the entry alive as a tracked relaxed
                // write so later release barriers see its remaining acks.
                let finished = if let Some((_, acked)) = &mut state.w2 {
                    acked.insert(src);
                    acked.len() >= quorum
                } else {
                    false
                };
                if finished {
                    let (wlc, acked) = state.w2.expect("checked above");
                    let si = state.meta.sess;
                    Self::complete_in(
                        &self.shared,
                        &self.hook,
                        &mut self.sessions,
                        si,
                        state.meta.op_id,
                        state.meta.op.clone(),
                        OpOutput::Done,
                        state.meta.invoked_at,
                        now,
                    );
                    if self.mode.has_barriers() && !voters.minus(acked).is_empty() {
                        // Convert the entry in place (same rid, same slot):
                        // late replica acks to the original WriteMsg keep
                        // counting toward the relaxed write's ack set.
                        let es = EsWriteState {
                            meta: Meta {
                                sess: si,
                                op_id: state.meta.op_id,
                                key: state.meta.key,
                                op: state.meta.op.clone(),
                                invoked_at: now,
                                last_sent: now,
                            },
                            val: state.val.clone(),
                            lc: wlc,
                            acked,
                        };
                        *entry = InFlight::EsWrite(es);
                        self.sessions[si].write_window.push_back(rid);
                    } else {
                        self.inflight.remove(rid);
                    }
                }
            }
            // EsWrite entries never reach here: plain acks (including a
            // converted slow write's late WriteMsg acks) are routed to
            // `on_es_ack` by the worker's kind dispatch, and `WriteAck`
            // itself is only sent for acquire-tagged rounds.
            _ => {}
        }
    }

    /// Complete an acquire: barrier transition if deemed delinquent (§4.2),
    /// then return the value. Associated fn so it can run while the entry
    /// is still borrowed from the slab (the caller removes it afterwards).
    fn finish_acquire_in(
        shared: &NodeShared,
        hook: &Option<CompletionHook>,
        sessions: &mut [Session],
        mode: ProtocolMode,
        me: NodeId,
        state: &AcquireState,
        now: u64,
        out: &mut Outbox<Msg>,
    ) {
        if state.delinquent && mode.has_barriers() {
            // Transition to the slow path *before* completing the acquire:
            // bump the machine epoch (all keys fall out-of-epoch), then
            // broadcast the reset so later acquires are not re-notified
            // (§4.2.1; Lemmas 5.4, 5.6). The bump is elided if a concurrent
            // acquire already bumped after this one began.
            shared.bump_epoch_once(state.meta.invoked_at, now);
            shared.delinquency.reset(me, state.meta.op_id);
            out.multicast(me, shared.voters(), Msg::ResetBit { acq: state.meta.op_id });
        }
        Self::complete_in(
            shared,
            hook,
            sessions,
            state.meta.sess,
            state.meta.op_id,
            state.meta.op.clone(),
            OpOutput::Value(state.best_val.clone()),
            state.meta.invoked_at,
            now,
        );
    }

    pub(crate) fn on_slow_release_ack(
        &mut self,
        src: kite_common::NodeId,
        rid: u64,
        _now: u64,
        _out: &mut Outbox<Msg>,
    ) {
        let mut relief_done = false;
        if let Some(entry) = self.inflight.get_mut(rid) {
            match entry {
                InFlight::Release(s) => {
                    if let Some(sub) = &mut s.barrier.slow {
                        sub.acked.insert(src);
                    }
                }
                InFlight::Rmw(s) => {
                    if let Some(sub) = &mut s.barrier.slow {
                        sub.acked.insert(src);
                    }
                }
                InFlight::WindowRelief(s) => {
                    s.acked.insert(src);
                    relief_done = s.acked.len() >= self.quorum();
                }
                _ => {}
            }
        }
        if relief_done {
            if let Some(InFlight::WindowRelief(state)) = self.inflight.remove(rid) {
                self.finish_window_relief(rid, state);
            }
        }
        // Release/RMW barrier resolution is evaluated by `check_barriers`.
    }

    // =====================================================================
    // Release progression
    // =====================================================================

    /// Start the release's value round once the barrier is resolved and a
    /// quorum of stamps has been read. Returns true if round 2 started.
    /// Associated fn over the non-table fields (callable with `state`
    /// borrowed in place from the slab).
    fn try_advance_release(
        me: NodeId,
        quorum: usize,
        shared: &NodeShared,
        rid: u64,
        state: &mut ReleaseState,
        out: &mut Outbox<Msg>,
    ) -> bool {
        if !state.barrier.done || state.w2.is_some() || state.rts_reps.len() < quorum {
            return false;
        }
        // Mint + apply atomically (see `Store::stamp_apply`): the stamp
        // must rise above the round-1 quorum max *and* whatever a racing
        // local fast write stamped since — outside the lock the two mints
        // can collide on one `(version, mid)` with different values.
        let lc = shared.store.stamp_apply(state.meta.key, &state.val, state.rts_max, me, None);
        state.w2 = Some((lc, NodeSet::singleton(me)));
        out.multicast(me, shared.voters(), Msg::WriteMsg { rid, key: state.meta.key, val: state.val.clone(), lc });
        true
    }

    // =====================================================================
    // Barrier machinery (§4.2)
    // =====================================================================

    /// Evaluate all unresolved barriers: fast-path resolution, timeout →
    /// slow-release, slow-path resolution.
    ///
    /// Each waiter's barrier is *taken out* of its entry for the duration
    /// of the evaluation (a move, no allocation) so the rest of the table
    /// stays readable — the fast-path check peeks at the sibling EsWrite
    /// entries — and then put back. Entries are never removed and
    /// reinserted.
    pub(crate) fn check_barriers(&mut self, now: u64, out: &mut Outbox<Msg>) {
        if self.barrier_waiters.is_empty() {
            return;
        }
        let mut any_resolved = false;
        for i in 0..self.barrier_waiters.len() {
            let rid = self.barrier_waiters[i];
            let taken = match self.inflight.get_mut(rid) {
                Some(InFlight::Release(s)) => {
                    Some((s.meta.invoked_at, std::mem::replace(&mut s.barrier, Barrier::resolved())))
                }
                Some(InFlight::Rmw(s)) => {
                    Some((s.meta.invoked_at, std::mem::replace(&mut s.barrier, Barrier::resolved())))
                }
                None => None,
                Some(_) => unreachable!("barrier waiter must be release or rmw"),
            };
            let Some((invoked_at, mut barrier)) = taken else {
                // Entry already gone (op completed): drop the waiter.
                self.barrier_waiters[i] = u64::MAX;
                any_resolved = true;
                continue;
            };
            let done = self.evaluate_barrier(rid, invoked_at, &mut barrier, now, out);
            if !done {
                match self.inflight.get_mut(rid) {
                    Some(InFlight::Release(s)) => s.barrier = barrier,
                    Some(InFlight::Rmw(s)) => s.barrier = barrier,
                    _ => unreachable!("entry checked above"),
                }
                continue;
            }
            self.barrier_waiters[i] = u64::MAX;
            any_resolved = true;
            // Slow-path resolution subsumes the writes: delinquency is
            // published, so tracking (and retransmitting) them can stop.
            if barrier.slow.is_some() {
                for wi in 0..barrier.writes.len() {
                    let wrid = barrier.writes[wi];
                    if let Some(InFlight::EsWrite(w)) = self.inflight.remove(wrid) {
                        self.remove_from_window(w.meta.sess, wrid);
                    }
                }
            }
            // Put the resolved barrier back and run the deferred rounds.
            let mut consumed = false;
            let quorum = self.quorum();
            let voters = self.voters();
            match self.inflight.get_mut(rid) {
                Some(InFlight::Release(state)) => {
                    state.barrier = barrier;
                    if !state.rts_sent {
                        // Deferred LLC-read round (overlap ablation).
                        state.rts_sent = true;
                        state.meta.last_sent = now;
                        out.multicast(self.me, voters, Msg::RtsReq { rid, key: state.meta.key });
                    }
                    Self::try_advance_release(self.me, quorum, &self.shared, rid, state, out);
                }
                Some(InFlight::Rmw(state)) => {
                    state.barrier = barrier;
                    match state.phase {
                        RmwPhase::WaitBarrier => {
                            if let Some(output) = Self::rmw_enter_accept_in(
                                &self.shared, self.me, rid, state, now,
                                &mut self.rmw_retries, out,
                            ) {
                                Self::rmw_finish_in(
                                    &self.shared, &self.hook, &mut self.sessions, self.mode,
                                    self.me, state, output, now, out,
                                );
                                consumed = true;
                            }
                        }
                        RmwPhase::WaitBarrierPropose => {
                            // Deferred propose phase (overlap ablation).
                            state.meta.last_sent = now;
                            if let Some(output) =
                                Self::rmw_new_round_in(&self.shared, self.me, rid, state, out)
                            {
                                Self::rmw_finish_in(
                                    &self.shared, &self.hook, &mut self.sessions, self.mode,
                                    self.me, state, output, now, out,
                                );
                                consumed = true;
                            }
                        }
                        _ => {}
                    }
                }
                _ => unreachable!("entry checked above"),
            }
            if consumed {
                self.inflight.remove(rid);
            }
        }
        if any_resolved {
            self.barrier_waiters.retain(|&r| r != u64::MAX);
        }
    }

    /// One barrier's state transition. Returns whether it is now resolved.
    /// `rid` is the owning release/RMW's request id — the slow-release
    /// broadcast reuses it (message types disambiguate the replies). The
    /// barrier is passed detached from its entry (see `check_barriers`).
    fn evaluate_barrier(
        &mut self,
        rid: u64,
        invoked_at: u64,
        barrier: &mut Barrier,
        now: u64,
        out: &mut Outbox<Msg>,
    ) -> bool {
        if barrier.done {
            return true;
        }
        // Fast path: every prior write acked by all machines — its in-flight
        // entry is removed on the final ack, so "gone" means "acked by all".
        let all_gone = barrier.writes.iter().all(|w| !self.inflight.contains(*w));
        if all_gone && barrier.slow.is_none() {
            barrier.done = true;
            return true;
        }
        // Who is past due? A node joins the DM-set only for writes that
        // have waited out the timeout (counted from the *write's* issue —
        // a release behind a long-stuck write goes slow immediately instead
        // of re-paying the timeout; the §8.4 timeline depends on this) or
        // whose missing ackers are all already suspected. Acks merely in
        // flight for young writes must NOT mark healthy replicas delinquent
        // — that would cascade needless epoch bumps across the cluster.
        let dm_due = self.barrier_overdue_missing(&barrier.writes, now, invoked_at);
        match &mut barrier.slow {
            None => {
                if dm_due.is_empty() {
                    return false; // keep waiting for (young) acks
                }
                // §4.2 slow-path release: publish the DM-set, retransmit
                // the writes so they reach a quorum under loss.
                for n in dm_due {
                    self.shared.suspect(n);
                }
                for wi in 0..barrier.writes.len() {
                    self.retransmit_es_write(barrier.writes[wi], now, out);
                }
                self.shared.delinquency.mark_delinquent(dm_due);
                barrier.slow =
                    Some(SlowReleaseSub { dm: dm_due, acked: NodeSet::singleton(self.me) });
                self.shared.counters.slow_releases.incr();
                out.multicast(self.me, self.voters(), Msg::SlowRelease { rid, dm: dm_due });
                false
            }
            Some(sub) => {
                // More writes may have aged out since the DM broadcast:
                // extend it (the published set must cover every machine that
                // may miss a barrier write — Lemma 5.2).
                let extra = dm_due.minus(sub.dm);
                if !extra.is_empty() {
                    sub.dm = sub.dm.union(extra);
                    sub.acked = NodeSet::singleton(self.me);
                    self.shared.delinquency.mark_delinquent(extra);
                    out.multicast(self.me, self.voters(), Msg::SlowRelease { rid, dm: sub.dm });
                    return false;
                }
                // Slow path resolves when the DM broadcast is quorum-acked
                // and every prior write is quorum-acked with its remaining
                // non-ackers covered by the published DM (invariants 1+2 of
                // §4.2).
                let dm_ok = sub.acked.len() >= self.quorum();
                let dm = sub.dm;
                let all = self.voters();
                let writes_ok = barrier.writes.iter().all(|w| match self.inflight.get(*w) {
                    None => true,
                    Some(InFlight::EsWrite(es)) => {
                        es.acked.len() >= self.quorum()
                            && all.minus(es.acked).minus(dm).is_empty()
                    }
                    Some(_) => true,
                });
                if dm_ok && writes_ok {
                    barrier.done = true;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Nodes missing acks for barrier writes that are past due: the write
    /// (or the barrier itself) aged beyond the release timeout, or everyone
    /// the write is missing is already suspected.
    fn barrier_overdue_missing(&self, writes: &[u64], now: u64, barrier_invoked: u64) -> NodeSet {
        let all = self.voters();
        let suspected = self.shared.suspected();
        let barrier_overdue = now.saturating_sub(barrier_invoked) >= self.release_timeout;
        let mut dm = NodeSet::EMPTY;
        for w in writes {
            if let Some(InFlight::EsWrite(es)) = self.inflight.get(*w) {
                let missing = all.minus(es.acked);
                if missing.is_empty() {
                    continue;
                }
                let overdue = barrier_overdue
                    || now.saturating_sub(es.meta.invoked_at) >= self.release_timeout
                    || missing.minus(suspected).is_empty();
                if overdue {
                    dm = dm.union(missing);
                }
            }
        }
        dm
    }

    /// Start a write-window relief round for session `si` if its window is
    /// stuck: publish the missing ackers' delinquency to a quorum, then
    /// retire quorum-acked writes (see `WindowReliefState`). At most one
    /// relief per session.
    pub(crate) fn maybe_window_relief(&mut self, si: usize, now: u64, out: &mut Outbox<Msg>) {
        if !self.mode.has_barriers() || self.sessions[si].relief.is_some() {
            return;
        }
        let writes: Vec<u64> = self.sessions[si].write_window.iter().copied().collect();
        // Only *overdue* missing ackers are published — acks in flight for
        // young writes are not delinquency.
        let dm = self.barrier_overdue_missing(&writes, now, now);
        if dm.is_empty() {
            return; // acks are simply in flight; retry next tick
        }
        for n in dm {
            self.shared.suspect(n);
        }
        self.shared.delinquency.mark_delinquent(dm);
        self.shared.counters.slow_releases.incr();
        let op_id = OpId::new(self.sessions[si].id, u64::MAX); // synthetic
        let meta = Meta {
            sess: si,
            op_id,
            key: Key(0),
            op: Op::Read { key: Key(0) },
            invoked_at: now,
            last_sent: now,
        };
        let rid = self.inflight.insert(InFlight::WindowRelief(WindowReliefState {
            meta,
            dm,
            acked: NodeSet::singleton(self.me),
            writes,
        }));
        self.sessions[si].relief = Some(rid);
        out.multicast(self.me, self.voters(), Msg::SlowRelease { rid, dm });
    }

    /// Relief's DM broadcast is quorum-acked: retire every covered write
    /// that reached a quorum; the session's window drains and it resumes.
    fn finish_window_relief(&mut self, rid: u64, state: WindowReliefState) {
        for w in &state.writes {
            let retire = match self.inflight.get(*w) {
                Some(InFlight::EsWrite(es)) => {
                    es.acked.len() >= self.quorum()
                        && self.voters().minus(es.acked).minus(state.dm).is_empty()
                }
                _ => false,
            };
            if retire {
                if let Some(InFlight::EsWrite(es)) = self.inflight.remove(*w) {
                    self.remove_from_window(es.meta.sess, *w);
                }
            }
        }
        self.sessions[state.meta.sess].relief = None;
        let _ = rid;
    }

    fn retransmit_es_write(&mut self, rid: u64, now: u64, out: &mut Outbox<Msg>) {
        let me = self.me;
        let voters = self.voters();
        if let Some(InFlight::EsWrite(es)) = self.inflight.get_mut(rid) {
            es.meta.last_sent = now;
            let missing = voters.minus(es.acked);
            let msg = Msg::EsWrite { rid, key: es.meta.key, val: es.val.clone(), lc: es.lc };
            out.multicast(me, missing, msg);
        }
    }

    // =====================================================================
    // Paxos proposer (§3.4)
    // =====================================================================

    pub(crate) fn on_promise_rep(
        &mut self,
        src: kite_common::NodeId,
        rid: u64,
        ballot: Lc,
        outcome: PromiseOutcome,
        delinquent: bool,
        now: u64,
        out: &mut Outbox<Msg>,
    ) {
        let quorum = self.quorum();
        let Some(InFlight::Rmw(state)) = self.inflight.get_mut(rid) else { return };
        state.delinquent |= delinquent;
        if state.phase != RmwPhase::Propose || ballot != state.ballot {
            return; // stale round
        }
        match outcome {
            PromiseOutcome::Promised { accepted } => {
                state.promises.insert(src);
                if let Some(boxed) = accepted {
                    let (b, cmd) = *boxed;
                    if state.best_accepted.as_ref().is_none_or(|(bb, _)| b > *bb) {
                        state.best_accepted = Some((b, cmd));
                    }
                }
                if state.promises.len() < quorum {
                    return;
                }
                // Phase-1 quorum reached: pick the command (adopt the
                // highest accepted, else evaluate our own RMW on the local
                // base value) and move to the accept phase, gated on the
                // release barrier (§4.2 "RMWs").
                match Self::rmw_decide_cmd(&self.shared, self.me, state) {
                    RmwDecision::Finished(output) => {
                        // Comparison failed against a stable base (or the
                        // op turned out already committed): done without
                        // running consensus.
                        Self::rmw_finish_in(
                            &self.shared, &self.hook, &mut self.sessions, self.mode, self.me,
                            state, output, now, out,
                        );
                        self.inflight.remove(rid);
                        return;
                    }
                    RmwDecision::Restart => {
                        state.meta.last_sent = now;
                        if let Some(output) =
                            Self::rmw_new_round_in(&self.shared, self.me, rid, state, out)
                        {
                            Self::rmw_finish_in(
                                &self.shared, &self.hook, &mut self.sessions, self.mode, self.me,
                                state, output, now, out,
                            );
                            self.inflight.remove(rid);
                        }
                        return;
                    }
                    RmwDecision::Cmd => {}
                }
                if state.barrier.done {
                    if let Some(output) = Self::rmw_enter_accept_in(
                        &self.shared, self.me, rid, state, now, &mut self.rmw_retries, out,
                    ) {
                        Self::rmw_finish_in(
                            &self.shared, &self.hook, &mut self.sessions, self.mode, self.me,
                            state, output, now, out,
                        );
                        self.inflight.remove(rid);
                    }
                } else {
                    state.phase = RmwPhase::WaitBarrier;
                }
            }
            PromiseOutcome::NackBallot { promised } => {
                state.ballot_floor = state.ballot_floor.max(promised.version());
                if state.retry_at == 0 {
                    state.retry_at = now + rmw_backoff(rid, state.backoff_exp);
                    state.backoff_exp = state.backoff_exp.saturating_add(1);
                    self.rmw_retries.push((rid, state.retry_at));
                }
            }
            PromiseOutcome::AlreadyCommitted(cu) => {
                // Catch up to the decided prefix: merge the acceptor's ring
                // evidence and advance the slot under one lock *before*
                // applying the value (evidence travels with advancement —
                // see `crate::msg::Repair`).
                let (slot, cur_lc) = (cu.slot, cu.cur_lc);
                {
                    let pax = self.shared.store.paxos(state.meta.key);
                    pax.lock().merge_evidence(&cu.ring, slot);
                }
                self.shared.store.apply_max(state.meta.key, &cu.cur_val, cur_lc);
                if let Some(result) = &cu.done {
                    // Our command was helped to commit by another proposer:
                    // complete exactly once with its recorded result — after
                    // making the caught-up value (which subsumes our commit)
                    // quorum-visible.
                    state.pending_output = Some(rmw_output(state.kind, result));
                    Self::rmw_start_commit_round_in(
                        &self.shared,
                        self.me,
                        rid,
                        state,
                        slot.saturating_sub(1),
                        cu.cur_val,
                        cur_lc,
                        None,
                        out,
                    );
                    return;
                }
                // Retry at the new slot with a fresh evaluation.
                if let Some(output) = Self::rmw_new_round_in(&self.shared, self.me, rid, state, out)
                {
                    Self::rmw_finish_in(
                        &self.shared, &self.hook, &mut self.sessions, self.mode, self.me, state,
                        output, now, out,
                    );
                    self.inflight.remove(rid);
                }
            }
            PromiseOutcome::Lagging { slot: _ } => {
                // The replica missed a commit: repair it with the decided
                // prefix (the key's current value summarizes it, the ring
                // evidence travels along) and let the retransmission logic
                // re-propose. A solicited repair, so it is not gated by
                // `commit_fill` — Paxos liveness depends on lagging
                // acceptors catching up.
                debug_assert!(state.slot > 0, "Lagging implies the proposer is ahead");
                let key = state.meta.key;
                let (slot, ring) = self.shared.store.paxos_evidence(key);
                let slot = slot.max(state.slot);
                let view = self.shared.store.view(key);
                self.shared.counters.ae_repair_vals.incr();
                let r = Box::new(Repair { key, val: view.val, lc: view.lc, slot, ring });
                self.shared.counters.ae_repair_bytes.add(crate::antientropy::repair_wire_bytes(&r));
                out.send(src, Msg::RepairVal { r });
            }
        }
    }

    /// Pick the command for a phase-1 quorum: adopt the highest accepted,
    /// else evaluate our own RMW on the local base value. See
    /// [`RmwDecision`] for the outcomes.
    fn rmw_decide_cmd(shared: &NodeShared, me: NodeId, state: &mut RmwState) -> RmwDecision {
        if let Some((_, cmd)) = state.best_accepted.take() {
            state.helping = cmd.op != state.meta.op_id;
            state.cmd = Some(Arc::new(cmd));
            return RmwDecision::Cmd;
        }
        let base = shared.store.view(state.meta.key).val;
        // The commit stamp is fixed here, at decide time, and travels
        // with the command (msg::Cmd::lc): it must rise above everything
        // this proposer has seen — in particular the previous slot's
        // commit, which it applied before advancing — so commit clocks
        // grow monotonically along each key's slot chain at *every*
        // committer, owner or helper.
        //
        // Minted *outside* the key's seqlock (the gather happens here, the
        // apply at commit time), so it lives in the RMW half of the stamp
        // space (`Lc::succ_rmw`): a concurrent fast write that observed the
        // same clock mints `succ` with an untagged mid byte, which can
        // never equal this stamp — without the partition the two could tie
        // on `(version, mid)` with different values, a divergence LLC-max
        // treats as converged and no repair can heal (pinned by the kvs
        // race test `rmw_mints_never_collide_with_relaxed_mints`).
        let clc = shared.store.read_lc(state.meta.key).succ_rmw(me);
        let cmd = match state.kind {
            RmwKind::Faa { delta } => Cmd {
                op: state.meta.op_id,
                new_val: Val::from_u64(base.as_u64().wrapping_add(delta)),
                result: base,
                lc: clc,
            },
            RmwKind::Cas { .. } => {
                if base == state.expect {
                    Cmd { op: state.meta.op_id, new_val: state.new.clone(), result: base, lc: clc }
                } else {
                    // The failed comparison is the one completion that
                    // bypasses consensus, so it must be certain the
                    // non-EMPTY base is not *our own command's* work.
                    // While this round's promises were in flight, a
                    // dueling proposer may have adopted our accepted
                    // command from an earlier round and committed it — and
                    // that commit's arrival is precisely what made `base`
                    // non-EMPTY. Two guards, under one lock:
                    //   * the committed ring knows the op → complete with
                    //     its recorded result (the commit reached us);
                    //   * the slot moved under the round → Restart: the
                    //     base embodies a commit this round hasn't
                    //     reasoned about — possibly ours arriving
                    //     *ring-lessly* via an anti-entropy repair that
                    //     outran the commit message. The re-propose hits
                    //     acceptors whose rings hold the commit
                    //     (`AlreadyCommitted { done }`), recovering the
                    //     true result.
                    // Without these, a strong CAS could report `ok: false`
                    // to a caller that actually holds the lock — the
                    // second, rarer hang mode of `threaded_mutex_exact_
                    // under_message_loss` (the watchdog's ring dump showed
                    // the spinning session's own winning entry).
                    let (committed, slot_moved) = {
                        let pax = shared.store.paxos(state.meta.key);
                        let pax = pax.lock();
                        (
                            pax.committed.find(state.meta.op_id).map(|c| c.result.clone()),
                            pax.slot != state.slot,
                        )
                    };
                    if let Some(result) = committed {
                        return RmwDecision::Finished(rmw_output(state.kind, &result));
                    }
                    if slot_moved {
                        return RmwDecision::Restart;
                    }
                    return RmwDecision::Finished(OpOutput::Cas { ok: false, observed: base });
                }
            }
            RmwKind::Put => Cmd {
                op: state.meta.op_id,
                new_val: state.new.clone(),
                result: base,
                lc: clc,
            },
        };
        state.helping = false;
        state.cmd = Some(Arc::new(cmd));
        RmwDecision::Cmd
    }

    /// Start phase 2: self-accept under the key's Paxos lock, broadcast.
    /// If the **slot** moved under the round (a commit landed), a fresh
    /// round starts immediately — retrying is productive and propagates an
    /// already-committed result exactly like `rmw_new_round_in`. If only
    /// the **ballot** was outrun (a dueling proposer raised the shared
    /// promise — with several sessions per worker the duel is usually a
    /// *sibling on this very node*), the round parks behind the same
    /// exponential backoff a remote nack gets: re-proposing immediately
    /// would raise the promise right back over the sibling, and two
    /// same-node proposers then phase-lock at wire latency — observed
    /// livelocking the TCP loopback bench at ~24k ballots/s while both
    /// sessions sat in Propose with only their self-promise.
    #[must_use]
    pub(crate) fn rmw_enter_accept_in(
        shared: &NodeShared,
        me: NodeId,
        rid: u64,
        state: &mut RmwState,
        now: u64,
        retries: &mut Vec<(u64, u64)>,
        out: &mut Outbox<Msg>,
    ) -> Option<OpOutput> {
        let cmd = state.cmd.clone().expect("accept without command");
        enum Gate {
            Ok,
            SlotMoved,
            BallotLost(u64),
        }
        let gate = {
            let pax = shared.store.paxos(state.meta.key);
            let mut pax = pax.lock();
            if pax.slot != state.slot {
                Gate::SlotMoved
            } else if state.ballot < pax.promised {
                Gate::BallotLost(pax.promised.version())
            } else {
                pax.promised = state.ballot;
                pax.accepted = Some(AcceptedCmd {
                    op: cmd.op,
                    ballot: state.ballot,
                    new_val: cmd.new_val.clone(),
                    result: cmd.result.clone(),
                    lc: cmd.lc,
                });
                Gate::Ok
            }
        };
        match gate {
            Gate::Ok => {}
            Gate::SlotMoved => return Self::rmw_new_round_in(shared, me, rid, state, out),
            Gate::BallotLost(promised_version) => {
                state.ballot_floor = state.ballot_floor.max(promised_version);
                if state.retry_at == 0 {
                    state.retry_at = now + rmw_backoff(rid, state.backoff_exp);
                    state.backoff_exp = state.backoff_exp.saturating_add(1);
                    retries.push((rid, state.retry_at));
                }
                return None;
            }
        }
        state.phase = RmwPhase::Accept;
        state.retry_at = 0;
        state.backoff_exp = 0;
        state.accepts = NodeSet::singleton(me);
        out.multicast(
            me,
            shared.voters(),
            Msg::Accept { rid, key: state.meta.key, slot: state.slot, ballot: state.ballot, cmd },
        );
        None
    }

    pub(crate) fn on_accept_rep(
        &mut self,
        src: kite_common::NodeId,
        rid: u64,
        ballot: Lc,
        ok: bool,
        promised: Lc,
        delinquent: bool,
        now: u64,
        out: &mut Outbox<Msg>,
    ) {
        let quorum = self.quorum();
        let Some(InFlight::Rmw(state)) = self.inflight.get_mut(rid) else { return };
        state.delinquent |= delinquent;
        if state.phase != RmwPhase::Accept || ballot != state.ballot {
            return;
        }
        if ok {
            state.accepts.insert(src);
            if state.accepts.len() >= quorum {
                Self::rmw_commit_in(&self.shared, self.me, rid, state, out);
            }
        } else {
            state.ballot_floor = state.ballot_floor.max(promised.version());
            if state.retry_at == 0 {
                state.retry_at = now + rmw_backoff(rid, state.backoff_exp);
                state.backoff_exp = state.backoff_exp.saturating_add(1);
                self.rmw_retries.push((rid, state.retry_at));
            }
        }
    }

    /// Phase-2 quorum: the command is decided. Apply, record, learn, then
    /// run the commit round — the RMW completes (or, when helping, our own
    /// round restarts) only once the commit is visible at a quorum (§3.4's
    /// third broadcast round).
    fn rmw_commit_in(
        shared: &NodeShared,
        me: NodeId,
        rid: u64,
        state: &mut RmwState,
        out: &mut Outbox<Msg>,
    ) {
        let cmd = state.cmd.clone().expect("commit without command");
        let key = state.meta.key;
        // The committed value is stamped with the clock fixed at decide
        // time (cmd.lc) — identical for every committer of this slot, so
        // the per-key commit-clock chain is unique (see msg::Cmd::lc).
        let lc = cmd.lc;
        shared.store.apply_max(key, &cmd.new_val, lc);
        {
            let pax = shared.store.paxos(key);
            let mut pax = pax.lock();
            if pax.committed.find(cmd.op).is_none() {
                pax.committed.push(RmwCommit { op: cmd.op, slot: state.slot, result: cmd.result.clone() });
            }
            pax.advance_past(state.slot);
        }
        state.pending_output =
            (!state.helping).then(|| rmw_output(state.kind, &cmd.result));
        let slot = state.slot;
        let meta = Some((cmd.op, cmd.result.clone()));
        let val = cmd.new_val.clone();
        Self::rmw_start_commit_round_in(shared, me, rid, state, slot, val, lc, meta, out);
    }

    /// Broadcast the commit and wait for a visibility quorum.
    #[allow(clippy::too_many_arguments)]
    fn rmw_start_commit_round_in(
        shared: &NodeShared,
        me: NodeId,
        rid: u64,
        state: &mut RmwState,
        slot: u64,
        val: Val,
        lc: Lc,
        meta: Option<(OpId, Val)>,
        out: &mut Outbox<Msg>,
    ) {
        shared.store.apply_max(state.meta.key, &val, lc);
        state.phase = RmwPhase::Commit;
        state.retry_at = 0;
        state.commits = NodeSet::singleton(me);
        // One allocation for the whole round: the broadcast unicasts,
        // retransmissions and the completion-time catch-up fill all clone
        // this Arc.
        let payload = Arc::new(CommitPayload { slot, val, lc, meta });
        state.commit_bcast = Some(Arc::clone(&payload));
        out.multicast(me, shared.voters(), Msg::Commit { rid, key: state.meta.key, c: payload });
    }

    /// Commit visibility acks: when a quorum holds the committed value, the
    /// RMW completes (or, when helping, our own command goes again).
    pub(crate) fn on_commit_ack(
        &mut self,
        src: kite_common::NodeId,
        rid: u64,
        now: u64,
        out: &mut Outbox<Msg>,
    ) {
        let quorum = self.quorum();
        let voters = self.voters();
        let Some(InFlight::Rmw(state)) = self.inflight.get_mut(rid) else { return };
        if state.phase != RmwPhase::Commit {
            return;
        }
        state.commits.insert(src);
        if state.commits.len() < quorum {
            return;
        }
        // The round ends here (the entry is removed or restarted below), so
        // replicas outside the visibility quorum would otherwise only catch
        // up on the key's next consensus round. Hand them to the
        // anti-entropy subsystem as a targeted repair push — the periodic
        // sweep would heal them anyway (tests prove sufficiency), the push
        // merely does it within one RTT instead of one sweep interval.
        if !voters.minus(state.commits).is_empty() {
            if let Some(cb) = &state.commit_bcast {
                // Pre-gate before touching the payload: the common case
                // (fills on, nobody suspected) must not clone the value.
                let targets = Self::fill_targets_in(
                    self.commit_fill,
                    &self.shared,
                    voters.minus(state.commits),
                );
                if !targets.is_empty() {
                    let (key, val, lc, next_slot) =
                        (state.meta.key, cb.val.clone(), cb.lc, cb.slot + 1);
                    self.ae_completion_fill(targets, key, val, lc, next_slot, out);
                }
            }
        }
        let Some(InFlight::Rmw(state)) = self.inflight.get_mut(rid) else { unreachable!() };
        match state.pending_output.take() {
            Some(output) => {
                Self::rmw_finish_in(
                    &self.shared, &self.hook, &mut self.sessions, self.mode, self.me, state,
                    output, now, out,
                );
                self.inflight.remove(rid);
            }
            None => {
                // We were helping: our own command goes next — in a fresh
                // round under a *re-keyed* rid. Removing and reinserting the
                // entry bumps the slot generation, so any straggler ack from
                // the just-finished commit round goes stale and can never be
                // counted toward the new round's visibility quorum (commit
                // acks are plain rids — unlike `PromiseRep`/`AcceptRep`
                // there is no echoed ballot to filter stale rounds on).
                let entry = self.inflight.remove(rid).expect("entry borrowed above");
                let new_rid = self.inflight.insert(entry);
                let Some(InFlight::Rmw(state)) = self.inflight.get_mut(new_rid) else {
                    unreachable!("just inserted")
                };
                let si = state.meta.sess;
                if let Some(output) =
                    Self::rmw_new_round_in(&self.shared, self.me, new_rid, state, out)
                {
                    Self::rmw_finish_in(
                        &self.shared, &self.hook, &mut self.sessions, self.mode, self.me, state,
                        output, now, out,
                    );
                    self.inflight.remove(new_rid);
                } else if self.sessions[si].blocked_on == Some(rid) {
                    self.sessions[si].blocked_on = Some(new_rid);
                }
            }
        }
    }

    /// Complete an RMW: acquire-side barrier transition (§4.2 "RMWs"), then
    /// deliver the result. Associated fn so it can run while the entry is
    /// still borrowed from the slab; the caller removes the entry
    /// afterwards. (A stale entry in `barrier_waiters` is cleaned up by the
    /// next `check_barriers` pass.)
    fn rmw_finish_in(
        shared: &NodeShared,
        hook: &Option<CompletionHook>,
        sessions: &mut [Session],
        mode: ProtocolMode,
        me: NodeId,
        state: &RmwState,
        output: OpOutput,
        now: u64,
        out: &mut Outbox<Msg>,
    ) {
        if state.delinquent && mode.has_barriers() {
            shared.bump_epoch_once(state.meta.invoked_at, now);
            shared.delinquency.reset(me, state.meta.op_id);
            out.multicast(me, shared.voters(), Msg::ResetBit { acq: state.meta.op_id });
        }
        Self::complete_in(
            shared,
            hook,
            sessions,
            state.meta.sess,
            state.meta.op_id,
            state.meta.op.clone(),
            output,
            state.meta.invoked_at,
            now,
        );
    }

    // =====================================================================
    // Retransmission / timers
    // =====================================================================

    /// Periodic scan: retransmit quorum-seeking requests to non-responders.
    /// A dense walk over the slab in slot order (deterministic) — no key
    /// collection, no sorting, no hashing.
    pub(crate) fn scan_retransmits(&mut self, now: u64, out: &mut Outbox<Msg>) {
        let me = self.me;
        let quorum = self.quorum();
        let all = self.voters();
        let retransmit = self.retransmit;
        let barriers = self.mode.has_barriers();
        let suspected = self.shared.suspected();
        for (rid, entry) in self.inflight.iter_mut() {
            let due = now.saturating_sub(entry.meta().last_sent) >= retransmit;
            if !due {
                continue;
            }
            match entry {
                InFlight::EsWrite(es) => {
                    // Retransmit to non-ackers, but never chase *suspected*
                    // replicas once a quorum holds the write: recovery for
                    // those is the delinquency mechanism's job, and blind
                    // retransmission toward a dead node is a traffic storm.
                    if !all.minus(es.acked).is_empty() {
                        let missing = all.minus(es.acked);
                        let targets = if es.acked.len() < quorum {
                            missing
                        } else {
                            missing.minus(suspected)
                        };
                        es.meta.last_sent = now;
                        if !targets.is_empty() {
                            let msg = Msg::EsWrite {
                                rid,
                                key: es.meta.key,
                                val: es.val.clone(),
                                lc: es.lc,
                            };
                            out.multicast(me, targets, msg);
                        }
                    }
                }
                InFlight::SlowRead(s) => {
                    s.meta.last_sent = now;
                    match &s.w2 {
                        Some(acked) => out.multicast(
                            me,
                            all.minus(*acked),
                            Msg::WriteMsg {
                                rid,
                                key: s.meta.key,
                                val: s.best_val.clone(),
                                lc: s.best_lc,
                            },
                        ),
                        None => out.multicast(
                            me,
                            all.minus(s.reps),
                            Msg::ReadReq { rid, key: s.meta.key, acq: None },
                        ),
                    }
                }
                InFlight::SlowWrite(s) => {
                    s.meta.last_sent = now;
                    match &s.w2 {
                        Some((lc, acked)) => out.multicast(
                            me,
                            all.minus(*acked),
                            Msg::WriteMsg { rid, key: s.meta.key, val: s.val.clone(), lc: *lc },
                        ),
                        None => out.multicast(
                            me,
                            all.minus(s.reps),
                            Msg::RtsReq { rid, key: s.meta.key },
                        ),
                    }
                }
                InFlight::Release(s) => {
                    s.meta.last_sent = now;
                    if let (Some(sub), false) = (&s.barrier.slow, s.barrier.done) {
                        out.multicast(
                            me,
                            all.minus(sub.acked),
                            Msg::SlowRelease { rid, dm: sub.dm },
                        );
                    }
                    match &s.w2 {
                        Some((lc, acked)) => out.multicast(
                            me,
                            all.minus(*acked),
                            Msg::WriteMsg { rid, key: s.meta.key, val: s.val.clone(), lc: *lc },
                        ),
                        None if s.rts_sent => out.multicast(
                            me,
                            all.minus(s.rts_reps),
                            Msg::RtsReq { rid, key: s.meta.key },
                        ),
                        None => {} // deferred round 1: nothing sent yet
                    }
                }
                InFlight::Acquire(s) => {
                    s.meta.last_sent = now;
                    let acq_tag = match s.meta.op {
                        Op::Acquire { .. } if barriers => Some(s.meta.op_id),
                        _ => None,
                    };
                    match &s.w2 {
                        // Rebuilding the WriteAcq Arc here is fine: the
                        // retransmit path is cold by definition.
                        Some(acked) => match acq_tag {
                            Some(acq) => out.multicast(
                                me,
                                all.minus(*acked),
                                Msg::WriteAcq {
                                    rid,
                                    wb: Arc::new(WriteBack {
                                        key: s.meta.key,
                                        val: s.best_val.clone(),
                                        lc: s.best_lc,
                                        acq,
                                    }),
                                },
                            ),
                            None => out.multicast(
                                me,
                                all.minus(*acked),
                                Msg::WriteMsg {
                                    rid,
                                    key: s.meta.key,
                                    val: s.best_val.clone(),
                                    lc: s.best_lc,
                                },
                            ),
                        },
                        None => out.multicast(
                            me,
                            all.minus(s.reps),
                            Msg::ReadReq { rid, key: s.meta.key, acq: acq_tag },
                        ),
                    }
                }
                InFlight::WindowRelief(s) => {
                    s.meta.last_sent = now;
                    out.multicast(me, all.minus(s.acked), Msg::SlowRelease { rid, dm: s.dm });
                }
                InFlight::Rmw(s) => {
                    s.meta.last_sent = now;
                    if let (Some(sub), false) = (&s.barrier.slow, s.barrier.done) {
                        out.multicast(
                            me,
                            all.minus(sub.acked),
                            Msg::SlowRelease { rid, dm: sub.dm },
                        );
                    }
                    match s.phase {
                        RmwPhase::Propose => out.multicast(
                            me,
                            all.minus(s.promises),
                            Msg::Propose {
                                rid,
                                key: s.meta.key,
                                slot: s.slot,
                                ballot: s.ballot,
                                op: s.meta.op_id,
                            },
                        ),
                        RmwPhase::Accept => {
                            if let Some(cmd) = &s.cmd {
                                out.multicast(
                                    me,
                                    all.minus(s.accepts),
                                    Msg::Accept {
                                        rid,
                                        key: s.meta.key,
                                        slot: s.slot,
                                        ballot: s.ballot,
                                        cmd: Arc::clone(cmd),
                                    },
                                );
                            }
                        }
                        RmwPhase::Commit => {
                            if let Some(cb) = &s.commit_bcast {
                                out.multicast(
                                    me,
                                    all.minus(s.commits),
                                    Msg::Commit { rid, key: s.meta.key, c: Arc::clone(cb) },
                                );
                            }
                        }
                        RmwPhase::WaitBarrier | RmwPhase::WaitBarrierPropose => {}
                    }
                }
            }
        }
    }

    /// Fire due RMW conflict backoffs (called every tick).
    pub(crate) fn fire_rmw_retries(&mut self, now: u64, out: &mut Outbox<Msg>) {
        if self.rmw_retries.is_empty() {
            return;
        }
        let due: Vec<u64> = self
            .rmw_retries
            .iter()
            .filter(|&&(_, at)| now >= at)
            .map(|&(rid, _)| rid)
            .collect();
        if due.is_empty() {
            return;
        }
        self.rmw_retries.retain(|&(_, at)| now < at);
        for rid in due {
            let Some(InFlight::Rmw(state)) = self.inflight.get_mut(rid) else { continue };
            // Only restart if the round is still stuck (a quorum may have
            // arrived after the nack; phase transitions clear retry_at).
            if state.retry_at != 0 && now >= state.retry_at {
                if let Some(output) = Self::rmw_new_round_in(&self.shared, self.me, rid, state, out)
                {
                    Self::rmw_finish_in(
                        &self.shared, &self.hook, &mut self.sessions, self.mode, self.me, state,
                        output, now, out,
                    );
                    self.inflight.remove(rid);
                }
            }
        }
    }
}

/// Map an RMW result value to its API output.
fn rmw_output(kind: RmwKind, result: &Val) -> OpOutput {
    match kind {
        RmwKind::Faa { .. } => OpOutput::Faa(result.as_u64()),
        RmwKind::Cas { .. } => OpOutput::Cas { ok: true, observed: result.clone() },
        RmwKind::Put => OpOutput::Done,
    }
}
