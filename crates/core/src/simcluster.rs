//! Kite on the deterministic simulator: reproducible protocol executions
//! in virtual time, used by the correctness test-suites and the benchmark
//! harnesses (see DESIGN.md §4 for why benchmarks run in virtual time).

use std::sync::Arc;

use kite_common::stats::ProtoCounters;
use kite_common::{ClusterConfig, NodeId, SessionId};
use kite_simnet::{Sim, SimCfg};

use crate::api::CompletionHook;
use crate::nodestate::NodeShared;
use crate::session::{ProtocolMode, Session, SessionDriver};
use crate::worker::Worker;

/// A deterministic, single-threaded Kite deployment on virtual time.
pub struct SimCluster {
    /// The discrete-event executor; actors are the Kite workers.
    pub sim: Sim<Worker>,
    shared: Vec<Arc<NodeShared>>,
    counters: Vec<Arc<ProtoCounters>>,
    cfg: ClusterConfig,
}

impl SimCluster {
    /// Build a simulated deployment.
    ///
    /// `drivers` is called once per session to produce its driver (script
    /// or idle); `hook` observes every completion cluster-wide.
    pub fn build(
        cfg: ClusterConfig,
        mode: ProtocolMode,
        sim_cfg: SimCfg,
        mut drivers: impl FnMut(SessionId) -> SessionDriver,
        hook: Option<CompletionHook>,
    ) -> Self {
        cfg.validate().expect("invalid cluster config");
        let counters: Vec<Arc<ProtoCounters>> =
            (0..cfg.nodes).map(|_| Arc::new(ProtoCounters::default())).collect();
        let shared: Vec<Arc<NodeShared>> = (0..cfg.nodes)
            .map(|n| NodeShared::new(NodeId(n as u8), cfg.clone(), Arc::clone(&counters[n])))
            .collect();

        let mut actors: Vec<Vec<Worker>> = Vec::with_capacity(cfg.nodes);
        #[allow(clippy::needless_range_loop)] // n doubles as the NodeId
        for n in 0..cfg.nodes {
            let mut per_node = Vec::with_capacity(cfg.workers_per_node);
            for w in 0..cfg.workers_per_node {
                let mut sessions = Vec::with_capacity(cfg.sessions_per_worker);
                for i in 0..cfg.sessions_per_worker {
                    let slot = (w * cfg.sessions_per_worker + i) as u32;
                    let sid = SessionId::new(NodeId(n as u8), slot);
                    let mut sess = Session::new(sid);
                    sess.driver = drivers(sid);
                    sessions.push(sess);
                }
                per_node.push(Worker::new(
                    w,
                    Arc::clone(&shared[n]),
                    mode,
                    sessions,
                    hook.clone(),
                ));
            }
            actors.push(per_node);
        }

        SimCluster { sim: Sim::new(actors, sim_cfg), shared, counters, cfg }
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Per-node shared state.
    pub fn shared(&self, node: NodeId) -> &Arc<NodeShared> {
        &self.shared[node.idx()]
    }

    /// Per-node counters.
    pub fn counters(&self, node: NodeId) -> &ProtoCounters {
        &self.counters[node.idx()]
    }

    /// Total completed requests across the deployment.
    pub fn total_completed(&self) -> u64 {
        self.counters.iter().map(|c| c.completed.get()).sum()
    }

    /// Completed requests on one node.
    pub fn node_completed(&self, node: NodeId) -> u64 {
        self.counters[node.idx()].completed.get()
    }

    /// Run `dur_ns` of virtual time.
    pub fn run_for(&mut self, dur_ns: u64) {
        self.sim.run_for(dur_ns);
    }

    /// Run until all scripts finish and the network drains, or `max_ns` is
    /// reached. Returns true on quiescence.
    pub fn run_until_quiesce(&mut self, max_ns: u64) -> bool {
        self.sim.run_until_quiesce(max_ns)
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.sim.now()
    }

    /// Throughput over a window, in million requests per second of
    /// *virtual* time.
    pub fn mreqs(completed: u64, window_ns: u64) -> f64 {
        completed as f64 / (window_ns as f64 / 1e9) / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Op;
    use kite_common::{Key, Val};

    /// Smallest end-to-end smoke test: one session writes then reads its
    /// own key through the full Kite stack on the simulator.
    #[test]
    fn single_session_write_read() {
        let done: Arc<std::sync::Mutex<Vec<crate::api::Completion>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let done2 = Arc::clone(&done);
        let hook: CompletionHook = Arc::new(move |c| done2.lock().unwrap().push(c.clone()));

        let mut sc = SimCluster::build(
            ClusterConfig::small(),
            ProtocolMode::Kite,
            SimCfg::default(),
            |sid| {
                if sid == SessionId::new(NodeId(0), 0) {
                    SessionDriver::Script(Box::new(|seq| match seq {
                        0 => Some(Op::Write { key: Key(7), val: Val::from_u64(41) }),
                        1 => Some(Op::Read { key: Key(7) }),
                        _ => None,
                    }))
                } else {
                    SessionDriver::Idle
                }
            },
            Some(hook),
        );
        assert!(sc.run_until_quiesce(1_000_000_000), "must quiesce");
        let done = done.lock().unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(done[1].output.value().unwrap().as_u64(), 41, "read-your-write");
        assert_eq!(sc.total_completed(), 2);
    }

    /// Relaxed writes propagate to all replicas (ES broadcast).
    #[test]
    fn es_write_reaches_all_replicas() {
        let mut sc = SimCluster::build(
            ClusterConfig::small(),
            ProtocolMode::Kite,
            SimCfg::default(),
            |sid| {
                if sid == SessionId::new(NodeId(0), 0) {
                    SessionDriver::Script(Box::new(|seq| match seq {
                        0 => Some(Op::Write { key: Key(3), val: Val::from_u64(99) }),
                        _ => None,
                    }))
                } else {
                    SessionDriver::Idle
                }
            },
            None,
        );
        assert!(sc.run_until_quiesce(1_000_000_000));
        for n in 0..3u8 {
            assert_eq!(
                sc.shared(NodeId(n)).store.view(Key(3)).val.as_u64(),
                99,
                "replica {n} must have the write"
            );
        }
    }

    /// Releases and acquires work across nodes; FAA counts correctly.
    #[test]
    fn cross_node_faa_sums() {
        let mut sc = SimCluster::build(
            ClusterConfig::small(),
            ProtocolMode::Kite,
            SimCfg::default(),
            |sid| {
                // every session on every node adds 1, five times
                let _ = sid;
                SessionDriver::Script(Box::new(|seq| {
                    if seq < 5 {
                        Some(Op::Faa { key: Key(0), delta: 1 })
                    } else {
                        None
                    }
                }))
            },
            None,
        );
        assert!(sc.run_until_quiesce(30_000_000_000), "RMWs must all commit");
        // small config: 3 nodes × 1 worker × 2 sessions × 5 FAAs = 30
        let expected = 3 * 2 * 5;
        for n in 0..3u8 {
            assert_eq!(
                sc.shared(NodeId(n)).store.view(Key(0)).val.as_u64(),
                expected,
                "replica {n} final counter"
            );
        }
    }
}
