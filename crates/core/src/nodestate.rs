//! Per-node shared state: everything a Kite machine's workers share.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use kite_common::stats::ProtoCounters;
use kite_common::{ClusterConfig, Epoch, Membership, MembershipCell, NodeId, NodeSet, MEMBERSHIP_KEY};
use kite_kvs::{Store, StoreProbe};
use kite_metrics::Histogram;

use crate::api::Op;
use crate::delinquency::DelinquencyTable;

/// Per-class end-to-end op latency, recorded at session retire (the moment
/// `Worker::complete_in` hands a completion back): invoke-to-completion in
/// scheduler-clock ns, one lock-free log2 histogram per op class. Snapshots
/// merge across nodes/workers, so cluster-wide p50/p99/p999 per class come
/// straight out of a scrape.
#[derive(Default)]
pub struct OpLatency {
    /// Relaxed reads.
    pub read: Histogram,
    /// Relaxed writes.
    pub write: Histogram,
    /// Acquire-class ops (acquire reads).
    pub acquire: Histogram,
    /// Release-class ops (release writes).
    pub release: Histogram,
    /// Read-modify-writes (FAA, CAS weak/strong).
    pub rmw: Histogram,
}

impl OpLatency {
    /// The histogram an op retires into. RMWs classify first: a CAS is an
    /// RMW even though `CasStrong` is also release-like.
    #[inline]
    pub fn for_op(&self, op: &Op) -> &Histogram {
        if op.is_rmw() {
            &self.rmw
        } else if op.is_release_like() {
            &self.release
        } else if op.is_acquire_like() {
            &self.acquire
        } else if matches!(op, Op::Write { .. }) {
            &self.write
        } else {
            &self.read
        }
    }

    /// (name, histogram) pairs for registry/scrape wiring.
    pub fn classes(&self) -> [(&'static str, &Histogram); 5] {
        [
            ("read", &self.read),
            ("write", &self.write),
            ("acquire", &self.acquire),
            ("release", &self.release),
            ("rmw", &self.rmw),
        ]
    }
}

/// One Kite machine's shared state (Figure 2 of the paper): the KVS
/// replica, the machine epoch-id, and the delinquency bit-vector.
pub struct NodeShared {
    /// This node's id.
    pub me: NodeId,
    /// The deployment configuration.
    pub cfg: ClusterConfig,
    /// The node's replica of the entire KVS (§2.1: every machine holds the
    /// whole store in memory).
    pub store: Store,
    /// Machine epoch-id (§4.2): bumped when an acquire discovers this
    /// machine is delinquent; keys whose epoch lags are out-of-epoch.
    epoch: AtomicU64,
    /// Scheduler-clock time of the last epoch bump (see
    /// [`NodeShared::bump_epoch_once`]).
    last_bump: AtomicU64,
    /// Delinquency bits for every machine in the deployment (§4.2.1).
    pub delinquency: DelinquencyTable,
    /// Locally *suspected* replicas: a release timed out waiting for their
    /// acks recently and no message has arrived from them since. While a
    /// replica is suspected, releases take the slow-path barrier
    /// immediately instead of re-paying the ack timeout per release — this
    /// is what keeps the survivors' throughput up during the §8.4 sleep
    /// (the paper's Figure 9 shows per-node throughput *rising* while a
    /// replica sleeps, which is only possible if releases stop waiting for
    /// it). Suspicion is a performance hint only: the slow path is always
    /// the conservative, correct path.
    suspects: Vec<AtomicBool>,
    /// Protocol/throughput counters (merged with the fabric's counts).
    pub counters: Arc<ProtoCounters>,
    /// Per-class op latency, recorded at session retire.
    pub op_latency: OpLatency,
    /// Store observability probe (writes + distinct-keys sketch); the same
    /// `Arc` is attached to [`NodeShared::store`], kept here so scrapers
    /// can read it without going through the store.
    pub store_probe: Arc<StoreProbe>,
    /// Live cluster membership (voters/learners + epoch). Seeded from the
    /// static config's bootstrap sets and thereafter installed through the
    /// store's watch on [`MEMBERSHIP_KEY`] — every path that applies that
    /// key (RMW commit, anti-entropy repair, WAL replay) lands here, which
    /// is exactly the set of paths that can legitimately learn a newer
    /// configuration.
    pub membership: Arc<MembershipCell>,
}

impl NodeShared {
    /// Build the shared state for node `me` (preallocates the KVS).
    pub fn new(me: NodeId, cfg: ClusterConfig, counters: Arc<ProtoCounters>) -> Arc<Self> {
        let store_probe = Arc::new(StoreProbe::default());
        let store = Store::with_leaf_span(
            cfg.keys,
            if cfg.merkle_digests { cfg.merkle_leaf_span } else { 0 },
        );
        store.attach_probe(Arc::clone(&store_probe));
        let membership = Arc::new(MembershipCell::new(Membership::bootstrap(&cfg)));
        {
            // Config changes install at the store-apply choke point: any
            // mutator touching the membership key — commit, repair, replay —
            // feeds the cell. Decode failures (a foreign value under the
            // reserved key) are ignored; the cell only moves forward.
            let cell = Arc::clone(&membership);
            let installs = Arc::clone(&counters);
            store.attach_watch(
                MEMBERSHIP_KEY,
                Arc::new(move |_lc, val| {
                    if let Some(m) = Membership::from_val(val) {
                        if cell.install(m) {
                            installs.membership_installs.incr();
                        }
                    }
                }),
            );
        }
        Arc::new(NodeShared {
            me,
            // The Merkle leaf span rides the shared config so every
            // replica's lattice has identical geometry (comparability is
            // what makes summary hashes meaningful). With Merkle digests
            // off, span 0 disables the lattice — the default deployment
            // pays no per-write hashing for summaries nobody reads.
            store,
            epoch: AtomicU64::new(0),
            last_bump: AtomicU64::new(0),
            delinquency: DelinquencyTable::new(cfg.nodes),
            suspects: (0..cfg.nodes).map(|_| AtomicBool::new(false)).collect(),
            counters,
            op_latency: OpLatency::default(),
            store_probe,
            membership,
            cfg,
        })
    }

    /// Mark a replica suspected (a release barrier timed out on it).
    #[inline]
    pub fn suspect(&self, node: NodeId) {
        self.suspects[node.idx()].store(true, Ordering::Relaxed);
    }

    /// Any message from a replica proves it alive: clear its suspicion.
    #[inline]
    pub fn clear_suspect(&self, node: NodeId) {
        if self.suspects[node.idx()].load(Ordering::Relaxed) {
            self.suspects[node.idx()].store(false, Ordering::Relaxed);
        }
    }

    /// The currently suspected set.
    #[inline]
    pub fn suspected(&self) -> NodeSet {
        let mut s = NodeSet::EMPTY;
        for (i, b) in self.suspects.iter().enumerate() {
            if b.load(Ordering::Relaxed) {
                s.insert(NodeId(i as u8));
            }
        }
        s
    }

    /// Current machine epoch.
    #[inline]
    pub fn epoch(&self) -> Epoch {
        Epoch(self.epoch.load(Ordering::Acquire))
    }

    /// Increment the machine epoch (transition to the slow path, §4.2):
    /// every locally stored key becomes out-of-epoch at once. Returns the
    /// new epoch.
    #[inline]
    pub fn bump_epoch(&self) -> Epoch {
        let new = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.counters.epoch_bumps.incr();
        Epoch(new)
    }

    /// Epoch bump for an acquire that *started* at `invoked_at` (scheduler
    /// clock): skipped if another acquire already bumped the epoch after
    /// this one began — that bump invalidated every key and thus already
    /// discharges this acquire's slow-path obligation (Lemma 5.4). Without
    /// this, a burst of concurrent acquires on a waking replica bumps the
    /// epoch hundreds of times, forcing each key through the slow path
    /// once *per bump* instead of once per outage.
    #[inline]
    pub fn bump_epoch_once(&self, invoked_at: u64, now: u64) -> bool {
        let last = self.last_bump.load(Ordering::Acquire);
        if last > invoked_at {
            return false;
        }
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.last_bump.store(now, Ordering::Release);
        self.counters.epoch_bumps.incr();
        true
    }

    /// Majority-quorum size over the **live voter set** — not the static
    /// config. A round that caches this across a reconfiguration would
    /// count replies against the wrong majority, which is exactly the bug
    /// the live cell exists to kill.
    #[inline]
    pub fn quorum(&self) -> usize {
        self.membership.load().quorum()
    }

    /// The live voter set (protocol rounds target these replicas).
    #[inline]
    pub fn voters(&self) -> NodeSet {
        self.membership.load().voters
    }

    /// Voters ∪ learners (anti-entropy targets all of them).
    #[inline]
    pub fn members(&self) -> NodeSet {
        self.membership.load().members()
    }

    /// Current membership epoch (stamped on every outgoing envelope).
    #[inline]
    pub fn mepoch(&self) -> u32 {
        self.membership.epoch()
    }

    /// Number of configured node *slots* (sizes tables and rings; the live
    /// member set is a subset — see [`NodeShared::members`]).
    #[inline]
    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> Arc<NodeShared> {
        NodeShared::new(
            NodeId(0),
            ClusterConfig::small(),
            Arc::new(ProtoCounters::default()),
        )
    }

    #[test]
    fn epoch_starts_at_zero_and_bumps() {
        let s = shared();
        assert_eq!(s.epoch(), Epoch(0));
        assert_eq!(s.bump_epoch(), Epoch(1));
        assert_eq!(s.epoch(), Epoch(1));
        assert_eq!(s.counters.epoch_bumps.get(), 1);
    }

    #[test]
    fn keys_fall_out_of_epoch_on_bump() {
        use kite_common::{Key, Val};
        let s = shared();
        // in-epoch write succeeds at epoch 0
        assert!(s.store.fast_write(Key(1), &Val::from_u64(1), s.me, s.epoch()).is_some());
        s.bump_epoch();
        // the key's epoch (0) now lags the machine epoch (1): fast path refused
        assert!(s.store.fast_write(Key(1), &Val::from_u64(2), s.me, s.epoch()).is_none());
        // restoring brings it back
        s.store.restore_epoch(Key(1), s.epoch());
        assert!(s.store.fast_write(Key(1), &Val::from_u64(2), s.me, s.epoch()).is_some());
    }

    #[test]
    fn quorum_matches_config() {
        let s = shared();
        assert_eq!(s.quorum(), 2); // 3-node small config
        assert_eq!(s.nodes(), 3);
    }
}
