//! The threaded in-process deployment: real worker threads, channel NICs,
//! and a blocking client API.
//!
//! This is the shape of a real Kite deployment (§2.1) scaled into one
//! process: `nodes × workers_per_node` busy-polling worker threads, each
//! serving `sessions_per_worker` sessions. Clients claim sessions and issue
//! operations through [`SessionHandle`]; synchronous calls block until the
//! completion arrives (the Kite API offers sync and async flavors, §6.1 —
//! both are provided here).

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use kite_common::stats::ProtoCounters;
use kite_common::{ClusterConfig, Key, KiteError, NodeId, Result, SessionId, Val};
use kite_simnet::{spawn_workers, FaultPlane, StopHandle, ThreadedNet, WorkerIo};
use parking_lot::Mutex;

use crate::api::{Completion, CompletionHook, Op, OpOutput};
use crate::msg::Msg;
use crate::nodestate::NodeShared;
use crate::session::{ProtocolMode, Session, SessionDriver};
use crate::worker::Worker;

/// How long synchronous client calls wait before reporting
/// [`KiteError::Timeout`] (generous: operations either complete in
/// microseconds or the cluster has lost its majority).
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

type SessionPlumbing = (Sender<Op>, Receiver<Completion>);

/// A running in-process Kite deployment.
pub struct Cluster {
    cfg: ClusterConfig,
    mode: ProtocolMode,
    net: ThreadedNet<Msg>,
    stop: Option<StopHandle>,
    shared: Vec<Arc<NodeShared>>,
    /// Unclaimed session plumbing, indexed `[node][slot]`.
    slots: Mutex<Vec<Vec<Option<SessionPlumbing>>>>,
}

impl Cluster {
    /// Build and start a cluster in the given protocol mode.
    pub fn launch(cfg: ClusterConfig, mode: ProtocolMode) -> Result<Cluster> {
        Self::launch_with(cfg, mode, None)
    }

    /// As [`Cluster::launch`], with a completion hook observing every
    /// completed operation cluster-wide (history recording in tests).
    pub fn launch_with(
        cfg: ClusterConfig,
        mode: ProtocolMode,
        hook: Option<CompletionHook>,
    ) -> Result<Cluster> {
        cfg.validate().map_err(KiteError::BadConfig)?;
        let (net, ios) = ThreadedNet::<Msg>::build(cfg.nodes, cfg.workers_per_node, 0xC0FFEE);

        let shared: Vec<Arc<NodeShared>> = (0..cfg.nodes)
            .map(|n| {
                NodeShared::new(NodeId(n as u8), cfg.clone(), Arc::clone(&net.counters[n]))
            })
            .collect();

        let mut slots: Vec<Vec<Option<SessionPlumbing>>> =
            (0..cfg.nodes).map(|_| Vec::new()).collect();

        let mut rigs: Vec<(Worker, WorkerIo<Msg>)> = Vec::new();
        for (n, per_node) in ios.into_iter().enumerate() {
            for (w, io) in per_node.into_iter().enumerate() {
                let mut sessions = Vec::with_capacity(cfg.sessions_per_worker);
                for i in 0..cfg.sessions_per_worker {
                    let slot = (w * cfg.sessions_per_worker + i) as u32;
                    let sid = SessionId::new(NodeId(n as u8), slot);
                    let (op_tx, op_rx) = unbounded();
                    let (done_tx, done_rx) = unbounded();
                    let mut sess = Session::new(sid);
                    sess.driver = SessionDriver::External { rx: op_rx, tx: done_tx };
                    sessions.push(sess);
                    slots[n].push(Some((op_tx, done_rx)));
                }
                let worker = Worker::new(w, Arc::clone(&shared[n]), mode, sessions, hook.clone());
                rigs.push((worker, io));
            }
        }

        let stop = spawn_workers(rigs, &net);
        Ok(Cluster { cfg, mode, net, stop: Some(stop), shared, slots: Mutex::new(slots) })
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The protocol stack this deployment runs.
    pub fn mode(&self) -> ProtocolMode {
        self.mode
    }

    /// Claim a session on `node`. `slot` ranges over
    /// `0..cfg.sessions_per_node()`; each slot can be claimed once.
    pub fn session(&self, node: NodeId, slot: u32) -> Result<SessionHandle> {
        let mut slots = self.slots.lock();
        let per_node = slots
            .get_mut(node.idx())
            .ok_or_else(|| KiteError::SessionUnavailable(format!("no node {node}")))?;
        let entry = per_node
            .get_mut(slot as usize)
            .ok_or_else(|| KiteError::SessionUnavailable(format!("no slot {slot} on {node}")))?;
        let (tx, rx) = entry
            .take()
            .ok_or_else(|| KiteError::SessionUnavailable(format!("{node} slot {slot} taken")))?;
        Ok(SessionHandle { id: SessionId::new(node, slot), tx, rx, submitted: 0, retired: 0 })
    }

    /// Per-node shared state (store, epoch, delinquency) — for tests and
    /// diagnostics.
    pub fn shared(&self, node: NodeId) -> &Arc<NodeShared> {
        &self.shared[node.idx()]
    }

    /// Per-node protocol counters.
    pub fn counters(&self, node: NodeId) -> &ProtoCounters {
        &self.net.counters[node.idx()]
    }

    /// The fault-injection plane (drops, delays, partitions, crashes).
    pub fn faults(&self) -> &FaultPlane {
        &self.net.faults
    }

    /// Cluster clock (ns since launch).
    pub fn now(&self) -> u64 {
        use kite_simnet::Clock;
        self.net.clock.now()
    }

    /// Put a node to sleep for `dur` (the §8.4 failure experiment): its
    /// workers stop processing; traffic to it buffers.
    pub fn sleep_node(&self, node: NodeId, dur: Duration) {
        self.net.faults.sleep_node_until(node, self.now() + dur.as_nanos() as u64);
    }

    /// Crash a node permanently (crash-stop, §2.1).
    pub fn crash_node(&self, node: NodeId) {
        self.net.faults.crash(node);
    }

    /// Stop all workers and tear down.
    pub fn shutdown(mut self) {
        if let Some(stop) = self.stop.take() {
            stop.stop_and_join();
        }
    }

    /// Arm a deadline watchdog: if the returned guard is not dropped within
    /// `timeout`, every worker prints an `Actor::describe` snapshot of its
    /// protocol state to stderr (from its own thread, via the runtime's
    /// dump flag), cluster-level state follows, and the process **aborts**
    /// with a diagnostic instead of wedging forever. Threaded fault tests
    /// should arm one: a liveness bug then yields a stalled-round dump
    /// rather than a CI timeout with no evidence.
    pub fn watchdog(&self, timeout: Duration) -> Watchdog {
        let (disarm_tx, disarm_rx) = unbounded::<()>();
        let dump = self
            .stop
            .as_ref()
            .expect("watchdog on a running cluster")
            .dump_flag();
        let counters = self.net.counters.clone();
        let shared = self.shared.clone();
        let handle = std::thread::Builder::new()
            .name("kite-watchdog".into())
            .spawn(move || {
                if disarm_rx.recv_timeout(timeout).is_ok() {
                    return; // disarmed: test finished in time
                }
                eprintln!(
                    "\n!!!! kite watchdog: no disarm within {timeout:?} — dumping state !!!!"
                );
                dump.store(true, std::sync::atomic::Ordering::SeqCst);
                // Give the (possibly parked) workers a moment to notice the
                // flag and print; park_timeout bounds this to well under 1s.
                std::thread::sleep(Duration::from_secs(1));
                for (n, (c, sh)) in counters.iter().zip(&shared).enumerate() {
                    eprintln!(
                        "node {n}: completed={} slow_releases={} epoch_bumps={} \
                         envelopes={} msgs={} suspected={:?} epoch={}",
                        c.completed.get(),
                        c.slow_releases.get(),
                        c.epoch_bumps.get(),
                        c.envelopes_sent.get(),
                        c.msgs_sent.get(),
                        sh.suspected(),
                        sh.epoch(),
                    );
                }
                eprintln!("!!!! kite watchdog: aborting !!!!");
                std::process::abort();
            })
            .expect("spawn watchdog");
        Watchdog { disarm_tx, handle: Some(handle) }
    }
}

/// Guard returned by [`Cluster::watchdog`]; dropping it disarms the
/// deadline (the watchdog thread exits promptly).
pub struct Watchdog {
    disarm_tx: Sender<()>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        let _ = self.disarm_tx.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if let Some(stop) = self.stop.take() {
            stop.stop_and_join();
        }
    }
}

/// A claimed client session: sync and async operation submission. Not
/// `Clone` — a session is a single program-order stream (§2.1).
///
/// Bookkeeping is two monotone counters rather than one balance:
/// `submitted` counts ops handed to the worker (each implicitly numbered in
/// session order — the worker assigns the same sequence numbers), `retired`
/// counts completions received. A [`KiteError::Timeout`] changes neither,
/// so when the late completion eventually arrives it is reconciled against
/// its own sequence number instead of being misattributed to whatever the
/// client asked for next.
pub struct SessionHandle {
    id: SessionId,
    tx: Sender<Op>,
    rx: Receiver<Completion>,
    /// Operations submitted; the next submission gets session seq
    /// `submitted`.
    submitted: u64,
    /// Completions received; completions arrive in session order, so the
    /// next one carries seq `retired`.
    retired: u64,
}

impl SessionHandle {
    /// Assemble a handle from raw session plumbing. Used by alternative
    /// runtimes (the TCP `kite-net` node) that build the same
    /// `Session`/`SessionDriver::External` wiring as [`Cluster::launch`];
    /// the channels must belong to an unclaimed session or program order is
    /// violated.
    pub fn from_channels(id: SessionId, tx: Sender<Op>, rx: Receiver<Completion>) -> SessionHandle {
        SessionHandle { id, tx, rx, submitted: 0, retired: 0 }
    }

    /// This session's id (node + slot).
    pub fn id(&self) -> SessionId {
        self.id
    }

    // ---- async API (§6.1) ------------------------------------------------

    /// Submit without waiting. Completions arrive in session order via
    /// [`SessionHandle::next_completion`].
    pub fn submit(&mut self, op: Op) -> Result<()> {
        self.tx.send(op).map_err(|_| KiteError::Shutdown)?;
        self.submitted += 1;
        Ok(())
    }

    /// Number of submitted-but-unretired operations.
    pub fn outstanding(&self) -> usize {
        (self.submitted - self.retired) as usize
    }

    /// Wait for the next completion (session order).
    pub fn next_completion(&mut self) -> Result<Completion> {
        let c = self
            .rx
            .recv_timeout(CLIENT_TIMEOUT)
            .map_err(|_| KiteError::Timeout)?;
        debug_assert_eq!(c.op_id.seq, self.retired, "completions must arrive in session order");
        self.retired += 1;
        Ok(c)
    }

    /// Drain all currently available completions.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        let mut v = Vec::new();
        while let Ok(c) = self.rx.try_recv() {
            self.retired += 1;
            v.push(c);
        }
        v
    }

    // ---- sync API ----------------------------------------------------------

    fn call(&mut self, op: Op) -> Result<Completion> {
        // Retire completions of earlier ops first — after a recovered
        // timeout these are the late arrivals of ops the client already
        // gave up on, not answers to `op`.
        while self.outstanding() > 0 {
            self.next_completion()?;
        }
        let seq = self.submitted;
        self.submit(op)?;
        loop {
            let c = self.next_completion()?;
            if c.op_id.seq == seq {
                return Ok(c);
            }
            // A stray earlier completion (recovered timeout): retired by
            // next_completion; keep waiting for ours.
        }
    }

    /// Relaxed read (ES fast path when in-epoch).
    pub fn read(&mut self, key: Key) -> Result<Val> {
        match self.call(Op::Read { key })?.output {
            OpOutput::Value(v) => Ok(v),
            other => unreachable!("read completed with {other:?}"),
        }
    }

    /// Relaxed write.
    pub fn write(&mut self, key: Key, val: impl Into<Val>) -> Result<()> {
        self.call(Op::Write { key, val: val.into() })?;
        Ok(())
    }

    /// Release write (all ⇒ release ordering).
    pub fn release(&mut self, key: Key, val: impl Into<Val>) -> Result<()> {
        self.call(Op::Release { key, val: val.into() })?;
        Ok(())
    }

    /// Acquire read (acquire ⇒ all ordering).
    pub fn acquire(&mut self, key: Key) -> Result<Val> {
        match self.call(Op::Acquire { key })?.output {
            OpOutput::Value(v) => Ok(v),
            other => unreachable!("acquire completed with {other:?}"),
        }
    }

    /// Fetch-and-add; returns the previous value.
    pub fn fetch_add(&mut self, key: Key, delta: u64) -> Result<u64> {
        match self.call(Op::Faa { key, delta })?.output {
            OpOutput::Faa(old) => Ok(old),
            other => unreachable!("faa completed with {other:?}"),
        }
    }

    /// Weak CAS (may fail locally, §6.1). Returns `(swapped, observed)`.
    pub fn cas_weak(
        &mut self,
        key: Key,
        expect: impl Into<Val>,
        new: impl Into<Val>,
    ) -> Result<(bool, Val)> {
        match self.call(Op::CasWeak { key, expect: expect.into(), new: new.into() })?.output {
            OpOutput::Cas { ok, observed } => Ok((ok, observed)),
            other => unreachable!("cas completed with {other:?}"),
        }
    }

    /// Strong CAS (always checks remote replicas, §6.1).
    pub fn cas_strong(
        &mut self,
        key: Key,
        expect: impl Into<Val>,
        new: impl Into<Val>,
    ) -> Result<(bool, Val)> {
        match self.call(Op::CasStrong { key, expect: expect.into(), new: new.into() })?.output {
            OpOutput::Cas { ok, observed } => Ok((ok, observed)),
            other => unreachable!("cas completed with {other:?}"),
        }
    }
}
