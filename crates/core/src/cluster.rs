//! The threaded in-process deployment: real worker threads, channel NICs,
//! and a blocking client API.
//!
//! This is the shape of a real Kite deployment (§2.1) scaled into one
//! process: `nodes × workers_per_node` busy-polling worker threads, each
//! serving `sessions_per_worker` sessions. Clients claim sessions and issue
//! operations through [`SessionHandle`]; synchronous calls block until the
//! completion arrives (the Kite API offers sync and async flavors, §6.1 —
//! both are provided here).

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use kite_common::stats::ProtoCounters;
use kite_common::{ClusterConfig, Key, KiteError, NodeId, Result, SessionId, Val};
use kite_simnet::{spawn_workers, FaultPlane, StopHandle, ThreadedNet, WorkerIo};
use parking_lot::Mutex;

use crate::api::{Completion, CompletionHook, Op, OpOutput};
use crate::msg::Msg;
use crate::nodestate::NodeShared;
use crate::session::{ProtocolMode, Session, SessionDriver};
use crate::worker::Worker;

/// How long synchronous client calls wait before reporting
/// [`KiteError::Timeout`] (generous: operations either complete in
/// microseconds or the cluster has lost its majority).
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

type SessionPlumbing = (Sender<Op>, Receiver<Completion>);

/// A running in-process Kite deployment.
pub struct Cluster {
    cfg: ClusterConfig,
    mode: ProtocolMode,
    net: ThreadedNet<Msg>,
    stop: Option<StopHandle>,
    shared: Vec<Arc<NodeShared>>,
    /// Unclaimed session plumbing, indexed `[node][slot]`.
    slots: Mutex<Vec<Vec<Option<SessionPlumbing>>>>,
}

impl Cluster {
    /// Build and start a cluster in the given protocol mode.
    pub fn launch(cfg: ClusterConfig, mode: ProtocolMode) -> Result<Cluster> {
        Self::launch_with(cfg, mode, None)
    }

    /// As [`Cluster::launch`], with a completion hook observing every
    /// completed operation cluster-wide (history recording in tests).
    pub fn launch_with(
        cfg: ClusterConfig,
        mode: ProtocolMode,
        hook: Option<CompletionHook>,
    ) -> Result<Cluster> {
        cfg.validate().map_err(KiteError::BadConfig)?;
        let (net, ios) = ThreadedNet::<Msg>::build(cfg.nodes, cfg.workers_per_node, 0xC0FFEE);

        let shared: Vec<Arc<NodeShared>> = (0..cfg.nodes)
            .map(|n| {
                NodeShared::new(NodeId(n as u8), cfg.clone(), Arc::clone(&net.counters[n]))
            })
            .collect();

        let mut slots: Vec<Vec<Option<SessionPlumbing>>> =
            (0..cfg.nodes).map(|_| Vec::new()).collect();

        let mut rigs: Vec<(Worker, WorkerIo<Msg>)> = Vec::new();
        for (n, per_node) in ios.into_iter().enumerate() {
            for (w, io) in per_node.into_iter().enumerate() {
                let mut sessions = Vec::with_capacity(cfg.sessions_per_worker);
                for i in 0..cfg.sessions_per_worker {
                    let slot = (w * cfg.sessions_per_worker + i) as u32;
                    let sid = SessionId::new(NodeId(n as u8), slot);
                    let (op_tx, op_rx) = unbounded();
                    let (done_tx, done_rx) = unbounded();
                    let mut sess = Session::new(sid);
                    sess.driver = SessionDriver::External { rx: op_rx, tx: done_tx };
                    sessions.push(sess);
                    slots[n].push(Some((op_tx, done_rx)));
                }
                let worker = Worker::new(w, Arc::clone(&shared[n]), mode, sessions, hook.clone());
                rigs.push((worker, io));
            }
        }

        let stop = spawn_workers(rigs, &net);
        Ok(Cluster { cfg, mode, net, stop: Some(stop), shared, slots: Mutex::new(slots) })
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The protocol stack this deployment runs.
    pub fn mode(&self) -> ProtocolMode {
        self.mode
    }

    /// Claim a session on `node`. `slot` ranges over
    /// `0..cfg.sessions_per_node()`; each slot can be claimed once.
    pub fn session(&self, node: NodeId, slot: u32) -> Result<SessionHandle> {
        let mut slots = self.slots.lock();
        let per_node = slots
            .get_mut(node.idx())
            .ok_or_else(|| KiteError::SessionUnavailable(format!("no node {node}")))?;
        let entry = per_node
            .get_mut(slot as usize)
            .ok_or_else(|| KiteError::SessionUnavailable(format!("no slot {slot} on {node}")))?;
        let (tx, rx) = entry
            .take()
            .ok_or_else(|| KiteError::SessionUnavailable(format!("{node} slot {slot} taken")))?;
        Ok(SessionHandle { id: SessionId::new(node, slot), tx, rx, outstanding: 0 })
    }

    /// Per-node shared state (store, epoch, delinquency) — for tests and
    /// diagnostics.
    pub fn shared(&self, node: NodeId) -> &Arc<NodeShared> {
        &self.shared[node.idx()]
    }

    /// Per-node protocol counters.
    pub fn counters(&self, node: NodeId) -> &ProtoCounters {
        &self.net.counters[node.idx()]
    }

    /// The fault-injection plane (drops, delays, partitions, crashes).
    pub fn faults(&self) -> &FaultPlane {
        &self.net.faults
    }

    /// Cluster clock (ns since launch).
    pub fn now(&self) -> u64 {
        use kite_simnet::Clock;
        self.net.clock.now()
    }

    /// Put a node to sleep for `dur` (the §8.4 failure experiment): its
    /// workers stop processing; traffic to it buffers.
    pub fn sleep_node(&self, node: NodeId, dur: Duration) {
        self.net.faults.sleep_node_until(node, self.now() + dur.as_nanos() as u64);
    }

    /// Crash a node permanently (crash-stop, §2.1).
    pub fn crash_node(&self, node: NodeId) {
        self.net.faults.crash(node);
    }

    /// Stop all workers and tear down.
    pub fn shutdown(mut self) {
        if let Some(stop) = self.stop.take() {
            stop.stop_and_join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if let Some(stop) = self.stop.take() {
            stop.stop_and_join();
        }
    }
}

/// A claimed client session: sync and async operation submission. Not
/// `Clone` — a session is a single program-order stream (§2.1).
pub struct SessionHandle {
    id: SessionId,
    tx: Sender<Op>,
    rx: Receiver<Completion>,
    outstanding: usize,
}

impl SessionHandle {
    /// This session's id (node + slot).
    pub fn id(&self) -> SessionId {
        self.id
    }

    // ---- async API (§6.1) ------------------------------------------------

    /// Submit without waiting. Completions arrive in session order via
    /// [`SessionHandle::next_completion`].
    pub fn submit(&mut self, op: Op) -> Result<()> {
        self.tx.send(op).map_err(|_| KiteError::Shutdown)?;
        self.outstanding += 1;
        Ok(())
    }

    /// Number of submitted-but-unretired operations.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Wait for the next completion (session order).
    pub fn next_completion(&mut self) -> Result<Completion> {
        let c = self
            .rx
            .recv_timeout(CLIENT_TIMEOUT)
            .map_err(|_| KiteError::Timeout)?;
        self.outstanding -= 1;
        Ok(c)
    }

    /// Drain all currently available completions.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        let mut v = Vec::new();
        while let Ok(c) = self.rx.try_recv() {
            self.outstanding -= 1;
            v.push(c);
        }
        v
    }

    // ---- sync API ----------------------------------------------------------

    fn call(&mut self, op: Op) -> Result<Completion> {
        // Sync calls require a quiet pipeline so the next completion is ours.
        while self.outstanding > 0 {
            self.next_completion()?;
        }
        self.submit(op)?;
        self.next_completion()
    }

    /// Relaxed read (ES fast path when in-epoch).
    pub fn read(&mut self, key: Key) -> Result<Val> {
        match self.call(Op::Read { key })?.output {
            OpOutput::Value(v) => Ok(v),
            other => unreachable!("read completed with {other:?}"),
        }
    }

    /// Relaxed write.
    pub fn write(&mut self, key: Key, val: impl Into<Val>) -> Result<()> {
        self.call(Op::Write { key, val: val.into() })?;
        Ok(())
    }

    /// Release write (all ⇒ release ordering).
    pub fn release(&mut self, key: Key, val: impl Into<Val>) -> Result<()> {
        self.call(Op::Release { key, val: val.into() })?;
        Ok(())
    }

    /// Acquire read (acquire ⇒ all ordering).
    pub fn acquire(&mut self, key: Key) -> Result<Val> {
        match self.call(Op::Acquire { key })?.output {
            OpOutput::Value(v) => Ok(v),
            other => unreachable!("acquire completed with {other:?}"),
        }
    }

    /// Fetch-and-add; returns the previous value.
    pub fn fetch_add(&mut self, key: Key, delta: u64) -> Result<u64> {
        match self.call(Op::Faa { key, delta })?.output {
            OpOutput::Faa(old) => Ok(old),
            other => unreachable!("faa completed with {other:?}"),
        }
    }

    /// Weak CAS (may fail locally, §6.1). Returns `(swapped, observed)`.
    pub fn cas_weak(
        &mut self,
        key: Key,
        expect: impl Into<Val>,
        new: impl Into<Val>,
    ) -> Result<(bool, Val)> {
        match self.call(Op::CasWeak { key, expect: expect.into(), new: new.into() })?.output {
            OpOutput::Cas { ok, observed } => Ok((ok, observed)),
            other => unreachable!("cas completed with {other:?}"),
        }
    }

    /// Strong CAS (always checks remote replicas, §6.1).
    pub fn cas_strong(
        &mut self,
        key: Key,
        expect: impl Into<Val>,
        new: impl Into<Val>,
    ) -> Result<(bool, Val)> {
        match self.call(Op::CasStrong { key, expect: expect.into(), new: new.into() })?.output {
            OpOutput::Cas { ok, observed } => Ok((ok, observed)),
            other => unreachable!("cas completed with {other:?}"),
        }
    }
}
