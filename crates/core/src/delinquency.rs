//! The delinquency bit-vector and its transition rules (§4.2.1).
//!
//! Each node keeps one bit of state per machine in the deployment (including
//! itself — a node can learn of its own delinquency from a slow-release it
//! receives, which only speeds up discovery). The state machine is exactly
//! Figure 3 of the paper plus the `Transient` bookkeeping of Lemma 5.7:
//!
//! * `SlowRelease{DM}`   → bit ← **Set** for every member of DM,
//!   unconditionally (clears any transient tags).
//! * Acquire probe from machine *B* when *B*'s bit is Set/Transient →
//!   answer "delinquent", move to **Transient** and record the acquire's
//!   unique id (one outstanding acquire per session ⇒ the tag set is
//!   bounded by *B*'s session count; we cap it defensively — see below).
//! * `ResetBit{acq}` from *B* → **Clear**, iff still Transient *and* `acq`
//!   is among the recorded tags (the reset must come from an acquire that
//!   observed the bit; an interleaved slow-release wins).
//!
//! Losing a reset (or refusing one because the tag cap was hit) is safe:
//! the bit stays set, later acquires take one more redundant slow-path
//! transition (§5.5: "resetting delinquency bits is a best-effort approach").

use kite_common::{NodeId, NodeSet, OpId};
use parking_lot::Mutex;

/// Cap on transient tags kept per bit. The paper bounds the set by the
/// number of sessions per machine; we bound it explicitly and drop excess
/// tags (safe, see module docs).
const MAX_TAGS: usize = 64;

#[derive(Clone, Debug, PartialEq, Eq)]
enum BitState {
    Clear,
    Set,
    /// Observed by these acquires; the next matching reset clears it.
    Transient(Vec<OpId>),
}

/// The per-node delinquency table. Shared by all workers of a node; each
/// bit is independently locked (accesses are short and rare — only sync
/// operations and slow-releases touch it).
pub struct DelinquencyTable {
    bits: Vec<Mutex<BitState>>,
}

impl DelinquencyTable {
    /// A table with one clear bit per node in the deployment.
    pub fn new(nodes: usize) -> Self {
        DelinquencyTable { bits: (0..nodes).map(|_| Mutex::new(BitState::Clear)).collect() }
    }

    /// A slow-release declared `dm` delinquent: set their bits
    /// unconditionally (Figure 3, transition ①; Lemma 5.7's "set wins").
    pub fn mark_delinquent(&self, dm: NodeSet) {
        for node in dm {
            *self.bits[node.idx()].lock() = BitState::Set;
        }
    }

    /// An acquire-type probe from `machine`, tagged `acq`: returns whether
    /// that machine is currently deemed delinquent, and performs the
    /// Set→Transient transition recording the tag (Figure 3, transition ②).
    ///
    /// A session has at most one outstanding acquire (§4.2.1 remark), so a
    /// newer acquire from the same session *replaces* that session's tag:
    /// the older acquire is complete (or abandoned) and its reset can never
    /// arrive. Accumulating dead tags instead would fill the list and
    /// permanently block resets — the bit would stay transient forever and
    /// every later acquire from the machine would needlessly re-enter the
    /// slow path.
    pub fn probe(&self, machine: NodeId, acq: OpId) -> bool {
        let mut bit = self.bits[machine.idx()].lock();
        match &mut *bit {
            BitState::Clear => false,
            BitState::Set => {
                *bit = BitState::Transient(vec![acq]);
                true
            }
            BitState::Transient(tags) => {
                if let Some(t) = tags.iter_mut().find(|t| t.session == acq.session) {
                    if acq.seq > t.seq {
                        *t = acq;
                    }
                } else if tags.len() < MAX_TAGS {
                    tags.push(acq);
                }
                true
            }
        }
    }

    /// A reset-bit from `machine` tagged `acq` (Figure 3, transition ③):
    /// clears iff still transient with a matching tag. Returns whether the
    /// bit was cleared.
    pub fn reset(&self, machine: NodeId, acq: OpId) -> bool {
        let mut bit = self.bits[machine.idx()].lock();
        match &*bit {
            BitState::Transient(tags) if tags.contains(&acq) => {
                *bit = BitState::Clear;
                true
            }
            _ => false,
        }
    }

    /// Is `machine` currently marked (Set or Transient)? Test/diagnostics.
    pub fn is_marked(&self, machine: NodeId) -> bool {
        !matches!(*self.bits[machine.idx()].lock(), BitState::Clear)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_common::SessionId;

    fn acq(n: u8, seq: u64) -> OpId {
        OpId::new(SessionId::new(NodeId(n), 0), seq)
    }

    fn dm(nodes: &[u8]) -> NodeSet {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    #[test]
    fn clear_by_default() {
        let t = DelinquencyTable::new(5);
        assert!(!t.probe(NodeId(1), acq(1, 0)));
        assert!(!t.is_marked(NodeId(1)));
    }

    #[test]
    fn figure3_happy_path() {
        // ① slow-release marks B; ② acquire from B observes and tags;
        // ③ reset from that acquire clears.
        let t = DelinquencyTable::new(3);
        t.mark_delinquent(dm(&[1]));
        assert!(t.is_marked(NodeId(1)));
        let a = acq(1, 7);
        assert!(t.probe(NodeId(1), a), "B must learn it is delinquent");
        assert!(t.reset(NodeId(1), a), "matching reset clears");
        assert!(!t.is_marked(NodeId(1)));
        // subsequent acquires see a clear bit — no repeated slow paths
        assert!(!t.probe(NodeId(1), acq(1, 8)));
    }

    #[test]
    fn reset_with_wrong_tag_is_ignored() {
        let t = DelinquencyTable::new(3);
        t.mark_delinquent(dm(&[1]));
        assert!(t.probe(NodeId(1), acq(1, 1)));
        assert!(!t.reset(NodeId(1), acq(1, 99)), "unknown tag must not clear");
        assert!(t.is_marked(NodeId(1)));
    }

    #[test]
    fn racing_slow_release_wins_over_reset() {
        // Lemma 5.7: a slow-release between the probe and the reset makes
        // the reset a no-op.
        let t = DelinquencyTable::new(3);
        t.mark_delinquent(dm(&[1]));
        let a = acq(1, 1);
        assert!(t.probe(NodeId(1), a));
        t.mark_delinquent(dm(&[1])); // racing slow-release: back to Set
        assert!(!t.reset(NodeId(1), a), "reset must lose the race");
        assert!(t.is_marked(NodeId(1)));
    }

    #[test]
    fn multiple_concurrent_acquires_all_tagged() {
        // Two sessions of B acquire concurrently; either reset clears.
        let t = DelinquencyTable::new(3);
        t.mark_delinquent(dm(&[1]));
        let a1 = acq(1, 1);
        let a2 = OpId::new(SessionId::new(NodeId(1), 1), 5);
        assert!(t.probe(NodeId(1), a1));
        assert!(t.probe(NodeId(1), a2));
        assert!(t.reset(NodeId(1), a2));
        assert!(!t.is_marked(NodeId(1)));
        // the other (now stale) reset is a harmless no-op
        assert!(!t.reset(NodeId(1), a1));
    }

    #[test]
    fn reset_without_probe_is_ignored() {
        // A reset may arrive for a bit that is plainly Set (e.g. the probe's
        // reply was lost and a newer slow-release re-set the bit).
        let t = DelinquencyTable::new(3);
        t.mark_delinquent(dm(&[2]));
        assert!(!t.reset(NodeId(2), acq(2, 0)));
        assert!(t.is_marked(NodeId(2)));
    }

    #[test]
    fn bits_are_independent() {
        let t = DelinquencyTable::new(5);
        t.mark_delinquent(dm(&[1, 3]));
        assert!(t.is_marked(NodeId(1)));
        assert!(!t.is_marked(NodeId(2)));
        assert!(t.is_marked(NodeId(3)));
        let a = acq(1, 0);
        assert!(t.probe(NodeId(1), a));
        t.reset(NodeId(1), a);
        assert!(!t.is_marked(NodeId(1)));
        assert!(t.is_marked(NodeId(3)), "other bits untouched");
    }

    #[test]
    fn same_session_tags_replace_not_accumulate() {
        // Repeated acquires from one session must not pile up dead tags:
        // only the newest acquire's reset is expected (older ones completed
        // without discovering, or their verdicts were superseded).
        let t = DelinquencyTable::new(2);
        t.mark_delinquent(dm(&[1]));
        for i in 0..(MAX_TAGS as u64 + 10) {
            assert!(t.probe(NodeId(1), acq(1, i)), "probe always reports delinquency");
        }
        // stale tags from the same session no longer reset…
        assert!(!t.reset(NodeId(1), acq(1, 0)));
        // …but the newest does.
        assert!(t.reset(NodeId(1), acq(1, MAX_TAGS as u64 + 9)));
        assert!(!t.is_marked(NodeId(1)));
    }

    #[test]
    fn stale_probe_does_not_displace_newer_tag() {
        let t = DelinquencyTable::new(2);
        t.mark_delinquent(dm(&[1]));
        assert!(t.probe(NodeId(1), acq(1, 5)));
        assert!(t.probe(NodeId(1), acq(1, 3))); // reordered older probe
        assert!(!t.reset(NodeId(1), acq(1, 3)), "older acquire cannot reset");
        assert!(t.reset(NodeId(1), acq(1, 5)));
    }
}
