//! Anti-entropy / read-repair: background convergence as a first-class
//! subsystem.
//!
//! The three protocols make completed operations *safe* (quorum-visible),
//! but a replica outside every quorum — asleep through a key's last commit
//! (§8.4), or simply on the losing end of sustained message loss once
//! retransmission for a finished round has stopped — used to converge only
//! by luck: a one-shot fire-and-forget fill at RMW completion, itself
//! droppable. This module makes convergence *retransmission-independent*:
//!
//! * **Digest sweep** — worker 0 of each node walks its store in
//!   `anti_entropy_chunk`-slot ranges, one range per
//!   `anti_entropy_interval_ns`, and broadcasts the range's `(key, packed
//!   Lc)` pairs ([`DigestChunk`], `Arc`-shared across the unicasts) to
//!   every peer — so any single fresh replica can repair a stale one
//!   within one sweep cycle. Slot indices are replica-local, so digests
//!   identify state by key, never by position.
//! * **Diff** — the receiver compares each entry with its own store: if the
//!   sender is fresher it *pulls* ([`Msg::RepairReq`]); if the sender is
//!   stale it *pushes* its own value back ([`Msg::RepairVal`]). Both
//!   directions heal, so one sweep converges a pair regardless of which
//!   side diverged.
//! * **Repair** — [`Msg::RepairVal`] applies under the LLC-max rule
//!   (stale or duplicated repairs no-op) and advances the key's Paxos slot
//!   past the sender's decided prefix, exactly what the old rid-0 commit
//!   fill did. The commit round's completion-time fill is now merely the
//!   *targeted trigger* of this mechanism (see
//!   [`Worker::ae_commit_fill`]) — and with `commit_fill(false)` the
//!   periodic sweep alone is sufficient, which `tests/antientropy.rs`
//!   proves.
//!
//! No anti-entropy message is acked or retransmitted: a lost digest or
//! repair is simply superseded by the next sweep. Repairs never touch a
//! key's epoch — an out-of-epoch key still requires a §4.2 quorum read
//! (one peer's value is not a quorum), so the fast/slow-path invariants
//! are untouched.
//!
//! # Interaction with quiescence
//!
//! The deterministic simulator declares quiescence when every actor is idle
//! and no deliveries are in flight; an unconditional periodic sweep would
//! keep the network busy forever. Sweeping therefore runs while the
//! worker's protocol state is active and for a **cool-down** of one full
//! store cycle (plus slack) afterwards; any repair activity re-arms the
//! cool-down. `Worker::is_idle` reports idle only once the cool-down has
//! lapsed, so `run_until_quiesce` additionally guarantees the final states
//! have been swept — replicas converge *before* quiescence, without per-op
//! fills.

//! # Merkle-range mode (`ClusterConfig::merkle_digests`)
//!
//! At production store sizes the flat sweep's digest *bytes* are O(store)
//! per cycle even when replicas are identical. With `merkle_digests(true)`
//! the sweep instead broadcasts a **summary** of the whole store folded
//! from the KVS's incremental leaf lattice (see `kite_kvs::store`): the
//! top level of an implicit `fanout`-ary tree over the leaf hashes, so one
//! message of O(fanout) hashes covers every key. Receivers fold the same
//! ranges locally; a mismatched range is answered with [`Msg::MerkleReq`],
//! whose drill-down descends one level per round trip and bottoms out in a
//! flat per-leaf [`Msg::Digest`] — from there the per-key diff → pull/push
//! → repair machinery is **unchanged**, so every slot-advancement-with-
//! evidence invariant carries over verbatim. Identical replicas exchange
//! nothing but the top summary: steady-state digest bytes are O(log store).
//!
//! Interior hashes are folded on demand (never stored); only leaves are
//! maintained, lock-free, by the store's write paths. A summary racing an
//! in-flight write sees a transient mismatch — the drill-down then ends in
//! an idempotent no-op repair, exactly like a flat digest racing a write.
//! Mismatch re-arms both ends' sweeps (the requester when it sends a
//! [`Msg::MerkleReq`], the responder when it receives one), which keeps
//! the *symmetric* heal live: keys only the requester holds are surfaced
//! by its own summaries at the responder, one sweep later. Matching
//! summaries re-arm nothing, so converged clusters still quiesce.

use std::sync::Arc;

use kite_common::{ClusterConfig, Key, Lc, NodeId, Val};
use kite_kvs::Store;
use kite_simnet::Outbox;

use crate::msg::{DigestChunk, MerkleSummary, Msg, Repair};
use crate::worker::Worker;

/// Encoded wire bytes of a flat digest carrying `entries` `(key, Lc)`
/// pairs (tag + count + 16 per entry) — the `ae_digest_bytes` accounting
/// mirrors `kite::wire` so the counter means the same thing on every
/// transport.
#[inline]
fn digest_wire_bytes(entries: usize) -> u64 {
    5 + 16 * entries as u64
}

/// Encoded wire bytes of a Merkle summary of `hashes` range hashes.
#[inline]
fn summary_wire_bytes(hashes: usize) -> u64 {
    10 + 8 * hashes as u64
}

/// Encoded wire bytes of a Merkle drill-down request for `buckets` buckets.
#[inline]
fn req_wire_bytes(buckets: usize) -> u64 {
    6 + 4 * buckets as u64
}

/// Encoded wire bytes of one [`Msg::RepairVal`] (tag + key + len-prefixed
/// value + Lc + slot + ring of `(op-id, slot, len-prefixed result)`
/// entries) — mirrors `kite::wire` like [`digest_wire_bytes`] so the
/// `ae_repair_bytes` counter means the same thing on every transport.
#[inline]
pub(crate) fn repair_wire_bytes(r: &Repair) -> u64 {
    33 + r.val.as_bytes().len() as u64
        + r.ring.iter().map(|c| 25 + c.result.as_bytes().len() as u64).sum::<u64>()
}

/// Drill-down geometry: an implicit `fanout`-ary tree over the store's
/// `leaves` leaf hashes. Level 0 buckets are single leaves; a level-`l`
/// bucket covers `fanout^l` consecutive leaves. Derived identically on
/// every replica from the shared config, so `(level, bucket)` names the
/// same leaf range everywhere.
#[derive(Clone, Copy, Debug)]
pub(crate) struct MerkleGeom {
    /// Leaf count of the local store's lattice.
    leaves: usize,
    /// Children per interior node.
    fanout: usize,
    /// The level the sweep summarizes at: the smallest level with at most
    /// `fanout` buckets, so the whole store fits one summary message.
    top_level: u8,
}

impl MerkleGeom {
    fn new(leaves: usize, fanout: usize) -> Self {
        let fanout = fanout.max(2);
        let mut top_level = 0u8;
        while Self::buckets(leaves, fanout, top_level) > fanout {
            top_level += 1;
        }
        MerkleGeom { leaves, fanout, top_level }
    }

    fn buckets(leaves: usize, fanout: usize, level: u8) -> usize {
        let width = (fanout as u128).saturating_pow(level as u32);
        ((leaves as u128).div_ceil(width).max(1)) as usize
    }

    /// Number of buckets at `level`.
    fn buckets_at(&self, level: u8) -> usize {
        Self::buckets(self.leaves, self.fanout, level)
    }

    /// The leaf range `[lo, hi)` a `(level, bucket)` covers (clamped).
    fn leaf_range(&self, level: u8, bucket: usize) -> (usize, usize) {
        let width = (self.fanout as u128).saturating_pow(level as u32);
        let lo = (bucket as u128).saturating_mul(width).min(self.leaves as u128) as usize;
        let hi = (bucket as u128 + 1).saturating_mul(width).min(self.leaves as u128) as usize;
        (lo, hi)
    }
}

/// Per-worker anti-entropy state. Only worker 0 of a node sweeps (one
/// digest stream per node, not per worker — though its idleness tracking
/// watches the whole node's completion counter); every worker answers
/// repair traffic.
pub(crate) struct AeState {
    /// This worker emits digest sweeps (`cfg.anti_entropy` && worker 0).
    sweep: bool,
    /// Sweep cadence (ns).
    interval: u64,
    /// Idle-time keepalive cadence (ns), `0` = off: after the cool-down
    /// has lapsed (`done`), keep emitting one digest chunk per this
    /// interval so a replica that diverged while *idle* converges at heal
    /// time instead of on the next activity. Deliberately ignored by
    /// [`AeState::quiescent`]: the keepalive is a steady background
    /// trickle, not outstanding work (sims that enable it never quiesce —
    /// which is why it defaults off).
    keepalive: u64,
    /// Store slots per digest.
    chunk: usize,
    /// Cool-down after the worker goes protocol-idle: one full store cycle
    /// plus slack, so everything written before idling is swept at least
    /// once more.
    cooldown: u64,
    /// Next store slot to digest (wraps).
    cursor: usize,
    /// Time of the last sweep.
    last_sweep: u64,
    /// Time of the last `ae_on_tick` — a large gap means the worker just
    /// woke from a §8.4 sleep (or similar scheduling blackout) and must
    /// assume divergence.
    last_tick: u64,
    /// Node-wide completion count at the last tick: sibling workers share
    /// the store this worker sweeps, so *their* activity must hold the
    /// sweep open too, not just this worker's own sessions.
    last_completed: u64,
    /// Remaining post-wake resync pings (empty digests that re-arm peers'
    /// sweeps). A replica that slept through a key's *first* write holds
    /// no slot to advertise it from, so its own data digests cannot
    /// surface that gap — only a full cycle of peer digests can. Several
    /// are sent so a lossy link cannot eat the only copy. Merkle mode
    /// keeps the ping as-is: a sleeper's all-zero lattice *does* mismatch
    /// peers' summaries, but only while their sweeps are armed — the ping
    /// is what re-arms them.
    pings: u8,
    /// Merkle-range mode: sweeps broadcast lattice summaries instead of
    /// flat per-chunk digests (see the module docs).
    merkle: bool,
    /// Drill-down persistence filter: per-source, the top-level buckets
    /// that mismatched on that peer's *previous* sweep summary. A
    /// top-level mismatch triggers a drill-down only when the same bucket
    /// mismatched on two consecutive sweeps — real divergence is sticky
    /// (nothing repairs it between sweeps), while a summary racing an
    /// in-flight write is transient and (almost always) lands elsewhere
    /// next sweep. Cuts the drill-down churn traffic of active workloads
    /// without touching steady state (converged replicas mismatch
    /// nothing) or liveness (a mismatch always re-arms the sweep, so the
    /// confirming summary is at most one interval away). Indexed by
    /// source node; drill-down child summaries (level < top) bypass the
    /// filter — they are already confirmed divergence.
    prev_mismatch: Vec<Vec<u32>>,
    /// Drill-down geometry (meaningful whenever a peer may speak Merkle —
    /// derived from the shared config, so always initialized).
    geom: MerkleGeom,
    /// When the node last transitioned to idle (`None` while active).
    idle_since: Option<u64>,
    /// Cool-down lapsed: stop sweeping, report idle. Always `true` for
    /// non-sweeping workers.
    done: bool,
}

impl AeState {
    pub(crate) fn new(cfg: &ClusterConfig, wid: usize, store: &Store) -> Self {
        let sweep = cfg.anti_entropy && wid == 0;
        let interval = cfg.anti_entropy_interval_ns;
        let chunk = cfg.anti_entropy_chunk.max(1);
        let merkle = cfg.merkle_digests;
        let geom = MerkleGeom::new(store.merkle_leaves(), cfg.merkle_fanout);
        // Cool-down: everything written before idling must be swept (and,
        // in Merkle mode, drilled into) at least once more. A flat cycle
        // is one full cursor walk; a Merkle "cycle" is a single summary
        // plus one drill-down round trip per level, all within a couple of
        // intervals — budget one interval per level plus slack, plus one
        // more interval for the persistence filter's confirming sweep (a
        // drill-down starts only on the second consecutive mismatch).
        let cycle = if merkle {
            (geom.top_level as u64 + 3) * interval
        } else {
            (store.capacity().div_ceil(chunk) as u64) * interval
        };
        AeState {
            sweep,
            interval,
            keepalive: cfg.anti_entropy_keepalive_ns,
            chunk,
            cooldown: cycle + 2 * interval,
            cursor: 0,
            last_sweep: 0,
            last_tick: 0,
            last_completed: 0,
            pings: 0,
            merkle,
            prev_mismatch: vec![Vec::new(); cfg.nodes],
            geom,
            idle_since: None,
            done: !sweep,
        }
    }

    /// Repair-relevant activity observed: re-arm the cool-down so the next
    /// full cycle can confirm convergence.
    #[inline]
    fn rearm(&mut self) {
        if self.sweep {
            self.idle_since = None;
            self.done = false;
        }
    }

    /// Has the sweep wound down (for `Worker::is_idle`)?
    #[inline]
    pub(crate) fn quiescent(&self) -> bool {
        self.done
    }

    /// One-line state summary for the watchdog dump.
    pub(crate) fn describe(&self) -> String {
        format!(
            "sweep={} done={} cursor={} last_sweep={} last_tick={} idle_since={:?} \
             interval={} keepalive={} chunk={} cooldown={} merkle={} suspect_buckets={} geom={:?}",
            self.sweep,
            self.done,
            self.cursor,
            self.last_sweep,
            self.last_tick,
            self.idle_since,
            self.interval,
            self.keepalive,
            self.chunk,
            self.cooldown,
            self.merkle,
            self.prev_mismatch.iter().map(|v| v.len()).sum::<usize>(),
            self.geom,
        )
    }
}

impl Worker {
    /// Protocol-level idleness (sessions + in-flight), ignoring the
    /// anti-entropy cool-down.
    #[inline]
    pub(crate) fn protocol_idle(&self) -> bool {
        self.inflight.is_empty() && self.sessions.iter().all(|s| s.is_idle())
    }

    /// Anti-entropy scheduling, called every tick: track idleness, run the
    /// cool-down, and emit one digest per interval while active.
    pub(crate) fn ae_on_tick(&mut self, now: u64, out: &mut Outbox<Msg>) {
        if !self.ae.sweep {
            return;
        }
        // A large gap between ticks means this worker just woke from a
        // §8.4-style sleep: the cluster moved on without it (and its
        // cool-down clock ran while it was blacked out), so assume
        // divergence and sweep a fresh full cycle — its digests advertise
        // the stale clocks and any fresh peer pushes repairs back. The
        // very first tick counts as a wake too: a replica that slept from
        // birth has no `last_tick` to measure a gap from, and the worst a
        // spurious birth-time resync costs is a few empty pings.
        let gap = now.saturating_sub(self.ae.last_tick);
        if self.ae.last_tick == 0 || gap > 4 * self.ae.interval {
            self.ae.rearm();
            self.ae.idle_since = Some(now);
            self.ae.pings = 3;
        }
        self.ae.last_tick = now;
        // Node-level activity: this worker's own sessions/in-flight, plus
        // any sibling worker completing an op against the shared store
        // (visible as a completion-counter move). Either re-arms the sweep
        // — including from a lapsed `done` state, so a cluster that goes
        // idle and later resumes serving sweeps again.
        let completed = self.shared.counters.completed.get();
        let siblings_moved = completed != self.ae.last_completed;
        self.ae.last_completed = completed;
        if !self.protocol_idle() || siblings_moved {
            self.ae.idle_since = None;
            self.ae.done = false;
        } else if self.ae.done {
            // Wound down. With a keepalive configured, fall through to emit
            // one digest chunk per keepalive interval (at the keepalive
            // cadence, not the active-sweep cadence) — `done` stays set, so
            // quiescence reporting is untouched; real divergence surfaced
            // by the digest re-arms the full sweep via the repair path.
            if self.ae.keepalive == 0
                || now.saturating_sub(self.ae.last_sweep) < self.ae.keepalive
            {
                return;
            }
        } else {
            match self.ae.idle_since {
                None => self.ae.idle_since = Some(now),
                Some(t) if now.saturating_sub(t) >= self.ae.cooldown => {
                    self.ae.done = true;
                    return;
                }
                Some(_) => {}
            }
        }
        if now.saturating_sub(self.ae.last_sweep) < self.ae.interval {
            return;
        }
        self.ae.last_sweep = now;
        // Post-wake resync ping: an *empty* digest (ordinary sweeps never
        // broadcast empty ranges) telling peers "I was gone — sweep a full
        // cycle at me". Their digests then carry every key this replica
        // may be missing, including keys it has no slot for — which its
        // own data digests could never advertise.
        // Anti-entropy reaches *members* — voters and learners alike: the
        // sweep is exactly how a learner catches up, so it must not be
        // restricted to the voter set the protocol rounds use.
        let members = self.members().minus(kite_common::NodeSet::singleton(self.me));
        let peers = members.len() as u64;
        if peers == 0 {
            return;
        }
        if self.ae.pings > 0 {
            self.ae.pings -= 1;
            let c = &self.shared.counters;
            c.ae_digests_sent.add(peers);
            c.ae_digest_bytes.add(digest_wire_bytes(0) * peers);
            out.multicast(self.me, members, Msg::Digest { d: Arc::new(DigestChunk { entries: Vec::new() }) });
        }
        if self.ae.merkle {
            // Merkle mode: one top-level lattice summary covers the whole
            // store — O(fanout) hashes per interval, whatever the store
            // size. Divergence surfaces as a range mismatch at a receiver,
            // which drills down via `MerkleReq`.
            let geom = self.ae.geom;
            let top = geom.top_level;
            let store = &self.shared.store;
            let hashes: Vec<u64> = (0..geom.buckets_at(top))
                .map(|b| {
                    let (lo, hi) = geom.leaf_range(top, b);
                    store.fold_leaves(lo, hi)
                })
                .collect();
            let c = &self.shared.counters;
            c.ae_summaries_sent.add(peers);
            c.ae_digest_bytes.add(summary_wire_bytes(hashes.len()) * peers);
            let s = Arc::new(MerkleSummary { level: top, start: 0, hashes });
            out.multicast(self.me, members, Msg::MerkleSummary { s });
            return;
        }
        let mut entries = Vec::new();
        self.ae.cursor =
            self.shared.store.digest_range(self.ae.cursor, self.ae.chunk, &mut entries);
        if entries.is_empty() {
            return; // nothing live in this range; cursor still advanced
        }
        // Broadcast: any single fresh peer can then repair a stale one, so
        // one full cycle after the last write every divergence has been
        // diffed against every replica. The `Arc` payload makes the N−1
        // unicasts refcount bumps.
        let c = &self.shared.counters;
        c.ae_digests_sent.add(peers);
        c.ae_digest_keys.add(entries.len() as u64 * peers);
        c.ae_digest_bytes.add(digest_wire_bytes(entries.len()) * peers);
        out.multicast(self.me, members, Msg::Digest { d: Arc::new(DigestChunk { entries }) });
    }

    /// A peer's Merkle summary arrived: fold the same lattice ranges
    /// locally and ask for a drill-down on every mismatch. Matching ranges
    /// generate no traffic and no re-arm — two converged replicas exchange
    /// exactly one summary per interval while their sweeps wind down.
    pub(crate) fn on_merkle_summary(
        &mut self,
        src: NodeId,
        s: Arc<MerkleSummary>,
        out: &mut Outbox<Msg>,
    ) {
        let geom = self.ae.geom;
        if s.level > geom.top_level {
            return; // geometry mismatch (or a malformed peer): ignore
        }
        let buckets = geom.buckets_at(s.level);
        let store = &self.shared.store;
        let mut mismatched: Vec<u32> = Vec::new();
        for (i, &hash) in s.hashes.iter().enumerate() {
            let Some(b) = (s.start as usize).checked_add(i) else { break };
            if b >= buckets {
                break;
            }
            let (lo, hi) = geom.leaf_range(s.level, b);
            if store.fold_leaves(lo, hi) != hash {
                mismatched.push(b as u32);
            }
        }
        if mismatched.is_empty() {
            if s.level == geom.top_level {
                // Converged with this peer: drop any pending suspicion so a
                // later transient mismatch starts the two-sweep count fresh.
                self.ae.prev_mismatch[src.idx()].clear();
            }
            return;
        }
        // Divergence (or an in-flight write) somewhere under these ranges:
        // keep our own sweep armed so the symmetric direction — keys only
        // *we* hold — reaches the peer via our summaries too. Re-arming
        // happens even when the persistence filter below withholds the
        // drill-down: the confirming sweep is what the re-arm buys.
        self.ae.rearm();
        if s.level == geom.top_level {
            // Persistence filter (see `AeState::prev_mismatch`): drill only
            // into buckets that also mismatched on this peer's previous
            // sweep; remember the full set as next sweep's suspicion.
            let prev = std::mem::replace(&mut self.ae.prev_mismatch[src.idx()], mismatched);
            mismatched = self.ae.prev_mismatch[src.idx()]
                .iter()
                .copied()
                .filter(|b| prev.contains(b))
                .collect();
            if mismatched.is_empty() {
                return;
            }
        }
        let c = &self.shared.counters;
        c.ae_merkle_reqs.incr();
        c.ae_digest_bytes.add(req_wire_bytes(mismatched.len()));
        out.send(src, Msg::MerkleReq { level: s.level, buckets: mismatched.into() });
    }

    /// A peer drilled into our summary: answer each mismatched bucket with
    /// its child-level summary, or — at the leaf level — with the flat
    /// `(key, Lc)` digest of that leaf, handing the diff to the unchanged
    /// per-key repair machinery.
    pub(crate) fn on_merkle_req(
        &mut self,
        src: NodeId,
        level: u8,
        buckets: Arc<[u32]>,
        out: &mut Outbox<Msg>,
    ) {
        let geom = self.ae.geom;
        if level > geom.top_level {
            return;
        }
        // A drill-down proves a peer sees divergence with us: keep sweeping
        // until a full summary round confirms convergence.
        self.ae.rearm();
        let nb = geom.buckets_at(level);
        let store = &self.shared.store;
        if level == 0 {
            // Bottom out: flat digest of the requested leaves, split into
            // multiple chunks if a big-leaf config would overflow one
            // message's wire-side collection bound (`wire::MAX_SEQ`) —
            // a frame the receive gate rejects poisons the link. Empty
            // leaves are skipped — an empty digest is the resync ping, and
            // the "sender holds nothing" direction is healed by our own
            // summaries mismatching at the peer instead.
            let chunk_cap = crate::wire::MAX_SEQ / 2;
            let mut entries: Vec<(Key, Lc)> = Vec::new();
            let mut flush = |entries: &mut Vec<(Key, Lc)>| {
                if entries.is_empty() {
                    return;
                }
                let c = &self.shared.counters;
                c.ae_digests_sent.incr();
                c.ae_digest_keys.add(entries.len() as u64);
                c.ae_digest_bytes.add(digest_wire_bytes(entries.len()));
                out.send(
                    src,
                    Msg::Digest { d: Arc::new(DigestChunk { entries: std::mem::take(entries) }) },
                );
            };
            for &b in buckets.iter() {
                if (b as usize) < nb {
                    store.digest_leaf(b as usize, &mut entries);
                    if entries.len() >= chunk_cap {
                        flush(&mut entries);
                    }
                }
            }
            flush(&mut entries);
            return;
        }
        for &b in buckets.iter() {
            let b = b as usize;
            if b >= nb {
                continue; // malformed peer: out-of-range bucket
            }
            let child_level = level - 1;
            let child_base = b * geom.fanout;
            let n = geom.fanout.min(geom.buckets_at(child_level).saturating_sub(child_base));
            if n == 0 {
                continue;
            }
            let hashes: Vec<u64> = (0..n)
                .map(|i| {
                    let (lo, hi) = geom.leaf_range(child_level, child_base + i);
                    store.fold_leaves(lo, hi)
                })
                .collect();
            let c = &self.shared.counters;
            c.ae_summaries_sent.incr();
            c.ae_digest_bytes.add(summary_wire_bytes(hashes.len()));
            out.send(
                src,
                Msg::MerkleSummary {
                    s: Arc::new(MerkleSummary {
                        level: child_level,
                        start: child_base as u32,
                        hashes,
                    }),
                },
            );
        }
    }

    /// A peer's digest arrived: diff it against the local store, pull what
    /// the peer has fresher, push back what it holds stale.
    pub(crate) fn on_digest(&mut self, src: NodeId, d: Arc<DigestChunk>, out: &mut Outbox<Msg>) {
        if d.entries.is_empty() {
            // A post-wake resync ping: re-arm our sweep so a full cycle of
            // our digests reaches the sender — it may hold no slot for the
            // very keys it slept through, so only our side can surface
            // them. One-shot per ping (ordinary digests re-arm only on an
            // actual diff), so mutual sweeps still wind down.
            self.ae.rearm();
            return;
        }
        let mut pull: Vec<Key> = Vec::new();
        for &(key, lc) in &d.entries {
            // Non-claiming probe: a digest mentioning a key we never
            // touched must not allocate a slot here — we only adopt the
            // key if a repair actually delivers a value for it.
            match self.shared.store.probe_lc(key) {
                None if lc > Lc::ZERO => pull.push(key),
                None => {} // both sides hold nothing: no information
                Some(local) if local < lc => pull.push(key),
                Some(local) if local > lc => {
                    // The *sender* is behind: push our value straight back.
                    self.ae_send_repair(src, key, out);
                    self.ae.rearm();
                }
                Some(_) => {} // equal: converged
            }
        }
        if !pull.is_empty() {
            self.shared.counters.ae_repair_reqs.incr();
            self.ae.rearm();
            out.send(src, Msg::RepairReq { keys: pull.into_boxed_slice() });
        }
    }

    /// A repair pull: answer with our current value (plus Paxos slot and
    /// ring evidence) for each requested key. Fire-and-forget — a lost
    /// answer is re-pulled on a later sweep.
    pub(crate) fn on_repair_req(&mut self, src: NodeId, keys: Box<[Key]>, out: &mut Outbox<Msg>) {
        for &key in keys.iter() {
            self.ae_send_repair(src, key, out);
        }
    }

    /// Build and send one repair for `key`: the current value plus the
    /// `(slot, ring)` evidence pair read under one lock — evidence before
    /// value, so a racing commit can only make the value *fresher* than
    /// the slot implies, never staler.
    pub(crate) fn ae_send_repair(&mut self, dst: NodeId, key: Key, out: &mut Outbox<Msg>) {
        let (slot, ring) = self.shared.store.paxos_evidence(key);
        let view = self.shared.store.view(key);
        self.shared.counters.ae_repair_vals.incr();
        let r = Box::new(Repair { key, val: view.val, lc: view.lc, slot, ring });
        self.shared.counters.ae_repair_bytes.add(repair_wire_bytes(&r));
        out.send(dst, Msg::RepairVal { r });
    }

    /// A repaired value: merge the dedup evidence and advance the slot
    /// *first* (one lock), then apply the value under LLC-max (idempotent;
    /// stale repairs no-op; the epoch is deliberately untouched). Evidence
    /// before value, so a decide on a sibling worker that observes the
    /// repaired value is guaranteed to find the ring entries behind it —
    /// a ring-less slot/value advance is exactly what let a strong CAS
    /// fail against its own committed value (see `crate::msg::Repair`).
    pub(crate) fn on_repair_val(&mut self, r: Box<Repair>) {
        if r.slot > 0 || !r.ring.is_empty() {
            let pax = self.shared.store.paxos(r.key);
            pax.lock().merge_evidence(&r.ring, r.slot);
        }
        if self.shared.store.apply_max(r.key, &r.val, r.lc) {
            self.shared.counters.ae_repairs_applied.incr();
            self.ae.rearm();
        }
    }

    /// The targeted trigger: a quorum round (RMW commit, release value
    /// round, acquire write-back) just completed with `targets` outside its
    /// quorum — the round stops retransmitting now. Push a repair to the
    /// **suspected** stragglers among them (nodes whose acks we believe
    /// will never come — a §8.4 sleeper): their convergence would otherwise
    /// wait a whole sweep cycle for state they may be queried about the
    /// moment they wake. *Unsuspected* non-ackers are almost always just
    /// acks in flight — measurement at 0% loss showed blind fills were
    /// 100% redundant — so plain-loss stragglers are left to the sweep,
    /// which `tests/antientropy.rs` proves sufficient. `next_slot` is the
    /// key's next undecided Paxos slot for commit fills, `0` otherwise.
    /// Gated by `commit_fill` (the sweep-sufficiency baseline disables it).
    pub(crate) fn ae_completion_fill(
        &mut self,
        targets: kite_common::NodeSet,
        key: Key,
        val: Val,
        lc: Lc,
        next_slot: u64,
        out: &mut Outbox<Msg>,
    ) {
        let targets = Self::fill_targets_in(self.commit_fill, &self.shared, targets);
        if targets.is_empty() {
            return;
        }
        // Commit fills (next_slot > 0) advance the receiver's slot, so they
        // must carry the ring evidence; the current local evidence is at
        // least as fresh as the completed round's. Value-round fills
        // (slot 0) advance nothing and ship none.
        let (slot, ring) =
            if next_slot > 0 { self.shared.store.paxos_evidence(key) } else { (0, Vec::new()) };
        let slot = slot.max(next_slot);
        self.shared.counters.ae_repair_vals.add(targets.len() as u64);
        let r = Box::new(Repair { key, val, lc, slot, ring });
        self.shared.counters.ae_repair_bytes.add(targets.len() as u64 * repair_wire_bytes(&r));
        out.multicast(self.me, targets, Msg::RepairVal { r });
    }

    /// The completion-fill gate, associated over the individual fields so a
    /// caller can evaluate it while an in-flight entry is still borrowed —
    /// and skip preparing the payload (cloning a value out of an `Arc`'d
    /// commit) when the answer is "nobody", which is the steady state.
    /// Idempotent: `ae_completion_fill` applies it again on whatever it is
    /// handed.
    #[inline]
    pub(crate) fn fill_targets_in(
        commit_fill: bool,
        shared: &crate::nodestate::NodeShared,
        missing: kite_common::NodeSet,
    ) -> kite_common::NodeSet {
        if !commit_fill || missing.is_empty() {
            return kite_common::NodeSet::EMPTY;
        }
        missing.intersect(shared.suspected())
    }
}
