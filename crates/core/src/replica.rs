//! Replica-side protocol handlers: how a Kite node reacts to requests from
//! peers. These are the passive halves of ES (§3.2), ABD (§3.3), Paxos
//! (§3.4) and the barrier machinery (§4.2).
//!
//! Plain acks (ES writes, value broadcasts, commit visibility) are not sent
//! eagerly: [`Worker::ack`] stages the rid and `Worker::flush_acks` folds
//! everything staged while draining one inbound envelope into a single
//! [`Msg::AckBatch`] back to the source — the ack path is sub-linear in
//! messages. Replies that carry data (`ReadRep`, `PromiseRep`, …) and acks
//! that carry a delinquency verdict are sent individually as before.

#![allow(clippy::too_many_arguments)] // protocol handlers thread (now, cfg, outbox, ...) explicitly

use std::sync::Arc;

use kite_common::{Key, Lc, NodeId, NodeSet, OpId, Val};
use kite_kvs::paxos_meta::AcceptedCmd;
use kite_simnet::Outbox;

use crate::msg::{CatchUp, Cmd, CommitPayload, Msg, PromiseOutcome, WriteBack};
use crate::worker::Worker;

impl Worker {
    /// Delinquency probe on behalf of an acquire-type request from machine
    /// `src` (§4.2.1): reports whether `src` is deemed delinquent and
    /// performs the Set→Transient transition tagged with the acquire id.
    /// Disabled outside full-Kite mode.
    #[inline]
    fn probe(&self, src: NodeId, acq: Option<OpId>) -> bool {
        match acq {
            Some(op) if self.mode.has_barriers() => self.shared.delinquency.probe(src, op),
            _ => false,
        }
    }

    /// ES write propagation (§3.2): apply iff the clock wins; ack always —
    /// the sender's release barrier counts acks, not applications. In
    /// ES-only mode no one tracks acks, so none are sent.
    pub(crate) fn on_es_write(
        &mut self,
        src: NodeId,
        rid: u64,
        key: Key,
        val: Val,
        lc: Lc,
        out: &mut Outbox<Msg>,
    ) {
        self.shared.store.apply_max(key, &val, lc);
        if self.mode.has_barriers() {
            self.ack(src, rid, out);
        }
    }

    /// ABD write round 1: read the key's clock (§3.3).
    pub(crate) fn on_rts_req(&mut self, src: NodeId, rid: u64, key: Key, out: &mut Outbox<Msg>) {
        out.send(src, Msg::RtsRep { rid, lc: self.shared.store.read_lc(key) });
    }

    /// ABD read round 1 (§3.3) + the acquire's delinquency discovery (§4.2).
    pub(crate) fn on_read_req(
        &mut self,
        src: NodeId,
        rid: u64,
        key: Key,
        acq: Option<OpId>,
        out: &mut Outbox<Msg>,
    ) {
        let delinquent = self.probe(src, acq);
        let view = self.shared.store.view(key);
        out.send(src, Msg::ReadRep { rid, val: view.val, lc: view.lc, delinquent });
    }

    /// Untagged ABD value broadcast (release round 2, slow-path rounds):
    /// apply under the LLC-max rule and ack (plain — no probe, no verdict).
    pub(crate) fn on_write_msg(
        &mut self,
        src: NodeId,
        rid: u64,
        key: Key,
        val: Val,
        lc: Lc,
        out: &mut Outbox<Msg>,
    ) {
        self.shared.store.apply_max(key, &val, lc);
        self.ack(src, rid, out);
    }

    /// Acquire-tagged write-back: like [`Worker::on_write_msg`] but probes
    /// too — Lemma 5.3 needs the *second* round's quorum to intersect the
    /// DM-set quorum when the value was seen by fewer than a quorum in
    /// round 1. A delinquent verdict must reach the acquirer, so it is
    /// acked individually; the common clean verdict coalesces.
    pub(crate) fn on_write_acq(
        &mut self,
        src: NodeId,
        rid: u64,
        wb: Arc<WriteBack>,
        out: &mut Outbox<Msg>,
    ) {
        let delinquent = self.probe(src, Some(wb.acq));
        self.shared.store.apply_max(wb.key, &wb.val, wb.lc);
        if delinquent {
            self.shared.counters.acks_sent.incr();
            out.send(src, Msg::WriteAck { rid, delinquent: true });
        } else {
            self.ack(src, rid, out);
        }
    }

    /// Slow-release (§4.2): record the DM-set, ack. The release at `src`
    /// executes only once a quorum has acked.
    pub(crate) fn on_slow_release(
        &mut self,
        src: NodeId,
        rid: u64,
        dm: NodeSet,
        out: &mut Outbox<Msg>,
    ) {
        self.shared.delinquency.mark_delinquent(dm);
        out.send(src, Msg::SlowReleaseAck { rid });
    }

    /// Best-effort delinquency reset (§4.2.1): clears iff the bit is still
    /// transient under this acquire's tag.
    pub(crate) fn on_reset_bit(&mut self, acq: OpId) {
        self.shared.delinquency.reset(acq.session.node, acq);
    }

    /// Paxos phase 1 (acceptor): promise, nack, or redirect (§3.4). Also
    /// the acquire-side delinquency probe for RMWs (§4.2 "RMWs").
    pub(crate) fn on_propose(
        &mut self,
        src: NodeId,
        rid: u64,
        key: Key,
        slot: u64,
        ballot: Lc,
        op: OpId,
        out: &mut Outbox<Msg>,
    ) {
        let delinquent = self.probe(src, Some(op));
        let outcome = {
            let meta = self.shared.store.paxos(key);
            let mut meta = meta.lock();
            if let Some(c) = meta.committed.find(op) {
                // The proposer's command already committed and we saw it.
                // Surfacing this on *every* propose — not only on slot
                // mismatches — is what makes RMWs exactly-once: the commit
                // reached a quorum of rings, every promise quorum intersects
                // that quorum, and replicas answering this way also deny the
                // proposer a plain promise quorum — so a completed command
                // can never be re-decided at a fresh slot. The catch-up
                // carries our ring so the proposer's slot advance keeps the
                // evidence with it (see `crate::msg::Repair`).
                let result = c.result.clone();
                let view = self.shared.store.view(key);
                PromiseOutcome::AlreadyCommitted(Box::new(CatchUp {
                    slot: meta.slot,
                    cur_val: view.val,
                    cur_lc: view.lc,
                    done: Some(result),
                    ring: meta.committed.iter().cloned().collect(),
                }))
            } else if slot < meta.slot {
                // Slot already decided here: help the proposer catch up
                // (ring attached — slot advances travel with evidence).
                let view = self.shared.store.view(key);
                PromiseOutcome::AlreadyCommitted(Box::new(CatchUp {
                    slot: meta.slot,
                    cur_val: view.val,
                    cur_lc: view.lc,
                    done: None,
                    ring: meta.committed.iter().cloned().collect(),
                }))
            } else if slot > meta.slot {
                // We missed a commit; the proposer will send a fill.
                PromiseOutcome::Lagging { slot: meta.slot }
            } else if ballot >= meta.promised {
                // `>=` admits retransmissions of the same proposer's ballot
                // (ballots embed the machine id, so equality ⇒ same proposer).
                meta.promised = ballot;
                let accepted = meta.accepted.as_ref().map(|a| {
                    Box::new((
                        a.ballot,
                        Cmd { op: a.op, new_val: a.new_val.clone(), result: a.result.clone(), lc: a.lc },
                    ))
                });
                PromiseOutcome::Promised { accepted }
            } else {
                PromiseOutcome::NackBallot { promised: meta.promised }
            }
        };
        out.send(src, Msg::PromiseRep { rid, ballot, outcome, delinquent });
    }

    /// Paxos phase 2 (acceptor): accept iff nothing higher was promised for
    /// the same live slot.
    pub(crate) fn on_accept(
        &mut self,
        src: NodeId,
        rid: u64,
        key: Key,
        slot: u64,
        ballot: Lc,
        cmd: Arc<Cmd>,
        out: &mut Outbox<Msg>,
    ) {
        let delinquent = self.probe(src, Some(cmd.op));
        let (ok, promised) = {
            let meta = self.shared.store.paxos(key);
            let mut meta = meta.lock();
            if slot == meta.slot && ballot >= meta.promised {
                meta.promised = ballot;
                meta.accepted = Some(AcceptedCmd {
                    op: cmd.op,
                    ballot,
                    new_val: cmd.new_val.clone(),
                    result: cmd.result.clone(),
                    lc: cmd.lc,
                });
                (true, ballot)
            } else {
                (false, meta.promised)
            }
        };
        out.send(src, Msg::AcceptRep { rid, ballot, ok, promised, delinquent });
    }

    /// Commit/learn (§3.4): apply the decided value (LLC-max keeps this
    /// idempotent and correctly ordered against relaxed writes), record the
    /// command for dedup, advance the slot. Always acked: catch-up for
    /// replicas outside the round rides the anti-entropy repair path
    /// (`Msg::RepairVal`) nowadays, so every `Commit` on the wire belongs
    /// to a live visibility round.
    pub(crate) fn on_commit(
        &mut self,
        src: NodeId,
        rid: u64,
        key: Key,
        c: Arc<CommitPayload>,
        out: &mut Outbox<Msg>,
    ) {
        self.ack(src, rid, out);
        self.shared.store.apply_max(key, &c.val, c.lc);
        let pax = self.shared.store.paxos(key);
        let mut pax = pax.lock();
        if let Some((op, result)) = &c.meta {
            if pax.committed.find(*op).is_none() {
                pax.committed.push(kite_kvs::paxos_meta::RmwCommit {
                    op: *op,
                    slot: c.slot,
                    result: result.clone(),
                });
            }
        }
        pax.advance_past(c.slot);
    }
}
