//! The binary wire codec: how [`Msg`] batches (and the remote-session
//! client protocol) cross a real socket.
//!
//! The in-process runtimes move `Msg` values through channels, so the serde
//! derives in this workspace are deliberately no-op shims. This module is
//! the real encoder: a hand-rolled, little-endian, length-prefixed format
//! with no reflection and no allocation beyond the payload bytes
//! themselves.
//!
//! # Frame layout
//!
//! A **peer frame** is one [`kite_simnet::Envelope`] on the wire — every
//! message one worker produced for one destination during one scheduling
//! step (§6.3 opportunistic batching survives the socket boundary):
//!
//! ```text
//! [u32 body_len][u8 src_node][u32 mepoch][u32 msg_count][msg_count × Msg]
//! ```
//!
//! `mepoch` is the sender's membership epoch at flush time (see
//! `kite_common::membership`): the receiver's worker gates whole frames on
//! it, so a replica still speaking a retired configuration is corrected at
//! the transport boundary instead of corrupting quorum accounting.
//!
//! `body_len` counts everything after the length prefix and is bounded by
//! [`MAX_FRAME`]; a peer announcing more is treated as malformed. Each
//! `Msg` starts with a one-byte variant tag. `Arc`-shared payloads
//! (`Accept`'s command, `Commit`'s payload, digests) are encoded **once per
//! destination frame** — the refcount sharing that makes broadcast clones
//! cheap in memory becomes "serialize the payload once per peer" on the
//! wire, never once per retransmission buffer.
//!
//! # Decode contract
//!
//! Decoding is *total*: every error path returns [`WireError`], never
//! panics and never over-reads — a malformed or adversarial peer frame
//! must cost the sender its connection, not the receiving worker its
//! process. Frame bodies decode into caller-provided `Vec<Msg>` buffers so
//! the transport can recycle them through the same pools the in-process
//! runtimes use (the zero-allocation invariants survive the socket
//! boundary; see `kite-net`).
//!
//! # Client protocol
//!
//! Remote [`crate::SessionHandle`]-shaped clients speak a tiny protocol on
//! a separate listener: a hello claiming a session slot, then a stream of
//! [`Op`] submissions downstream and [`Completion`]s upstream. Completions
//! carry the op's session sequence number, so clients match replies to
//! calls exactly as the in-process `SessionHandle` does.

use std::sync::Arc;

use kite_common::{Key, Lc, NodeId, NodeSet, OpId, SessionId, Val};
use kite_kvs::RmwCommit;

use crate::api::{Completion, Op, OpOutput};
use crate::msg::{
    CatchUp, Cmd, CommitPayload, DigestChunk, MerkleSummary, Msg, PromiseOutcome, Repair, WriteBack,
};

/// Upper bound on a frame body (everything after the 4-byte length
/// prefix). Sized so that any *single* message this codec can legitimately
/// produce fits (worst case: a `RepairVal` whose 32-entry committed ring
/// carries [`MAX_VAL`]-sized results ≈ 2.2 MiB); batches larger than this
/// are split across frames by [`encode_frames`]. A peer announcing more is
/// malformed, not big.
pub const MAX_FRAME: usize = 4 << 20;

/// Bound on one value's byte length on the wire.
pub const MAX_VAL: usize = 1 << 16;

/// Bound on collection lengths inside one message (ack batches, digest
/// entries, repair-request key lists, committed rings).
pub const MAX_SEQ: usize = 1 << 16;

/// Handshake magic: "KITE".
pub const MAGIC: u32 = 0x4B49_5445;

/// Wire-format version, bumped on any incompatible layout change (v2:
/// peer frames carry the sender's membership epoch).
pub const VERSION: u8 = 2;

/// Handshake kind byte: a peer fabric connection (node-to-node).
pub const KIND_PEER: u8 = 0;
/// Handshake kind byte: a remote client session connection.
pub const KIND_CLIENT: u8 = 1;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a buffer failed to decode. Every decode path returns this — a
/// malformed frame must drop the connection, never panic a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the announced content did.
    Truncated,
    /// A declared length exceeds its bound ([`MAX_FRAME`], [`MAX_VAL`] or
    /// [`MAX_SEQ`]).
    Oversized {
        /// What was oversized.
        what: &'static str,
        /// The declared length.
        len: usize,
    },
    /// An unknown variant tag.
    BadTag {
        /// Which tagged union was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A frame body was not fully consumed by its declared message count.
    Trailing {
        /// Bytes left over.
        left: usize,
    },
    /// The handshake magic or version did not match.
    BadHandshake,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Oversized { what, len } => write!(f, "oversized {what}: {len}"),
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#x}"),
            WireError::Trailing { left } => write!(f, "{left} trailing bytes in frame"),
            WireError::BadHandshake => write!(f, "bad handshake magic/version"),
        }
    }
}

impl std::error::Error for WireError {}

/// Decode result alias.
pub type WireResult<T> = Result<T, WireError>;

// ---------------------------------------------------------------------------
// Primitive cursor
// ---------------------------------------------------------------------------

/// A bounds-checked read cursor over a received buffer.
pub struct Cursor<'a> {
    buf: &'a [u8],
    off: usize,
}

// kite-lint: total-decode
impl<'a> Cursor<'a> {
    /// Start reading `buf` from offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, off: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.off
    }

    #[inline]
    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        // `checked_add` keeps this total even for adversarial `n` close to
        // usize::MAX; `get` turns every short read into Truncated.
        let end = self.off.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.off..end).ok_or(WireError::Truncated)?;
        self.off = end;
        Ok(s)
    }

    /// Read exactly `N` bytes as a fixed array (the total-decode shape for
    /// every fixed-width integer below: no slice indexing, no `expect`).
    #[inline]
    fn take_arr<const N: usize>(&mut self) -> WireResult<[u8; N]> {
        <[u8; N]>::try_from(self.take(N)?).map_err(|_| WireError::Truncated)
    }

    /// Read one byte.
    #[inline]
    pub fn u8(&mut self) -> WireResult<u8> {
        let [b] = self.take_arr::<1>()?;
        Ok(b)
    }

    /// Read a little-endian `u16`.
    #[inline]
    pub fn u16(&mut self) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.take_arr()?))
    }

    /// Read a little-endian `u32`.
    #[inline]
    pub fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take_arr()?))
    }

    /// Read a little-endian `u64`.
    #[inline]
    pub fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take_arr()?))
    }
}

#[inline]
fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

// ---------------------------------------------------------------------------
// Domain primitives
// ---------------------------------------------------------------------------

#[inline]
fn put_lc(out: &mut Vec<u8>, lc: Lc) {
    // An Lc is already a packed u64 (version << 8 | mid); re-pack through
    // the accessors so the codec does not depend on the in-memory layout.
    put_u64(out, (lc.version() << 8) | lc.mid() as u64);
}

// kite-lint: total-decode
#[inline]
fn get_lc(c: &mut Cursor) -> WireResult<Lc> {
    let raw = c.u64()?;
    Ok(Lc::new(raw >> 8, NodeId(raw as u8)))
}

#[inline]
fn put_op_id(out: &mut Vec<u8>, op: OpId) {
    out.push(op.session.node.0);
    put_u32(out, op.session.slot);
    put_u64(out, op.seq);
}

// kite-lint: total-decode
#[inline]
fn get_op_id(c: &mut Cursor) -> WireResult<OpId> {
    let node = NodeId(c.u8()?);
    let slot = c.u32()?;
    let seq = c.u64()?;
    Ok(OpId::new(SessionId::new(node, slot), seq))
}

#[inline]
fn put_val(out: &mut Vec<u8>, v: &Val) {
    let b = v.as_bytes();
    // Hard assert, not debug: an oversized value slipping onto the wire
    // would be rejected by *every* receiving peer's decode gate, so the op
    // would retransmit the same poison frame and flap the link forever — a
    // silent distributed livelock. Failing fast at the local producer is
    // the only recoverable place.
    assert!(b.len() <= MAX_VAL, "value of {} bytes exceeds the wire bound ({MAX_VAL})", b.len());
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

// kite-lint: total-decode
#[inline]
fn get_val(c: &mut Cursor) -> WireResult<Val> {
    let len = c.u32()? as usize;
    if len > MAX_VAL {
        return Err(WireError::Oversized { what: "value", len });
    }
    Ok(Val::from_bytes(c.take(len)?))
}

// kite-lint: total-decode
fn get_seq_len(c: &mut Cursor, what: &'static str) -> WireResult<usize> {
    let len = c.u32()? as usize;
    if len > MAX_SEQ {
        return Err(WireError::Oversized { what, len });
    }
    Ok(len)
}

fn put_ring(out: &mut Vec<u8>, ring: &[RmwCommit]) {
    put_u32(out, ring.len() as u32);
    for r in ring {
        put_op_id(out, r.op);
        put_u64(out, r.slot);
        put_val(out, &r.result);
    }
}

// kite-lint: total-decode
fn get_ring(c: &mut Cursor) -> WireResult<Vec<RmwCommit>> {
    let n = get_seq_len(c, "ring")?;
    let mut ring = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let op = get_op_id(c)?;
        let slot = c.u64()?;
        let result = get_val(c)?;
        ring.push(RmwCommit { op, slot, result });
    }
    Ok(ring)
}

// ---------------------------------------------------------------------------
// Msg codec
// ---------------------------------------------------------------------------

// Variant tags. Append-only: renumbering is a wire-format break (bump
// VERSION instead).
const T_ES_WRITE: u8 = 0;
const T_ACK: u8 = 1;
const T_ACK_BATCH: u8 = 2;
const T_RTS_REQ: u8 = 3;
const T_RTS_REP: u8 = 4;
const T_READ_REQ: u8 = 5;
const T_READ_REP: u8 = 6;
const T_WRITE: u8 = 7;
const T_WRITE_ACQ: u8 = 8;
const T_WRITE_ACK: u8 = 9;
const T_SLOW_RELEASE: u8 = 10;
const T_SLOW_RELEASE_ACK: u8 = 11;
const T_RESET_BIT: u8 = 12;
const T_PROPOSE: u8 = 13;
const T_PROMISE_REP: u8 = 14;
const T_ACCEPT: u8 = 15;
const T_ACCEPT_REP: u8 = 16;
const T_COMMIT: u8 = 17;
const T_DIGEST: u8 = 18;
const T_REPAIR_REQ: u8 = 19;
const T_REPAIR_VAL: u8 = 20;
const T_MERKLE_SUMMARY: u8 = 21;
const T_MERKLE_REQ: u8 = 22;

// PromiseOutcome sub-tags.
const P_PROMISED: u8 = 0;
const P_PROMISED_ACCEPTED: u8 = 1;
const P_NACK: u8 = 2;
const P_ALREADY: u8 = 3;
const P_LAGGING: u8 = 4;

fn put_cmd(out: &mut Vec<u8>, cmd: &Cmd) {
    put_op_id(out, cmd.op);
    put_val(out, &cmd.new_val);
    put_val(out, &cmd.result);
    put_lc(out, cmd.lc);
}

fn get_cmd(c: &mut Cursor) -> WireResult<Cmd> {
    Ok(Cmd { op: get_op_id(c)?, new_val: get_val(c)?, result: get_val(c)?, lc: get_lc(c)? })
}

/// Encode one message onto `out` (tag byte + body). The inverse of
/// [`decode_msg`].
pub fn encode_msg(m: &Msg, out: &mut Vec<u8>) {
    match m {
        Msg::EsWrite { rid, key, val, lc } => {
            out.push(T_ES_WRITE);
            put_u64(out, *rid);
            put_u64(out, key.0);
            put_val(out, val);
            put_lc(out, *lc);
        }
        Msg::Ack { rid } => {
            out.push(T_ACK);
            put_u64(out, *rid);
        }
        Msg::AckBatch { rids } => {
            out.push(T_ACK_BATCH);
            put_u32(out, rids.len() as u32);
            for r in rids {
                put_u64(out, *r);
            }
        }
        Msg::RtsReq { rid, key } => {
            out.push(T_RTS_REQ);
            put_u64(out, *rid);
            put_u64(out, key.0);
        }
        Msg::RtsRep { rid, lc } => {
            out.push(T_RTS_REP);
            put_u64(out, *rid);
            put_lc(out, *lc);
        }
        Msg::ReadReq { rid, key, acq } => {
            out.push(T_READ_REQ);
            put_u64(out, *rid);
            put_u64(out, key.0);
            match acq {
                None => out.push(0),
                Some(op) => {
                    out.push(1);
                    put_op_id(out, *op);
                }
            }
        }
        Msg::ReadRep { rid, val, lc, delinquent } => {
            out.push(T_READ_REP);
            put_u64(out, *rid);
            put_val(out, val);
            put_lc(out, *lc);
            out.push(*delinquent as u8);
        }
        Msg::WriteMsg { rid, key, val, lc } => {
            out.push(T_WRITE);
            put_u64(out, *rid);
            put_u64(out, key.0);
            put_val(out, val);
            put_lc(out, *lc);
        }
        Msg::WriteAcq { rid, wb } => {
            out.push(T_WRITE_ACQ);
            put_u64(out, *rid);
            put_u64(out, wb.key.0);
            put_val(out, &wb.val);
            put_lc(out, wb.lc);
            put_op_id(out, wb.acq);
        }
        Msg::WriteAck { rid, delinquent } => {
            out.push(T_WRITE_ACK);
            put_u64(out, *rid);
            out.push(*delinquent as u8);
        }
        Msg::SlowRelease { rid, dm } => {
            out.push(T_SLOW_RELEASE);
            put_u64(out, *rid);
            put_u16(out, dm.0);
        }
        Msg::SlowReleaseAck { rid } => {
            out.push(T_SLOW_RELEASE_ACK);
            put_u64(out, *rid);
        }
        Msg::ResetBit { acq } => {
            out.push(T_RESET_BIT);
            put_op_id(out, *acq);
        }
        Msg::Propose { rid, key, slot, ballot, op } => {
            out.push(T_PROPOSE);
            put_u64(out, *rid);
            put_u64(out, key.0);
            put_u64(out, *slot);
            put_lc(out, *ballot);
            put_op_id(out, *op);
        }
        Msg::PromiseRep { rid, ballot, outcome, delinquent } => {
            out.push(T_PROMISE_REP);
            put_u64(out, *rid);
            put_lc(out, *ballot);
            out.push(*delinquent as u8);
            match outcome {
                PromiseOutcome::Promised { accepted: None } => out.push(P_PROMISED),
                PromiseOutcome::Promised { accepted: Some(b) } => {
                    out.push(P_PROMISED_ACCEPTED);
                    put_lc(out, b.0);
                    put_cmd(out, &b.1);
                }
                PromiseOutcome::NackBallot { promised } => {
                    out.push(P_NACK);
                    put_lc(out, *promised);
                }
                PromiseOutcome::AlreadyCommitted(cu) => {
                    out.push(P_ALREADY);
                    put_u64(out, cu.slot);
                    put_val(out, &cu.cur_val);
                    put_lc(out, cu.cur_lc);
                    match &cu.done {
                        None => out.push(0),
                        Some(v) => {
                            out.push(1);
                            put_val(out, v);
                        }
                    }
                    put_ring(out, &cu.ring);
                }
                PromiseOutcome::Lagging { slot } => {
                    out.push(P_LAGGING);
                    put_u64(out, *slot);
                }
            }
        }
        Msg::Accept { rid, key, slot, ballot, cmd } => {
            out.push(T_ACCEPT);
            put_u64(out, *rid);
            put_u64(out, key.0);
            put_u64(out, *slot);
            put_lc(out, *ballot);
            put_cmd(out, cmd);
        }
        Msg::AcceptRep { rid, ballot, ok, promised, delinquent } => {
            out.push(T_ACCEPT_REP);
            put_u64(out, *rid);
            put_lc(out, *ballot);
            out.push(*ok as u8);
            put_lc(out, *promised);
            out.push(*delinquent as u8);
        }
        Msg::Commit { rid, key, c } => {
            out.push(T_COMMIT);
            put_u64(out, *rid);
            put_u64(out, key.0);
            put_u64(out, c.slot);
            put_val(out, &c.val);
            put_lc(out, c.lc);
            match &c.meta {
                None => out.push(0),
                Some((op, res)) => {
                    out.push(1);
                    put_op_id(out, *op);
                    put_val(out, res);
                }
            }
        }
        Msg::Digest { d } => {
            out.push(T_DIGEST);
            put_u32(out, d.entries.len() as u32);
            for (key, lc) in &d.entries {
                put_u64(out, key.0);
                put_lc(out, *lc);
            }
        }
        Msg::RepairReq { keys } => {
            out.push(T_REPAIR_REQ);
            put_u32(out, keys.len() as u32);
            for k in keys.iter() {
                put_u64(out, k.0);
            }
        }
        Msg::RepairVal { r } => {
            out.push(T_REPAIR_VAL);
            put_u64(out, r.key.0);
            put_val(out, &r.val);
            put_lc(out, r.lc);
            put_u64(out, r.slot);
            put_ring(out, &r.ring);
        }
        Msg::MerkleSummary { s } => {
            out.push(T_MERKLE_SUMMARY);
            out.push(s.level);
            put_u32(out, s.start);
            put_u32(out, s.hashes.len() as u32);
            for h in &s.hashes {
                put_u64(out, *h);
            }
        }
        Msg::MerkleReq { level, buckets } => {
            out.push(T_MERKLE_REQ);
            out.push(*level);
            put_u32(out, buckets.len() as u32);
            for b in buckets.iter() {
                put_u32(out, *b);
            }
        }
    }
}

// kite-lint: total-decode
/// Decode one message from the cursor. The inverse of [`encode_msg`].
pub fn decode_msg(c: &mut Cursor) -> WireResult<Msg> {
    let tag = c.u8()?;
    Ok(match tag {
        T_ES_WRITE => Msg::EsWrite {
            rid: c.u64()?,
            key: Key(c.u64()?),
            val: get_val(c)?,
            lc: get_lc(c)?,
        },
        T_ACK => Msg::Ack { rid: c.u64()? },
        T_ACK_BATCH => {
            let n = get_seq_len(c, "ack batch")?;
            let mut rids = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                rids.push(c.u64()?);
            }
            Msg::AckBatch { rids }
        }
        T_RTS_REQ => Msg::RtsReq { rid: c.u64()?, key: Key(c.u64()?) },
        T_RTS_REP => Msg::RtsRep { rid: c.u64()?, lc: get_lc(c)? },
        T_READ_REQ => {
            let rid = c.u64()?;
            let key = Key(c.u64()?);
            let acq = match c.u8()? {
                0 => None,
                1 => Some(get_op_id(c)?),
                t => return Err(WireError::BadTag { what: "read-req acq", tag: t }),
            };
            Msg::ReadReq { rid, key, acq }
        }
        T_READ_REP => Msg::ReadRep {
            rid: c.u64()?,
            val: get_val(c)?,
            lc: get_lc(c)?,
            delinquent: c.u8()? != 0,
        },
        T_WRITE => Msg::WriteMsg {
            rid: c.u64()?,
            key: Key(c.u64()?),
            val: get_val(c)?,
            lc: get_lc(c)?,
        },
        T_WRITE_ACQ => {
            let rid = c.u64()?;
            let key = Key(c.u64()?);
            let val = get_val(c)?;
            let lc = get_lc(c)?;
            let acq = get_op_id(c)?;
            Msg::WriteAcq { rid, wb: Arc::new(WriteBack { key, val, lc, acq }) }
        }
        T_WRITE_ACK => Msg::WriteAck { rid: c.u64()?, delinquent: c.u8()? != 0 },
        T_SLOW_RELEASE => Msg::SlowRelease { rid: c.u64()?, dm: NodeSet(c.u16()?) },
        T_SLOW_RELEASE_ACK => Msg::SlowReleaseAck { rid: c.u64()? },
        T_RESET_BIT => Msg::ResetBit { acq: get_op_id(c)? },
        T_PROPOSE => Msg::Propose {
            rid: c.u64()?,
            key: Key(c.u64()?),
            slot: c.u64()?,
            ballot: get_lc(c)?,
            op: get_op_id(c)?,
        },
        T_PROMISE_REP => {
            let rid = c.u64()?;
            let ballot = get_lc(c)?;
            let delinquent = c.u8()? != 0;
            let outcome = match c.u8()? {
                P_PROMISED => PromiseOutcome::Promised { accepted: None },
                P_PROMISED_ACCEPTED => {
                    let b = get_lc(c)?;
                    let cmd = get_cmd(c)?;
                    PromiseOutcome::Promised { accepted: Some(Box::new((b, cmd))) }
                }
                P_NACK => PromiseOutcome::NackBallot { promised: get_lc(c)? },
                P_ALREADY => {
                    let slot = c.u64()?;
                    let cur_val = get_val(c)?;
                    let cur_lc = get_lc(c)?;
                    let done = match c.u8()? {
                        0 => None,
                        1 => Some(get_val(c)?),
                        t => return Err(WireError::BadTag { what: "catch-up done", tag: t }),
                    };
                    let ring = get_ring(c)?;
                    PromiseOutcome::AlreadyCommitted(Box::new(CatchUp {
                        slot,
                        cur_val,
                        cur_lc,
                        done,
                        ring,
                    }))
                }
                P_LAGGING => PromiseOutcome::Lagging { slot: c.u64()? },
                t => return Err(WireError::BadTag { what: "promise outcome", tag: t }),
            };
            Msg::PromiseRep { rid, ballot, outcome, delinquent }
        }
        T_ACCEPT => Msg::Accept {
            rid: c.u64()?,
            key: Key(c.u64()?),
            slot: c.u64()?,
            ballot: get_lc(c)?,
            cmd: Arc::new(get_cmd(c)?),
        },
        T_ACCEPT_REP => Msg::AcceptRep {
            rid: c.u64()?,
            ballot: get_lc(c)?,
            ok: c.u8()? != 0,
            promised: get_lc(c)?,
            delinquent: c.u8()? != 0,
        },
        T_COMMIT => {
            let rid = c.u64()?;
            let key = Key(c.u64()?);
            let slot = c.u64()?;
            let val = get_val(c)?;
            let lc = get_lc(c)?;
            let meta = match c.u8()? {
                0 => None,
                1 => {
                    let op = get_op_id(c)?;
                    let res = get_val(c)?;
                    Some((op, res))
                }
                t => return Err(WireError::BadTag { what: "commit meta", tag: t }),
            };
            Msg::Commit { rid, key, c: Arc::new(CommitPayload { slot, val, lc, meta }) }
        }
        T_DIGEST => {
            let n = get_seq_len(c, "digest")?;
            let mut entries = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let key = Key(c.u64()?);
                let lc = get_lc(c)?;
                entries.push((key, lc));
            }
            Msg::Digest { d: Arc::new(DigestChunk { entries }) }
        }
        T_REPAIR_REQ => {
            let n = get_seq_len(c, "repair keys")?;
            let mut keys = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                keys.push(Key(c.u64()?));
            }
            Msg::RepairReq { keys: keys.into_boxed_slice() }
        }
        T_REPAIR_VAL => {
            let key = Key(c.u64()?);
            let val = get_val(c)?;
            let lc = get_lc(c)?;
            let slot = c.u64()?;
            let ring = get_ring(c)?;
            Msg::RepairVal { r: Box::new(Repair { key, val, lc, slot, ring }) }
        }
        T_MERKLE_SUMMARY => {
            let level = c.u8()?;
            let start = c.u32()?;
            let n = get_seq_len(c, "merkle summary")?;
            let mut hashes = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                hashes.push(c.u64()?);
            }
            Msg::MerkleSummary { s: Arc::new(MerkleSummary { level, start, hashes }) }
        }
        T_MERKLE_REQ => {
            let level = c.u8()?;
            let n = get_seq_len(c, "merkle req")?;
            let mut buckets = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                buckets.push(c.u32()?);
            }
            Msg::MerkleReq { level, buckets: buckets.into() }
        }
        t => return Err(WireError::BadTag { what: "msg", tag: t }),
    })
}

// ---------------------------------------------------------------------------
// Peer frames
// ---------------------------------------------------------------------------

/// Append one peer frame (length prefix included) carrying `msgs` from
/// `src` at membership epoch `mepoch` onto `out`. The caller guarantees
/// the batch fits one frame; the transport uses [`encode_frames`], which
/// splits.
pub fn encode_frame(src: NodeId, mepoch: u32, msgs: &[Msg], out: &mut Vec<u8>) {
    let len_at = out.len();
    put_u32(out, 0); // patched below
    out.push(src.0);
    put_u32(out, mepoch);
    put_u32(out, msgs.len() as u32);
    for m in msgs {
        encode_msg(m, out);
    }
    let body_len = (out.len() - len_at - 4) as u32;
    out[len_at..len_at + 4].copy_from_slice(&body_len.to_le_bytes());
}

/// Append `msgs` from `src` onto `out` as **one or more** back-to-back
/// frames, splitting wherever a frame would exceed [`MAX_FRAME`] bytes or
/// [`MAX_SEQ`] messages. Returns the number of frames written.
///
/// This is the transport's encoder: without the split, one legitimately
/// large outbox batch (say, a whole digest chunk's worth of repair values)
/// would encode into a frame every receiver must reject — and since the
/// retransmission layer would faithfully rebuild the same batch, the link
/// would flap forever. A single message that cannot fit a frame by itself
/// is a codec-bound violation and panics (same rationale as the value
/// bound in `put_val`: failing fast locally beats a distributed livelock).
pub fn encode_frames(src: NodeId, mepoch: u32, msgs: &[Msg], out: &mut Vec<u8>) -> usize {
    let mut frames = 0;
    let mut i = 0;
    while i < msgs.len() || frames == 0 {
        let len_at = out.len();
        put_u32(out, 0); // length, patched below
        out.push(src.0);
        put_u32(out, mepoch);
        let count_at = out.len();
        put_u32(out, 0); // count, patched below
        let mut n: usize = 0;
        while i < msgs.len() && n < MAX_SEQ {
            let msg_at = out.len();
            encode_msg(&msgs[i], out);
            if out.len() - len_at - 4 > MAX_FRAME {
                assert!(n > 0, "single message exceeds MAX_FRAME — codec bound violated");
                out.truncate(msg_at); // re-encode this message in the next frame
                break;
            }
            i += 1;
            n += 1;
        }
        out[count_at..count_at + 4].copy_from_slice(&(n as u32).to_le_bytes());
        let body_len = (out.len() - len_at - 4) as u32;
        out[len_at..len_at + 4].copy_from_slice(&body_len.to_le_bytes());
        frames += 1;
    }
    frames
}

// kite-lint: total-decode
/// Validate a frame length prefix. Returns the body length to read next.
pub fn frame_body_len(prefix: [u8; 4]) -> WireResult<usize> {
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized { what: "frame", len });
    }
    if len < 5 {
        // The shortest legal body either direction (client `HelloErr` with
        // an empty reason) is 5 bytes; a peer frame needs 9 (src + mepoch
        // + count), which the body cursor enforces as `Truncated`.
        return Err(WireError::Truncated);
    }
    Ok(len)
}

// kite-lint: total-decode
/// Decode a peer frame body into `into` (appended; the caller hands in a
/// pool-recycled buffer). Returns the sending node and its membership
/// epoch stamp. The body must be consumed exactly.
pub fn decode_frame_body(body: &[u8], into: &mut Vec<Msg>) -> WireResult<(NodeId, u32)> {
    let mut c = Cursor::new(body);
    let src = NodeId(c.u8()?);
    let mepoch = c.u32()?;
    let count = c.u32()? as usize;
    if count > MAX_SEQ {
        return Err(WireError::Oversized { what: "frame msg count", len: count });
    }
    let base = into.len();
    for _ in 0..count {
        match decode_msg(&mut c) {
            Ok(m) => into.push(m),
            Err(e) => {
                into.truncate(base); // leave the buffer clean for reuse
                return Err(e);
            }
        }
    }
    if c.remaining() != 0 {
        let left = c.remaining();
        into.truncate(base);
        return Err(WireError::Trailing { left });
    }
    Ok((src, mepoch))
}

// ---------------------------------------------------------------------------
// Client protocol
// ---------------------------------------------------------------------------

/// Client→server frame kinds.
const C_SUBMIT: u8 = 0xC2;
/// Server→client frame kinds.
const C_COMPLETION: u8 = 0xC3;
const C_HELLO_OK: u8 = 0xC4;
const C_HELLO_ERR: u8 = 0xC5;

// Op tags.
const O_READ: u8 = 0;
const O_WRITE: u8 = 1;
const O_RELEASE: u8 = 2;
const O_ACQUIRE: u8 = 3;
const O_FAA: u8 = 4;
const O_CAS_WEAK: u8 = 5;
const O_CAS_STRONG: u8 = 6;

// OpOutput tags.
const R_DONE: u8 = 0;
const R_VALUE: u8 = 1;
const R_FAA: u8 = 2;
const R_CAS: u8 = 3;

fn put_op(out: &mut Vec<u8>, op: &Op) {
    match op {
        Op::Read { key } => {
            out.push(O_READ);
            put_u64(out, key.0);
        }
        Op::Write { key, val } => {
            out.push(O_WRITE);
            put_u64(out, key.0);
            put_val(out, val);
        }
        Op::Release { key, val } => {
            out.push(O_RELEASE);
            put_u64(out, key.0);
            put_val(out, val);
        }
        Op::Acquire { key } => {
            out.push(O_ACQUIRE);
            put_u64(out, key.0);
        }
        Op::Faa { key, delta } => {
            out.push(O_FAA);
            put_u64(out, key.0);
            put_u64(out, *delta);
        }
        Op::CasWeak { key, expect, new } => {
            out.push(O_CAS_WEAK);
            put_u64(out, key.0);
            put_val(out, expect);
            put_val(out, new);
        }
        Op::CasStrong { key, expect, new } => {
            out.push(O_CAS_STRONG);
            put_u64(out, key.0);
            put_val(out, expect);
            put_val(out, new);
        }
    }
}

fn get_op(c: &mut Cursor) -> WireResult<Op> {
    Ok(match c.u8()? {
        O_READ => Op::Read { key: Key(c.u64()?) },
        O_WRITE => Op::Write { key: Key(c.u64()?), val: get_val(c)? },
        O_RELEASE => Op::Release { key: Key(c.u64()?), val: get_val(c)? },
        O_ACQUIRE => Op::Acquire { key: Key(c.u64()?) },
        O_FAA => Op::Faa { key: Key(c.u64()?), delta: c.u64()? },
        O_CAS_WEAK => Op::CasWeak { key: Key(c.u64()?), expect: get_val(c)?, new: get_val(c)? },
        O_CAS_STRONG => {
            Op::CasStrong { key: Key(c.u64()?), expect: get_val(c)?, new: get_val(c)? }
        }
        t => return Err(WireError::BadTag { what: "op", tag: t }),
    })
}

fn put_output(out: &mut Vec<u8>, o: &OpOutput) {
    match o {
        OpOutput::Done => out.push(R_DONE),
        OpOutput::Value(v) => {
            out.push(R_VALUE);
            put_val(out, v);
        }
        OpOutput::Faa(old) => {
            out.push(R_FAA);
            put_u64(out, *old);
        }
        OpOutput::Cas { ok, observed } => {
            out.push(R_CAS);
            out.push(*ok as u8);
            put_val(out, observed);
        }
    }
}

fn get_output(c: &mut Cursor) -> WireResult<OpOutput> {
    Ok(match c.u8()? {
        R_DONE => OpOutput::Done,
        R_VALUE => OpOutput::Value(get_val(c)?),
        R_FAA => OpOutput::Faa(c.u64()?),
        R_CAS => OpOutput::Cas { ok: c.u8()? != 0, observed: get_val(c)? },
        t => return Err(WireError::BadTag { what: "op output", tag: t }),
    })
}

/// One frame of the client protocol, either direction.
#[derive(Clone, Debug)]
pub enum ClientFrame {
    /// Client → server: one operation submission. Session order is the
    /// stream order; the server assigns sequence numbers accordingly.
    Submit(Op),
    /// Server → client: one completed operation (session order).
    Completion(Completion),
    /// Server → client: the hello's session claim succeeded.
    HelloOk {
        /// The claimed session's id.
        session: SessionId,
    },
    /// Server → client: the session claim failed (slot taken/out of range).
    HelloErr {
        /// Human-readable reason.
        reason: String,
    },
}

/// Append one length-prefixed client-protocol frame onto `out`.
pub fn encode_client_frame(f: &ClientFrame, out: &mut Vec<u8>) {
    let len_at = out.len();
    put_u32(out, 0);
    match f {
        ClientFrame::Submit(op) => {
            out.push(C_SUBMIT);
            put_op(out, op);
        }
        ClientFrame::Completion(c) => {
            out.push(C_COMPLETION);
            put_op_id(out, c.op_id);
            put_op(out, &c.op);
            put_output(out, &c.output);
            put_u64(out, c.invoked_at);
            put_u64(out, c.completed_at);
        }
        ClientFrame::HelloOk { session } => {
            out.push(C_HELLO_OK);
            out.push(session.node.0);
            put_u32(out, session.slot);
        }
        ClientFrame::HelloErr { reason } => {
            out.push(C_HELLO_ERR);
            let b = reason.as_bytes();
            let n = b.len().min(MAX_VAL);
            put_u32(out, n as u32);
            out.extend_from_slice(&b[..n]);
        }
    }
    let body_len = (out.len() - len_at - 4) as u32;
    out[len_at..len_at + 4].copy_from_slice(&body_len.to_le_bytes());
}

// kite-lint: total-decode
/// Decode one client-protocol frame body (everything after the length
/// prefix). The body must be consumed exactly.
pub fn decode_client_frame(body: &[u8]) -> WireResult<ClientFrame> {
    let mut c = Cursor::new(body);
    let f = match c.u8()? {
        C_SUBMIT => ClientFrame::Submit(get_op(&mut c)?),
        C_COMPLETION => {
            let op_id = get_op_id(&mut c)?;
            let op = get_op(&mut c)?;
            let output = get_output(&mut c)?;
            let invoked_at = c.u64()?;
            let completed_at = c.u64()?;
            ClientFrame::Completion(Completion { op_id, op, output, invoked_at, completed_at })
        }
        C_HELLO_OK => {
            let node = NodeId(c.u8()?);
            let slot = c.u32()?;
            ClientFrame::HelloOk { session: SessionId::new(node, slot) }
        }
        C_HELLO_ERR => {
            let n = get_seq_len(&mut c, "hello error")?;
            let reason = String::from_utf8_lossy(c.take(n)?).into_owned();
            ClientFrame::HelloErr { reason }
        }
        t => return Err(WireError::BadTag { what: "client frame", tag: t }),
    };
    if c.remaining() != 0 {
        return Err(WireError::Trailing { left: c.remaining() });
    }
    Ok(f)
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// What a freshly accepted connection announced itself as.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hello {
    /// A peer fabric connection: traffic from `(node, worker)`.
    Peer {
        /// The dialing node.
        node: NodeId,
        /// The dialing worker index (worker peering, §6.3).
        worker: u16,
    },
    /// A remote client claiming session `slot` on this node.
    Client {
        /// The session slot being claimed.
        slot: u32,
    },
}

/// Byte length of an encoded hello (both kinds pad to this).
pub const HELLO_LEN: usize = 10;

/// Encode a hello to the fixed [`HELLO_LEN`]-byte layout.
pub fn encode_hello(h: Hello) -> [u8; HELLO_LEN] {
    let mut b = [0u8; HELLO_LEN];
    b[..4].copy_from_slice(&MAGIC.to_le_bytes());
    b[4] = VERSION;
    match h {
        Hello::Peer { node, worker } => {
            b[5] = KIND_PEER;
            b[6] = node.0;
            b[7..9].copy_from_slice(&worker.to_le_bytes());
        }
        Hello::Client { slot } => {
            b[5] = KIND_CLIENT;
            b[6..10].copy_from_slice(&slot.to_le_bytes());
        }
    }
    b
}

/// Decode a [`HELLO_LEN`]-byte hello.
// kite-lint: total-decode
pub fn decode_hello(b: &[u8; HELLO_LEN]) -> WireResult<Hello> {
    let mut c = Cursor::new(b);
    if c.u32()? != MAGIC || c.u8()? != VERSION {
        return Err(WireError::BadHandshake);
    }
    match c.u8()? {
        KIND_PEER => Ok(Hello::Peer { node: NodeId(c.u8()?), worker: c.u16()? }),
        KIND_CLIENT => Ok(Hello::Client { slot: c.u32()? }),
        t => Err(WireError::BadTag { what: "hello kind", tag: t }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msgs() -> Vec<Msg> {
        let op = OpId::new(SessionId::new(NodeId(3), 9), 77);
        vec![
            Msg::EsWrite { rid: 1, key: Key(2), val: Val::from_bytes(b"abc"), lc: Lc::new(4, NodeId(1)) },
            Msg::AckBatch { rids: vec![1, 2, 3] },
            Msg::ReadReq { rid: 5, key: Key(6), acq: Some(op) },
            Msg::PromiseRep {
                rid: 9,
                ballot: Lc::new(7, NodeId(2)),
                outcome: PromiseOutcome::AlreadyCommitted(Box::new(CatchUp {
                    slot: 3,
                    cur_val: Val::from_u64(10),
                    cur_lc: Lc::new(8, NodeId(0)),
                    done: Some(Val::from_u64(4)),
                    ring: vec![RmwCommit { op, slot: 2, result: Val::from_u64(1) }],
                })),
                delinquent: true,
            },
        ]
    }

    #[test]
    fn frame_round_trips() {
        let msgs = sample_msgs();
        let mut buf = Vec::new();
        encode_frame(NodeId(4), 7, &msgs, &mut buf);
        let body_len = frame_body_len(buf[..4].try_into().unwrap()).unwrap();
        assert_eq!(body_len, buf.len() - 4);
        let mut got = Vec::new();
        let (src, mepoch) = decode_frame_body(&buf[4..], &mut got).unwrap();
        assert_eq!(src, NodeId(4));
        assert_eq!(mepoch, 7);
        assert_eq!(format!("{msgs:?}"), format!("{got:?}"));
    }

    #[test]
    fn truncated_and_trailing_frames_are_errors() {
        let msgs = sample_msgs();
        let mut buf = Vec::new();
        encode_frame(NodeId(0), 0, &msgs, &mut buf);
        // Truncated at every prefix length: must error, never panic.
        for cut in 4..buf.len() - 1 {
            let mut got = Vec::new();
            assert!(decode_frame_body(&buf[4..cut], &mut got).is_err(), "cut at {cut}");
            assert!(got.is_empty(), "failed decode must leave the buffer clean");
        }
        // Trailing garbage after the declared count.
        let mut longer = buf[4..].to_vec();
        longer.push(0xAA);
        let mut got = Vec::new();
        assert!(matches!(
            decode_frame_body(&longer, &mut got),
            Err(WireError::Trailing { left: 1 })
        ));
    }

    #[test]
    fn oversized_frame_prefix_rejected() {
        let prefix = ((MAX_FRAME + 1) as u32).to_le_bytes();
        assert!(matches!(frame_body_len(prefix), Err(WireError::Oversized { .. })));
        assert!(frame_body_len(3u32.to_le_bytes()).is_err());
    }

    #[test]
    fn client_frames_round_trip() {
        let op = Op::CasStrong { key: Key(9), expect: Val::from_u64(1), new: Val::from_u64(2) };
        let c = Completion {
            op_id: OpId::new(SessionId::new(NodeId(1), 2), 3),
            op: op.clone(),
            output: OpOutput::Cas { ok: true, observed: Val::from_u64(1) },
            invoked_at: 10,
            completed_at: 20,
        };
        for f in [
            ClientFrame::Submit(op),
            ClientFrame::Completion(c),
            ClientFrame::HelloOk { session: SessionId::new(NodeId(2), 7) },
            ClientFrame::HelloErr { reason: "slot taken".into() },
        ] {
            let mut buf = Vec::new();
            encode_client_frame(&f, &mut buf);
            let got = decode_client_frame(&buf[4..]).unwrap();
            assert_eq!(format!("{f:?}"), format!("{got:?}"));
        }
    }

    #[test]
    fn hello_round_trips_and_rejects_garbage() {
        for h in [Hello::Peer { node: NodeId(3), worker: 2 }, Hello::Client { slot: 41 }] {
            assert_eq!(decode_hello(&encode_hello(h)).unwrap(), h);
        }
        let mut bad = encode_hello(Hello::Client { slot: 0 });
        bad[0] ^= 0xFF;
        assert_eq!(decode_hello(&bad), Err(WireError::BadHandshake));
        let mut bad_kind = encode_hello(Hello::Client { slot: 0 });
        bad_kind[5] = 9;
        assert!(matches!(decode_hello(&bad_kind), Err(WireError::BadTag { .. })));
    }
}
