//! The Kite worker: the protocol execution engine (§6.1).
//!
//! A worker owns a set of sessions and executes their operations by running
//! the three protocols and the RC barrier machinery. It is written as a
//! sans-io [`Actor`] so the same code runs under the threaded runtime and
//! the deterministic simulator.
//!
//! This file holds the scheduling skeleton: session pumping, dispatch,
//! completion plumbing, and timeout scanning. The protocol logic lives in
//! two sibling `impl Worker` blocks:
//!
//! * [`crate::replica`] — the acceptor/replica side (requests from peers);
//! * [`crate::initiator`] — the proposer/initiator side (starting client
//!   ops, handling replies, retransmission).
//!
//! In-flight state lives in a generational slab ([`InFlightTable`]): reply
//! dispatch resolves entries by slot index + generation compare (no
//! hashing), and handlers mutate entries in place.

use std::sync::Arc;

use kite_common::{NodeId, NodeSet, OpId, MEMBERSHIP_KEY};
use kite_simnet::{Actor, Outbox};

use crate::antientropy::AeState;
use crate::api::{Completion, CompletionHook, Op, OpOutput};
use crate::inflight::{InFlight, InFlightTable, UNTRACKED_RID_BIT};
use crate::msg::Msg;
use crate::nodestate::NodeShared;
use crate::session::{ProtocolMode, Session};

/// Spare `AckBatch` buffers retained per worker. Like the outbox's envelope
/// pool: drained batch buffers circulate between the workers' pools instead
/// of being freed and reallocated per envelope.
const ACK_POOL_CAP: usize = 16;

/// Outcome of attempting to start an operation.
pub(crate) enum StartResult {
    /// Completed inline (fast-path relaxed ops; any ack gathering continues
    /// in the background without blocking the session).
    Inline,
    /// In flight; the session is blocked on `rid`.
    Blocked(u64),
    /// Could not start (write window full); op goes back to the staged slot.
    Stall(Op),
}

/// The protocol execution engine (§6.1): owns a set of sessions, runs the
/// three protocols and the RC barrier machinery for them. See the module
/// docs for the division of labour with `replica`/`initiator`.
pub struct Worker {
    pub(crate) me: NodeId,
    pub(crate) wid: usize,
    pub(crate) shared: Arc<NodeShared>,
    pub(crate) mode: ProtocolMode,
    pub(crate) sessions: Vec<Session>,
    pub(crate) inflight: InFlightTable,
    /// rids of releases/RMWs whose barrier is not yet resolved.
    pub(crate) barrier_waiters: Vec<u64>,
    /// `(rid, due)` for nacked Paxos rounds awaiting their backoff — fired
    /// from the tick path (the retransmit scan is far too coarse for
    /// contention backoffs).
    pub(crate) rmw_retries: Vec<(u64, u64)>,
    /// Counter for fire-and-forget broadcast ids (untracked: bit 63 set, so
    /// they can never alias a slab rid — see `inflight`'s module docs).
    next_untracked: u64,
    last_scan: u64,
    /// Plain-ack rids staged while draining the current inbound envelope;
    /// flushed as one `AckBatch` per envelope (see `Worker::flush_acks`).
    pending_acks: Vec<u64>,
    /// Spare batch buffers recycled from drained `AckBatch`es.
    ack_pool: Vec<Vec<u64>>,
    /// Cached `cfg.coalesce_acks` (false = one ack message per request).
    coalesce_acks: bool,
    /// Debug guard: the node every currently staged ack targets — staging
    /// only stores rids, so all acks of one envelope MUST share a source.
    #[cfg(debug_assertions)]
    ack_src: Option<NodeId>,
    /// Anti-entropy sweep/repair state (see `crate::antientropy`).
    pub(crate) ae: AeState,
    pub(crate) hook: Option<CompletionHook>,
    // cached config (membership-independent only — quorum/voters/members are
    // *methods* reading the live cell; see the stale-quorum note on them)
    /// Cached `cfg.commit_fill`: push completion-time repairs to replicas a
    /// finished round left behind.
    pub(crate) commit_fill: bool,
    pub(crate) release_timeout: u64,
    pub(crate) retransmit: u64,
    pub(crate) ops_per_tick: usize,
    pub(crate) window_cap: usize,
    pub(crate) overlap_release: bool,
    pub(crate) stripped_slow: bool,
}

impl Worker {
    /// Build a worker for node `shared.me`, serving `sessions`.
    pub fn new(
        wid: usize,
        shared: Arc<NodeShared>,
        mode: ProtocolMode,
        mut sessions: Vec<Session>,
        hook: Option<CompletionHook>,
    ) -> Self {
        let cfg = &shared.cfg;
        // Size each session's write window up front: the window is bounded
        // by `write_window`, so steady-state pushes never reallocate.
        for sess in &mut sessions {
            sess.write_window.reserve(cfg.write_window);
        }
        // The slab's steady-state occupancy is bounded by the sessions'
        // windows plus their single blocking ops.
        let inflight_cap = sessions.len() * (cfg.write_window + 1);
        Worker {
            me: shared.me,
            wid,
            mode,
            sessions,
            inflight: InFlightTable::with_capacity(inflight_cap),
            barrier_waiters: Vec::new(),
            rmw_retries: Vec::new(),
            next_untracked: 0,
            last_scan: 0,
            pending_acks: Vec::with_capacity(64),
            ack_pool: Vec::new(),
            coalesce_acks: cfg.coalesce_acks,
            #[cfg(debug_assertions)]
            ack_src: None,
            ae: AeState::new(cfg, wid, &shared.store),
            hook,
            commit_fill: cfg.commit_fill,
            release_timeout: cfg.release_timeout_ns,
            retransmit: cfg.retransmit_ns,
            ops_per_tick: cfg.ops_per_tick,
            window_cap: cfg.write_window,
            overlap_release: cfg.overlap_release,
            stripped_slow: cfg.stripped_slow_path,
            shared,
        }
    }

    /// An id for a fire-and-forget broadcast that tracks no in-flight
    /// entry. Never resolves against the slab (bit 63).
    #[inline]
    pub(crate) fn untracked_rid(&mut self) -> u64 {
        self.next_untracked += 1;
        UNTRACKED_RID_BIT | self.next_untracked
    }

    /// The node this worker belongs to.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// This worker's index within its node.
    pub fn worker_index(&self) -> usize {
        self.wid
    }

    /// The node-shared state (store, epoch, delinquency, counters).
    pub fn shared(&self) -> &Arc<NodeShared> {
        &self.shared
    }

    /// Majority-quorum size over the **live** voter set. Never cached in a
    /// field: a round started before a reconfiguration must count its
    /// replies against the membership in force when each reply is judged,
    /// or an epoch bump strands it against the old majority.
    #[inline]
    pub(crate) fn quorum(&self) -> usize {
        self.shared.quorum()
    }

    /// The live voter set: protocol rounds (ES writes, ABD, Paxos phases,
    /// barriers) target voters only — learners' acks are never awaited, so
    /// reply-set arithmetic stays sound while a learner bulk-syncs.
    #[inline]
    pub(crate) fn voters(&self) -> NodeSet {
        self.shared.voters()
    }

    /// Voters ∪ learners (anti-entropy sweeps reach everyone).
    #[inline]
    pub(crate) fn members(&self) -> NodeSet {
        self.shared.members()
    }

    /// Number of operations currently in flight (diagnostics).
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    // ---- completion plumbing -------------------------------------------

    /// Deliver a completion for session `si` and unblock it if needed.
    pub(crate) fn complete(
        &mut self,
        si: usize,
        op_id: OpId,
        op: Op,
        output: OpOutput,
        invoked_at: u64,
        now: u64,
    ) {
        Self::complete_in(
            &self.shared,
            &self.hook,
            &mut self.sessions,
            si,
            op_id,
            op,
            output,
            invoked_at,
            now,
        );
    }

    /// Field-split flavour of [`Worker::complete`]: callable while the
    /// in-flight table is mutably borrowed (reply handlers complete
    /// operations without first removing the entry they are reading).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn complete_in(
        shared: &NodeShared,
        hook: &Option<CompletionHook>,
        sessions: &mut [Session],
        si: usize,
        op_id: OpId,
        op: Op,
        output: OpOutput,
        invoked_at: u64,
        now: u64,
    ) {
        shared.counters.completed.incr();
        // Session retire is the one point every op funnels through exactly
        // once, so per-class latency is recorded here: invoke-to-completion
        // in scheduler ns. Lock-free, allocation-free (three fetch_adds).
        shared.op_latency.for_op(&op).record(now.saturating_sub(invoked_at));
        let c = Completion { op_id, op, output, invoked_at, completed_at: now };
        if let Some(hook) = hook {
            hook(&c);
        }
        let sess = &mut sessions[si];
        sess.deliver(c);
        sess.blocked_on = None;
    }

    /// Remove `rid` from its owning session's write window. O(1): ordering
    /// within the window carries no protocol meaning — barriers and window
    /// relief snapshot the window as a *set* of rids — so swap removal is
    /// safe.
    pub(crate) fn remove_from_window(&mut self, si: usize, rid: u64) {
        let window = &mut self.sessions[si].write_window;
        if let Some(pos) = window.iter().position(|&r| r == rid) {
            window.swap_remove_back(pos);
        }
    }

    // ---- session pumping -------------------------------------------------

    fn pump_sessions(&mut self, now: u64, out: &mut Outbox<Msg>) -> bool {
        let mut progress = false;
        for si in 0..self.sessions.len() {
            let mut budget = self.ops_per_tick;
            while budget > 0 && self.sessions[si].is_free() {
                let Some(op) = self.sessions[si].next_op() else { break };
                budget -= 1;
                progress = true;
                let seq = self.sessions[si].seq;
                self.sessions[si].seq += 1;
                let op_id = OpId::new(self.sessions[si].id, seq);
                match self.start_op(si, op_id, op, now, out) {
                    StartResult::Inline => {}
                    StartResult::Blocked(rid) => {
                        self.sessions[si].blocked_on = Some(rid);
                    }
                    StartResult::Stall(op) => {
                        // window full: retry next tick; the op keeps its seq
                        // slot by restoring the counter. If the window is
                        // stuck on unresponsive replicas, start a relief
                        // round so the session doesn't stall for the whole
                        // outage.
                        self.sessions[si].seq -= 1;
                        self.sessions[si].staged = Some(op);
                        self.maybe_window_relief(si, now, out);
                        break;
                    }
                }
            }
        }
        progress
    }

    // ---- ack coalescing ---------------------------------------------------

    /// Stage (or, with coalescing off, immediately send) a plain ack for
    /// `rid` back to `src`. Called by the replica-side handlers; staged
    /// rids are flushed per inbound envelope by [`Worker::flush_acks`].
    #[inline]
    pub(crate) fn ack(&mut self, src: NodeId, rid: u64, out: &mut Outbox<Msg>) {
        if self.coalesce_acks {
            // Staging stores only the rid: the batch goes to the envelope's
            // source, so every staged ack must target that same node.
            #[cfg(debug_assertions)]
            {
                debug_assert!(
                    self.pending_acks.is_empty() || self.ack_src == Some(src),
                    "coalesced ack for {src} staged while batching for {:?}",
                    self.ack_src
                );
                self.ack_src = Some(src);
            }
            self.pending_acks.push(rid);
        } else {
            self.shared.counters.acks_sent.incr();
            out.send(src, Msg::Ack { rid });
        }
    }

    /// Emit everything staged by [`Worker::ack`] while draining one inbound
    /// envelope: a single `Ack` if one rid, one `AckBatch` otherwise. The
    /// batch buffer is drawn from the worker's ack pool (refilled from
    /// drained inbound batches); with symmetric traffic the pools warm and
    /// the cycle allocates nothing. A worker that only ever *replies* (its
    /// pool never refills) pays one pre-sized allocation per batch — never
    /// growth copies.
    fn flush_acks(&mut self, src: NodeId, out: &mut Outbox<Msg>) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                self.pending_acks.is_empty() || self.ack_src == Some(src),
                "flushing acks staged for {:?} to {src}",
                self.ack_src
            );
            self.ack_src = None;
        }
        match self.pending_acks.len() {
            0 => {}
            1 => {
                let rid = self.pending_acks.pop().expect("len checked");
                self.shared.counters.acks_sent.incr();
                out.send(src, Msg::Ack { rid });
            }
            n => {
                let replacement =
                    self.ack_pool.pop().unwrap_or_else(|| Vec::with_capacity(64));
                let rids = std::mem::replace(&mut self.pending_acks, replacement);
                let c = &self.shared.counters;
                c.acks_sent.incr();
                c.msgs_batched.incr();
                c.acks_coalesced.add(n as u64);
                out.send(src, Msg::AckBatch { rids });
            }
        }
    }

    /// Resolve one plain ack: the in-flight entry's kind recovers what was
    /// acked (ES write / value broadcast / commit round). Stale rids fail
    /// the slab's generation check and are dropped individually.
    ///
    /// The kind probe here plus the handler's own `get_mut` is two slab
    /// resolves (~2 ns each) per ack — kept deliberately: folding the
    /// handlers under one borrow would entangle their disjoint-field
    /// borrow patterns for a win that is noise next to the handler body.
    fn on_plain_ack(&mut self, src: NodeId, rid: u64, now: u64, out: &mut Outbox<Msg>) {
        match self.inflight.get(rid) {
            Some(InFlight::EsWrite(_)) => self.on_es_ack(src, rid, now),
            Some(InFlight::Rmw(_)) => self.on_commit_ack(src, rid, now, out),
            Some(_) => self.on_write_ack(src, rid, false, now, out),
            None => {}
        }
    }

    /// Drain a coalesced ack batch with one walk over the slab, then feed
    /// the emptied buffer to this worker's ack pool (buffers circulate
    /// around the cluster, like envelope buffers).
    fn on_ack_batch(&mut self, src: NodeId, mut rids: Vec<u64>, now: u64, out: &mut Outbox<Msg>) {
        for rid in rids.drain(..) {
            self.on_plain_ack(src, rid, now, out);
        }
        if self.ack_pool.len() < ACK_POOL_CAP {
            self.ack_pool.push(rids);
        }
    }

    // ---- dispatch ---------------------------------------------------------

    fn dispatch(&mut self, src: NodeId, m: Msg, now: u64, out: &mut Outbox<Msg>) {
        match m {
            // replica side (requests)
            Msg::EsWrite { rid, key, val, lc } => self.on_es_write(src, rid, key, val, lc, out),
            Msg::RtsReq { rid, key } => self.on_rts_req(src, rid, key, out),
            Msg::ReadReq { rid, key, acq } => self.on_read_req(src, rid, key, acq, out),
            Msg::WriteMsg { rid, key, val, lc } => self.on_write_msg(src, rid, key, val, lc, out),
            Msg::WriteAcq { rid, wb } => self.on_write_acq(src, rid, wb, out),
            Msg::SlowRelease { rid, dm } => self.on_slow_release(src, rid, dm, out),
            Msg::ResetBit { acq } => self.on_reset_bit(acq),
            Msg::Propose { rid, key, slot, ballot, op } => {
                self.on_propose(src, rid, key, slot, ballot, op, out)
            }
            Msg::Accept { rid, key, slot, ballot, cmd } => {
                self.on_accept(src, rid, key, slot, ballot, cmd, out)
            }
            Msg::Commit { rid, key, c } => self.on_commit(src, rid, key, c, out),

            // anti-entropy (unsolicited, unacked — see `crate::antientropy`)
            Msg::Digest { d } => self.on_digest(src, d, out),
            Msg::MerkleSummary { s } => self.on_merkle_summary(src, s, out),
            Msg::MerkleReq { level, buckets } => self.on_merkle_req(src, level, buckets, out),
            Msg::RepairReq { keys } => self.on_repair_req(src, keys, out),
            Msg::RepairVal { r } => self.on_repair_val(r),

            // initiator side (replies)
            Msg::Ack { rid } => self.on_plain_ack(src, rid, now, out),
            Msg::AckBatch { rids } => self.on_ack_batch(src, rids, now, out),
            Msg::RtsRep { rid, lc } => self.on_rts_rep(src, rid, lc, now, out),
            Msg::ReadRep { rid, val, lc, delinquent } => {
                self.on_read_rep(src, rid, val, lc, delinquent, now, out)
            }
            Msg::WriteAck { rid, delinquent } => self.on_write_ack(src, rid, delinquent, now, out),
            Msg::SlowReleaseAck { rid } => self.on_slow_release_ack(src, rid, now, out),
            Msg::PromiseRep { rid, ballot, outcome, delinquent } => {
                self.on_promise_rep(src, rid, ballot, outcome, delinquent, now, out)
            }
            Msg::AcceptRep { rid, ballot, ok, promised, delinquent } => {
                self.on_accept_rep(src, rid, ballot, ok, promised, delinquent, now, out)
            }
        }
    }
}

impl Actor for Worker {
    type Msg = Msg;

    fn on_envelope(&mut self, src: NodeId, msgs: &mut Vec<Msg>, now: u64, out: &mut Outbox<Msg>) {
        // A message from `src` proves it alive — clear any suspicion so
        // releases resume waiting for its acks (fast path).
        self.shared.clear_suspect(src);
        debug_assert!(self.pending_acks.is_empty(), "acks staged outside an envelope");
        for m in msgs.drain(..) {
            self.dispatch(src, m, now, out);
        }
        // One ack message per envelope, not per request: everything the
        // drain above staged goes back to `src` as a single batch.
        self.flush_acks(src, out);
        out.set_stamp(self.shared.mepoch());
    }

    /// The membership-epoch gate (the reconfiguration analogue of the
    /// committed-ring "evidence travels with advancement" rule): a batch
    /// stamped with an *older* epoch was composed against a membership we
    /// know to be superseded, so it is dropped whole and answered with a
    /// push-repair of the membership key — the stale sender converges in
    /// one round trip and retransmission re-drives whatever the drop cost.
    /// A *newer* stamp is processed normally (the sender's protocol state
    /// is fine; we are the stale one) while we pull the configuration we
    /// are missing.
    fn on_envelope_stamped(
        &mut self,
        src: NodeId,
        mepoch: u32,
        msgs: &mut Vec<Msg>,
        now: u64,
        out: &mut Outbox<Msg>,
    ) {
        let mine = self.shared.mepoch();
        if src != self.me && mepoch != mine {
            if mepoch < mine {
                self.shared.counters.stale_epoch_dropped.incr();
                msgs.clear();
                // Our epoch exceeds a valid stamp, so it is > 0, which
                // means it was installed from an applied store value — the
                // membership key is present and repairable.
                self.ae_send_repair(src, MEMBERSHIP_KEY, out);
                out.set_stamp(mine);
                return;
            }
            self.shared.counters.membership_pulls.incr();
            out.send(src, Msg::RepairReq { keys: Box::new([MEMBERSHIP_KEY]) });
        }
        self.on_envelope(src, msgs, now, out);
    }

    fn on_tick(&mut self, now: u64, out: &mut Outbox<Msg>) -> bool {
        let progress = self.pump_sessions(now, out);
        // Barrier progress + timeout/retransmission scans are amortized:
        // barriers are checked every tick (cheap, usually empty), the full
        // retransmission scan only every `retransmit / 2` ns. RMW conflict
        // backoffs fire from their own queue at tick granularity.
        self.check_barriers(now, out);
        self.fire_rmw_retries(now, out);
        if now.saturating_sub(self.last_scan) >= self.retransmit / 2 {
            self.last_scan = now;
            self.scan_retransmits(now, out);
        }
        self.ae_on_tick(now, out);
        // Refresh the outbox's membership-epoch stamp after the step's
        // sends were composed: the runtimes copy it into every flushed
        // envelope/frame.
        out.set_stamp(self.shared.mepoch());
        progress
    }

    fn is_idle(&self) -> bool {
        // Idle also requires the anti-entropy sweep to have wound down
        // (cool-down lapsed): quiescence then implies the final writes have
        // been swept, i.e. replicas converged before the sim declares done.
        self.protocol_idle() && self.ae.quiescent()
    }

    /// Watchdog snapshot: sessions, every in-flight round with its gathered
    /// reply sets and timers, barrier waiters and RMW retry queue — enough
    /// to identify a stalled protocol round from a wedged run's stderr.
    fn describe(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "mode={:?} inflight={} barrier_waiters={:?} rmw_retries={:?} last_scan={}",
            self.mode,
            self.inflight.len(),
            self.barrier_waiters,
            self.rmw_retries,
            self.last_scan,
        );
        for (i, s) in self.sessions.iter().enumerate() {
            let _ = writeln!(
                out,
                "  session[{i}] {} seq={} blocked_on={:?} window={:?} staged={} relief={:?} idle={}",
                s.id,
                s.seq,
                s.blocked_on,
                s.write_window,
                s.staged.is_some(),
                s.relief,
                s.is_idle(),
            );
        }
        for (rid, e) in self.inflight.iter() {
            let m = e.meta();
            let _ = write!(
                out,
                "  rid={rid:#x} {} key={} op_id={} invoked_at={} last_sent={} ",
                e.tag(),
                m.key,
                m.op_id,
                m.invoked_at,
                m.last_sent
            );
            let _ = match e {
                InFlight::EsWrite(s) => writeln!(out, "acked={:?}", s.acked),
                InFlight::SlowRead(s) => {
                    writeln!(out, "reps={:?} holders={:?} w2={:?}", s.reps, s.holders, s.w2)
                }
                InFlight::SlowWrite(s) => writeln!(out, "reps={:?} w2={:?}", s.reps, s.w2),
                InFlight::Release(s) => writeln!(
                    out,
                    "barrier(done={} writes={:?} slow={:?}) rts_sent={} rts_reps={:?} w2={:?}",
                    s.barrier.done, s.barrier.writes, s.barrier.slow, s.rts_sent, s.rts_reps, s.w2
                ),
                InFlight::Acquire(s) => writeln!(
                    out,
                    "reps={:?} holders={:?} w2={:?} decided={} delinquent={}",
                    s.reps, s.holders, s.w2, s.decided, s.delinquent
                ),
                InFlight::Rmw(s) => writeln!(
                    out,
                    "phase={:?} slot={} ballot={} promises={:?} accepts={:?} commits={:?} \
                     retry_at={} backoff_exp={} helping={} barrier(done={} writes={:?} slow={:?})",
                    s.phase,
                    s.slot,
                    s.ballot,
                    s.promises,
                    s.accepts,
                    s.commits,
                    s.retry_at,
                    s.backoff_exp,
                    s.helping,
                    s.barrier.done,
                    s.barrier.writes,
                    s.barrier.slow
                ),
                InFlight::WindowRelief(s) => {
                    writeln!(out, "dm={:?} acked={:?} writes={:?}", s.dm, s.acked, s.writes)
                }
            };
        }
        // The store/Paxos state behind every in-flight key: a stalled round
        // usually means the *data* is in an unexpected state (e.g. a stale
        // base under a spinning CAS), which the round state alone can't
        // show.
        let mut keys: Vec<_> = self.inflight.iter().map(|(_, e)| e.meta().key).collect();
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            let v = self.shared.store.view(key);
            let (slot, promised, accepted, ring) = {
                let pax = self.shared.store.paxos(key);
                let pax = pax.lock();
                let ring: Vec<String> = pax
                    .committed
                    .iter()
                    .map(|c| format!("{}@s{}={}", c.op, c.slot, c.result.as_u64()))
                    .collect();
                (
                    pax.slot,
                    pax.promised,
                    pax.accepted.as_ref().map(|a| format!("{}@{}", a.op, a.ballot)),
                    ring,
                )
            };
            let _ = writeln!(
                out,
                "  store[{key}]: val={:?} lc={} epoch={} pax.slot={slot} \
                 pax.promised={promised} pax.accepted={accepted:?}\n    ring={ring:?}",
                v.val.as_u64(),
                v.lc,
                v.epoch,
            );
        }
        let _ = writeln!(out, "  ae: {}", self.ae.describe());
        let sh = &self.shared;
        let _ = writeln!(
            out,
            "  node: epoch={} membership=[{}] suspected={:?} store_len={} store_vals={} \
             completed={} ae_repairs_applied={}",
            sh.epoch(),
            sh.membership.load(),
            sh.suspected(),
            sh.store.len(),
            sh.store.values(),
            sh.counters.completed.get(),
            sh.counters.ae_repairs_applied.get(),
        );
    }
}
