//! Client sessions: the unit of program order (§2.1, §6.1).
//!
//! A session is bound to exactly one worker; the worker executes its
//! operations in session order. Relaxed operations complete without
//! blocking; synchronization operations (releases, acquires, RMWs) and
//! slow-path accesses block *only their session* — the worker keeps serving
//! its other sessions, which is where Kite's throughput under
//! synchronization comes from.

use std::collections::VecDeque;

use crossbeam::channel::{Receiver, Sender};
use kite_common::SessionId;

use crate::api::{Completion, Op};

/// A closed-loop client: its next operation may depend on earlier results
/// (lock-free data structures are the canonical case — a CAS retry loop
/// needs the observed value). Drives a session in the simulator the same
/// way a blocking client drives a [`crate::SessionHandle`] thread-side.
pub trait ClientSm: Send {
    /// The session is free: produce the next operation, or `None` if the
    /// client has nothing to issue right now.
    fn next_op(&mut self, seq: u64) -> Option<Op>;
    /// An operation completed (called in session order).
    fn on_completion(&mut self, c: &Completion);
    /// `true` once the client will never issue again (quiescence).
    fn finished(&self) -> bool;
}

/// Where a session's operations come from.
pub enum SessionDriver {
    /// No client attached.
    Idle,
    /// Closure-driven (benchmarks, deterministic tests): called with the
    /// next op sequence number whenever the session can start a new op;
    /// `None` means the script is exhausted.
    Script(Box<dyn FnMut(u64) -> Option<Op> + Send>),
    /// Closed-loop state-machine client (sees completions).
    Interactive(Box<dyn ClientSm>),
    /// External client connected through channels (the public
    /// `SessionHandle` API).
    External {
        /// Operations submitted by the client.
        rx: Receiver<Op>,
        /// Completions returned to the client.
        tx: Sender<Completion>,
    },
}

impl std::fmt::Debug for SessionDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionDriver::Idle => write!(f, "Idle"),
            SessionDriver::Script(_) => write!(f, "Script"),
            SessionDriver::Interactive(_) => write!(f, "Interactive"),
            SessionDriver::External { .. } => write!(f, "External"),
        }
    }
}

/// Which protocol stack the worker runs. Kite is the full system; the other
/// modes expose the constituent protocols as standalone baselines, exactly
/// the configurations Figure 5 compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolMode {
    /// Full Kite: ES for relaxed ops, ABD for releases/acquires, Paxos for
    /// RMWs, fast/slow-path barrier machinery.
    Kite,
    /// Eventual Store alone (per-key SC): reads local, writes broadcast; no
    /// barriers, no ack tracking.
    EsOnly,
    /// multi-writer ABD alone (linearizable reads and writes): every read
    /// is a quorum read, every write a two-round quorum write.
    AbdOnly,
    /// Per-key Paxos for writes (RMW-strength) with ABD quorum reads —
    /// Figure 5's "Paxos" configuration.
    PaxosOnly,
}

impl ProtocolMode {
    /// Does this mode run the RC barrier machinery (epochs, delinquency)?
    pub fn has_barriers(self) -> bool {
        matches!(self, ProtocolMode::Kite)
    }
}

/// Per-session bookkeeping inside a worker.
pub struct Session {
    /// Globally unique session id (node + slot).
    pub id: SessionId,
    /// Where this session's operations come from.
    pub driver: SessionDriver,
    /// Next op sequence number (program order).
    pub seq: u64,
    /// The rid of the operation currently blocking this session, if any.
    pub blocked_on: Option<u64>,
    /// rids of relaxed writes whose acks are still outstanding, in issue
    /// order — the release barrier's "writes before me in session order".
    pub write_window: VecDeque<u64>,
    /// An op pulled from the driver but not yet started (stalled on a full
    /// write window).
    pub staged: Option<Op>,
    /// rid of an in-flight write-window relief (at most one per session).
    pub relief: Option<u64>,
    /// Script driver returned `None` — the session is finished.
    pub script_done: bool,
}

impl Session {
    /// An idle session with the given id.
    pub fn new(id: SessionId) -> Self {
        Session {
            id,
            driver: SessionDriver::Idle,
            seq: 0,
            blocked_on: None,
            write_window: VecDeque::new(),
            staged: None,
            relief: None,
            script_done: false,
        }
    }

    /// Can this session start a new operation right now?
    pub fn is_free(&self) -> bool {
        self.blocked_on.is_none()
    }

    /// Is the session completely quiet (for sim quiescence)?
    pub fn is_idle(&self) -> bool {
        self.blocked_on.is_none()
            && self.staged.is_none()
            && self.write_window.is_empty()
            && match &self.driver {
                SessionDriver::Idle => true,
                SessionDriver::Script(_) => self.script_done,
                SessionDriver::Interactive(sm) => sm.finished(),
                SessionDriver::External { rx, .. } => rx.is_empty(),
            }
    }

    /// Pull the next operation to execute, honoring the staged slot.
    pub fn next_op(&mut self) -> Option<Op> {
        if let Some(op) = self.staged.take() {
            return Some(op);
        }
        match &mut self.driver {
            SessionDriver::Idle => None,
            SessionDriver::Script(f) => {
                if self.script_done {
                    None
                } else {
                    let op = f(self.seq);
                    if op.is_none() {
                        self.script_done = true;
                    }
                    op
                }
            }
            SessionDriver::Interactive(sm) => sm.next_op(self.seq),
            SessionDriver::External { rx, .. } => rx.try_recv().ok(),
        }
    }

    /// Deliver a completion to the client (channel send for external
    /// clients; callback for interactive ones; no-op otherwise).
    pub fn deliver(&mut self, c: Completion) {
        match &mut self.driver {
            SessionDriver::External { tx, .. } => {
                let _ = tx.send(c);
            }
            SessionDriver::Interactive(sm) => sm.on_completion(&c),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_common::{Key, NodeId};

    fn sid() -> SessionId {
        SessionId::new(NodeId(0), 0)
    }

    #[test]
    fn fresh_session_is_free_and_idle() {
        let s = Session::new(sid());
        assert!(s.is_free());
        assert!(s.is_idle());
    }

    #[test]
    fn script_driver_feeds_ops_until_exhausted() {
        let mut s = Session::new(sid());
        s.driver = SessionDriver::Script(Box::new(|seq| {
            if seq < 2 {
                Some(Op::Read { key: Key(seq) })
            } else {
                None
            }
        }));
        // seq is advanced by the worker; emulate it
        assert!(matches!(s.next_op(), Some(Op::Read { key }) if key == Key(0)));
        s.seq = 1;
        assert!(matches!(s.next_op(), Some(Op::Read { key }) if key == Key(1)));
        s.seq = 2;
        assert!(s.next_op().is_none());
        assert!(s.script_done);
        assert!(s.is_idle());
    }

    #[test]
    fn staged_op_takes_priority() {
        let mut s = Session::new(sid());
        s.driver = SessionDriver::Script(Box::new(|_| Some(Op::Read { key: Key(1) })));
        s.staged = Some(Op::Read { key: Key(42) });
        assert!(matches!(s.next_op(), Some(Op::Read { key }) if key == Key(42)));
        assert!(matches!(s.next_op(), Some(Op::Read { key }) if key == Key(1)));
    }

    #[test]
    fn blocked_session_is_not_free() {
        let mut s = Session::new(sid());
        s.blocked_on = Some(7);
        assert!(!s.is_free());
        assert!(!s.is_idle());
    }

    #[test]
    fn pending_writes_keep_session_non_idle() {
        let mut s = Session::new(sid());
        s.write_window.push_back(3);
        assert!(s.is_free(), "pending relaxed writes do not block");
        assert!(!s.is_idle(), "but the session still has work in flight");
    }

    #[test]
    fn external_driver_round_trip() {
        use crate::api::{OpOutput};
        use kite_common::OpId;
        let (op_tx, op_rx) = crossbeam::channel::unbounded();
        let (done_tx, done_rx) = crossbeam::channel::unbounded();
        let mut s = Session::new(sid());
        s.driver = SessionDriver::External { rx: op_rx, tx: done_tx };
        assert!(s.next_op().is_none());
        op_tx.send(Op::Read { key: Key(9) }).unwrap();
        assert!(matches!(s.next_op(), Some(Op::Read { key }) if key == Key(9)));
        s.deliver(Completion {
            op_id: OpId::new(sid(), 0),
            op: Op::Read { key: Key(9) },
            output: OpOutput::Done,
            invoked_at: 0,
            completed_at: 1,
        });
        assert_eq!(done_rx.len(), 1);
    }

    #[test]
    fn mode_barrier_flags() {
        assert!(ProtocolMode::Kite.has_barriers());
        assert!(!ProtocolMode::EsOnly.has_barriers());
        assert!(!ProtocolMode::AbdOnly.has_barriers());
        assert!(!ProtocolMode::PaxosOnly.has_barriers());
    }
}
