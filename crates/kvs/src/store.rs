//! The MICA-style concurrent store: a fixed-capacity, open-addressing hash
//! index over preallocated seqlock records (§6.2).
//!
//! Unlike MICA's cache mode the index is *lossless* (no eviction): the KVS
//! holds a preloaded, replicated key set (§7: one million key-value pairs
//! replicated on all nodes), so dropping entries would be a correctness bug,
//! not a cache miss. Slots are claimed lock-free with a CAS on first touch.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use kite_common::{Epoch, Key, Lc, NodeId, Val};
use parking_lot::Mutex;

use crate::paxos_meta::PaxosMeta;
use crate::record::{Record, ReadView};

const EMPTY_KEY: u64 = u64::MAX;

struct Slot {
    key: AtomicU64,
    record: Record,
}

/// A node-local replica of the KVS.
pub struct Store {
    slots: Box<[Slot]>,
    mask: u64,
    /// Population count, bumped once per claimed slot — keeps
    /// [`Store::len`] O(1) instead of an O(capacity) slot scan.
    live: AtomicUsize,
}

impl Store {
    /// Create a store able to hold at least `keys` distinct keys. Capacity
    /// is rounded up to a power of two with 2× headroom to keep probe
    /// sequences short.
    pub fn new(keys: usize) -> Self {
        let cap = (keys.max(16) * 2).next_power_of_two();
        let slots: Box<[Slot]> = (0..cap)
            .map(|_| Slot { key: AtomicU64::new(EMPTY_KEY), record: Record::new() })
            .collect();
        Store { slots, mask: (cap - 1) as u64, live: AtomicUsize::new(0) }
    }

    /// Number of slots (diagnostics).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of keys present. O(1): maintained by the slot-claim CAS.
    pub fn len(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Locate (or claim) the record for `key`. Lock-free linear probing;
    /// panics if the table is full (a configuration error: the key space is
    /// sized at construction).
    #[inline]
    fn record(&self, key: Key) -> &Record {
        debug_assert_ne!(key.0, EMPTY_KEY, "key u64::MAX is reserved");
        let mut idx = key.hash() & self.mask;
        for _ in 0..self.slots.len() {
            let slot = &self.slots[idx as usize];
            let cur = slot.key.load(Ordering::Acquire);
            if cur == key.0 {
                return &slot.record;
            }
            if cur == EMPTY_KEY {
                match slot.key.compare_exchange(
                    EMPTY_KEY,
                    key.0,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        // Exactly one CAS wins per slot: count it once.
                        self.live.fetch_add(1, Ordering::Relaxed);
                        return &slot.record;
                    }
                    Err(actual) if actual == key.0 => return &slot.record,
                    Err(_) => {} // someone else claimed this slot; keep probing
                }
            }
            idx = (idx + 1) & self.mask;
        }
        panic!("store capacity exhausted: {} slots", self.slots.len());
    }

    // ---- reads -----------------------------------------------------------

    /// Consistent snapshot of `(value, clock, epoch)`.
    #[inline]
    pub fn view(&self, key: Key) -> ReadView {
        let d = self.record(key).snapshot();
        ReadView { val: d.val(), lc: d.lc, epoch: Epoch(d.epoch) }
    }

    /// The key's current Lamport clock (ABD write round 1 reads just this).
    #[inline]
    pub fn read_lc(&self, key: Key) -> Lc {
        self.record(key).snapshot().lc
    }

    /// The key's `(clock, epoch)` pair.
    #[inline]
    pub fn lc_epoch(&self, key: Key) -> (Lc, Epoch) {
        let d = self.record(key).snapshot();
        (d.lc, Epoch(d.epoch))
    }

    // ---- writes ----------------------------------------------------------

    /// ES fast-path relaxed write (§3.2): requires the key to be in-epoch.
    /// Atomically (under the key's seqlock) verifies the epoch, stamps the
    /// write with the key's next clock owned by `mid`, and applies it.
    /// Returns the stamped clock, or `None` if the key was out-of-epoch
    /// (caller must take the slow path).
    #[inline]
    pub fn fast_write(
        &self,
        key: Key,
        val: &Val,
        mid: NodeId,
        machine_epoch: Epoch,
    ) -> Option<Lc> {
        self.record(key).update(|d| {
            if d.epoch != machine_epoch.0 {
                return None;
            }
            let lc = d.lc.succ(mid);
            d.lc = lc;
            d.set_val(val);
            Some(lc)
        })
    }

    /// Apply a remote or protocol write iff its clock beats the stored one
    /// (the LLC write-serialization rule shared by ES and ABD). Returns
    /// whether the write was applied. Never touches the epoch.
    #[inline]
    pub fn apply_max(&self, key: Key, val: &Val, lc: Lc) -> bool {
        self.record(key).update(|d| {
            if lc > d.lc {
                d.lc = lc;
                d.set_val(val);
                true
            } else {
                false
            }
        })
    }

    /// Slow-path completion (§4.2 "Returning to fast path"): apply the
    /// freshest value (LLC-max rule) *and* advance the key's epoch to the
    /// machine-epoch snapshot taken when the slow-path access started. The
    /// epoch only moves forward; if the machine epoch was bumped while the
    /// slow-path access was in flight, the stale snapshot leaves the key
    /// out-of-epoch, exactly as the paper requires.
    #[inline]
    pub fn apply_max_restore(&self, key: Key, val: &Val, lc: Lc, snapshot: Epoch) -> bool {
        self.record(key).update(|d| {
            let applied = if lc > d.lc {
                d.lc = lc;
                d.set_val(val);
                true
            } else {
                false
            };
            if snapshot.0 > d.epoch {
                d.epoch = snapshot.0;
            }
            applied
        })
    }

    /// Advance only the key's epoch to `snapshot` (slow-path read that found
    /// the local value already freshest).
    #[inline]
    pub fn restore_epoch(&self, key: Key, snapshot: Epoch) {
        self.record(key).update(|d| {
            if snapshot.0 > d.epoch {
                d.epoch = snapshot.0;
            }
        });
    }

    /// Unconditional ordered overwrite — for baselines that serialize writes
    /// externally (ZAB applies in zxid order; Derecho in delivery order).
    /// The provided clock is stored as-is.
    #[inline]
    pub fn apply_ordered(&self, key: Key, val: &Val, lc: Lc) {
        self.record(key).update(|d| {
            d.lc = lc;
            d.set_val(val);
        });
    }

    /// Run `f` with exclusive access to the record's `(val, lc, epoch)`
    /// via a small closure API — escape hatch for engines with bespoke
    /// commit rules. `f` receives `(current value, current lc)` and may
    /// return a replacement.
    pub fn update_with(&self, key: Key, f: impl FnOnce(Val, Lc) -> Option<(Val, Lc)>) {
        self.record(key).update(|d| {
            if let Some((nv, nlc)) = f(d.val(), d.lc) {
                d.lc = nlc;
                d.set_val(&nv);
            }
        });
    }

    // ---- Paxos -----------------------------------------------------------

    /// The key's Paxos structure (lazily allocated on first RMW, §6.2).
    #[inline]
    pub fn paxos(&self, key: Key) -> &Mutex<PaxosMeta> {
        self.record(key).paxos()
    }

    /// The key's next undecided Paxos slot, without allocating the Paxos
    /// structure for keys that never carried an RMW (those report 0).
    #[inline]
    pub fn paxos_next_slot(&self, key: Key) -> u64 {
        self.record(key).paxos_if_allocated().map(|m| m.lock().slot).unwrap_or(0)
    }

    /// The key's `(next undecided slot, committed ring)` read under one
    /// lock — the evidence pair an anti-entropy repair ships so a receiver
    /// never advances its slot without the matching dedup entries. Keys
    /// that never carried an RMW report `(0, [])` without allocating.
    pub fn paxos_evidence(&self, key: Key) -> (u64, Vec<crate::paxos_meta::RmwCommit>) {
        match self.record(key).paxos_if_allocated() {
            None => (0, Vec::new()),
            Some(m) => {
                let m = m.lock();
                (m.slot, m.committed.iter().cloned().collect())
            }
        }
    }

    // ---- anti-entropy digests -------------------------------------------

    /// Append `(key, lc)` for every live slot in `[start, start + slots)`
    /// (clamped to capacity) to `out` — the per-slot-range digest the
    /// anti-entropy sweep exchanges. O(slots), lock-free: one atomic key
    /// load plus one seqlock snapshot per live slot, so writers are never
    /// blocked and a torn read is impossible. Returns the next start index,
    /// wrapping to 0 past the end (callers keep a cursor).
    ///
    /// `Lc::ZERO` entries are **included deliberately**: "I hold nothing
    /// for this key" is what lets a woken §8.4 sleeper advertise the keys
    /// it slept through so a fresh peer pushes them back — a replica
    /// cannot tell locally whether ZERO means "never written anywhere"
    /// or "I missed every write".
    ///
    /// Slot indices are **local**: two replicas holding the same keys may
    /// place them in different slots (insertion-order-dependent probing),
    /// so digests diff by *key*, never by slot position.
    pub fn digest_range(&self, start: usize, slots: usize, out: &mut Vec<(Key, Lc)>) -> usize {
        let cap = self.slots.len();
        let start = start.min(cap);
        let end = (start + slots).min(cap);
        for slot in &self.slots[start..end] {
            let key = slot.key.load(Ordering::Acquire);
            if key != EMPTY_KEY {
                out.push((Key(key), slot.record.snapshot().lc));
            }
        }
        if end >= cap {
            0
        } else {
            end
        }
    }

    /// The key's clock iff the key is already present — a **non-claiming**
    /// probe, unlike every other accessor (which allocate the slot on first
    /// touch). Anti-entropy digest diffs use this so a digest mentioning a
    /// key this replica has never touched does not claim a slot here; the
    /// slot is claimed only if a repair actually adopts the key.
    pub fn probe_lc(&self, key: Key) -> Option<Lc> {
        debug_assert_ne!(key.0, EMPTY_KEY, "key u64::MAX is reserved");
        let mut idx = key.hash() & self.mask;
        for _ in 0..self.slots.len() {
            let slot = &self.slots[idx as usize];
            match slot.key.load(Ordering::Acquire) {
                cur if cur == key.0 => return Some(slot.record.snapshot().lc),
                // A concurrent claim of this very slot may race us to
                // `None` — fine: "absent" is always a safe answer (the
                // caller pulls, and the repair path claims properly).
                EMPTY_KEY => return None,
                _ => idx = (idx + 1) & self.mask,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Store {
        Store::new(1024)
    }

    #[test]
    fn view_of_fresh_key_is_empty_at_lc_zero() {
        let s = store();
        let v = s.view(Key(5));
        assert_eq!(v.val, Val::EMPTY);
        assert_eq!(v.lc, Lc::ZERO);
        assert_eq!(v.epoch, Epoch::ZERO);
    }

    #[test]
    fn fast_write_stamps_increasing_clocks() {
        let s = store();
        let lc1 = s.fast_write(Key(1), &Val::from_u64(10), NodeId(2), Epoch::ZERO).unwrap();
        let lc2 = s.fast_write(Key(1), &Val::from_u64(20), NodeId(2), Epoch::ZERO).unwrap();
        assert!(lc2 > lc1);
        assert_eq!(lc1.owner(), NodeId(2));
        assert_eq!(s.view(Key(1)).val.as_u64(), 20);
    }

    #[test]
    fn fast_write_refuses_out_of_epoch_key() {
        let s = store();
        // machine epoch moved to 1, key still at 0
        assert!(s.fast_write(Key(1), &Val::from_u64(1), NodeId(0), Epoch(1)).is_none());
        // restoring the epoch re-enables the fast path
        s.restore_epoch(Key(1), Epoch(1));
        assert!(s.fast_write(Key(1), &Val::from_u64(1), NodeId(0), Epoch(1)).is_some());
    }

    #[test]
    fn apply_max_is_llc_ordered() {
        let s = store();
        let hi = Lc::new(5, NodeId(1));
        let lo = Lc::new(3, NodeId(4));
        assert!(s.apply_max(Key(9), &Val::from_u64(50), hi));
        assert!(!s.apply_max(Key(9), &Val::from_u64(30), lo), "stale write rejected");
        assert_eq!(s.view(Key(9)).val.as_u64(), 50);
        // equal clock is also rejected (idempotent redelivery)
        assert!(!s.apply_max(Key(9), &Val::from_u64(99), hi));
        assert_eq!(s.view(Key(9)).val.as_u64(), 50);
    }

    #[test]
    fn apply_max_ties_break_on_machine_id() {
        let s = store();
        assert!(s.apply_max(Key(2), &Val::from_u64(1), Lc::new(7, NodeId(1))));
        assert!(s.apply_max(Key(2), &Val::from_u64(2), Lc::new(7, NodeId(3))));
        assert_eq!(s.view(Key(2)).val.as_u64(), 2, "higher mid wins the tie");
    }

    #[test]
    fn restore_epoch_never_regresses() {
        let s = store();
        s.restore_epoch(Key(3), Epoch(5));
        s.restore_epoch(Key(3), Epoch(2));
        assert_eq!(s.view(Key(3)).epoch, Epoch(5));
    }

    #[test]
    fn apply_max_restore_combines_value_and_epoch() {
        let s = store();
        let lc = Lc::new(4, NodeId(0));
        assert!(s.apply_max_restore(Key(7), &Val::from_u64(44), lc, Epoch(2)));
        let v = s.view(Key(7));
        assert_eq!(v.val.as_u64(), 44);
        assert_eq!(v.epoch, Epoch(2));
        // stale value still advances epoch (the read found local freshest)
        assert!(!s.apply_max_restore(Key(7), &Val::from_u64(1), Lc::new(1, NodeId(1)), Epoch(3)));
        assert_eq!(s.view(Key(7)).epoch, Epoch(3));
        assert_eq!(s.view(Key(7)).val.as_u64(), 44);
    }

    #[test]
    fn apply_ordered_overwrites_unconditionally() {
        let s = store();
        s.apply_ordered(Key(1), &Val::from_u64(9), Lc::new(100, NodeId(0)));
        s.apply_ordered(Key(1), &Val::from_u64(3), Lc::new(2, NodeId(0)));
        assert_eq!(s.view(Key(1)).val.as_u64(), 3, "external order wins, not LLC");
    }

    #[test]
    fn paxos_meta_is_per_key() {
        let s = store();
        s.paxos(Key(1)).lock().slot = 7;
        assert_eq!(s.paxos(Key(1)).lock().slot, 7);
        assert_eq!(s.paxos(Key(2)).lock().slot, 0);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let s = Store::new(4096);
        for k in 0..4096u64 {
            s.fast_write(Key(k), &Val::from_u64(k), NodeId(0), Epoch::ZERO);
        }
        for k in 0..4096u64 {
            assert_eq!(s.view(Key(k)).val.as_u64(), k);
        }
        assert_eq!(s.len(), 4096);
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn table_overflow_panics() {
        let s = Store::new(16); // capacity 64
        for k in 0..65u64 {
            s.view(Key(k));
        }
    }

    #[test]
    fn digest_range_covers_live_slots_and_wraps() {
        let s = Store::new(16); // capacity 64
        for k in 0..10u64 {
            s.fast_write(Key(k), &Val::from_u64(k), NodeId(1), Epoch::ZERO);
        }
        // Walk the whole store in chunks; every live key appears exactly
        // once per cycle, empty slots contribute nothing.
        let mut seen = Vec::new();
        let mut cursor = 0;
        loop {
            cursor = s.digest_range(cursor, 7, &mut seen);
            if cursor == 0 {
                break;
            }
        }
        assert_eq!(seen.len(), 10);
        let mut keys: Vec<u64> = seen.iter().map(|(k, _)| k.0).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
        for (k, lc) in &seen {
            assert_eq!(*lc, s.view(*k).lc, "digest clock must match the store");
            assert_eq!(lc.owner(), NodeId(1));
        }
        // Clamped: a cursor at/past capacity yields nothing and wraps.
        let mut none = Vec::new();
        assert_eq!(s.digest_range(s.capacity(), 8, &mut none), 0);
        assert!(none.is_empty());
        // A claimed-but-unwritten key rides the digest at Lc::ZERO — the
        // "I hold nothing" advertisement a fresh peer answers with a push.
        s.view(Key(99));
        let mut again = Vec::new();
        let mut cursor = 0;
        loop {
            cursor = s.digest_range(cursor, 7, &mut again);
            if cursor == 0 {
                break;
            }
        }
        assert_eq!(again.len(), 11);
        assert!(again.contains(&(Key(99), Lc::ZERO)));
    }

    #[test]
    fn probe_lc_never_claims() {
        let s = store();
        let before = s.len();
        assert_eq!(s.probe_lc(Key(123)), None, "absent key stays absent");
        assert_eq!(s.len(), before, "probe must not claim a slot");
        s.apply_max(Key(123), &Val::from_u64(9), Lc::new(4, NodeId(1)));
        assert_eq!(s.probe_lc(Key(123)), Some(Lc::new(4, NodeId(1))));
    }

    #[test]
    fn digest_range_is_lock_free_against_writers() {
        use std::sync::Arc;
        let s = Arc::new(Store::new(256));
        for k in 0..100u64 {
            s.fast_write(Key(k), &Val::from_u64(k), NodeId(0), Epoch::ZERO);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let (s, stop) = (Arc::clone(&s), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut i = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    s.apply_max(Key(i % 100), &Val::from_u64(i), Lc::new(i, NodeId(2)));
                }
            })
        };
        for _ in 0..200 {
            let mut out = Vec::new();
            let mut cursor = 0;
            loop {
                cursor = s.digest_range(cursor, 64, &mut out);
                if cursor == 0 {
                    break;
                }
            }
            assert_eq!(out.len(), 100, "live population is stable while values churn");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn paxos_next_slot_reads_without_allocating() {
        let s = store();
        s.view(Key(5)); // claim the slot, no Paxos yet
        assert_eq!(s.paxos_next_slot(Key(5)), 0);
        s.paxos(Key(5)).lock().advance_past(3);
        assert_eq!(s.paxos_next_slot(Key(5)), 4);
        // A never-RMWed key still reports 0 (and still has no Paxos box).
        assert_eq!(s.paxos_next_slot(Key(6)), 0);
    }

    #[test]
    fn concurrent_writers_to_disjoint_keys() {
        use std::sync::Arc;
        let s = Arc::new(Store::new(1 << 14));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    let k = Key(t * 10_000 + i);
                    s.fast_write(k, &Val::from_u64(i), NodeId(t as u8), Epoch::ZERO);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u64 {
            for i in (0..2000u64).step_by(97) {
                assert_eq!(s.view(Key(t * 10_000 + i)).val.as_u64(), i);
            }
        }
    }

    #[test]
    fn len_counts_each_key_once_under_concurrent_claims() {
        use std::sync::Arc;
        let s = Arc::new(Store::new(1 << 10));
        let mut handles = Vec::new();
        // Four threads race to claim the same 256 keys: the population
        // counter must count each slot exactly once (only the winning CAS
        // increments).
        for t in 0..4u8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for k in 0..256u64 {
                    s.fast_write(Key(k), &Val::from_u64(k), NodeId(t), Epoch::ZERO);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 256);
        assert!(!s.is_empty());
    }

    #[test]
    fn concurrent_apply_max_converges_to_highest_clock() {
        use std::sync::Arc;
        let s = Arc::new(Store::new(64));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for v in 0..1000u64 {
                    s.apply_max(Key(1), &Val::from_u64(v * 10 + t as u64), Lc::new(v, NodeId(t)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Highest clock overall is version 999, mid 3 → value 9993.
        assert_eq!(s.view(Key(1)).lc, Lc::new(999, NodeId(3)));
        assert_eq!(s.view(Key(1)).val.as_u64(), 9993);
    }
}
