//! The MICA-style concurrent store: a fixed-capacity, open-addressing hash
//! index over preallocated seqlock records (§6.2).
//!
//! Unlike MICA's cache mode the index is *lossless* (no eviction): the KVS
//! holds a preloaded, replicated key set (§7: one million key-value pairs
//! replicated on all nodes), so dropping entries would be a correctness bug,
//! not a cache miss. Slots are claimed lock-free with a CAS on first touch.
//!
//! # The Merkle leaf lattice
//!
//! Alongside the slots the store maintains an incremental hash summary for
//! the Merkle-range anti-entropy mode: an array of **leaf hashes**, one per
//! `leaf_span` *home* slots, where leaf `i` is the XOR of
//! [`merkle_mix`]`(key, lc)` over every written entry whose home slot
//! (`key.hash() & mask`, before linear-probe displacement) falls in leaf
//! `i`'s range. Leaves bucket by *home* position — a pure function of the
//! key — so two replicas holding the same `(key, lc)` set produce the same
//! leaf hashes even when probing placed the keys in different physical
//! slots.
//!
//! **Lock-free update rule.** Every mutation that changes a key's clock
//! from `old` to `new` XORs `merkle_mix(key, old) ^ merkle_mix(key, new)`
//! into the key's leaf with one `fetch_xor`, *after* the seqlock write
//! section commits. XOR is commutative and associative, and the seqlock
//! serializes the clock transitions per key, so any interleaving of
//! concurrent updates telescopes to `mix(initial) ^ mix(final)` — at
//! quiescence a leaf always equals the XOR of its members' current mixes,
//! with writers never blocked and no lock ever taken. A fold that races a
//! writer may observe the value transition without its hash delta (or vice
//! versa); the resulting spurious range mismatch only costs an idempotent
//! drill-down, exactly like a flat digest racing a write.
//!
//! `merkle_mix(key, Lc::ZERO)` is **defined as 0**, so slots that are
//! claimed but never written (a read probing a fresh key) are invisible to
//! the lattice: "both sides hold nothing" must hash equal regardless of
//! who happened to claim a slot, or two converged replicas would drill
//! down at each other forever.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use kite_common::{Epoch, Key, Lc, NodeId, Val};
use parking_lot::Mutex;

use crate::paxos_meta::PaxosMeta;
use crate::record::{Record, ReadView};

const EMPTY_KEY: u64 = u64::MAX;

/// Default home slots per Merkle leaf (see the module docs).
pub const DEFAULT_LEAF_SPAN: usize = 64;

/// The per-entry hash the Merkle leaf lattice accumulates: a splitmix64
/// avalanche over the packed `(key, lc)` pair. `Lc::ZERO` maps to 0 by
/// definition — claimed-but-unwritten slots must not perturb the lattice
/// (see the module docs).
#[inline]
pub fn merkle_mix(key: Key, lc: Lc) -> u64 {
    if lc == Lc::ZERO {
        return 0;
    }
    let packed = (lc.version() << 8) | lc.mid() as u64;
    let mut z = key.0 ^ packed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Slot {
    key: AtomicU64,
    record: Record,
}

/// A durability hook fed one `(key, lc, val)` triple by **every**
/// stamp-transitioning store apply — the same choke points that feed the
/// Merkle leaf lattice. The write-ahead log implements this; the store
/// stays ignorant of framing, files and fsync.
///
/// Called *after* the seqlock write section commits, from the applying
/// protocol thread, so implementations must be cheap and non-blocking
/// (the WAL stages bytes into an in-memory buffer and lets a dedicated
/// flusher thread do the I/O). Per-key ordering is not guaranteed across
/// racing appliers — consumers must be order-insensitive, which WAL replay
/// is by construction (replay re-applies under the LLC-max rule).
pub trait DurabilitySink: Send + Sync {
    /// Record that `key` now holds `val` at clock `lc`.
    ///
    /// Sinks with a framing limit (the WAL caps values at its `vlen u8`
    /// budget) must refuse an unframeable record with a typed
    /// [`SinkError`] rather than truncating or silently skipping it: a
    /// write the application believes durable but the sink never framed
    /// would survive right up until the crash that needed it.
    fn record(&self, key: Key, lc: Lc, val: &Val) -> Result<(), SinkError>;
}

/// Typed refusal from a [`DurabilitySink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkError {
    /// The value exceeds the sink's frame cap (`len` bytes against a
    /// `cap`-byte budget) and cannot be made durable.
    Oversize {
        /// Offered value length in bytes.
        len: usize,
        /// The sink's maximum framable value length.
        cap: usize,
    },
}

impl std::fmt::Display for SinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SinkError::Oversize { len, cap } => {
                write!(f, "value of {len} bytes exceeds the sink's {cap}-byte frame cap")
            }
        }
    }
}

impl std::error::Error for SinkError {}

/// A node-local replica of the KVS.
pub struct Store {
    slots: Box<[Slot]>,
    mask: u64,
    /// Population count, bumped once per claimed slot — keeps
    /// [`Store::len`] O(1) instead of an O(capacity) slot scan.
    live: AtomicUsize,
    /// Value count: slots whose clock has left `Lc::ZERO`. A read probing
    /// a fresh key claims a slot (counted in `live`) but writes nothing —
    /// this gauge counts only slots holding a real value, so two replicas
    /// that diverge in what they were *asked* about but agree on what was
    /// *written* report the same number (the learner-sync convergence
    /// check in `scripts/e2e_tcp.sh` depends on exactly that).
    written: AtomicUsize,
    /// Merkle leaf lattice: `leaves[i]` = XOR of [`merkle_mix`] over every
    /// written entry whose *home* slot lies in `[i << leaf_shift,
    /// (i + 1) << leaf_shift)`. See the module docs for the update rule.
    leaves: Box<[AtomicU64]>,
    /// `home_slot >> leaf_shift` = leaf index.
    leaf_shift: u32,
    /// Optional durability sink (the WAL), attached at most once after
    /// recovery. Unset — the default, and every deployment with `wal`
    /// off — costs one predictable atomic load per write.
    sink: OnceLock<Arc<dyn DurabilitySink>>,
    /// Optional observability probe (write counter + distinct-keys HLL),
    /// attached at most once. Same cost model as the sink: one predictable
    /// atomic load per write when unset.
    probe: OnceLock<Arc<StoreProbe>>,
    /// Optional single-key watch, attached at most once: a callback fired
    /// at the [`Store::sink_apply`] choke point whenever *that key* is
    /// applied. This is how dynamic membership rides the store: the node
    /// watches the reserved membership key, so commits, WAL replay and
    /// anti-entropy repairs all install configuration through one door.
    /// Same cost model as the sink: one predictable atomic load plus one
    /// key compare per write when unset.
    watch: OnceLock<(u64, Arc<dyn Fn(Lc, &Val) + Send + Sync>)>,
}

/// Live observability counters for the store, bumped at the same choke
/// point as the durability sink ([`Store::sink_apply`]) so every mutator
/// path — fast-path writes, lattice-max applies, RMW commits, recovery
/// restores — is counted exactly once per applied write. Recording is
/// lock-free and allocation-free (see `kite-metrics`).
#[derive(Default)]
pub struct StoreProbe {
    /// Applied writes across all mutator paths.
    pub writes: kite_metrics::Counter,
    /// Distinct keys ever written (HyperLogLog estimate, ~1.6% std error).
    pub distinct_keys: kite_metrics::Hll,
}

impl Store {
    /// Create a store able to hold at least `keys` distinct keys. Capacity
    /// is rounded up to a power of two with 2× headroom to keep probe
    /// sequences short.
    pub fn new(keys: usize) -> Self {
        Self::with_leaf_span(keys, DEFAULT_LEAF_SPAN)
    }

    /// [`Store::new`] with an explicit Merkle leaf span (home slots per
    /// leaf hash; rounded up to a power of two and clamped to the
    /// capacity). Replicas must agree on `(keys, leaf_span)` for their
    /// lattices to be comparable — both come from the shared
    /// `ClusterConfig`. A span of **0 disables the lattice entirely**
    /// (no leaves allocated, `leaf_apply` is a single branch): deployments
    /// that never speak Merkle digests must not pay per-write hashing or
    /// a shared-cache-line `fetch_xor` for a summary nobody reads.
    pub fn with_leaf_span(keys: usize, leaf_span: usize) -> Self {
        let cap = (keys.max(16) * 2).next_power_of_two();
        let slots: Box<[Slot]> = (0..cap)
            .map(|_| Slot { key: AtomicU64::new(EMPTY_KEY), record: Record::new() })
            .collect();
        let (leaves, leaf_shift) = if leaf_span == 0 {
            (Box::from([]), 0)
        } else {
            let span = leaf_span.next_power_of_two().min(cap);
            let leaves: Box<[AtomicU64]> = (0..cap / span).map(|_| AtomicU64::new(0)).collect();
            (leaves, span.trailing_zeros())
        };
        Store {
            slots,
            mask: (cap - 1) as u64,
            live: AtomicUsize::new(0),
            written: AtomicUsize::new(0),
            leaves,
            leaf_shift,
            sink: OnceLock::new(),
            probe: OnceLock::new(),
            watch: OnceLock::new(),
        }
    }

    /// Attach the durability sink. At most once per store, and only
    /// *after* recovery has finished replaying into it — a sink that saw
    /// its own replay would double every record.
    pub fn attach_sink(&self, sink: Arc<dyn DurabilitySink>) {
        if self.sink.set(sink).is_err() {
            panic!("durability sink already attached");
        }
    }

    /// Attach the observability probe (at most once). Unlike the sink there
    /// is no replay hazard — double-counted recovery writes would only skew
    /// monitoring — but the once-only discipline keeps the two attach paths
    /// symmetric.
    pub fn attach_probe(&self, probe: Arc<StoreProbe>) {
        if self.probe.set(probe).is_err() {
            panic!("store probe already attached");
        }
    }

    /// Attach a single-key watch (at most once): `f(lc, val)` runs inside
    /// every mutator that applies `key`, including recovery replay — a
    /// watcher *wants* to see replayed state (that is how a restarted node
    /// relearns its membership), unlike the sink, which must not re-record
    /// its own replay.
    pub fn attach_watch(&self, key: Key, f: Arc<dyn Fn(Lc, &Val) + Send + Sync>) {
        if self.watch.set((key.0, f)).is_err() {
            panic!("store watch already attached");
        }
    }

    /// Number of slots (diagnostics).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of keys present. O(1): maintained by the slot-claim CAS.
    // ordering: a monotone population gauge — callers use it for sizing and
    // diagnostics, never to infer that a particular key is visible.
    pub fn len(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of keys holding a **written value** — claimed-but-unwritten
    /// slots (a read probing a fresh key) excluded. Unlike [`Store::len`],
    /// this is comparable across replicas: anti-entropy converges values,
    /// not read probes.
    // ordering: same monotone-gauge contract as `len`.
    pub fn values(&self) -> usize {
        self.written.load(Ordering::Relaxed)
    }

    /// The leaf index of `key`'s home slot — a pure function of the key
    /// and the store geometry, identical on every replica.
    #[inline]
    pub fn leaf_of(&self, key: Key) -> usize {
        ((key.hash() & self.mask) >> self.leaf_shift) as usize
    }

    /// Fold a clock transition `old → new` for `key` into its leaf hash.
    /// Called after the seqlock write section commits; see the module docs
    /// for why the out-of-lock XOR is still exact. With the lattice
    /// disabled (leaf span 0) this is one predictable branch — the write
    /// path pays nothing.
    // ordering: leaf hashes are a commutative XOR fold; sweep readers
    // tolerate transient skew by design (drill-down re-confirms on the next
    // interval), so the fetch_xor needs atomicity, not ordering.
    #[inline]
    fn leaf_apply(&self, key: Key, old: Lc, new: Lc) {
        // The ZERO → nonzero clock transition happens exactly once per key
        // (clocks are LLC-monotone and `old` was read inside the write
        // section), so this counts each first value exactly once.
        if old == Lc::ZERO && new > Lc::ZERO {
            self.written.fetch_add(1, Ordering::Relaxed);
        }
        if self.leaves.is_empty() {
            return;
        }
        let delta = merkle_mix(key, old) ^ merkle_mix(key, new);
        if delta != 0 {
            self.leaves[self.leaf_of(key)].fetch_xor(delta, Ordering::Relaxed);
        }
    }

    /// Feed an applied write to the durability sink, if one is attached.
    /// Sits right next to [`Store::leaf_apply`] at every mutator's exit:
    /// the WAL and the Merkle lattice observe exactly the same clock
    /// transitions, which is what makes "rebuild the lattice by replaying
    /// the WAL through the normal mutators" sound.
    #[inline]
    fn sink_apply(&self, key: Key, lc: Lc, val: &Val) {
        if let Some(probe) = self.probe.get() {
            probe.writes.incr();
            probe.distinct_keys.observe(key.0);
        }
        if let Some((watched, f)) = self.watch.get() {
            if key.0 == *watched {
                f(lc, val);
            }
        }
        if let Some(sink) = self.sink.get() {
            if let Err(e) = sink.record(key, lc, val) {
                // Fail fast: the write is already applied in memory, so
                // limping on would hand the application an acknowledged
                // update that no recovery can reproduce. Admission should
                // have rejected the value (the engines cap values at the
                // sink's frame budget); reaching here is a logic error.
                panic!("durability sink refused an applied write for {key:?}: {e}");
            }
        }
    }

    /// Locate (or claim) the record for `key`. Lock-free linear probing;
    /// panics if the table is full (a configuration error: the key space is
    /// sized at construction).
    // ordering: Acquire on the probe load pairs with the AcqRel slot-claim
    // CAS so a hit happens-after the claim that published the key; the CAS
    // failure load is Acquire for the same reason (a lost race must still
    // observe the winner's slot as claimed). The live counter is Relaxed —
    // see `len`.
    #[inline]
    fn record(&self, key: Key) -> &Record {
        debug_assert_ne!(key.0, EMPTY_KEY, "key u64::MAX is reserved");
        let mut idx = key.hash() & self.mask;
        for _ in 0..self.slots.len() {
            let slot = &self.slots[idx as usize];
            let cur = slot.key.load(Ordering::Acquire);
            if cur == key.0 {
                return &slot.record;
            }
            if cur == EMPTY_KEY {
                match slot.key.compare_exchange(
                    EMPTY_KEY,
                    key.0,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        // Exactly one CAS wins per slot: count it once.
                        self.live.fetch_add(1, Ordering::Relaxed);
                        return &slot.record;
                    }
                    Err(actual) if actual == key.0 => return &slot.record,
                    Err(_) => {} // someone else claimed this slot; keep probing
                }
            }
            idx = (idx + 1) & self.mask;
        }
        panic!("store capacity exhausted: {} slots", self.slots.len());
    }

    // ---- reads -----------------------------------------------------------

    /// Consistent snapshot of `(value, clock, epoch)`.
    #[inline]
    pub fn view(&self, key: Key) -> ReadView {
        let d = self.record(key).snapshot();
        ReadView { val: d.val(), lc: d.lc, epoch: Epoch(d.epoch) }
    }

    /// The key's current Lamport clock (ABD write round 1 reads just this).
    #[inline]
    pub fn read_lc(&self, key: Key) -> Lc {
        self.record(key).snapshot().lc
    }

    /// The key's `(clock, epoch)` pair.
    #[inline]
    pub fn lc_epoch(&self, key: Key) -> (Lc, Epoch) {
        let d = self.record(key).snapshot();
        (d.lc, Epoch(d.epoch))
    }

    // ---- writes ----------------------------------------------------------

    /// ES fast-path relaxed write (§3.2): requires the key to be in-epoch.
    /// Atomically (under the key's seqlock) verifies the epoch, stamps the
    /// write with the key's next clock owned by `mid`, and applies it.
    /// Returns the stamped clock, or `None` if the key was out-of-epoch
    /// (caller must take the slow path).
    #[inline]
    pub fn fast_write(
        &self,
        key: Key,
        val: &Val,
        mid: NodeId,
        machine_epoch: Epoch,
    ) -> Option<Lc> {
        let mut prev = Lc::ZERO;
        let stamped = self.record(key).update(|d| {
            if d.epoch != machine_epoch.0 {
                return None;
            }
            prev = d.lc;
            let lc = d.lc.succ(mid);
            d.lc = lc;
            d.set_val(val);
            Some(lc)
        });
        if let Some(lc) = stamped {
            self.leaf_apply(key, prev, lc);
            self.sink_apply(key, lc, val);
        }
        stamped
    }

    /// Apply a remote or protocol write iff its clock beats the stored one
    /// (the LLC write-serialization rule shared by ES and ABD). Returns
    /// whether the write was applied. Never touches the epoch.
    #[inline]
    pub fn apply_max(&self, key: Key, val: &Val, lc: Lc) -> bool {
        let mut prev = Lc::ZERO;
        let applied = self.record(key).update(|d| {
            if lc > d.lc {
                prev = d.lc;
                d.lc = lc;
                d.set_val(val);
                true
            } else {
                false
            }
        });
        if applied {
            self.leaf_apply(key, prev, lc);
            self.sink_apply(key, lc, val);
        }
        applied
    }

    /// Slow-path completion (§4.2 "Returning to fast path"): apply the
    /// freshest value (LLC-max rule) *and* advance the key's epoch to the
    /// machine-epoch snapshot taken when the slow-path access started. The
    /// epoch only moves forward; if the machine epoch was bumped while the
    /// slow-path access was in flight, the stale snapshot leaves the key
    /// out-of-epoch, exactly as the paper requires.
    #[inline]
    pub fn apply_max_restore(&self, key: Key, val: &Val, lc: Lc, snapshot: Epoch) -> bool {
        let mut prev = Lc::ZERO;
        let applied = self.record(key).update(|d| {
            let applied = if lc > d.lc {
                prev = d.lc;
                d.lc = lc;
                d.set_val(val);
                true
            } else {
                false
            };
            if snapshot.0 > d.epoch {
                d.epoch = snapshot.0;
            }
            applied
        });
        if applied {
            self.leaf_apply(key, prev, lc);
            self.sink_apply(key, lc, val);
        }
        applied
    }

    /// Atomically **mint and apply** a locally stamped protocol write:
    /// under the key's seqlock, stamp `max(floor, current_clock).succ(mid)`,
    /// apply the value (unconditional — the stamp dominates the stored
    /// clock by construction), optionally advance the key's epoch to
    /// `snapshot`, and return the stamp used.
    ///
    /// Minting under the *same* lock as the apply is what makes locally
    /// minted stamps unique per key: a gather-then-`succ` outside the lock
    /// can collide with a concurrent fast write's `succ` of the same
    /// observed clock — two different values under one `(version, mid)`
    /// stamp, which replicas then split on *permanently* (LLC-max treats
    /// equal stamps as converged, so no repair can ever heal it; found by
    /// the anti-entropy divergence-fuzzing harness). Under the lock, every
    /// local mint strictly raises the stored clock, so no two can be equal.
    #[inline]
    pub fn stamp_apply(
        &self,
        key: Key,
        val: &Val,
        floor: Lc,
        mid: NodeId,
        snapshot: Option<Epoch>,
    ) -> Lc {
        let mut prev = Lc::ZERO;
        let lc = self.record(key).update(|d| {
            prev = d.lc;
            let lc = d.lc.max(floor).succ(mid);
            d.lc = lc;
            d.set_val(val);
            if let Some(s) = snapshot {
                if s.0 > d.epoch {
                    d.epoch = s.0;
                }
            }
            lc
        });
        self.leaf_apply(key, prev, lc);
        self.sink_apply(key, lc, val);
        lc
    }

    /// Advance only the key's epoch to `snapshot` (slow-path read that found
    /// the local value already freshest).
    #[inline]
    pub fn restore_epoch(&self, key: Key, snapshot: Epoch) {
        self.record(key).update(|d| {
            if snapshot.0 > d.epoch {
                d.epoch = snapshot.0;
            }
        });
    }

    /// Unconditional ordered overwrite — for baselines that serialize writes
    /// externally (ZAB applies in zxid order; Derecho in delivery order).
    /// The provided clock is stored as-is.
    #[inline]
    pub fn apply_ordered(&self, key: Key, val: &Val, lc: Lc) {
        let mut prev = Lc::ZERO;
        self.record(key).update(|d| {
            prev = d.lc;
            d.lc = lc;
            d.set_val(val);
        });
        self.leaf_apply(key, prev, lc);
        self.sink_apply(key, lc, val);
    }

    /// Run `f` with exclusive access to the record's `(val, lc, epoch)`
    /// via a small closure API — escape hatch for engines with bespoke
    /// commit rules. `f` receives `(current value, current lc)` and may
    /// return a replacement.
    pub fn update_with(&self, key: Key, f: impl FnOnce(Val, Lc) -> Option<(Val, Lc)>) {
        let mut transition = None;
        self.record(key).update(|d| {
            if let Some((nv, nlc)) = f(d.val(), d.lc) {
                let old = d.lc;
                d.lc = nlc;
                d.set_val(&nv);
                transition = Some((old, nlc, nv));
            }
        });
        if let Some((old, new, val)) = transition {
            self.leaf_apply(key, old, new);
            self.sink_apply(key, new, &val);
        }
    }

    // ---- Paxos -----------------------------------------------------------

    /// The key's Paxos structure (lazily allocated on first RMW, §6.2).
    #[inline]
    pub fn paxos(&self, key: Key) -> &Mutex<PaxosMeta> {
        self.record(key).paxos()
    }

    /// The key's next undecided Paxos slot, without allocating the Paxos
    /// structure for keys that never carried an RMW (those report 0).
    #[inline]
    pub fn paxos_next_slot(&self, key: Key) -> u64 {
        self.record(key).paxos_if_allocated().map(|m| m.lock().slot).unwrap_or(0)
    }

    /// The key's `(next undecided slot, committed ring)` read under one
    /// lock — the evidence pair an anti-entropy repair ships so a receiver
    /// never advances its slot without the matching dedup entries. Keys
    /// that never carried an RMW report `(0, [])` without allocating.
    pub fn paxos_evidence(&self, key: Key) -> (u64, Vec<crate::paxos_meta::RmwCommit>) {
        match self.record(key).paxos_if_allocated() {
            None => (0, Vec::new()),
            Some(m) => {
                let m = m.lock();
                (m.slot, m.committed.iter().cloned().collect())
            }
        }
    }

    // ---- anti-entropy digests -------------------------------------------

    /// Append `(key, lc)` for every live slot in `[start, start + slots)`
    /// (clamped to capacity) to `out` — the per-slot-range digest the
    /// anti-entropy sweep exchanges. O(slots), lock-free: one atomic key
    /// load plus one seqlock snapshot per live slot, so writers are never
    /// blocked and a torn read is impossible. Returns the next start index,
    /// wrapping to 0 past the end (callers keep a cursor).
    ///
    /// `Lc::ZERO` entries are **included deliberately**: "I hold nothing
    /// for this key" is what lets a woken §8.4 sleeper advertise the keys
    /// it slept through so a fresh peer pushes them back — a replica
    /// cannot tell locally whether ZERO means "never written anywhere"
    /// or "I missed every write".
    ///
    /// Slot indices are **local**: two replicas holding the same keys may
    /// place them in different slots (insertion-order-dependent probing),
    /// so digests diff by *key*, never by slot position.
    // ordering: Acquire pairs with the slot-claim CAS — a non-empty key
    // read here guarantees the record it names is initialized. The per-key
    // clock itself is read under the record's seqlock, not this atomic.
    pub fn digest_range(&self, start: usize, slots: usize, out: &mut Vec<(Key, Lc)>) -> usize {
        let cap = self.slots.len();
        let start = start.min(cap);
        let end = (start + slots).min(cap);
        for slot in &self.slots[start..end] {
            let key = slot.key.load(Ordering::Acquire);
            if key != EMPTY_KEY {
                out.push((Key(key), slot.record.snapshot().lc));
            }
        }
        if end >= cap {
            0
        } else {
            end
        }
    }

    /// Visit every written entry as a consistent `(key, lc, val)` triple —
    /// the snapshot-dump iteration the WAL's log-truncating checkpoint
    /// uses. Same lock-free read discipline as [`Store::digest_range`]
    /// (one atomic key load + one seqlock snapshot per live slot), so a
    /// dump never blocks writers; entries written *during* the walk may or
    /// may not appear, which is safe because the WAL segments covering the
    /// walk are only deleted once the dump is durable and replay is
    /// idempotent under LLC-max. `Lc::ZERO` entries (claimed, never
    /// written) are skipped: they hold no durable state.
    // ordering: same Acquire-pairs-with-claim-CAS contract as
    // `digest_range`; the dump is explicitly not a point-in-time cut.
    pub fn for_each_entry(&self, mut f: impl FnMut(Key, Lc, &Val)) {
        for slot in self.slots.iter() {
            let k = slot.key.load(Ordering::Acquire);
            if k == EMPTY_KEY {
                continue;
            }
            let d = slot.record.snapshot();
            if d.lc == Lc::ZERO {
                continue;
            }
            let val = d.val();
            f(Key(k), d.lc, &val);
        }
    }

    // ---- Merkle leaf lattice ---------------------------------------------

    /// Number of Merkle leaves (`capacity / leaf_span`; ≥ 1).
    #[inline]
    pub fn merkle_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Home slots covered per leaf.
    #[inline]
    pub fn merkle_leaf_span(&self) -> usize {
        1 << self.leaf_shift
    }

    /// The current hash of one leaf (diagnostics/tests; range comparisons
    /// go through [`Store::fold_leaves`]).
    // ordering: diagnostics read of the XOR lattice; skew-tolerant like
    // every sweep read (see `leaf_apply`).
    #[inline]
    pub fn leaf_hash(&self, leaf: usize) -> u64 {
        self.leaves[leaf].load(Ordering::Relaxed)
    }

    /// Fold the leaf hashes in `[lo, hi)` (clamped) into one range hash —
    /// the interior levels of the Merkle lattice, computed on demand. An
    /// FNV-style sequential mix rather than a plain XOR so two differing
    /// leaves cannot cancel each other out of an interior hash. Both sides
    /// of a comparison fold the same range with the same function, so
    /// equality is exactly "same leaf hash sequence".
    // ordering: sweep-side fold over the skew-tolerant lattice (see
    // `leaf_apply`) — a transiently stale leaf costs one drill-down, never
    // correctness.
    pub fn fold_leaves(&self, lo: usize, hi: usize) -> u64 {
        let hi = hi.min(self.leaves.len());
        let lo = lo.min(hi);
        let mut acc = 0xCBF2_9CE4_8422_2325u64;
        for leaf in &self.leaves[lo..hi] {
            acc = (acc ^ leaf.load(Ordering::Relaxed)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        acc
    }

    /// Append `(key, lc)` for every live slot whose **home** position lies
    /// in leaf `leaf` — the flat digest a Merkle drill-down bottoms out in.
    /// Linear probing can displace a key forward of its home (never
    /// backward), but only through a contiguous run of occupied slots, so
    /// the scan covers the leaf's slot range and then keeps going (with
    /// wraparound) until the occupied run past the range ends, filtering by
    /// home leaf. Lock-free, same read discipline as
    /// [`Store::digest_range`]; `Lc::ZERO` entries are included for
    /// consistency with it (receivers treat them as "holds nothing").
    // ordering: Acquire pairs with the slot-claim CAS, as in
    // `digest_range`.
    pub fn digest_leaf(&self, leaf: usize, out: &mut Vec<(Key, Lc)>) {
        let cap = self.slots.len();
        let span = 1usize << self.leaf_shift;
        let start = leaf * span;
        if start >= cap {
            return;
        }
        let mut pos = 0usize;
        while pos < cap {
            let idx = (start + pos) & self.mask as usize;
            let k = self.slots[idx].key.load(Ordering::Acquire);
            if k == EMPTY_KEY {
                if pos >= span {
                    // Past the leaf's own range and the occupied run ended:
                    // no further key with a home in this leaf can exist.
                    break;
                }
            } else {
                let key = Key(k);
                if self.leaf_of(key) == leaf {
                    out.push((key, self.slots[idx].record.snapshot().lc));
                }
            }
            pos += 1;
        }
    }

    /// The key's clock iff the key is already present — a **non-claiming**
    /// probe, unlike every other accessor (which allocate the slot on first
    /// touch). Anti-entropy digest diffs use this so a digest mentioning a
    /// key this replica has never touched does not claim a slot here; the
    /// slot is claimed only if a repair actually adopts the key.
    // ordering: Acquire pairs with the slot-claim CAS, as in `record`; a
    // miss is answered from the probe chain without claiming anything.
    pub fn probe_lc(&self, key: Key) -> Option<Lc> {
        debug_assert_ne!(key.0, EMPTY_KEY, "key u64::MAX is reserved");
        let mut idx = key.hash() & self.mask;
        for _ in 0..self.slots.len() {
            let slot = &self.slots[idx as usize];
            match slot.key.load(Ordering::Acquire) {
                cur if cur == key.0 => return Some(slot.record.snapshot().lc),
                // A concurrent claim of this very slot may race us to
                // `None` — fine: "absent" is always a safe answer (the
                // caller pulls, and the repair path claims properly).
                EMPTY_KEY => return None,
                _ => idx = (idx + 1) & self.mask,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Store {
        Store::new(1024)
    }

    #[test]
    fn view_of_fresh_key_is_empty_at_lc_zero() {
        let s = store();
        let v = s.view(Key(5));
        assert_eq!(v.val, Val::EMPTY);
        assert_eq!(v.lc, Lc::ZERO);
        assert_eq!(v.epoch, Epoch::ZERO);
    }

    #[test]
    fn fast_write_stamps_increasing_clocks() {
        let s = store();
        let lc1 = s.fast_write(Key(1), &Val::from_u64(10), NodeId(2), Epoch::ZERO).unwrap();
        let lc2 = s.fast_write(Key(1), &Val::from_u64(20), NodeId(2), Epoch::ZERO).unwrap();
        assert!(lc2 > lc1);
        assert_eq!(lc1.owner(), NodeId(2));
        assert_eq!(s.view(Key(1)).val.as_u64(), 20);
    }

    #[test]
    fn fast_write_refuses_out_of_epoch_key() {
        let s = store();
        // machine epoch moved to 1, key still at 0
        assert!(s.fast_write(Key(1), &Val::from_u64(1), NodeId(0), Epoch(1)).is_none());
        // restoring the epoch re-enables the fast path
        s.restore_epoch(Key(1), Epoch(1));
        assert!(s.fast_write(Key(1), &Val::from_u64(1), NodeId(0), Epoch(1)).is_some());
    }

    #[test]
    fn apply_max_is_llc_ordered() {
        let s = store();
        let hi = Lc::new(5, NodeId(1));
        let lo = Lc::new(3, NodeId(4));
        assert!(s.apply_max(Key(9), &Val::from_u64(50), hi));
        assert!(!s.apply_max(Key(9), &Val::from_u64(30), lo), "stale write rejected");
        assert_eq!(s.view(Key(9)).val.as_u64(), 50);
        // equal clock is also rejected (idempotent redelivery)
        assert!(!s.apply_max(Key(9), &Val::from_u64(99), hi));
        assert_eq!(s.view(Key(9)).val.as_u64(), 50);
    }

    #[test]
    fn apply_max_ties_break_on_machine_id() {
        let s = store();
        assert!(s.apply_max(Key(2), &Val::from_u64(1), Lc::new(7, NodeId(1))));
        assert!(s.apply_max(Key(2), &Val::from_u64(2), Lc::new(7, NodeId(3))));
        assert_eq!(s.view(Key(2)).val.as_u64(), 2, "higher mid wins the tie");
    }

    #[test]
    fn restore_epoch_never_regresses() {
        let s = store();
        s.restore_epoch(Key(3), Epoch(5));
        s.restore_epoch(Key(3), Epoch(2));
        assert_eq!(s.view(Key(3)).epoch, Epoch(5));
    }

    #[test]
    fn apply_max_restore_combines_value_and_epoch() {
        let s = store();
        let lc = Lc::new(4, NodeId(0));
        assert!(s.apply_max_restore(Key(7), &Val::from_u64(44), lc, Epoch(2)));
        let v = s.view(Key(7));
        assert_eq!(v.val.as_u64(), 44);
        assert_eq!(v.epoch, Epoch(2));
        // stale value still advances epoch (the read found local freshest)
        assert!(!s.apply_max_restore(Key(7), &Val::from_u64(1), Lc::new(1, NodeId(1)), Epoch(3)));
        assert_eq!(s.view(Key(7)).epoch, Epoch(3));
        assert_eq!(s.view(Key(7)).val.as_u64(), 44);
    }

    #[test]
    fn apply_ordered_overwrites_unconditionally() {
        let s = store();
        s.apply_ordered(Key(1), &Val::from_u64(9), Lc::new(100, NodeId(0)));
        s.apply_ordered(Key(1), &Val::from_u64(3), Lc::new(2, NodeId(0)));
        assert_eq!(s.view(Key(1)).val.as_u64(), 3, "external order wins, not LLC");
    }

    #[test]
    fn paxos_meta_is_per_key() {
        let s = store();
        s.paxos(Key(1)).lock().slot = 7;
        assert_eq!(s.paxos(Key(1)).lock().slot, 7);
        assert_eq!(s.paxos(Key(2)).lock().slot, 0);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let s = Store::new(4096);
        for k in 0..4096u64 {
            s.fast_write(Key(k), &Val::from_u64(k), NodeId(0), Epoch::ZERO);
        }
        for k in 0..4096u64 {
            assert_eq!(s.view(Key(k)).val.as_u64(), k);
        }
        assert_eq!(s.len(), 4096);
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn table_overflow_panics() {
        let s = Store::new(16); // capacity 64
        for k in 0..65u64 {
            s.view(Key(k));
        }
    }

    #[test]
    fn digest_range_covers_live_slots_and_wraps() {
        let s = Store::new(16); // capacity 64
        for k in 0..10u64 {
            s.fast_write(Key(k), &Val::from_u64(k), NodeId(1), Epoch::ZERO);
        }
        // Walk the whole store in chunks; every live key appears exactly
        // once per cycle, empty slots contribute nothing.
        let mut seen = Vec::new();
        let mut cursor = 0;
        loop {
            cursor = s.digest_range(cursor, 7, &mut seen);
            if cursor == 0 {
                break;
            }
        }
        assert_eq!(seen.len(), 10);
        let mut keys: Vec<u64> = seen.iter().map(|(k, _)| k.0).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
        for (k, lc) in &seen {
            assert_eq!(*lc, s.view(*k).lc, "digest clock must match the store");
            assert_eq!(lc.owner(), NodeId(1));
        }
        // Clamped: a cursor at/past capacity yields nothing and wraps.
        let mut none = Vec::new();
        assert_eq!(s.digest_range(s.capacity(), 8, &mut none), 0);
        assert!(none.is_empty());
        // A claimed-but-unwritten key rides the digest at Lc::ZERO — the
        // "I hold nothing" advertisement a fresh peer answers with a push.
        s.view(Key(99));
        let mut again = Vec::new();
        let mut cursor = 0;
        loop {
            cursor = s.digest_range(cursor, 7, &mut again);
            if cursor == 0 {
                break;
            }
        }
        assert_eq!(again.len(), 11);
        assert!(again.contains(&(Key(99), Lc::ZERO)));
    }

    #[test]
    fn probe_lc_never_claims() {
        let s = store();
        let before = s.len();
        assert_eq!(s.probe_lc(Key(123)), None, "absent key stays absent");
        assert_eq!(s.len(), before, "probe must not claim a slot");
        s.apply_max(Key(123), &Val::from_u64(9), Lc::new(4, NodeId(1)));
        assert_eq!(s.probe_lc(Key(123)), Some(Lc::new(4, NodeId(1))));
    }

    #[test]
    fn digest_range_is_lock_free_against_writers() {
        use std::sync::Arc;
        let s = Arc::new(Store::new(256));
        for k in 0..100u64 {
            s.fast_write(Key(k), &Val::from_u64(k), NodeId(0), Epoch::ZERO);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let (s, stop) = (Arc::clone(&s), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut i = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    s.apply_max(Key(i % 100), &Val::from_u64(i), Lc::new(i, NodeId(2)));
                }
            })
        };
        for _ in 0..200 {
            let mut out = Vec::new();
            let mut cursor = 0;
            loop {
                cursor = s.digest_range(cursor, 64, &mut out);
                if cursor == 0 {
                    break;
                }
            }
            assert_eq!(out.len(), 100, "live population is stable while values churn");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn paxos_next_slot_reads_without_allocating() {
        let s = store();
        s.view(Key(5)); // claim the slot, no Paxos yet
        assert_eq!(s.paxos_next_slot(Key(5)), 0);
        s.paxos(Key(5)).lock().advance_past(3);
        assert_eq!(s.paxos_next_slot(Key(5)), 4);
        // A never-RMWed key still reports 0 (and still has no Paxos box).
        assert_eq!(s.paxos_next_slot(Key(6)), 0);
    }

    #[test]
    fn concurrent_writers_to_disjoint_keys() {
        use std::sync::Arc;
        let s = Arc::new(Store::new(1 << 14));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    let k = Key(t * 10_000 + i);
                    s.fast_write(k, &Val::from_u64(i), NodeId(t as u8), Epoch::ZERO);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u64 {
            for i in (0..2000u64).step_by(97) {
                assert_eq!(s.view(Key(t * 10_000 + i)).val.as_u64(), i);
            }
        }
    }

    #[test]
    fn len_counts_each_key_once_under_concurrent_claims() {
        use std::sync::Arc;
        let s = Arc::new(Store::new(1 << 10));
        let mut handles = Vec::new();
        // Four threads race to claim the same 256 keys: the population
        // counter must count each slot exactly once (only the winning CAS
        // increments).
        for t in 0..4u8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for k in 0..256u64 {
                    s.fast_write(Key(k), &Val::from_u64(k), NodeId(t), Epoch::ZERO);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 256);
        assert!(!s.is_empty());
    }

    /// Recompute a leaf hash from scratch (XOR of `merkle_mix` over the
    /// leaf's members) — the quiescent-state ground truth the incremental
    /// lattice must match.
    fn recompute_leaf(s: &Store, leaf: usize) -> u64 {
        let mut entries = Vec::new();
        s.digest_leaf(leaf, &mut entries);
        entries.iter().fold(0u64, |acc, &(k, lc)| acc ^ merkle_mix(k, lc))
    }

    #[test]
    fn stamp_apply_mints_unique_stamps_under_races() {
        use std::sync::Arc;
        use std::sync::Mutex as StdMutex;
        // A gather-then-succ outside the lock can reuse a stamp a racing
        // fast write just minted; stamp_apply must never. Hammer one key
        // from fast-writers and stamp-appliers and assert every locally
        // minted stamp is distinct.
        let s = Arc::new(Store::new(64));
        let stamps = Arc::new(StdMutex::new(Vec::<Lc>::new()));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let (s, stamps) = (Arc::clone(&s), Arc::clone(&stamps));
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                for i in 0..2000u64 {
                    let lc = if t % 2 == 0 {
                        s.fast_write(Key(1), &Val::from_u64(i), NodeId(0), Epoch::ZERO).unwrap()
                    } else {
                        // A deliberately stale floor: the lock, not the
                        // floor, must guarantee uniqueness.
                        s.stamp_apply(Key(1), &Val::from_u64(i), Lc::ZERO, NodeId(0), None)
                    };
                    mine.push(lc);
                }
                stamps.lock().unwrap().append(&mut mine);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all = stamps.lock().unwrap().clone();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "two local mints produced the same stamp");
        // And the floor is still honored when it dominates.
        let lc = s.stamp_apply(Key(2), &Val::from_u64(1), Lc::new(50, NodeId(3)), NodeId(1), None);
        assert_eq!(lc, Lc::new(51, NodeId(1)));
        // The epoch restore rides the same lock.
        s.stamp_apply(Key(2), &Val::from_u64(2), Lc::ZERO, NodeId(1), Some(Epoch(4)));
        assert_eq!(s.view(Key(2)).epoch, Epoch(4));
    }

    #[test]
    fn rmw_mints_never_collide_with_relaxed_mints() {
        use std::sync::Arc;
        use std::sync::Mutex as StdMutex;
        // RMW commit stamps are minted at Paxos decide time *outside* the
        // key's seqlock (gather here, apply at commit), so unlike
        // stamp_apply the lock cannot save them from reusing a (version,
        // owner) pair a racing fast write just minted. The mid-bit
        // partition (`Lc::succ_rmw`) must: the two classes live in
        // disjoint halves of the stamp space.
        //
        // Deterministic pin first — force the exact race outcome: a decide
        // mint from a clock observed *before* a fast write lands on the
        // same (version, owner) pair and must still differ.
        let s = store();
        let seen = s.read_lc(Key(2));
        let relaxed = s.fast_write(Key(2), &Val::from_u64(1), NodeId(0), Epoch::ZERO).unwrap();
        let decide = seen.succ_rmw(NodeId(0));
        assert_eq!(relaxed.version(), decide.version(), "the race really collides versions");
        assert_eq!(relaxed.owner(), decide.owner());
        assert_ne!(relaxed, decide, "the partition keeps the stamps distinct");
        // Now hammer one key: relaxed writers against decide-time minters.
        let s = Arc::new(store());
        let relaxed = Arc::new(StdMutex::new(Vec::<Lc>::new()));
        let rmw = Arc::new(StdMutex::new(Vec::<Lc>::new()));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let (s, relaxed, rmw) = (Arc::clone(&s), Arc::clone(&relaxed), Arc::clone(&rmw));
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                for i in 0..2000u64 {
                    if t % 2 == 0 {
                        mine.push(
                            s.fast_write(Key(1), &Val::from_u64(i), NodeId(0), Epoch::ZERO)
                                .unwrap(),
                        );
                    } else {
                        // The decide-time sequence: gather outside the
                        // lock, mint, apply by LLC-max.
                        let lc = s.read_lc(Key(1)).succ_rmw(NodeId(0));
                        s.apply_max(Key(1), &Val::from_u64(i), lc);
                        mine.push(lc);
                    }
                }
                if t % 2 == 0 { relaxed.lock().unwrap() } else { rmw.lock().unwrap() }
                    .append(&mut mine);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let relaxed = relaxed.lock().unwrap().clone();
        let rmw = rmw.lock().unwrap().clone();
        assert!(relaxed.iter().all(|lc| !lc.is_rmw()));
        assert!(rmw.iter().all(|lc| lc.is_rmw()));
        let relaxed_set: std::collections::BTreeSet<Lc> = relaxed.iter().copied().collect();
        assert!(
            rmw.iter().all(|lc| !relaxed_set.contains(lc)),
            "an RMW commit stamp equalled a relaxed stamp"
        );
    }

    #[test]
    fn sink_sees_every_mutation_path_and_for_each_entry_matches() {
        use std::sync::Arc;
        use std::sync::Mutex as StdMutex;
        struct Tape(StdMutex<Vec<(Key, Lc, u64)>>);
        impl DurabilitySink for Tape {
            fn record(&self, key: Key, lc: Lc, val: &Val) -> Result<(), SinkError> {
                self.0.lock().unwrap().push((key, lc, val.as_u64()));
                Ok(())
            }
        }
        let s = store();
        let tape = Arc::new(Tape(StdMutex::new(Vec::new())));
        // Pre-sink writes are invisible (recovery replays before attach).
        s.apply_max(Key(9), &Val::from_u64(1), Lc::new(1, NodeId(1)));
        s.attach_sink(Arc::clone(&tape) as Arc<dyn DurabilitySink>);
        // Every mutator feeds the sink exactly when it feeds the lattice;
        // rejected applies and pure claims stay silent.
        s.fast_write(Key(1), &Val::from_u64(11), NodeId(0), Epoch::ZERO);
        s.apply_max(Key(2), &Val::from_u64(22), Lc::new(9, NodeId(1)));
        s.apply_max(Key(2), &Val::from_u64(99), Lc::new(1, NodeId(0))); // stale: no record
        s.apply_max_restore(Key(3), &Val::from_u64(33), Lc::new(4, NodeId(2)), Epoch(1));
        s.stamp_apply(Key(4), &Val::from_u64(44), Lc::ZERO, NodeId(2), None);
        s.apply_ordered(Key(5), &Val::from_u64(55), Lc::new(7, NodeId(0)));
        s.update_with(Key(6), |_, lc| Some((Val::from_u64(66), lc.succ(NodeId(3)))));
        s.update_with(Key(6), |_, _| None); // declined: no record
        s.view(Key(7)); // claim only: no record
        let recs = tape.0.lock().unwrap().clone();
        let keys: Vec<u64> = recs.iter().map(|(k, _, _)| k.0).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5, 6], "one record per applied mutation, in order");
        for (k, lc, v) in &recs {
            let view = s.view(*k);
            assert_eq!((view.lc, view.val.as_u64()), (*lc, *v), "sink record matches store");
        }
        // for_each_entry dumps exactly the written entries (the claimed
        // Key(7) at Lc::ZERO is skipped) and agrees with view().
        let mut dump = Vec::new();
        s.for_each_entry(|k, lc, v| dump.push((k.0, lc, v.as_u64())));
        dump.sort_unstable();
        let mut expect: Vec<(u64, Lc, u64)> = recs
            .iter()
            .map(|(k, lc, v)| (k.0, *lc, *v))
            .chain(std::iter::once((9u64, Lc::new(1, NodeId(1)), 1u64)))
            .collect();
        expect.sort_unstable();
        assert_eq!(dump, expect);
    }

    #[test]
    fn leaf_hashes_track_every_mutation_path() {
        let s = Store::new(256);
        // Claims alone leave the lattice untouched (mix(_, ZERO) = 0).
        s.view(Key(1));
        assert!((0..s.merkle_leaves()).all(|l| s.leaf_hash(l) == 0));
        // Every mutator feeds the lattice: fast_write, apply_max,
        // apply_max_restore, apply_ordered (including clock *decreases*),
        // update_with.
        s.fast_write(Key(1), &Val::from_u64(1), NodeId(0), Epoch::ZERO);
        s.apply_max(Key(2), &Val::from_u64(2), Lc::new(9, NodeId(1)));
        s.apply_max_restore(Key(3), &Val::from_u64(3), Lc::new(4, NodeId(2)), Epoch(1));
        s.apply_ordered(Key(4), &Val::from_u64(4), Lc::new(100, NodeId(0)));
        s.apply_ordered(Key(4), &Val::from_u64(5), Lc::new(2, NodeId(0)));
        s.update_with(Key(5), |_, lc| Some((Val::from_u64(6), lc.succ(NodeId(3)))));
        // A rejected stale apply must not perturb the lattice.
        s.apply_max(Key(2), &Val::from_u64(7), Lc::new(1, NodeId(0)));
        for leaf in 0..s.merkle_leaves() {
            assert_eq!(
                s.leaf_hash(leaf),
                recompute_leaf(&s, leaf),
                "leaf {leaf} diverged from ground truth"
            );
        }
    }

    #[test]
    fn leaf_span_zero_disables_the_lattice() {
        // Deployments that never speak Merkle digests allocate no leaves
        // and pay nothing per write; the fold of the (empty) lattice is
        // still total.
        let s = Store::with_leaf_span(256, 0);
        assert_eq!(s.merkle_leaves(), 0);
        s.fast_write(Key(1), &Val::from_u64(1), NodeId(0), Epoch::ZERO);
        s.apply_max(Key(2), &Val::from_u64(2), Lc::new(9, NodeId(1)));
        assert_eq!(s.fold_leaves(0, 1), s.fold_leaves(0, 0), "empty lattice folds are constant");
        let mut out = Vec::new();
        s.digest_leaf(0, &mut out); // leaf 0 covers the whole table (shift 0)
        assert_eq!(s.view(Key(2)).val.as_u64(), 2, "the store itself is unaffected");
    }

    #[test]
    fn lattices_match_across_insertion_orders() {
        // Two replicas holding the same (key, lc) set must fold identically
        // even though probing placed the keys in different physical slots.
        let a = Store::new(64);
        let b = Store::new(64);
        let writes: Vec<(u64, u64)> = (0..100).map(|i| (i % 40, i + 1)).collect();
        for &(k, v) in &writes {
            a.apply_max(Key(k), &Val::from_u64(v), Lc::new(v, NodeId(0)));
        }
        for &(k, v) in writes.iter().rev() {
            a.apply_max(Key(k), &Val::from_u64(v), Lc::new(v, NodeId(0)));
            b.apply_max(Key(k), &Val::from_u64(v), Lc::new(v, NodeId(0)));
        }
        // b additionally claimed (but never wrote) extra keys: invisible.
        b.view(Key(1000));
        assert_eq!(a.merkle_leaves(), b.merkle_leaves());
        for leaf in 0..a.merkle_leaves() {
            assert_eq!(a.leaf_hash(leaf), b.leaf_hash(leaf), "leaf {leaf}");
        }
        assert_eq!(a.fold_leaves(0, a.merkle_leaves()), b.fold_leaves(0, b.merkle_leaves()));
        // ... and one divergent write is visible in exactly that key's leaf.
        b.apply_max(Key(7), &Val::from_u64(999), Lc::new(999, NodeId(2)));
        let diff: Vec<usize> = (0..a.merkle_leaves())
            .filter(|&l| a.leaf_hash(l) != b.leaf_hash(l))
            .collect();
        assert_eq!(diff, vec![a.leaf_of(Key(7))]);
    }

    #[test]
    fn digest_leaf_finds_displaced_keys() {
        // Small span so probe chains cross leaf boundaries: every live key
        // must appear in exactly the digest of its *home* leaf.
        let s = Store::with_leaf_span(16, 2); // capacity 64, 32 leaves
        for k in 0..30u64 {
            s.apply_max(Key(k), &Val::from_u64(k), Lc::new(k + 1, NodeId(0)));
        }
        let mut all = Vec::new();
        for leaf in 0..s.merkle_leaves() {
            let before = all.len();
            s.digest_leaf(leaf, &mut all);
            for &(k, _) in &all[before..] {
                assert_eq!(s.leaf_of(k), leaf, "{k} digested under the wrong leaf");
            }
        }
        let mut keys: Vec<u64> = all.iter().map(|(k, _)| k.0).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..30).collect::<Vec<_>>(), "every key in exactly one leaf digest");
    }

    #[test]
    fn concurrent_writers_keep_the_lattice_exact() {
        use std::sync::Arc;
        let s = Arc::new(Store::new(1 << 10));
        let mut handles = Vec::new();
        // Contended apply_max on a shared key set from four threads: after
        // the dust settles, every leaf must equal its recomputed ground
        // truth (the XOR deltas telescope regardless of interleaving).
        for t in 0..4u8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..4000u64 {
                    let k = Key(i % 128);
                    s.apply_max(Key(k.0), &Val::from_u64(i), Lc::new(i / 7 + 1, NodeId(t)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for leaf in 0..s.merkle_leaves() {
            assert_eq!(s.leaf_hash(leaf), recompute_leaf(&s, leaf), "leaf {leaf} torn");
        }
    }

    #[test]
    fn fold_leaves_clamps_and_distinguishes_ranges() {
        let s = Store::new(256);
        let n = s.merkle_leaves();
        // Folding an empty/out-of-range span is total, never panics.
        assert_eq!(s.fold_leaves(n, n + 10), s.fold_leaves(5, 5));
        let before = s.fold_leaves(0, n);
        s.apply_max(Key(42), &Val::from_u64(1), Lc::new(1, NodeId(0)));
        assert_ne!(s.fold_leaves(0, n), before, "a write must change the root fold");
        let leaf = s.leaf_of(Key(42));
        assert_ne!(s.fold_leaves(leaf, leaf + 1), 0);
    }

    #[test]
    fn concurrent_apply_max_converges_to_highest_clock() {
        use std::sync::Arc;
        let s = Arc::new(Store::new(64));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for v in 0..1000u64 {
                    s.apply_max(Key(1), &Val::from_u64(v * 10 + t as u64), Lc::new(v, NodeId(t)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Highest clock overall is version 999, mid 3 → value 9993.
        assert_eq!(s.view(Key(1)).lc, Lc::new(999, NodeId(3)));
        assert_eq!(s.view(Key(1)).val.as_u64(), 9993);
    }
}
