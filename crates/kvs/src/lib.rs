//! # kite-kvs
//!
//! The per-replica in-memory key-value store, modeled on MICA ([Lim et al.,
//! NSDI'14]) as adapted by Kite (§6.2):
//!
//! * a bucketed hash index over preallocated records;
//! * **per-key sequence locks** (seqlocks, [Lameter '05]) for
//!   multi-threaded access: reads are optimistic and lock-free, writes take
//!   the key's lock;
//! * Kite-specific per-key metadata: the key's Lamport clock (shared by ES
//!   and ABD — one of the reasons the paper picked these protocols, §3.3)
//!   and the per-key **epoch-id** driving fast/slow-path decisions (§4.2);
//! * a lazily-allocated **Paxos structure** behind each key (§6.2 "Adapting
//!   MICA for Paxos"): locking the key through its seqlock also locks the
//!   Paxos state.
//!
//! The store is deliberately *not* aware of the network or of sessions: it
//! is the passive substrate all protocol engines (Kite, ZAB, Derecho) share.

#![warn(missing_docs)]

pub mod paxos_meta;
pub mod record;
pub mod seqlock;
pub mod store;

pub use paxos_meta::{CommittedRing, PaxosMeta, RmwCommit};
pub use record::ReadView;
pub use seqlock::SeqLock;
pub use store::{merkle_mix, DurabilitySink, SinkError, Store, StoreProbe, DEFAULT_LEAF_SPAN};
