//! A single key's record: seqlock-protected inline data plus lazily
//! allocated Paxos metadata (§6.2).

use std::cell::UnsafeCell;
use std::sync::OnceLock;

use kite_common::{Epoch, Lc, Val};
use parking_lot::Mutex;

use crate::paxos_meta::PaxosMeta;
use crate::seqlock::SeqLock;

/// Maximum value size storable in a record. MICA-style inline storage keeps
/// the seqlock-protected payload `Copy` so optimistic readers can snapshot
/// it without locking. The paper's workloads use 32-byte values; 64 leaves
/// headroom for the lock-free data-structure nodes.
pub const MAX_VAL: usize = 64;

/// The seqlock-protected portion of a record. `Copy` on purpose: readers
/// copy the whole struct out and validate afterwards.
#[derive(Clone, Copy)]
pub(crate) struct RecordData {
    /// Per-key Lamport clock: the write-serialization point for ES and ABD.
    pub lc: Lc,
    /// Per-key epoch-id (§4.2): key is in-epoch iff this equals the machine
    /// epoch-id.
    pub epoch: u64,
    /// Value length.
    pub len: u8,
    /// Inline value bytes.
    pub buf: [u8; MAX_VAL],
}

impl RecordData {
    pub(crate) const fn empty() -> Self {
        RecordData { lc: Lc::ZERO, epoch: 0, len: 0, buf: [0; MAX_VAL] }
    }

    #[inline]
    pub(crate) fn set_val(&mut self, val: &Val) {
        let b = val.as_bytes();
        assert!(b.len() <= MAX_VAL, "value of {} bytes exceeds record capacity {}", b.len(), MAX_VAL);
        self.len = b.len() as u8;
        self.buf[..b.len()].copy_from_slice(b);
    }

    #[inline]
    pub(crate) fn val(&self) -> Val {
        Val::from_bytes(&self.buf[..self.len as usize])
    }
}

/// A consistent snapshot of a record, as returned by store reads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadView {
    /// Current value.
    pub val: Val,
    /// The value's Lamport stamp.
    pub lc: Lc,
    /// Epoch the key was last accessed in (fast/slow path, §4.2).
    pub epoch: Epoch,
}

/// One key's storage: seqlock + inline data + optional Paxos structure.
pub(crate) struct Record {
    pub lock: SeqLock,
    pub data: UnsafeCell<RecordData>,
    /// Allocated on the first RMW touching this key (§6.2: "each key
    /// contains a pointer to its own Paxos-structure"). We guard it with a
    /// `Mutex` rather than re-entering the seqlock because the Paxos state
    /// is not `Copy`; the paper's trick of sharing the seqlock is an
    /// optimization, not a correctness requirement (deviation noted in
    /// DESIGN.md §3.4).
    pub paxos: OnceLock<Box<Mutex<PaxosMeta>>>,
}

// SAFETY: all access to `data` goes through the record's seqlock protocol
// (see `Store`); `paxos` is internally synchronized.
unsafe impl Sync for Record {}
// SAFETY: same argument as Sync — no thread-affine state; ownership moves
// only the atomics, the UnsafeCell payload and the OnceLock box.
unsafe impl Send for Record {}

impl Record {
    pub(crate) fn new() -> Self {
        Record {
            lock: SeqLock::new(),
            data: UnsafeCell::new(RecordData::empty()),
            paxos: OnceLock::new(),
        }
    }

    /// Optimistically snapshot the record.
    #[inline]
    pub(crate) fn snapshot(&self) -> RecordData {
        let mut spins = 0u32;
        loop {
            let begin = self.lock.read_begin();
            // SAFETY: we copy the (Copy) payload out; if a writer raced, the
            // validation below fails and the copy is discarded without being
            // interpreted. Volatile forbids the compiler from caching fields
            // across the fence.
            let copy = unsafe { std::ptr::read_volatile(self.data.get()) };
            if self.lock.read_validate(begin) {
                return copy;
            }
            spins += 1;
            if spins < 16 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Run `f` on the record data under the write lock.
    #[inline]
    pub(crate) fn update<R>(&self, f: impl FnOnce(&mut RecordData) -> R) -> R {
        let _g = self.lock.write_lock();
        // SAFETY: the seqlock write side is exclusive: `_g` holds the odd
        // counter, so no other writer exists and readers will re-validate.
        f(unsafe { &mut *self.data.get() })
    }

    /// The key's Paxos structure, allocated on first use.
    #[inline]
    pub(crate) fn paxos(&self) -> &Mutex<PaxosMeta> {
        self.paxos.get_or_init(|| Box::new(Mutex::new(PaxosMeta::new())))
    }

    /// The key's Paxos structure iff one was ever allocated — lets read-only
    /// paths (anti-entropy repair) consult the slot counter without forcing
    /// an allocation on keys that never saw an RMW.
    #[inline]
    pub(crate) fn paxos_if_allocated(&self) -> Option<&Mutex<PaxosMeta>> {
        self.paxos.get().map(|b| &**b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_common::NodeId;

    #[test]
    fn snapshot_reflects_update() {
        let r = Record::new();
        r.update(|d| {
            d.lc = Lc::new(3, NodeId(1));
            d.epoch = 2;
            d.set_val(&Val::from_bytes(b"abc"));
        });
        let s = r.snapshot();
        assert_eq!(s.lc, Lc::new(3, NodeId(1)));
        assert_eq!(s.epoch, 2);
        assert_eq!(s.val().as_bytes(), b"abc");
    }

    #[test]
    fn paxos_struct_is_lazily_allocated_once() {
        let r = Record::new();
        assert!(r.paxos.get().is_none());
        let p1 = r.paxos() as *const _;
        let p2 = r.paxos() as *const _;
        assert_eq!(p1, p2);
    }

    #[test]
    #[should_panic(expected = "exceeds record capacity")]
    fn oversized_value_panics() {
        let r = Record::new();
        r.update(|d| d.set_val(&Val::from_bytes(&[0u8; MAX_VAL + 1])));
    }

    #[test]
    fn concurrent_snapshots_are_never_torn() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let r = Arc::new(Record::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let (r, stop) = (r.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut i: u64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    r.update(|d| {
                        d.lc = Lc::new(i, NodeId(0));
                        // value mirrors the clock — readers cross-check
                        d.set_val(&Val::from_u64(i));
                    });
                }
            })
        };
        for _ in 0..5_000 {
            let s = r.snapshot();
            assert_eq!(s.lc.version(), s.val().as_u64(), "clock and value must move together");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
