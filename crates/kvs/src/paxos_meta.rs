//! Per-key Paxos metadata (§6.2 "Adapting MICA for Paxos").
//!
//! Kite executes leaderless Basic Paxos *per key* (§3.4): RMWs to different
//! keys commute and need not be ordered, so each key carries its own tiny
//! consensus state. An RMW occupies a *slot* — the index of the RMW in the
//! key's commit sequence — and slots are decided one at a time (log-free:
//! only the latest slot's proposal state is retained; earlier slots are
//! summarized by the committed ring and the key's current value).

use kite_common::{Lc, OpId, Val};

/// A command accepted (phase-2) for the key's current slot.
#[derive(Clone, Debug)]
pub struct AcceptedCmd {
    /// The RMW operation this command belongs to; used to hand results back
    /// and to deduplicate helped commands.
    pub op: OpId,
    /// Ballot at which it was accepted.
    pub ballot: Lc,
    /// The value the RMW writes when it commits.
    pub new_val: Val,
    /// The RMW's return value (the base value it read) — carried along so a
    /// helper can complete the original caller's operation exactly once.
    pub result: Val,
    /// The clock the committed value is stamped with, fixed at command
    /// creation (see `kite::msg::Cmd::lc`): helpers adopting this command
    /// must commit it with this exact stamp, not one of their own.
    pub lc: Lc,
}

/// Record of a committed RMW, kept for deduplication and result recovery.
#[derive(Clone, Debug)]
pub struct RmwCommit {
    /// The committed operation.
    pub op: OpId,
    /// Slot the command was committed at.
    pub slot: u64,
    /// The RMW's recorded result (its observed base value).
    pub result: Val,
}

/// Ring of the most recent committed RMWs on a key.
///
/// A proposer whose command was *helped* to commit by another proposer
/// discovers this through the ring (replicas attach matching entries to
/// `AlreadyCommitted` replies) and must not re-execute the command. The
/// fixed depth bounds memory; a session retries its RMW promptly, and per
/// key at most one command per session is in flight, so
/// [`COMMITTED_RING_DEPTH`] covers bursts of helped commands across
/// sessions in practice. A miss is benign for CAS/FAA-style
/// commands only if the proposer retries — see `kite::proto::paxos` for how
/// misses are handled (the proposer re-proposes; exactly-once is preserved
/// because replicas also dedup at propose time via the ring).
#[derive(Clone, Debug, Default)]
pub struct CommittedRing {
    ring: Vec<RmwCommit>,
    next: usize,
}

/// Ring capacity. Sized so that a proposer retrying after a nack backoff
/// still finds its helped command: under heavy same-key contention up to
/// `sessions` commands can commit between a nack and the retry.
pub const COMMITTED_RING_DEPTH: usize = 32;

impl CommittedRing {
    /// An empty ring.
    pub fn new() -> Self {
        CommittedRing { ring: Vec::with_capacity(COMMITTED_RING_DEPTH), next: 0 }
    }

    /// Record a committed RMW (overwrites the oldest entry when full).
    pub fn push(&mut self, c: RmwCommit) {
        if self.ring.len() < COMMITTED_RING_DEPTH {
            self.ring.push(c);
        } else {
            self.ring[self.next] = c;
        }
        self.next = (self.next + 1) % COMMITTED_RING_DEPTH;
    }

    /// Look up a committed command by operation id.
    pub fn find(&self, op: OpId) -> Option<&RmwCommit> {
        self.ring.iter().find(|c| c.op == op)
    }

    /// Iterate the ring's entries (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &RmwCommit> + '_ {
        self.ring.iter()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

/// The key's Paxos structure (lazily allocated per §6.2): everything a
/// replica needs to act as acceptor for the key's current slot.
#[derive(Clone, Debug)]
pub struct PaxosMeta {
    /// The next undecided slot = number of RMWs committed on this key.
    pub slot: u64,
    /// Highest ballot promised for `slot`.
    pub promised: Lc,
    /// Command accepted for `slot`, if any.
    pub accepted: Option<AcceptedCmd>,
    /// Recently committed commands (dedup + result recovery).
    pub committed: CommittedRing,
}

impl Default for PaxosMeta {
    fn default() -> Self {
        Self::new()
    }
}

impl PaxosMeta {
    /// Fresh metadata: slot 0, nothing promised or accepted.
    pub fn new() -> Self {
        PaxosMeta {
            slot: 0,
            promised: Lc::ZERO,
            accepted: None,
            committed: CommittedRing::new(),
        }
    }

    /// Advance to `slot + 1` after a commit of `slot`: proposal state for
    /// the decided slot is discarded (log-free Paxos).
    pub fn advance_past(&mut self, slot: u64) {
        if slot >= self.slot {
            self.slot = slot + 1;
            self.promised = Lc::ZERO;
            self.accepted = None;
        }
    }

    /// Merge another replica's ring evidence, then advance past its decided
    /// prefix (`next_slot` is that replica's next undecided slot; 0 = no
    /// advancement). The two halves are one operation on purpose: **slot
    /// advancement must always travel with its dedup evidence** — an
    /// advance without the matching ring entries lets this replica answer
    /// a plain promise for an operation that in fact committed, breaking
    /// RMW exactly-once (see `kite::msg::Repair`). Used by every
    /// non-commit slot-advancing path (anti-entropy repairs, the
    /// `AlreadyCommitted` catch-up).
    pub fn merge_evidence(&mut self, ring: &[RmwCommit], next_slot: u64) {
        for c in ring {
            if self.committed.find(c.op).is_none() {
                self.committed.push(c.clone());
            }
        }
        if next_slot > 0 {
            self.advance_past(next_slot - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_common::{NodeId, SessionId};

    fn op(n: u8, seq: u64) -> OpId {
        OpId::new(SessionId::new(NodeId(n), 0), seq)
    }

    #[test]
    fn ring_push_and_find() {
        let mut r = CommittedRing::new();
        r.push(RmwCommit { op: op(0, 1), slot: 0, result: Val::from_u64(7) });
        assert_eq!(r.find(op(0, 1)).unwrap().result.as_u64(), 7);
        assert!(r.find(op(0, 2)).is_none());
    }

    #[test]
    fn ring_evicts_oldest_beyond_depth() {
        let mut r = CommittedRing::new();
        for i in 0..(COMMITTED_RING_DEPTH as u64 + 3) {
            r.push(RmwCommit { op: op(0, i), slot: i, result: Val::EMPTY });
        }
        assert_eq!(r.len(), COMMITTED_RING_DEPTH);
        assert!(r.find(op(0, 0)).is_none(), "oldest evicted");
        assert!(r.find(op(0, 10)).is_some(), "newest kept");
    }

    #[test]
    fn advance_past_clears_proposal_state() {
        let mut m = PaxosMeta::new();
        m.promised = Lc::new(5, NodeId(2));
        m.accepted = Some(AcceptedCmd {
            op: op(1, 1),
            ballot: Lc::new(5, NodeId(2)),
            new_val: Val::EMPTY,
            result: Val::EMPTY,
            lc: Lc::new(6, NodeId(2)),
        });
        m.advance_past(0);
        assert_eq!(m.slot, 1);
        assert_eq!(m.promised, Lc::ZERO);
        assert!(m.accepted.is_none());
    }

    #[test]
    fn advance_past_is_idempotent_for_old_slots() {
        let mut m = PaxosMeta::new();
        m.advance_past(4);
        assert_eq!(m.slot, 5);
        m.promised = Lc::new(9, NodeId(1));
        m.advance_past(2); // stale commit notification
        assert_eq!(m.slot, 5, "slot must not regress");
        assert_eq!(m.promised, Lc::new(9, NodeId(1)), "state for live slot untouched");
    }
}
