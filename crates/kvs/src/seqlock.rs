//! Sequence locks (seqlocks), as used by Kite's MICA adaptation (§6.2).
//!
//! A seqlock lets any number of readers snapshot a record without writing
//! shared state (reads are invisible — crucial when every relaxed read in
//! the ES fast path hits the local store), while writers serialize on a
//! per-record counter. Readers retry if a writer overlapped.
//!
//! The counter protocol is the classic one (cf. Linux, and Kite's own
//! `seqlock` from the ccKVS/Hermes codebase):
//!
//! * even counter — record stable; odd — a writer is inside;
//! * writer: CAS even→odd (Acquire), mutate, store even (Release);
//! * reader: load counter (Acquire), copy data, fence, re-load and compare.
//!
//! The record payload must be `Copy` (MICA-style inline values) so readers
//! can copy it out byte-wise; torn reads are detected by validation and the
//! copy is discarded, never interpreted.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// The per-record lock word.
#[derive(Debug, Default)]
pub struct SeqLock {
    seq: AtomicU64,
}

impl SeqLock {
    /// An unlocked seqlock at sequence 0.
    pub const fn new() -> Self {
        SeqLock { seq: AtomicU64::new(0) }
    }

    /// Begin an optimistic read: spins past in-flight writers and returns
    /// the (even) sequence observed. Spins yield to the OS after a bounded
    /// number of iterations so a preempted writer cannot livelock readers on
    /// oversubscribed machines.
    #[inline]
    pub fn read_begin(&self) -> u64 {
        let mut spins = 0u32;
        loop {
            // ordering: Acquire pairs with the WriteGuard's Release store —
            // an even value here means every payload write of the previous
            // writer is visible before the reader's copies start.
            let s = self.seq.load(Ordering::Acquire);
            if s & 1 == 0 {
                return s;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Validate an optimistic read begun at `begin`: `true` iff no writer
    /// overlapped the read section.
    ///
    /// ordering: the Acquire fence orders the payload reads *before* the
    /// re-load (classic seqlock validation, cf. Linux `read_seqretry`);
    /// with the fence in place the re-load itself can stay Relaxed — it
    /// only needs to observe a value, not publish anything.
    #[inline]
    pub fn read_validate(&self, begin: u64) -> bool {
        fence(Ordering::Acquire);
        self.seq.load(Ordering::Relaxed) == begin
    }

    /// Acquire the write side (spins on contention — writers hold the lock
    /// for a handful of stores only).
    #[inline]
    pub fn write_lock(&self) -> WriteGuard<'_> {
        let mut spins = 0u32;
        loop {
            // ordering: the probe load is Relaxed because the CAS below is
            // the real synchronization point; a stale probe just retries.
            let s = self.seq.load(Ordering::Relaxed);
            // ordering: Acquire on CAS success pairs with the previous
            // writer's Release so this writer sees its payload before
            // mutating; the failure ordering is Relaxed — a lost race
            // carries no data, we simply spin.
            if s & 1 == 0
                && self
                    .seq
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return WriteGuard { lock: self, start: s };
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Run `f` under the write lock.
    #[inline]
    pub fn with_write<R>(&self, f: impl FnOnce() -> R) -> R {
        let _g = self.write_lock();
        f()
    }

    /// Run `f` optimistically until it reads a consistent snapshot.
    /// `f` must be side-effect-free on retry.
    #[inline]
    pub fn with_read<R>(&self, mut f: impl FnMut() -> R) -> R {
        loop {
            let begin = self.read_begin();
            let r = f();
            if self.read_validate(begin) {
                return r;
            }
            std::hint::spin_loop();
        }
    }

    /// Current raw sequence (test/diagnostic use).
    // ordering: diagnostic peek; nothing is read on the strength of it.
    pub fn raw(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

/// RAII write guard: releases (bumps the counter to even) on drop.
pub struct WriteGuard<'a> {
    lock: &'a SeqLock,
    start: u64,
}

impl Drop for WriteGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        // ordering: Release publishes every payload store of the write
        // section before the counter returns to even — the other half of
        // the Acquire in read_begin/write_lock. (The odd→even transition
        // needs no Acquire: this thread did the odd CAS itself.)
        self.lock.seq.store(self.start + 2, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn sequence_advances_by_two_per_write() {
        let l = SeqLock::new();
        assert_eq!(l.raw(), 0);
        l.with_write(|| {});
        assert_eq!(l.raw(), 2);
        l.with_write(|| {});
        assert_eq!(l.raw(), 4);
    }

    #[test]
    fn reader_validates_when_no_writer() {
        let l = SeqLock::new();
        let b = l.read_begin();
        assert!(l.read_validate(b));
    }

    #[test]
    fn reader_detects_intervening_writer() {
        let l = SeqLock::new();
        let b = l.read_begin();
        l.with_write(|| {});
        assert!(!l.read_validate(b));
    }

    #[test]
    fn with_read_retries_to_consistency() {
        // Writer flips two correlated cells; with_read must never observe
        // them unequal.
        let l = Arc::new(SeqLock::new());
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        let writer = {
            let (l, a, b, stop) = (l.clone(), a.clone(), b.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    let _g = l.write_lock();
                    a.store(i, Ordering::Relaxed);
                    std::hint::spin_loop();
                    b.store(i, Ordering::Relaxed);
                }
            })
        };

        let mut checks = 0u64;
        while checks < 2_000 {
            let (x, y) = l.with_read(|| (a.load(Ordering::Relaxed), b.load(Ordering::Relaxed)));
            assert_eq!(x, y, "torn read observed");
            checks += 1;
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn writers_are_mutually_exclusive() {
        let l = Arc::new(SeqLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (l, c) = (l.clone(), counter.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_500 {
                    let _g = l.write_lock();
                    // non-atomic increment under the lock
                    let v = c.load(Ordering::Relaxed);
                    c.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 10_000);
    }
}
