//! Property-based tests for the store: the LLC write-serialization rule
//! must make replicas order-insensitive (the convergence property ES and
//! ABD rely on, §3.2/§3.3).

use kite_common::{Epoch, Key, Lc, NodeId, Val};
use kite_kvs::Store;
use proptest::prelude::*;

fn writes() -> impl Strategy<Value = Vec<(u64, u8, u64)>> {
    // (version, mid, value) triples — possibly with duplicate clocks
    proptest::collection::vec((1u64..50, 0u8..5, any::<u64>()), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Applying the same set of LLC-stamped writes in any two orders yields
    /// the same final value: the max-clock write wins everywhere.
    #[test]
    fn apply_max_is_order_insensitive(ws in writes(), seed in any::<u64>()) {
        // Clocks are unique per write in the real system (a machine never
        // stamps two writes of one key with the same clock): dedupe.
        let mut seen = std::collections::HashSet::new();
        let ws: Vec<_> = ws.into_iter().filter(|(v, m, _)| seen.insert((*v, *m))).collect();
        let a = Store::new(64);
        let b = Store::new(64);
        let key = Key(7);
        for (v, m, val) in &ws {
            a.apply_max(key, &Val::from_u64(*val), Lc::new(*v, NodeId(*m)));
        }
        // permute deterministically
        let mut perm = ws.clone();
        let mut rng = kite_common::rng::SplitMix64::new(seed);
        for i in (1..perm.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        for (v, m, val) in &perm {
            b.apply_max(key, &Val::from_u64(*val), Lc::new(*v, NodeId(*m)));
        }
        prop_assert_eq!(a.view(key).val, b.view(key).val);
        prop_assert_eq!(a.view(key).lc, b.view(key).lc);
        // and the final clock is the max of all applied clocks
        let max = ws.iter().map(|(v, m, _)| Lc::new(*v, NodeId(*m))).max().unwrap();
        prop_assert_eq!(a.view(key).lc, max);
    }

    /// Redelivery (applying a write twice) never changes the outcome.
    #[test]
    fn apply_max_idempotent(ws in writes()) {
        let a = Store::new(64);
        let key = Key(3);
        for (v, m, val) in &ws {
            a.apply_max(key, &Val::from_u64(*val), Lc::new(*v, NodeId(*m)));
        }
        let before = a.view(key);
        for (v, m, val) in &ws {
            a.apply_max(key, &Val::from_u64(*val), Lc::new(*v, NodeId(*m)));
        }
        prop_assert_eq!(a.view(key), before);
    }

    /// fast_write clocks are strictly monotone per key and the epoch gate
    /// is exact.
    #[test]
    fn fast_write_monotone_and_epoch_gated(n in 1usize..30, epoch in 0u64..4) {
        let s = Store::new(64);
        let key = Key(1);
        s.restore_epoch(key, Epoch(epoch));
        let mut last = Lc::ZERO;
        for i in 0..n {
            let lc = s
                .fast_write(key, &Val::from_u64(i as u64), NodeId(2), Epoch(epoch))
                .expect("in-epoch write");
            prop_assert!(lc > last);
            last = lc;
        }
        // wrong machine epoch is refused
        prop_assert!(s.fast_write(key, &Val::EMPTY, NodeId(2), Epoch(epoch + 1)).is_none());
    }

    /// Epochs never regress through any combination of restores.
    #[test]
    fn epochs_monotone(restores in proptest::collection::vec(0u64..16, 1..32)) {
        let s = Store::new(64);
        let key = Key(9);
        let mut max = 0;
        for e in restores {
            s.restore_epoch(key, Epoch(e));
            max = max.max(e);
            prop_assert_eq!(s.view(key).epoch, Epoch(max));
        }
    }
}
