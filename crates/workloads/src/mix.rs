//! KVS operation mixes (§7: 8-byte keys, 32-byte values, uniform access).

use kite::api::Op;
use kite_common::rng::SplitMix64;
use kite_common::{Key, Val};

use crate::skew::Zipf;

/// A workload mix. See the crate docs for the exact semantics (they follow
/// §8.1's worked example).
#[derive(Clone, Copy, Debug)]
pub struct MixCfg {
    /// Fraction of all operations that write (RMWs included), 0.0–1.0.
    pub write_ratio: f64,
    /// Fraction of plain writes that are releases / of reads that are
    /// acquires.
    pub sync_frac: f64,
    /// Fraction of all operations that are RMWs (must be ≤ `write_ratio`).
    pub rmw_frac: f64,
    /// Key-space size (uniform access).
    pub keys: u64,
    /// Value size in bytes (32 in the paper).
    pub val_len: usize,
    /// Zipfian skew over the key space; `0.0` (the paper's §7 setting) is
    /// uniform. Extension knob — see `crate::skew` and the `ext_skew`
    /// harness.
    pub skew_theta: f64,
}

impl MixCfg {
    /// A read/write mix with no synchronization (ES-style workloads).
    pub fn plain(write_ratio: f64, keys: u64) -> MixCfg {
        MixCfg { write_ratio, sync_frac: 0.0, rmw_frac: 0.0, keys, val_len: 32, skew_theta: 0.0 }
    }

    /// The paper's "typical synchronization" workload: 5% of reads are
    /// acquires and 5% of writes are releases (§8.1, Figure 5's Kite line).
    pub fn typical(write_ratio: f64, keys: u64) -> MixCfg {
        MixCfg { write_ratio, sync_frac: 0.05, rmw_frac: 0.0, keys, val_len: 32, skew_theta: 0.0 }
    }

    /// Builder: Zipfian skew (0 = uniform, the paper's setting).
    pub fn skew(mut self, theta: f64) -> MixCfg {
        self.skew_theta = theta;
        self
    }

    /// Validate the fractions.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("write_ratio", self.write_ratio),
            ("sync_frac", self.sync_frac),
            ("rmw_frac", self.rmw_frac),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} = {v} outside [0,1]"));
            }
        }
        if self.rmw_frac > self.write_ratio + 1e-9 {
            return Err(format!(
                "rmw_frac {} exceeds write_ratio {} (RMWs are writes)",
                self.rmw_frac, self.write_ratio
            ));
        }
        if self.keys == 0 {
            return Err("empty key space".into());
        }
        if self.skew_theta < 0.0 || self.skew_theta == 1.0 {
            return Err(format!("skew_theta {} must be ≥ 0 and ≠ 1", self.skew_theta));
        }
        Ok(())
    }

    /// Expected fraction of each op class: `(rmw, release, write, acquire,
    /// read)` — sums to 1. Mirrors §8.1's example arithmetic.
    pub fn class_fractions(&self) -> (f64, f64, f64, f64, f64) {
        let rmw = self.rmw_frac;
        let plain_w = self.write_ratio - self.rmw_frac;
        let rel = plain_w * self.sync_frac;
        let w = plain_w - rel;
        let reads = 1.0 - self.write_ratio;
        let acq = reads * self.sync_frac;
        let r = reads - acq;
        (rmw, rel, w, acq, r)
    }

    /// An infinite op generator for one session. Each generator gets its own
    /// deterministic stream from `seed`.
    pub fn generator(&self, seed: u64) -> impl FnMut(u64) -> Option<Op> + Send + 'static {
        let cfg = *self;
        debug_assert!(cfg.validate().is_ok());
        let zipf = (cfg.skew_theta > 0.0).then(|| Zipf::new(cfg.keys, cfg.skew_theta));
        let mut rng = SplitMix64::new(seed);
        move |_seq| {
            let key = Key(match &zipf {
                Some(z) => z.sample(&mut rng),
                None => rng.next_below(cfg.keys),
            });
            let r = rng.next_f64();
            Some(if r < cfg.rmw_frac {
                Op::Faa { key, delta: 1 }
            } else if r < cfg.write_ratio {
                let val = random_val(&mut rng, cfg.val_len);
                if rng.chance(cfg.sync_frac) {
                    Op::Release { key, val }
                } else {
                    Op::Write { key, val }
                }
            } else if rng.chance(cfg.sync_frac) {
                Op::Acquire { key }
            } else {
                Op::Read { key }
            })
        }
    }

    /// A bounded generator producing exactly `n` ops (deterministic tests).
    pub fn generator_bounded(
        &self,
        seed: u64,
        n: u64,
    ) -> impl FnMut(u64) -> Option<Op> + Send + 'static {
        let mut inner = self.generator(seed);
        move |seq| if seq < n { inner(seq) } else { None }
    }
}

fn random_val(rng: &mut SplitMix64, len: usize) -> Val {
    let mut bytes = vec![0u8; len];
    for chunk in bytes.chunks_mut(8) {
        let v = rng.next_u64().to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&v[..n]);
    }
    Val::from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classify(op: &Op) -> &'static str {
        match op {
            Op::Read { .. } => "read",
            Op::Write { .. } => "write",
            Op::Release { .. } => "release",
            Op::Acquire { .. } => "acquire",
            Op::Faa { .. } => "rmw",
            _ => "other",
        }
    }

    #[test]
    fn validation() {
        assert!(MixCfg::plain(0.5, 100).validate().is_ok());
        assert!(MixCfg { rmw_frac: 0.6, ..MixCfg::plain(0.5, 100) }.validate().is_err());
        assert!(MixCfg { write_ratio: 1.5, ..MixCfg::plain(0.5, 100) }.validate().is_err());
        assert!(MixCfg::plain(0.5, 0).validate().is_err());
    }

    #[test]
    fn paper_example_fractions() {
        // §8.1: 60% write ratio, 50% sync, 50% RMW → 50/5/5/20/20.
        let m = MixCfg { write_ratio: 0.6, sync_frac: 0.5, rmw_frac: 0.5, keys: 10, val_len: 32, skew_theta: 0.0 };
        let (rmw, rel, w, acq, r) = m.class_fractions();
        assert!((rmw - 0.50).abs() < 1e-9);
        assert!((rel - 0.05).abs() < 1e-9);
        assert!((w - 0.05).abs() < 1e-9);
        assert!((acq - 0.20).abs() < 1e-9);
        assert!((r - 0.20).abs() < 1e-9);
    }

    #[test]
    fn generator_matches_fractions_empirically() {
        let m = MixCfg { write_ratio: 0.6, sync_frac: 0.5, rmw_frac: 0.5, keys: 64, val_len: 32, skew_theta: 0.0 };
        let mut gen = m.generator(42);
        let mut counts = std::collections::HashMap::new();
        let n = 200_000;
        for i in 0..n {
            *counts.entry(classify(&gen(i).unwrap())).or_insert(0u64) += 1;
        }
        let frac = |k: &str| *counts.get(k).unwrap_or(&0) as f64 / n as f64;
        assert!((frac("rmw") - 0.50).abs() < 0.01, "rmw {}", frac("rmw"));
        assert!((frac("release") - 0.05).abs() < 0.01);
        assert!((frac("write") - 0.05).abs() < 0.01);
        assert!((frac("acquire") - 0.20).abs() < 0.01);
        assert!((frac("read") - 0.20).abs() < 0.01);
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let m = MixCfg::typical(0.2, 1000);
        let mut a = m.generator(7);
        let mut b = m.generator(7);
        for i in 0..100 {
            assert_eq!(format!("{:?}", a(i)), format!("{:?}", b(i)));
        }
    }

    #[test]
    fn keys_stay_in_range() {
        let m = MixCfg::plain(0.5, 17);
        let mut gen = m.generator(3);
        for i in 0..10_000 {
            let key = gen(i).unwrap().key();
            assert!(key.0 < 17);
        }
    }

    #[test]
    fn bounded_generator_stops() {
        let m = MixCfg::plain(0.5, 10);
        let mut gen = m.generator_bounded(1, 5);
        for i in 0..5 {
            assert!(gen(i).is_some());
        }
        assert!(gen(5).is_none());
    }

    #[test]
    fn values_have_requested_length() {
        let m = MixCfg { val_len: 32, ..MixCfg::plain(1.0, 10) };
        let mut gen = m.generator(9);
        for i in 0..100 {
            if let Some(Op::Write { val, .. }) = gen(i) {
                assert_eq!(val.len(), 32);
            }
        }
    }
}
