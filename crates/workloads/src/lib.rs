//! # kite-workloads
//!
//! Workload generation and throughput measurement for the Kite evaluation
//! (§7, §8): uniform KVS mixes parameterized by write ratio,
//! synchronization fraction and RMW fraction, plus harness helpers that
//! run a mix on a simulated deployment and report million-requests-per-
//! second (mreqs) of virtual time.
//!
//! Mix semantics follow §8.1's worked example ("a 60% write ratio, 50%
//! synchronization and 50% RMWs workload implies 50% RMWs, 5% writes, 5%
//! releases, 20% reads and 20% acquires"):
//!
//! * `write_ratio` — fraction of *all* operations that write, RMWs included;
//! * `rmw_frac` — fraction of all operations that are RMWs (⊆ writes);
//! * `sync_frac` — fraction of the remaining plain writes that are
//!   releases, and of reads that are acquires.

#![warn(missing_docs)]

pub mod measure;
pub mod mix;
pub mod skew;

pub use measure::{run_kite_gen, run_kite_mix, run_zab_mix, RunResult};
pub use mix::MixCfg;
pub use skew::{FlashCrowdCfg, Zipf};
