//! Zipfian key skew — an *extension* beyond the paper's evaluation.
//!
//! §7 accesses keys uniformly. Real KVS workloads are skewed, and skew
//! stresses exactly the property §3.4 trades on: per-key Paxos extracts
//! request-level parallelism *across* keys, so piling RMWs onto a few hot
//! keys re-serializes them (slot chains + dueling proposers), while
//! relaxed ES accesses and ABD synchronization — which never retry — are
//! largely insensitive. The `ext_skew` harness measures this.
//!
//! The sampler is the standard YCSB-style Zipfian generator
//! (Gray et al., "Quickly generating billion-record synthetic databases",
//! SIGMOD '94): exact Zipf(θ) over `0..n` using precomputed zeta sums,
//! two uniform draws per sample, no rejection.

use kite::api::Op;
use kite_common::rng::SplitMix64;
use kite_common::{Key, Val};

/// A Zipf(θ) sampler over ranks `0..n` (rank 0 is the hottest key).
///
/// θ = 0 degenerates to uniform; YCSB's default is θ ≈ 0.99. θ ≥ 1 is
/// supported (the zeta sums stay finite for finite `n`).
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Build a sampler over `0..n` with skew `theta`.
    ///
    /// Precomputes `zeta(n, θ)` in O(n); build once per generator, not per
    /// sample.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "empty key space");
        assert!(theta >= 0.0 && theta != 1.0, "theta must be ≥ 0 and ≠ 1");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The configured skew.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        if self.theta == 0.0 {
            return rng.next_below(self.n);
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Expected probability of rank `k` under Zipf(θ) (diagnostics/tests).
    pub fn pmf(&self, k: u64) -> f64 {
        if self.theta == 0.0 {
            return 1.0 / self.n as f64;
        }
        (1.0 / (k as f64 + 1.0).powf(self.theta)) / self.zetan
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

/// The hostile end of the skew spectrum: a **flash crowd**.
///
/// Zipf models steady-state popularity; a flash crowd is worse — one key
/// abruptly takes a *fixed, huge* share of every node's writes (a viral
/// object, a global lock, a metering counter), on top of an already-skewed
/// cold tail. This is the workload §6.3's batching and ack-coalescing
/// machinery exists for: every write to the hot key needs acks from all
/// replicas, so without coalescing the hot key's owner would see ack
/// traffic linear in node count × write rate.
///
/// Values deliberately span the whole size spectrum the store supports —
/// from empty through [`Val::INLINE_CAP`]-byte inline values up to the
/// `kite_kvs::record::MAX_VAL` record cap — so the wire path exercises both the
/// inline and the spilled `Val` representations under the same hot key.
#[derive(Clone, Copy, Debug)]
pub struct FlashCrowdCfg {
    /// Fraction of all ops that write (flash crowds are write-storms; the
    /// default `extreme` shape uses 0.5).
    pub write_ratio: f64,
    /// Fraction of *writes* that land on the single hot key (rank 0). The
    /// ISSUE shape: 0.5 — one key takes half of every node's writes.
    pub hot_write_frac: f64,
    /// Fraction of *reads* that land on the hot key (crowds read what they
    /// write).
    pub hot_read_frac: f64,
    /// Zipf skew of the cold tail (keys `1..keys`). θ > 1 is legal and
    /// hostile.
    pub theta: f64,
    /// Key-space size (hot key + cold tail).
    pub keys: u64,
    /// Largest value size generated; sizes cycle `0..=max_val_len`.
    pub max_val_len: usize,
}

impl FlashCrowdCfg {
    /// The ISSUE's hostile shape: 50% writes, half of them on one hot key,
    /// θ = 1.2 cold tail, values spanning 0..=`kite_kvs::record::MAX_VAL` bytes.
    pub fn extreme(keys: u64) -> FlashCrowdCfg {
        FlashCrowdCfg {
            write_ratio: 0.5,
            hot_write_frac: 0.5,
            hot_read_frac: 0.5,
            theta: 1.2,
            keys,
            max_val_len: kite_kvs::record::MAX_VAL,
        }
    }

    /// Validate the fractions and ranges.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("write_ratio", self.write_ratio),
            ("hot_write_frac", self.hot_write_frac),
            ("hot_read_frac", self.hot_read_frac),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} = {v} outside [0,1]"));
            }
        }
        if self.keys < 2 {
            return Err("flash crowd needs a hot key and a cold tail (keys ≥ 2)".into());
        }
        if self.theta < 0.0 || self.theta == 1.0 {
            return Err(format!("theta {} must be ≥ 0 and ≠ 1", self.theta));
        }
        if self.max_val_len > kite_kvs::record::MAX_VAL {
            return Err(format!(
                "max_val_len {} exceeds the record cap {}",
                self.max_val_len,
                kite_kvs::record::MAX_VAL
            ));
        }
        Ok(())
    }

    /// An infinite op generator for one session (same shape as
    /// [`crate::MixCfg::generator`], so it drives the same harnesses).
    pub fn generator(&self, seed: u64) -> impl FnMut(u64) -> Option<Op> + Send + 'static {
        let cfg = *self;
        debug_assert!(cfg.validate().is_ok());
        let cold = Zipf::new(cfg.keys - 1, cfg.theta);
        let mut rng = SplitMix64::new(seed);
        move |seq| {
            let is_write = rng.chance(cfg.write_ratio);
            let hot_frac = if is_write { cfg.hot_write_frac } else { cfg.hot_read_frac };
            let key = if rng.chance(hot_frac) {
                Key(0)
            } else {
                Key(1 + cold.sample(&mut rng))
            };
            Some(if is_write {
                // Cycle value sizes across the whole supported range so the
                // same key carries inline and spilled representations.
                let len = (seq % (cfg.max_val_len as u64 + 1)) as usize;
                Op::Write { key, val: sized_val(&mut rng, len) }
            } else {
                Op::Read { key }
            })
        }
    }

    /// A bounded generator producing exactly `n` ops.
    pub fn generator_bounded(
        &self,
        seed: u64,
        n: u64,
    ) -> impl FnMut(u64) -> Option<Op> + Send + 'static {
        let mut inner = self.generator(seed);
        move |seq| if seq < n { inner(seq) } else { None }
    }
}

/// A random value of exactly `len` bytes.
fn sized_val(rng: &mut SplitMix64, len: usize) -> Val {
    let mut bytes = vec![0u8; len];
    for chunk in bytes.chunks_mut(8) {
        let v = rng.next_u64().to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&v[..n]);
    }
    Val::from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(z: &Zipf, seed: u64, samples: u64) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        let mut h = vec![0u64; z.n() as usize];
        for _ in 0..samples {
            h[z.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(16, 0.0);
        let h = histogram(&z, 7, 160_000);
        for (k, &c) in h.iter().enumerate() {
            let f = c as f64 / 160_000.0;
            assert!((f - 1.0 / 16.0).abs() < 0.01, "rank {k}: {f}");
        }
    }

    #[test]
    fn samples_stay_in_range() {
        for theta in [0.0, 0.5, 0.99, 1.5] {
            let z = Zipf::new(100, theta);
            let mut rng = SplitMix64::new(3);
            for _ in 0..50_000 {
                assert!(z.sample(&mut rng) < 100);
            }
        }
    }

    #[test]
    fn frequencies_match_pmf() {
        let z = Zipf::new(64, 0.99);
        let samples = 400_000u64;
        let h = histogram(&z, 11, samples);
        // Check the head (where mass concentrates) against the exact pmf.
        for k in 0..8u64 {
            let f = h[k as usize] as f64 / samples as f64;
            let p = z.pmf(k);
            assert!(
                (f - p).abs() < p * 0.15 + 0.002,
                "rank {k}: sampled {f:.4} vs pmf {p:.4}"
            );
        }
    }

    #[test]
    fn higher_theta_concentrates_more() {
        let samples = 200_000u64;
        let mass_top = |theta: f64| {
            let z = Zipf::new(1024, theta);
            let h = histogram(&z, 5, samples);
            h[..8].iter().sum::<u64>() as f64 / samples as f64
        };
        let u = mass_top(0.0);
        let m = mass_top(0.9);
        let hot = mass_top(1.4);
        assert!(u < 0.02, "uniform top-8 mass {u}");
        assert!(m > u * 5.0, "θ=0.9 must concentrate ({m} vs {u})");
        assert!(hot > m, "θ=1.4 must concentrate further ({hot} vs {m})");
    }

    #[test]
    fn deterministic_per_seed() {
        let z = Zipf::new(100, 0.99);
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..1000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "empty key space")]
    fn rejects_empty_range() {
        let _ = Zipf::new(0, 0.5);
    }

    #[test]
    fn flash_crowd_hot_key_takes_half_the_writes() {
        let cfg = FlashCrowdCfg::extreme(1 << 12);
        let mut gen = cfg.generator(17);
        let (mut writes, mut hot_writes) = (0u64, 0u64);
        for i in 0..200_000 {
            if let Some(Op::Write { key, .. }) = gen(i) {
                writes += 1;
                if key.0 == 0 {
                    hot_writes += 1;
                }
            }
        }
        let f = hot_writes as f64 / writes as f64;
        assert!((f - 0.5).abs() < 0.01, "hot-key write share {f}");
    }

    #[test]
    fn flash_crowd_values_span_inline_to_record_cap() {
        let cfg = FlashCrowdCfg::extreme(1 << 10);
        let mut gen = cfg.generator(3);
        let mut seen = vec![false; kite_kvs::record::MAX_VAL + 1];
        for i in 0..20_000 {
            if let Some(Op::Write { val, .. }) = gen(i) {
                seen[val.len()] = true;
            }
        }
        assert!(seen[0], "empty values must appear");
        assert!(seen[kite_common::Val::INLINE_CAP], "inline-cap values must appear");
        assert!(seen[kite_kvs::record::MAX_VAL], "record-cap values must appear");
    }

    #[test]
    fn flash_crowd_validation() {
        assert!(FlashCrowdCfg::extreme(1 << 10).validate().is_ok());
        assert!(FlashCrowdCfg { keys: 1, ..FlashCrowdCfg::extreme(16) }.validate().is_err());
        assert!(
            FlashCrowdCfg { max_val_len: kite_kvs::record::MAX_VAL + 1, ..FlashCrowdCfg::extreme(16) }
                .validate()
                .is_err()
        );
        assert!(
            FlashCrowdCfg { hot_write_frac: 1.5, ..FlashCrowdCfg::extreme(16) }
                .validate()
                .is_err()
        );
    }

    #[test]
    fn flash_crowd_deterministic_per_seed() {
        let cfg = FlashCrowdCfg::extreme(1 << 10);
        let mut a = cfg.generator(9);
        let mut b = cfg.generator(9);
        for i in 0..500 {
            assert_eq!(format!("{:?}", a(i)), format!("{:?}", b(i)));
        }
    }
}
