//! Zipfian key skew — an *extension* beyond the paper's evaluation.
//!
//! §7 accesses keys uniformly. Real KVS workloads are skewed, and skew
//! stresses exactly the property §3.4 trades on: per-key Paxos extracts
//! request-level parallelism *across* keys, so piling RMWs onto a few hot
//! keys re-serializes them (slot chains + dueling proposers), while
//! relaxed ES accesses and ABD synchronization — which never retry — are
//! largely insensitive. The `ext_skew` harness measures this.
//!
//! The sampler is the standard YCSB-style Zipfian generator
//! (Gray et al., "Quickly generating billion-record synthetic databases",
//! SIGMOD '94): exact Zipf(θ) over `0..n` using precomputed zeta sums,
//! two uniform draws per sample, no rejection.

use kite_common::rng::SplitMix64;

/// A Zipf(θ) sampler over ranks `0..n` (rank 0 is the hottest key).
///
/// θ = 0 degenerates to uniform; YCSB's default is θ ≈ 0.99. θ ≥ 1 is
/// supported (the zeta sums stay finite for finite `n`).
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Build a sampler over `0..n` with skew `theta`.
    ///
    /// Precomputes `zeta(n, θ)` in O(n); build once per generator, not per
    /// sample.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "empty key space");
        assert!(theta >= 0.0 && theta != 1.0, "theta must be ≥ 0 and ≠ 1");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The configured skew.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        if self.theta == 0.0 {
            return rng.next_below(self.n);
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Expected probability of rank `k` under Zipf(θ) (diagnostics/tests).
    pub fn pmf(&self, k: u64) -> f64 {
        if self.theta == 0.0 {
            return 1.0 / self.n as f64;
        }
        (1.0 / (k as f64 + 1.0).powf(self.theta)) / self.zetan
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(z: &Zipf, seed: u64, samples: u64) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        let mut h = vec![0u64; z.n() as usize];
        for _ in 0..samples {
            h[z.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(16, 0.0);
        let h = histogram(&z, 7, 160_000);
        for (k, &c) in h.iter().enumerate() {
            let f = c as f64 / 160_000.0;
            assert!((f - 1.0 / 16.0).abs() < 0.01, "rank {k}: {f}");
        }
    }

    #[test]
    fn samples_stay_in_range() {
        for theta in [0.0, 0.5, 0.99, 1.5] {
            let z = Zipf::new(100, theta);
            let mut rng = SplitMix64::new(3);
            for _ in 0..50_000 {
                assert!(z.sample(&mut rng) < 100);
            }
        }
    }

    #[test]
    fn frequencies_match_pmf() {
        let z = Zipf::new(64, 0.99);
        let samples = 400_000u64;
        let h = histogram(&z, 11, samples);
        // Check the head (where mass concentrates) against the exact pmf.
        for k in 0..8u64 {
            let f = h[k as usize] as f64 / samples as f64;
            let p = z.pmf(k);
            assert!(
                (f - p).abs() < p * 0.15 + 0.002,
                "rank {k}: sampled {f:.4} vs pmf {p:.4}"
            );
        }
    }

    #[test]
    fn higher_theta_concentrates_more() {
        let samples = 200_000u64;
        let mass_top = |theta: f64| {
            let z = Zipf::new(1024, theta);
            let h = histogram(&z, 5, samples);
            h[..8].iter().sum::<u64>() as f64 / samples as f64
        };
        let u = mass_top(0.0);
        let m = mass_top(0.9);
        let hot = mass_top(1.4);
        assert!(u < 0.02, "uniform top-8 mass {u}");
        assert!(m > u * 5.0, "θ=0.9 must concentrate ({m} vs {u})");
        assert!(hot > m, "θ=1.4 must concentrate further ({hot} vs {m})");
    }

    #[test]
    fn deterministic_per_seed() {
        let z = Zipf::new(100, 0.99);
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..1000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "empty key space")]
    fn rejects_empty_range() {
        let _ = Zipf::new(0, 0.5);
    }
}
