//! Measurement harness: run a mix on a simulated deployment for
//! warmup + measurement windows and report throughput (mreqs of virtual
//! time), per node and in aggregate — the quantity every figure of §8
//! plots.

use kite::session::SessionDriver;
use kite::{ProtocolMode, SimCluster};
use kite_common::{ClusterConfig, NodeId};
use kite_simnet::SimCfg;
use kite_zab::ZabSimCluster;

use crate::mix::MixCfg;

/// Result of one measured run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Aggregate throughput over the measurement window, in million
    /// requests per second (virtual time).
    pub mreqs: f64,
    /// Per-node throughput.
    pub per_node: Vec<f64>,
    /// Requests completed during the window.
    pub completed: u64,
    /// Fast-path local reads during the whole run (diagnostics).
    pub local_reads: u64,
    /// Slow-path accesses during the whole run (should be 0 without
    /// failures).
    pub slow_path: u64,
    /// Ack messages sent during the whole run (singles + batches each
    /// counted once) — `ack_msgs / total_completed` is the acks-per-op
    /// figure the throughput harness reports.
    pub ack_msgs: u64,
    /// Plain acks that rode inside `AckBatch` messages.
    pub acks_coalesced: u64,
    /// Anti-entropy messages sent during the whole run (digests + Merkle
    /// summaries + drill-downs + repair pulls + repair values):
    /// `ae_msgs / total_completed` is the steady-state digest-traffic
    /// figure — it must stay negligible (< 0.01 msgs/op at 0% loss).
    pub ae_msgs: u64,
    /// Estimated wire bytes of the digest plane (flat digests, Merkle
    /// summaries, drill-down requests) sent during the whole run —
    /// `ae_digest_bytes / total_completed` is the `ae-bytes/op` column the
    /// throughput bin reports, the quantity Merkle mode shrinks from
    /// O(store) to O(log store) per sweep cycle.
    pub ae_digest_bytes: u64,
    /// Requests completed over the whole run (warmup included) — the
    /// denominator matching the whole-run counters above.
    pub total_completed: u64,
}

fn mreqs(completed: u64, window_ns: u64) -> f64 {
    completed as f64 / (window_ns as f64 / 1e9) / 1e6
}

/// Run `mix` on a Kite deployment in `mode` for `warmup_ns + run_ns` of
/// virtual time; throughput is measured over the last `run_ns`.
pub fn run_kite_mix(
    cfg: ClusterConfig,
    mode: ProtocolMode,
    sim_cfg: SimCfg,
    mix: MixCfg,
    warmup_ns: u64,
    run_ns: u64,
) -> RunResult {
    mix.validate().expect("invalid mix");
    run_kite_gen(cfg, mode, sim_cfg, move |seed| mix.generator(seed), warmup_ns, run_ns)
}

/// Run an arbitrary per-session op generator on a Kite deployment — the
/// generalized harness behind [`run_kite_mix`]. `make_gen` receives a
/// per-session deterministic seed and returns that session's op stream;
/// this is how non-`MixCfg` shapes (e.g. [`crate::FlashCrowdCfg`]) drive
/// the same measured windows and counter collection as the standard mixes.
pub fn run_kite_gen<G, F>(
    cfg: ClusterConfig,
    mode: ProtocolMode,
    sim_cfg: SimCfg,
    make_gen: F,
    warmup_ns: u64,
    run_ns: u64,
) -> RunResult
where
    G: FnMut(u64) -> Option<kite::api::Op> + Send + 'static,
    F: Fn(u64) -> G,
{
    let seed0 = sim_cfg.seed;
    let mut sc = SimCluster::build(
        cfg.clone(),
        mode,
        sim_cfg,
        |sid| {
            let seed = seed0 ^ ((sid.global_idx(cfg.sessions_per_node()) as u64 + 1) * 0x9E37);
            SessionDriver::Script(Box::new(make_gen(seed)))
        },
        None,
    );
    sc.run_for(warmup_ns);
    let before: Vec<u64> = (0..cfg.nodes).map(|n| sc.node_completed(NodeId(n as u8))).collect();
    sc.run_for(run_ns);
    let after: Vec<u64> = (0..cfg.nodes).map(|n| sc.node_completed(NodeId(n as u8))).collect();
    let per_node: Vec<f64> =
        before.iter().zip(&after).map(|(b, a)| mreqs(a - b, run_ns)).collect();
    let completed: u64 = after.iter().sum::<u64>() - before.iter().sum::<u64>();
    let (local_reads, slow_path, ack_msgs, acks_coalesced, ae_msgs, ae_digest_bytes) = (0..cfg
        .nodes)
        .map(|n| {
            let c = sc.counters(NodeId(n as u8));
            (
                c.local_reads.get(),
                c.slow_path_accesses.get(),
                c.acks_sent.get(),
                c.acks_coalesced.get(),
                c.ae_digests_sent.get()
                    + c.ae_summaries_sent.get()
                    + c.ae_merkle_reqs.get()
                    + c.ae_repair_reqs.get()
                    + c.ae_repair_vals.get(),
                c.ae_digest_bytes.get(),
            )
        })
        .fold((0, 0, 0, 0, 0, 0), |(lr, sp, am, ac, ae, ab), (l, s, a, c, e, b)| {
            (lr + l, sp + s, am + a, ac + c, ae + e, ab + b)
        });
    RunResult {
        mreqs: mreqs(completed, run_ns),
        per_node,
        completed,
        local_reads,
        slow_path,
        ack_msgs,
        acks_coalesced,
        ae_msgs,
        ae_digest_bytes,
        total_completed: sc.total_completed(),
    }
}

/// Run `mix` on the ZAB baseline. Releases/acquires degrade to ZAB
/// writes/reads (ZAB has no RC API — §8.1 compares it at equal write
/// ratios).
pub fn run_zab_mix(
    cfg: ClusterConfig,
    sim_cfg: SimCfg,
    mix: MixCfg,
    warmup_ns: u64,
    run_ns: u64,
) -> RunResult {
    mix.validate().expect("invalid mix");
    let seed0 = sim_cfg.seed;
    let mut zc = ZabSimCluster::build(
        cfg.clone(),
        sim_cfg,
        |sid| {
            let seed = seed0 ^ ((sid.global_idx(cfg.sessions_per_node()) as u64 + 1) * 0x9E37);
            SessionDriver::Script(Box::new(mix.generator(seed)))
        },
        None,
    );
    zc.run_for(warmup_ns);
    let before: Vec<u64> =
        (0..cfg.nodes).map(|n| zc.counters(NodeId(n as u8)).completed.get()).collect();
    zc.run_for(run_ns);
    let after: Vec<u64> =
        (0..cfg.nodes).map(|n| zc.counters(NodeId(n as u8)).completed.get()).collect();
    let per_node: Vec<f64> =
        before.iter().zip(&after).map(|(b, a)| mreqs(a - b, run_ns)).collect();
    let completed: u64 = after.iter().sum::<u64>() - before.iter().sum::<u64>();
    let local_reads =
        (0..cfg.nodes).map(|n| zc.counters(NodeId(n as u8)).local_reads.get()).sum();
    let total_completed = (0..cfg.nodes).map(|n| zc.counters(NodeId(n as u8)).completed.get()).sum();
    RunResult {
        mreqs: mreqs(completed, run_ns),
        per_node,
        completed,
        local_reads,
        slow_path: 0,
        ack_msgs: 0,
        acks_coalesced: 0,
        ae_msgs: 0,
        ae_digest_bytes: 0,
        total_completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ClusterConfig {
        ClusterConfig::small().keys(1 << 10).sessions_per_worker(2)
    }

    fn sim() -> SimCfg {
        SimCfg { seed: 42, ..Default::default() }
    }

    const WARM: u64 = 1_000_000; // 1 ms virtual
    const RUN: u64 = 2_000_000; // 2 ms virtual

    #[test]
    fn read_only_es_throughput_is_positive_and_local() {
        let r = run_kite_mix(
            small_cfg(),
            ProtocolMode::EsOnly,
            sim(),
            MixCfg::plain(0.0, 1 << 10),
            WARM,
            RUN,
        );
        assert!(r.mreqs > 0.0);
        assert!(r.local_reads > 0);
        assert_eq!(r.slow_path, 0, "no failures → no slow path");
    }

    #[test]
    fn es_beats_abd_on_read_heavy_mix() {
        // The Figure 5 ordering at 5% writes: ES > ABD.
        let mix = MixCfg::plain(0.05, 1 << 10);
        let es = run_kite_mix(small_cfg(), ProtocolMode::EsOnly, sim(), mix, WARM, RUN);
        let abd = run_kite_mix(small_cfg(), ProtocolMode::AbdOnly, sim(), mix, WARM, RUN);
        assert!(
            es.mreqs > abd.mreqs * 1.5,
            "ES ({:.3}) must clearly beat ABD ({:.3}) on reads",
            es.mreqs,
            abd.mreqs
        );
    }

    #[test]
    fn kite_sits_between_es_and_abd_at_typical_sync() {
        let keys = 1 << 10;
        let es = run_kite_mix(small_cfg(), ProtocolMode::EsOnly, sim(), MixCfg::plain(0.2, keys), WARM, RUN);
        let kite =
            run_kite_mix(small_cfg(), ProtocolMode::Kite, sim(), MixCfg::typical(0.2, keys), WARM, RUN);
        let abd = run_kite_mix(small_cfg(), ProtocolMode::AbdOnly, sim(), MixCfg::plain(0.2, keys), WARM, RUN);
        assert!(es.mreqs >= kite.mreqs, "ES {} ≥ Kite {}", es.mreqs, kite.mreqs);
        assert!(kite.mreqs > abd.mreqs, "Kite {} > ABD {}", kite.mreqs, abd.mreqs);
    }

    #[test]
    fn zab_runs_and_reads_stay_local() {
        let r = run_zab_mix(small_cfg(), sim(), MixCfg::plain(0.2, 1 << 10), WARM, RUN);
        assert!(r.mreqs > 0.0);
        assert!(r.local_reads > 0);
    }

    #[test]
    fn per_node_sums_to_total() {
        let r = run_kite_mix(
            small_cfg(),
            ProtocolMode::Kite,
            sim(),
            MixCfg::typical(0.1, 1 << 10),
            WARM,
            RUN,
        );
        let sum: f64 = r.per_node.iter().sum();
        assert!((sum - r.mreqs).abs() < 1e-6);
    }
}
