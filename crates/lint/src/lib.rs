//! `kite-lint` — the workspace's offline invariant linter.
//!
//! Seven PRs of ROADMAP prose established load-bearing contracts ("steady
//! state sends do not allocate", "every decode path returns `WireError`,
//! never panics", "the readiness loop is allocation-free") that until now
//! were enforced by convention and review. Hermes — Kite's sibling protocol
//! — leaned on machine-checked invariants (TLA+) precisely because
//! hand-audited ones rot. This crate is the repo's own checker: a
//! self-contained static-analysis pass (no syn, no clippy plugins — the
//! build environment has no registry access) that walks every `.rs` file in
//! the workspace and mechanically enforces the rules below. It runs as a
//! binary (`scripts/lint.sh`) **and** as a workspace integration test, so
//! `cargo test -q` re-checks the invariants on every build.
//!
//! # The rules
//!
//! ## `no-alloc` — annotated regions must not allocate
//!
//! Regions opened by a `// kite-lint: no-alloc` annotation line (the rule
//! attaches to the next braced item — a fn body, an impl, a block) must not
//! contain allocation constructs. Applied to `Outbox::flush`, the
//! `InFlightTable` resolve path, the epoll readiness-loop bodies in
//! `kite-net`, and the WAL `record` staging path.
//!
//! ```text
//! // BAD
//! // kite-lint: no-alloc
//! fn flush(&mut self) {
//!     let batch = Vec::new();          // no-alloc: allocation construct
//! }
//!
//! // GOOD
//! // kite-lint: no-alloc
//! fn flush(&mut self) {
//!     let batch = self.pool.pop();     // recycled, no constructor
//! }
//! ```
//!
//! ## `safety-comment` — every `unsafe` must carry its proof
//!
//! Every `unsafe` keyword (block, fn, impl) must have a `// SAFETY:`
//! comment on the same line or in the comment block immediately above.
//! The comment is the *proof obligation*: why the invariants the compiler
//! cannot check hold here.
//!
//! ```text
//! // BAD
//! let copy = unsafe { std::ptr::read_volatile(p) };
//!
//! // GOOD
//! // SAFETY: p points into the seqlock-protected payload; a racing write
//! // is detected by read_validate and the copy is discarded unread.
//! let copy = unsafe { std::ptr::read_volatile(p) };
//! ```
//!
//! ## `total-decode` — decode paths are total functions
//!
//! Regions annotated `// kite-lint: total-decode` (the wire codec's decode
//! half, the WAL segment scanner) must not contain `.unwrap()`,
//! `.expect(`, `panic!`, or slice indexing — malformed input flows to
//! `WireError`/truncation, never a worker panic. Use `get(..)`,
//! `try_into().map_err(..)`, and pattern destructuring instead.
//!
//! ```text
//! // BAD (inside a total-decode region)
//! let len = u32::from_le_bytes(data[0..4].try_into().unwrap());
//!
//! // GOOD
//! let Some(len) = le_u32_at(data, 0) else { return Err(WireError::Truncated) };
//! ```
//!
//! ## `ordering-justification` — atomics say why their ordering is enough
//!
//! A bare `Ordering::Relaxed`/`Acquire`/`Release`/`AcqRel` in
//! `crates/kvs/src`, `crates/lockfree/src`, `crates/net/src` or
//! `crates/common/src` (home of the packed membership cell every quorum
//! read goes through) requires an `// ordering:` comment on the statement,
//! immediately above it, or on the enclosing function's doc block.
//! (`SeqCst` needs no justification — it is the conservative maximum.)
//! Test modules are exempt.
//!
//! ```text
//! // BAD
//! self.seq.load(Ordering::Relaxed)
//!
//! // GOOD
//! // ordering: the read is validated by an Acquire fence + re-load in
//! // read_validate; Relaxed here cannot order the payload reads.
//! self.seq.load(Ordering::Relaxed)
//! ```
//!
//! ## `no-blocking-in-loop` — readiness loops never block
//!
//! Regions annotated `// kite-lint: event-loop` (the per-worker epoll
//! run-to-completion loop bodies) must not call `std::thread::sleep`,
//! blocking `lock()`, `.recv()`, `.join()` or direct `write_all` — a loop
//! that blocks stalls every fd it owns. Nonblocking drains and
//! `epoll_wait` are the only places a loop may rest.
//!
//! # Suppressions and the ratchet
//!
//! A violation is suppressed by an explicit, *reasoned* allow on or
//! immediately above the offending line:
//!
//! ```text
//! // kite-lint: allow(no-alloc) — pool-dry cold path; steady state pops.
//! let replacement = self.pool.pop().unwrap_or_else(|| Vec::with_capacity(BUF_CAP));
//! ```
//!
//! An allow without a reason is itself a violation (`allow-without-reason`).
//! Pre-existing violations live in a committed ratchet baseline
//! (`lint-baseline.txt`): entries there may burn down over time, but any
//! violation *not* in the baseline fails the pass immediately, with a
//! `N new, M fixed` diff so regressions are attributable to a commit.

pub mod lexer;

use lexer::{lex, LexLine};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// The enforced rules. `AllowWithoutReason` is meta: emitted when a
/// suppression comment lacks its mandatory reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    NoAlloc,
    SafetyComment,
    TotalDecode,
    OrderingJustification,
    NoBlockingInLoop,
    AllowWithoutReason,
}

impl Rule {
    /// The rule's diagnostic / annotation name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoAlloc => "no-alloc",
            Rule::SafetyComment => "safety-comment",
            Rule::TotalDecode => "total-decode",
            Rule::OrderingJustification => "ordering-justification",
            Rule::NoBlockingInLoop => "no-blocking-in-loop",
            Rule::AllowWithoutReason => "allow-without-reason",
        }
    }

    fn from_name(s: &str) -> Option<Rule> {
        Some(match s {
            "no-alloc" => Rule::NoAlloc,
            "safety-comment" => Rule::SafetyComment,
            "total-decode" => Rule::TotalDecode,
            "ordering-justification" => Rule::OrderingJustification,
            "no-blocking-in-loop" => Rule::NoBlockingInLoop,
            "allow-without-reason" => Rule::AllowWithoutReason,
            _ => return None,
        })
    }
}

/// One diagnostic. Renders rustc-style: `file:line: rule: message`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// What went wrong and what to do instead.
    pub message: String,
    /// The offending code line, trimmed (ratchet key material — stable
    /// across unrelated line-number drift).
    pub snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule.name(), self.message)
    }
}

impl Violation {
    /// Line-number-free identity used by the ratchet baseline: unrelated
    /// edits above a pre-existing violation must not turn it "new".
    pub fn key(&self) -> String {
        format!("{}|{}|{}", self.file, self.rule.name(), self.snippet)
    }
}

// ---------------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------------

const REGION_NO_ALLOC: u8 = 1 << 0;
const REGION_TOTAL_DECODE: u8 = 1 << 1;
const REGION_EVENT_LOOP: u8 = 1 << 2;

/// Metadata computed for each line by the frame pass.
#[derive(Default, Clone)]
struct LineMeta {
    /// Bitmask of annotation regions covering this line.
    regions: u8,
    /// Line is inside a `#[cfg(test)]` item.
    in_test: bool,
    /// Header-start line (0-based) of the innermost enclosing `fn`.
    fn_decl: Option<usize>,
}

struct Frame {
    regions: u8,
    is_test: bool,
    fn_decl: Option<usize>,
}

/// Track braces/items over the lexed code channel, producing [`LineMeta`]s.
///
/// The tracker is deliberately approximate: it treats every `{…}` as a
/// frame and classifies it by the *header* (the code accumulated since the
/// last `{`, `}` or `;`). A header containing the `fn` keyword opens a
/// function frame; one containing `#[cfg(test)]` opens a test frame.
/// Closures and struct literals become anonymous frames that inherit their
/// parent's classification — exactly what the rules want.
fn track(lines: &[LexLine]) -> Vec<LineMeta> {
    let mut metas: Vec<LineMeta> = vec![LineMeta::default(); lines.len()];
    let mut stack: Vec<Frame> = Vec::new();
    let mut header = String::new();
    let mut header_start: usize = 0;
    let mut header_live = false;
    let mut pending_regions: u8 = 0;

    for (ln, line) in lines.iter().enumerate() {
        // Annotations are comment lines; they arm the next opened frame.
        let c = &line.comment;
        if c.contains("kite-lint: no-alloc") {
            pending_regions |= REGION_NO_ALLOC;
        }
        if c.contains("kite-lint: total-decode") {
            pending_regions |= REGION_TOTAL_DECODE;
        }
        if c.contains("kite-lint: event-loop") {
            pending_regions |= REGION_EVENT_LOOP;
        }

        let mut meta = LineMeta::default();
        let inherit = |stack: &[Frame], meta: &mut LineMeta| {
            meta.regions |= stack.iter().fold(0, |acc, f| acc | f.regions);
            meta.in_test |= stack.iter().any(|f| f.is_test);
            if let Some(f) = stack.iter().rev().find_map(|f| f.fn_decl) {
                meta.fn_decl = Some(f);
            }
        };
        inherit(&stack, &mut meta);

        for ch in line.code.chars() {
            match ch {
                '{' => {
                    let is_fn = has_word(&header, "fn");
                    let is_test = header.contains("#[cfg(test)]");
                    let parent_fn = stack.iter().rev().find_map(|f| f.fn_decl);
                    stack.push(Frame {
                        regions: std::mem::take(&mut pending_regions),
                        is_test,
                        fn_decl: if is_fn { Some(header_start) } else { parent_fn },
                    });
                    header.clear();
                    header_live = false;
                    inherit(&stack, &mut meta);
                }
                '}' => {
                    stack.pop();
                    header.clear();
                    header_live = false;
                }
                ';' => {
                    header.clear();
                    header_live = false;
                    // A bodiless item consumes any pending annotation: the
                    // annotation was written for it, not for whatever braced
                    // thing happens to come next.
                    pending_regions = 0;
                }
                _ => {
                    if !ch.is_whitespace() {
                        if !header_live {
                            header_live = true;
                            header_start = ln;
                        }
                        header.push(ch);
                    } else if header_live {
                        header.push(' ');
                    }
                }
            }
        }
        metas[ln] = meta;
    }
    metas
}

/// Whole-word search in blanked code text.
fn has_word(code: &str, word: &str) -> bool {
    find_word(code, word).is_some()
}

fn find_word(code: &str, word: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + word.len();
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

// ---------------------------------------------------------------------------
// Rule tables
// ---------------------------------------------------------------------------

/// Allocation constructs banned inside `no-alloc` regions. Substring
/// matches over the blanked code channel; `with_capacity` catches both
/// `Vec::with_capacity` and `String::with_capacity`.
const ALLOC_CONSTRUCTS: &[&str] = &[
    "Vec::new",
    "vec![",
    "Box::new",
    "Arc::new",
    "Rc::new",
    ".to_vec(",
    "format!",
    "String::from",
    "String::new",
    ".to_string(",
    "to_owned(",
    "HashMap::",
    "BTreeMap::",
    "HashSet::",
    "with_capacity",
    ".collect(",
    ".collect::<",
];

/// Panic paths banned inside `total-decode` regions (slice indexing is
/// detected structurally, see [`find_indexing`]).
const PANIC_CONSTRUCTS: &[&str] =
    &[".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"];

/// Blocking calls banned inside `event-loop` regions.
const BLOCKING_CONSTRUCTS: &[&str] =
    &["thread::sleep", ".lock()", "write_all(", ".recv()", ".join()"];

/// Keywords that may directly precede `[` without it being an index
/// expression (`let [a, b] = …`, `&mut [0u8; 4]`, `return [x]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "ref", "as", "in", "return", "else", "match", "if", "let", "dyn", "impl", "where",
    "move", "box", "break", "continue", "loop", "while", "for", "use", "pub", "fn", "unsafe",
    "static", "const", "type", "enum", "struct", "trait", "mod", "crate", "super", "await",
];

/// Find a slice/array index expression in blanked code: a `[` whose
/// previous significant token is an identifier (non-keyword), `)`, `]` or
/// `?`. Attributes (`#[…]`), types (`&[u8]`), array literals (`= [0; 4]`)
/// and slice patterns (`let [a, b] = …`) do not match.
fn find_indexing(code: &str) -> Option<usize> {
    let chars: Vec<char> = code.chars().collect();
    for (i, &ch) in chars.iter().enumerate() {
        if ch != '[' {
            continue;
        }
        // Previous non-whitespace char.
        let mut j = i;
        let mut prev = None;
        while j > 0 {
            j -= 1;
            if !chars[j].is_whitespace() {
                prev = Some(chars[j]);
                break;
            }
        }
        let Some(p) = prev else { continue };
        if p == ')' || p == ']' || p == '?' {
            return Some(i);
        }
        if p.is_alphanumeric() || p == '_' {
            let mut k = j;
            while k > 0 && (chars[k - 1].is_alphanumeric() || chars[k - 1] == '_') {
                k -= 1;
            }
            // A lifetime before `[` is type syntax (`&'a [u8]`), never an
            // index expression.
            if k > 0 && chars[k - 1] == '\'' {
                continue;
            }
            let tok: String = chars[k..=j].iter().collect();
            if !NON_INDEX_KEYWORDS.contains(&tok.as_str()) {
                return Some(i);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// A parsed `kite-lint: allow(<rule>)` comment.
struct Allow {
    rule: Option<Rule>,
    has_reason: bool,
}

/// Parse every allow marker in a comment line.
fn parse_allows(comment: &str) -> Vec<Allow> {
    let mut out = Vec::new();
    let mut start = 0;
    const MARK: &str = "kite-lint: allow(";
    while let Some(pos) = comment[start..].find(MARK) {
        let at = start + pos + MARK.len();
        let rest = &comment[at..];
        if let Some(close) = rest.find(')') {
            let rule = Rule::from_name(rest[..close].trim());
            let tail = rest[close + 1..]
                .trim_start_matches([' ', '\t'])
                .trim_start_matches(['—', '-', ':', ' '])
                .trim();
            out.push(Allow { rule, has_reason: tail.chars().count() >= 3 });
            start = at + close;
        } else {
            break;
        }
    }
    out
}

/// Allow lookup for a violation at `line`: same-line comment, the comment
/// block immediately above (skipping only code-blank lines), or — when the
/// line is a continuation of a multi-line statement — the comment block
/// above the statement's first line. Returns `Some(has_reason)` when a
/// matching allow exists.
fn allow_for(lines: &[LexLine], line: usize, rule: Rule) -> Option<bool> {
    let check = |l: usize| -> Option<bool> {
        let mut hit = None;
        for a in parse_allows(&lines[l].comment) {
            if a.rule == Some(rule) {
                hit = Some(a.has_reason);
            }
        }
        hit
    };
    let scan_at = |anchor: usize| -> Option<bool> {
        if let Some(h) = check(anchor) {
            return Some(h);
        }
        let mut l = anchor;
        while l > 0 {
            l -= 1;
            if !lines[l].is_code_blank() {
                break;
            }
            if let Some(h) = check(l) {
                return Some(h);
            }
        }
        None
    };
    if let Some(h) = scan_at(line) {
        return Some(h);
    }
    let ss = statement_start(lines, line);
    if ss != line {
        return scan_at(ss);
    }
    None
}

/// Walk from `line` up to the first line of the statement it belongs to: a
/// line whose nearest code line above ends with `;`, `{` or `}` (statement
/// / block boundary). Lines ending mid-expression (`&&`, `(`, `,`, a
/// method-chain `.seq`) are continuations, so the justification comment may
/// sit above the whole statement rather than the exact line that names the
/// ordering. Bounded to 30 lines for pathological formatting.
fn statement_start(lines: &[LexLine], line: usize) -> usize {
    let mut l = line;
    for _ in 0..30 {
        // Nearest code-bearing line above `l`.
        let mut p = l;
        let mut above = None;
        while p > 0 {
            p -= 1;
            if !lines[p].is_code_blank() {
                above = Some(p);
                break;
            }
        }
        match above {
            Some(p) => {
                let t = lines[p].code.trim_end();
                if t.ends_with(';') || t.ends_with('{') || t.ends_with('}') {
                    return l;
                }
                l = p;
            }
            None => return l,
        }
    }
    l
}

/// Does the comment block on/above `line` contain `marker`? Used by
/// `safety-comment` (`SAFETY:`) and `ordering-justification` (`ordering:`).
fn comment_block_contains(lines: &[LexLine], line: usize, marker: &str) -> bool {
    if lines[line].comment.contains(marker) {
        return true;
    }
    let mut l = line;
    while l > 0 {
        l -= 1;
        if !lines[l].is_code_blank() {
            // Trailing comment on the previous code line also counts: the
            // idiom `foo(); // SAFETY: …` above a continuation is rare but
            // a statement split across lines is not.
            return lines[l].comment.contains(marker);
        }
        if lines[l].comment.contains(marker) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// The analysis pass
// ---------------------------------------------------------------------------

/// Is `path` inside the ordering-justification scope (the crates whose
/// atomics guard the seqlock / Merkle-lattice / fabric fast paths, plus
/// `kite-common`, whose packed membership cell gates every quorum and
/// voter-set read)?
fn in_ordering_scope(path: &str) -> bool {
    ["crates/kvs/src", "crates/lockfree/src", "crates/net/src", "crates/common/src"]
        .iter()
        .any(|p| path.contains(p))
}

/// Run every rule over one source file. `path` is the workspace-relative
/// label used for diagnostics and path-scoped rules.
pub fn analyze_source(path: &str, src: &str) -> Vec<Violation> {
    let lines = lex(src);
    let metas = track(&lines);
    let ordering_scoped = in_ordering_scope(path);
    let mut raw: Vec<Violation> = Vec::new();

    for (ln, line) in lines.iter().enumerate() {
        let meta = &metas[ln];
        let code = &line.code;
        let lineno = ln + 1;
        let snippet = code.trim().to_string();
        let mut push = |rule: Rule, message: String| {
            raw.push(Violation { file: path.to_string(), line: lineno, rule, message, snippet: snippet.clone() });
        };

        // safety-comment: everywhere, including tests.
        if has_word(code, "unsafe") && !comment_block_contains(&lines, ln, "SAFETY:") {
            push(
                Rule::SafetyComment,
                "`unsafe` without a `// SAFETY:` comment on the line or immediately above \
                 — state the proof of the invariants the compiler cannot check"
                    .to_string(),
            );
        }

        if meta.in_test {
            continue; // remaining rules are production-code rules
        }

        // no-alloc regions.
        if meta.regions & REGION_NO_ALLOC != 0 {
            for pat in ALLOC_CONSTRUCTS {
                if code.contains(pat) {
                    push(
                        Rule::NoAlloc,
                        format!(
                            "allocation construct `{pat}` inside a `kite-lint: no-alloc` region \
                             — steady-state hot paths draw from pools, they do not allocate"
                        ),
                    );
                }
            }
        }

        // total-decode regions.
        if meta.regions & REGION_TOTAL_DECODE != 0 {
            for pat in PANIC_CONSTRUCTS {
                if code.contains(pat) {
                    push(
                        Rule::TotalDecode,
                        format!(
                            "panic path `{pat}` inside a `kite-lint: total-decode` region \
                             — malformed input must flow to WireError/truncation, never a panic"
                        ),
                    );
                }
            }
            if let Some(col) = find_indexing(code) {
                push(
                    Rule::TotalDecode,
                    format!(
                        "slice indexing (col {}) inside a `kite-lint: total-decode` region \
                         — use `get(..)` / pattern destructuring so truncated input cannot panic",
                        col + 1
                    ),
                );
            }
        }

        // ordering-justification (path-scoped).
        if ordering_scoped {
            let bare = ["Ordering::Relaxed", "Ordering::Acquire", "Ordering::Release", "Ordering::AcqRel"]
                .iter()
                .any(|p| code.contains(p));
            if bare {
                let justified = comment_block_contains(&lines, ln, "ordering:")
                    || comment_block_contains(&lines, statement_start(&lines, ln), "ordering:")
                    || meta
                        .fn_decl
                        .is_some_and(|d| d > 0 && comment_block_contains(&lines, d - 1, "ordering:"))
                    || meta.fn_decl.is_some_and(|d| lines[d].comment.contains("ordering:"));
                if !justified {
                    push(
                        Rule::OrderingJustification,
                        "bare atomic ordering without an `// ordering:` justification on the \
                         statement or its enclosing function"
                            .to_string(),
                    );
                }
            }
        }

        // no-blocking-in-loop regions.
        if meta.regions & REGION_EVENT_LOOP != 0 {
            for pat in BLOCKING_CONSTRUCTS {
                if code.contains(pat) {
                    push(
                        Rule::NoBlockingInLoop,
                        format!(
                            "blocking call `{pat}` inside a `kite-lint: event-loop` region \
                             — a readiness loop that blocks stalls every fd it owns"
                        ),
                    );
                }
            }
        }
    }

    // Apply suppressions.
    let mut out = Vec::new();
    for v in raw {
        match allow_for(&lines, v.line - 1, v.rule) {
            Some(true) => {} // suppressed with reason
            Some(false) => {
                out.push(Violation {
                    message: format!(
                        "`kite-lint: allow({})` without a reason — write `allow({}) — <why>`",
                        v.rule.name(),
                        v.rule.name()
                    ),
                    rule: Rule::AllowWithoutReason,
                    ..v
                });
            }
            None => out.push(v),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

/// Directories never descended into: build output, VCS state, and the
/// linter's own rule-violation fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Collect every workspace `.rs` file under `root`, sorted, as
/// `(relative-label, absolute-path)`.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every `.rs` file under `root`. IO errors on individual files are
/// skipped (racing editors, dangling symlinks) — the workspace test runs on
/// a quiescent tree.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut all = Vec::new();
    for (rel, path) in workspace_files(root)? {
        if let Ok(src) = std::fs::read_to_string(&path) {
            all.extend(analyze_source(&rel, &src));
        }
    }
    Ok(all)
}

// ---------------------------------------------------------------------------
// Ratchet baseline
// ---------------------------------------------------------------------------

/// The result of diffing current violations against the committed baseline.
pub struct Ratchet {
    /// Violations not present in the baseline — these fail the pass.
    pub new: Vec<Violation>,
    /// Baseline entries no longer observed — candidates for burn-down.
    pub fixed: Vec<String>,
    /// Baseline entries still observed (grandfathered).
    pub remaining: usize,
}

/// Parse a baseline file: one [`Violation::key`] per line, `#` comments and
/// blank lines ignored. Duplicate lines express multiplicity.
pub fn parse_baseline(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Multiset-diff `current` against `baseline` keys.
pub fn ratchet(current: &[Violation], baseline: &[String]) -> Ratchet {
    let mut budget: HashMap<&str, usize> = HashMap::new();
    for k in baseline {
        *budget.entry(k.as_str()).or_insert(0) += 1;
    }
    let mut new = Vec::new();
    let mut remaining = 0usize;
    let mut keys: Vec<String> = Vec::new();
    for v in current {
        let k = v.key();
        keys.push(k.clone());
        match budget.get_mut(k.as_str()) {
            Some(n) if *n > 0 => {
                *n -= 1;
                remaining += 1;
            }
            _ => new.push(v.clone()),
        }
    }
    let fixed = budget
        .into_iter()
        .flat_map(|(k, n)| std::iter::repeat_n(k.to_string(), n))
        .collect();
    Ratchet { new, fixed, remaining }
}

/// Render the ratchet summary line (`2 new violations, 0 fixed, 3 grandfathered`).
pub fn ratchet_summary(r: &Ratchet) -> String {
    format!(
        "{} new violation{}, {} fixed, {} grandfathered",
        r.new.len(),
        if r.new.len() == 1 { "" } else { "s" },
        r.fixed.len(),
        r.remaining
    )
}
