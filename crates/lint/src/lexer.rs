//! A hand-rolled Rust surface lexer for `kite-lint`.
//!
//! The build environment has no crates.io access, so there is no `syn`, no
//! `proc-macro2`, no clippy plugin infrastructure — the same constraint that
//! produced the hand-declared epoll FFI (`kite-net/src/sys.rs`) and the
//! hand-rolled wire codec (`kite/src/wire.rs`). The linter therefore does
//! not parse Rust; it *classifies* it. [`lex`] splits a source file into,
//! per line, the **code text** (with every comment, string literal, raw
//! string, byte string and char literal blanked out to spaces, preserving
//! column positions) and the **comment text** (everything that appeared
//! inside comments on that line). Every rule in `kite-lint` then operates on
//! those two channels: `unsafe` inside a string or a doc comment is
//! invisible to the rules, while a `// SAFETY:` marker is only ever found in
//! the comment channel.
//!
//! The classifier handles the full set of Rust-2021 lexical hazards that a
//! naive substring scan trips over:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), which Rust permits and real code contains;
//! * string literals with escapes (`"\" // not a comment"`);
//! * raw strings with arbitrary hash fences (`r#"…"#`, `br##"…"##`) in
//!   which neither escapes nor quotes terminate early;
//! * byte strings (`b"…"`) and byte chars (`b'x'`);
//! * char literals vs. lifetimes: `'a'` is a literal, `'a` in `&'a str` is
//!   code, `'\''` and `'"'` are literals — disambiguated by lookahead the
//!   same way rustc's lexer does (a quote after at most one char body, or
//!   an escape, means literal).
//!
//! Column positions are preserved exactly (blanked regions become runs of
//! spaces) so brace tracking and diagnostics can refer to real columns.

/// One source line, split into its code and comment channels.
#[derive(Debug, Clone)]
pub struct LexLine {
    /// The line's code with comments and literal *contents* blanked to
    /// spaces. String/char delimiters are blanked too, so `"a"` becomes
    /// three spaces — rules never see quote characters from literals.
    pub code: String,
    /// Concatenated text of every comment region overlapping this line.
    pub comment: String,
}

impl LexLine {
    /// True if the line carries no code tokens at all (blank or pure
    /// comment) — used by rules that scan upward over a comment block.
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nested depth.
    BlockComment(u32),
    /// Plain or byte string.
    Str,
    /// Raw (byte) string with its hash-fence length.
    RawStr(u32),
    CharLit,
}

/// Lex `src` into per-line code/comment channels. Never fails: garbage in,
/// garbage-classified-as-code out — the rules are conservative about what
/// they match, so misclassification degrades to a missed diagnostic, not a
/// panic.
pub fn lex(src: &str) -> Vec<LexLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<LexLine> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0usize;

    macro_rules! flush_line {
        () => {{
            lines.push(LexLine { code: std::mem::take(&mut code), comment: std::mem::take(&mut comment) });
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A line comment ends at the newline; strings/blocks continue.
            if state == State::LineComment {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    code.push(' ');
                    i += 1;
                } else if c == 'r' && !prev_is_ident_char(&chars, i) && raw_fence_ahead(&chars, i + 1) {
                    let hashes = count_hashes(&chars, i + 1);
                    state = State::RawStr(hashes);
                    for _ in 0..(1 + hashes + 1) {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize + 1;
                } else if c == 'b' && next == Some('"') {
                    // Byte string: only when `b` is not the tail of an ident.
                    if prev_is_ident_char(&chars, i) {
                        code.push(c);
                        i += 1;
                    } else {
                        state = State::Str;
                        code.push_str("  ");
                        i += 2;
                    }
                } else if c == 'b' && next == Some('r') && raw_fence_ahead(&chars, i + 2) {
                    if prev_is_ident_char(&chars, i) {
                        code.push(c);
                        i += 1;
                    } else {
                        let hashes = count_hashes(&chars, i + 2);
                        state = State::RawStr(hashes);
                        for _ in 0..(2 + hashes + 1) {
                            code.push(' ');
                        }
                        i += 2 + hashes as usize + 1;
                    }
                } else if c == 'b' && next == Some('\'') && !prev_is_ident_char(&chars, i) {
                    state = State::CharLit;
                    code.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    if is_char_literal(&chars, i) {
                        state = State::CharLit;
                        code.push(' ');
                        i += 1;
                    } else {
                        // Lifetime or loop label: code.
                        code.push(c);
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    comment.push_str("/*");
                    code.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    if depth > 1 {
                        comment.push_str("*/");
                    }
                    code.push_str("  ");
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push(' ');
                    if let Some(&n) = chars.get(i + 1) {
                        if n != '\n' {
                            code.push(' ');
                            i += 1;
                        }
                    }
                    i += 1;
                } else if c == '"' {
                    state = State::Code;
                    code.push(' ');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && fence_matches(&chars, i + 1, hashes) {
                    state = State::Code;
                    for _ in 0..(1 + hashes) {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    code.push(' ');
                    if chars.get(i + 1).is_some() {
                        code.push(' ');
                        i += 1;
                    }
                    i += 1;
                } else if c == '\'' {
                    state = State::Code;
                    code.push(' ');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    // Final (unterminated) line.
    if !code.is_empty() || !comment.is_empty() || lines.is_empty() {
        flush_line!();
    }
    lines
}

/// Does a raw-string fence (`#*"`) start at `chars[i]`? Callers have
/// already consumed the `r`/`br` prefix and checked it is not the tail of
/// an identifier (`ptr"` cannot occur in valid Rust, but `for r in…` shows
/// up and must not trip this).
fn raw_fence_ahead(chars: &[char], i: usize) -> bool {
    let mut j = i;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn count_hashes(chars: &[char], mut i: usize) -> u32 {
    let mut n = 0;
    while chars.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

fn fence_matches(chars: &[char], i: usize, hashes: u32) -> bool {
    for k in 0..hashes as usize {
        if chars.get(i + k) != Some(&'#') {
            return false;
        }
    }
    true
}

fn prev_is_ident_char(chars: &[char], i: usize) -> bool {
    i > 0 && chars.get(i - 1).is_some_and(|p| p.is_alphanumeric() || *p == '_')
}

/// Disambiguate `'` at `chars[i]`: char literal vs lifetime/label.
///
/// A char literal is `'X'` where X is one char or an escape; a lifetime is
/// `'ident` NOT followed by a closing quote. `'a'` → literal; `&'a str` →
/// lifetime; `'\n'` → literal; `'_` → lifetime-ish (wildcard); `'('` in
/// `matches!(c, '(')` → literal.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        None => false,
        Some('\\') => true,
        Some(c) if c.is_alphanumeric() || *c == '_' => {
            // Scan the ident/char body; literal iff exactly one char then `'`.
            if chars.get(i + 2) == Some(&'\'') {
                return true;
            }
            false
        }
        // Any other single char followed by a quote: literal like '(' or '"'.
        Some(_) => chars.get(i + 2) == Some(&'\''),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    fn comment_of(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.comment).collect()
    }

    #[test]
    fn line_comment_goes_to_comment_channel() {
        let lines = lex("let x = 1; // SAFETY: fine\n");
        assert_eq!(lines[0].code.trim_end(), "let x = 1;");
        assert!(lines[0].comment.contains("SAFETY: fine"));
    }

    #[test]
    fn unsafe_in_string_is_not_code() {
        let c = code_of("let s = \"unsafe { }\";\n");
        assert!(!c[0].contains("unsafe"), "{:?}", c);
        // Columns preserved: the trailing `;` is still at its position.
        assert!(c[0].trim_end().ends_with(';'));
    }

    #[test]
    fn unsafe_in_nested_block_comment_is_not_code() {
        let src = "/* outer /* unsafe { } */ still comment */ let y = 2;\n";
        let lines = lex(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("let y = 2;"));
        assert!(lines[0].comment.contains("unsafe"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let src = "fn a() {}\n/* one\n   unsafe two\n*/\nfn b() {}\n";
        let lines = lex(src);
        assert!(lines[1].is_code_blank());
        assert!(lines[2].is_code_blank());
        assert!(lines[2].comment.contains("unsafe two"));
        assert!(lines[4].code.contains("fn b"));
    }

    #[test]
    fn raw_string_with_comment_markers_inside() {
        let src = "let r = r#\"// not a comment \"quoted\" unsafe\"#; let z = 3;\n";
        let lines = lex(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(!lines[0].code.contains("not a comment"));
        assert!(lines[0].code.contains("let z = 3;"));
        assert!(lines[0].comment.is_empty());
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = "let a = b\"bytes // x\"; let b2 = br#\"raw \" bytes\"#; end();\n";
        let lines = lex(src);
        assert!(!lines[0].code.contains("bytes"));
        assert!(lines[0].code.contains("end();"));
        assert!(lines[0].comment.is_empty());
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        // '"' is a char literal; the string that follows must still lex.
        let src = "if c == '\"' { x = \"s\"; } fn f<'a>(v: &'a str) -> &'a str { v }\n";
        let lines = lex(src);
        assert!(lines[0].code.contains("fn f<'a>"), "{:?}", lines[0].code);
        assert!(lines[0].code.contains("&'a str"));
        // Char literal for a slash must not open a comment.
        let src2 = "if c == '/' { y(); } // real comment\n";
        let l2 = lex(src2);
        assert!(l2[0].code.contains("y();"));
        assert!(l2[0].comment.contains("real comment"));
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let src = "let q = '\\''; let u = unsafe_marker();\n";
        let lines = lex(src);
        assert!(lines[0].code.contains("unsafe_marker"));
    }

    #[test]
    fn escaped_quote_in_string_does_not_terminate() {
        let src = "let s = \"a\\\"b // still string\"; tail();\n";
        let lines = lex(src);
        assert!(lines[0].code.contains("tail();"));
        assert!(lines[0].comment.is_empty());
        assert!(!lines[0].code.contains("still string"));
    }

    #[test]
    fn columns_are_preserved() {
        let src = "let s = \"abc\"; let t = 1;\n";
        let lines = lex(src);
        // The source and code channel have identical lengths.
        assert_eq!(lines[0].code.chars().count(), src.trim_end().chars().count());
        let col = src.find("let t").unwrap();
        assert_eq!(&lines[0].code[col..col + 5], "let t");
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// has unsafe in prose\nfn g() {}\n";
        let lines = lex(src);
        assert!(lines[0].is_code_blank());
        assert!(lines[0].comment.contains("has unsafe in prose"));
    }

    #[test]
    fn lifetime_before_ident_is_code_not_char() {
        // 'static — three chars then no quote: must remain code.
        let src = "fn h(x: &'static str) -> usize { x.len() }\n";
        let lines = lex(src);
        assert!(lines[0].code.contains("&'static str"));
    }
}
