//! `kite-lint` CLI: lint the workspace against the ratchet baseline.
//!
//! ```text
//! kite-lint [--root DIR] [--baseline FILE] [--update-baseline] [--list]
//! ```
//!
//! Exit code 0 when no violations outside the baseline exist; 1 when new
//! violations are found (each printed rustc-style `file:line: rule: msg`);
//! 2 on usage/IO errors. `--update-baseline` rewrites the baseline to the
//! current violation set — only for deliberate grandfathering, never to
//! silence a regression (the diff in review shows exactly what was added).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut update = false;
    let mut list = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--baseline" => baseline = args.next().map(PathBuf::from),
            "--update-baseline" => update = true,
            "--list" => list = true,
            "--help" | "-h" => {
                eprintln!("usage: kite-lint [--root DIR] [--baseline FILE] [--update-baseline] [--list]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("kite-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("kite-lint: no workspace root found (run from the repo or pass --root)");
                return ExitCode::from(2);
            }
        },
    };
    let baseline_path = baseline.unwrap_or_else(|| root.join("lint-baseline.txt"));

    let violations = match kite_lint::analyze_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("kite-lint: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if list {
        for v in &violations {
            println!("{v}");
        }
        println!("kite-lint: {} total violation(s)", violations.len());
        return ExitCode::SUCCESS;
    }

    if update {
        let mut keys: Vec<String> = violations.iter().map(|v| v.key()).collect();
        keys.sort();
        let mut text = String::from(
            "# kite-lint ratchet baseline — grandfathered violations, one `file|rule|snippet`\n\
             # per line. Entries may only burn down; new violations fail the pass. Regenerate\n\
             # deliberately with `scripts/lint.sh --update-baseline` and justify in review.\n",
        );
        for k in &keys {
            text.push_str(k);
            text.push('\n');
        }
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("kite-lint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!("kite-lint: baseline rewritten with {} entr{}", keys.len(), if keys.len() == 1 { "y" } else { "ies" });
        return ExitCode::SUCCESS;
    }

    let baseline_keys = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => kite_lint::parse_baseline(&t),
        Err(_) => Vec::new(), // missing baseline = empty baseline
    };
    let r = kite_lint::ratchet(&violations, &baseline_keys);
    for v in &r.new {
        println!("{v}");
    }
    println!("kite-lint: {}", kite_lint::ratchet_summary(&r));
    if !r.fixed.is_empty() {
        println!(
            "kite-lint: {} baseline entr{} no longer fire — burn them down with --update-baseline",
            r.fixed.len(),
            if r.fixed.len() == 1 { "y" } else { "ies" }
        );
    }
    if r.new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walk upward from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
