//! The lint pass as a workspace test: `cargo test -q` fails if anyone
//! introduces a violation the committed baseline does not grandfather.
//! This is the same check `scripts/lint.sh` (and the bench/stress
//! preambles) run as a binary — wired into the test suite so it cannot be
//! forgotten.

use std::path::Path;

use kite_lint::{analyze_workspace, parse_baseline, ratchet, ratchet_summary};

fn workspace_root() -> &'static Path {
    // crates/lint/ -> crates/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

#[test]
fn workspace_has_no_new_lint_violations() {
    let root = workspace_root();
    let violations = analyze_workspace(root).expect("walk workspace sources");
    let baseline_text =
        std::fs::read_to_string(root.join("lint-baseline.txt")).unwrap_or_default();
    let r = ratchet(&violations, &parse_baseline(&baseline_text));
    if !r.new.is_empty() {
        for v in &r.new {
            eprintln!("{v}");
        }
        panic!(
            "kite-lint: {} — fix the new violation(s), add a reasoned \
             `// kite-lint: allow(<rule>) — <why>`, or (last resort) re-run \
             `kite-lint --update-baseline`",
            ratchet_summary(&r)
        );
    }
}

#[test]
fn baseline_stays_burned_down() {
    // The audit drove the baseline to empty; it must not silently regrow.
    // Deleting entries is always fine — this only guards the size.
    let root = workspace_root();
    let baseline_text =
        std::fs::read_to_string(root.join("lint-baseline.txt")).unwrap_or_default();
    let entries = parse_baseline(&baseline_text);
    assert!(
        entries.is_empty(),
        "lint-baseline.txt regrew to {} grandfathered entr{} — new code must \
         pass clean or carry a reasoned allow, not hide in the baseline: {:?}",
        entries.len(),
        if entries.len() == 1 { "y" } else { "ies" },
        entries
    );
}

#[test]
fn stale_baseline_entries_are_reported_as_fixed() {
    // A baseline key that no longer matches any violation must surface in
    // `fixed` (so burn-down progress is visible), never in `new`.
    let root = workspace_root();
    let violations = analyze_workspace(root).expect("walk workspace sources");
    let stale = vec!["no/such/file.rs|no-alloc|let v = Vec::new();".to_string()];
    let r = ratchet(&violations, &stale);
    assert_eq!(r.fixed, stale);
    assert!(r.new.iter().all(|v| v.file != "no/such/file.rs"));
}
