//! The dynamic twin of the static `no-alloc` rule: a counting global
//! allocator proves the three `kite-lint: no-alloc` steady-state paths —
//! `Outbox` flush→recycle, `InFlightTable` resolve/reuse, and the fabric's
//! pooled encode→ring→decode cycle — perform **zero** heap allocations
//! once warmed up. The static rule catches allocation *constructs*; this
//! test catches allocation *behavior* (a pool that silently stops pooling
//! passes the lexical rule but fails here).
//!
//! The armed flag is thread-local: the libtest harness runs bookkeeping
//! threads in this same process, and their incidental allocations must not
//! bleed into the count (they did — the assertion flaked by 1-2 counts
//! until only the measuring thread was counted).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use kite::inflight::{EsWriteState, InFlight, InFlightTable, Meta};
use kite::wire;
use kite::{Msg, Op};
use kite_common::{Key, Lc, NodeId, NodeSet, OpId, SessionId, Val};
use kite_net::ring::{OutRing, Pool};
use kite_simnet::Outbox;

/// Counts allocator calls while [`ARMED`]; allocation itself is delegated
/// untouched to [`System`].
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Armed on the measuring thread only. `const`-initialized `Cell<bool>`
    /// carries no destructor, so reading it from inside the allocator can
    /// never recurse into allocation or trip TLS-teardown panics.
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

fn armed() -> bool {
    ARMED.try_with(Cell::get).unwrap_or(false)
}

// SAFETY: every method delegates directly to `System`, which upholds the
// GlobalAlloc contract; the only addition is a counter bump with no effect
// on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout contract as `System::alloc` (delegated verbatim).
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: same pointer/layout contract as `System::dealloc`. Frees are
    // deliberately not counted: handing memory *back* is always legal on a
    // no-alloc path.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: same contract as `System::realloc` (delegated verbatim).
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Run `f` with this thread's counter armed; returns how many allocations
/// it made.
fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::SeqCst);
    ARMED.with(|a| a.set(true));
    f();
    ARMED.with(|a| a.set(false));
    ALLOCS.load(Ordering::SeqCst) - before
}

fn sample_msg(i: u64) -> Msg {
    Msg::EsWrite { rid: i, key: Key(i), val: Val::from_u64(i * 3), lc: Lc::new(i + 1, NodeId(1)) }
}

fn es_entry() -> InFlight {
    InFlight::EsWrite(EsWriteState {
        meta: Meta {
            sess: 0,
            op_id: OpId::new(SessionId::new(NodeId(0), 0), 1),
            key: Key(7),
            op: Op::Write { key: Key(7), val: Val::from_u64(9) },
            invoked_at: 0,
            last_sent: 0,
        },
        val: Val::from_u64(9),
        lc: Lc::ZERO,
        acked: NodeSet::EMPTY,
    })
}

/// One broadcast→flush→recycle cycle; handed-out batches park in `handed`
/// (pre-sized) until the flush borrow ends, then recycle.
fn outbox_cycle(ob: &mut Outbox<Msg>, handed: &mut Vec<(NodeId, Vec<Msg>)>) {
    for i in 0..8 {
        ob.broadcast(NodeId(0), sample_msg(i));
    }
    ob.flush(|dst, batch| handed.push((dst, batch)));
    for (_, batch) in handed.drain(..) {
        ob.recycle(batch);
    }
}

/// One fabric-shaped readiness cycle with no sockets: encode a batch into
/// a pooled byte buffer, stage it on the ring, decode it back into a
/// pooled message buffer (what `decode_conn_frames` does per readable
/// connection), and return every buffer to its pool.
fn fabric_cycle(byte_pool: &Pool<u8>, msg_pool: &Pool<Msg>, ring: &mut OutRing, batch: &[Msg]) {
    let mut buf = byte_pool.pop();
    let frames = wire::encode_frames(NodeId(0), 0, batch, &mut buf);
    assert_eq!(frames, 1);

    let mut msgs = msg_pool.pop();
    let prefix = [buf[0], buf[1], buf[2], buf[3]];
    let blen = wire::frame_body_len(prefix).expect("own frame");
    let (src, _) = wire::decode_frame_body(&buf[4..4 + blen], &mut msgs).expect("own frame");
    assert_eq!(src, NodeId(0));
    assert_eq!(msgs.len(), batch.len());
    msg_pool.put(msgs);

    ring.push(buf).expect("ring has room");
    ring.clear_into(byte_pool);
}

#[test]
fn steady_state_paths_do_not_allocate() {
    // --- Path 1: Outbox flush→recycle (kite-lint: no-alloc on `flush`).
    let mut ob: Outbox<Msg> = Outbox::new(4);
    let mut handed: Vec<(NodeId, Vec<Msg>)> = Vec::with_capacity(4);
    // Warm up: first flushes draw replacement buffers from the allocator
    // until enough circulate through the pool.
    for _ in 0..4 {
        outbox_cycle(&mut ob, &mut handed);
    }
    let n = count_allocs(|| {
        for _ in 0..100 {
            outbox_cycle(&mut ob, &mut handed);
        }
    });
    assert_eq!(n, 0, "Outbox steady state allocated {n} times over 100 cycles");

    // --- Path 2: InFlightTable resolve/reuse (no-alloc on slot_of/get/
    // get_mut/remove; remove→insert recycles the slot LIFO).
    let mut table = InFlightTable::with_capacity(8);
    let mut rid = table.insert(es_entry());
    // Warm-up: one full cycle so the free list has been pushed to once.
    let warm = table.remove(rid).expect("live rid");
    rid = table.insert(warm);
    let n = count_allocs(|| {
        for _ in 0..1000 {
            match table.get_mut(rid).expect("live rid") {
                InFlight::EsWrite(s) => s.acked = NodeSet::EMPTY,
                other => panic!("wrong entry kind: {}", other.tag()),
            }
            let entry = table.remove(rid).expect("live rid");
            rid = table.insert(entry);
        }
    });
    assert_eq!(n, 0, "InFlightTable steady state allocated {n} times over 1000 cycles");

    // --- Path 3: the fabric readiness cycle (no-alloc on flush_outbox /
    // decode_conn_frames), sockets mocked out by driving the same pools,
    // codec and ring the event loop uses.
    let byte_pool = Pool::new(8);
    let msg_pool = Pool::new(8);
    let mut ring = OutRing::new();
    let batch: Vec<Msg> = (0..8).map(sample_msg).collect();
    for _ in 0..4 {
        fabric_cycle(&byte_pool, &msg_pool, &mut ring, &batch);
    }
    let n = count_allocs(|| {
        for _ in 0..100 {
            fabric_cycle(&byte_pool, &msg_pool, &mut ring, &batch);
        }
    });
    assert_eq!(n, 0, "fabric steady state allocated {n} times over 100 cycles");
}

/// Path 4: the metrics recording hot paths (`kite-lint: no-alloc` on
/// `Counter::incr`/`add`, `Gauge::set`, `Histogram::record`,
/// `Hll::observe`). Construction allocates (registers, bucket arrays);
/// recording must never — these run inside `sink_apply`, the session
/// retire path and the WAL flusher.
#[test]
fn metric_recording_does_not_allocate() {
    use kite_metrics::{Counter, Gauge, Histogram, Hll};

    let c = Counter::new();
    let g = Gauge::new();
    let h = Histogram::new();
    let sk = Hll::new();
    // Warm up (recording has no lazy init, but keep the shape uniform
    // with the other guard paths).
    for i in 0..64u64 {
        c.incr();
        g.set(i);
        h.record(i * 31);
        sk.observe(i);
    }
    let n = count_allocs(|| {
        for i in 0..10_000u64 {
            c.incr();
            c.add(3);
            g.set(i);
            h.record(i.wrapping_mul(0x9E3779B97F4A7C15));
            sk.observe(i);
        }
    });
    assert_eq!(n, 0, "metric recording allocated {n} times over 10k cycles");
    assert_eq!(c.get(), 64 + 4 * 10_000);
    assert!(sk.estimate() > 0);
}
