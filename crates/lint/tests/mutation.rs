//! Mutation tests for the linter itself: inject one violation of each rule
//! into a scratch source tree and assert the workspace walk catches it.
//! A linter change that silently stops detecting a rule fails here, not in
//! code review six months later.

use std::fs;
use std::path::PathBuf;

use kite_lint::{analyze_workspace, Rule};

/// A scratch tree under the OS tempdir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("kite-lint-mut-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    /// Write `src` at `rel` (creating parents) and lint the whole tree.
    fn lint_with(&self, rel: &str, src: &str) -> Vec<(String, Rule)> {
        let path = self.0.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, src).unwrap();
        analyze_workspace(&self.0)
            .unwrap()
            .into_iter()
            .map(|v| (v.file, v.rule))
            .collect()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[test]
fn injected_violations_are_caught_per_rule() {
    let mutations: &[(&str, &str, Rule)] = &[
        (
            "crates/demo/src/alloc.rs",
            "// kite-lint: no-alloc\nfn hot() {\n    let v = Vec::new();\n}\n",
            Rule::NoAlloc,
        ),
        (
            "crates/demo/src/unsafe_site.rs",
            "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
            Rule::SafetyComment,
        ),
        (
            "crates/demo/src/decode.rs",
            "// kite-lint: total-decode\nfn d(b: &[u8]) -> u8 {\n    b[0]\n}\n",
            Rule::TotalDecode,
        ),
        (
            // Path-scoped rule: the injected file must live under a scoped crate.
            "crates/kvs/src/atomics.rs",
            "fn f(c: &AtomicU64) {\n    c.store(1, Ordering::Relaxed);\n}\n",
            Rule::OrderingJustification,
        ),
        (
            "crates/demo/src/evloop.rs",
            "// kite-lint: event-loop\nfn run() {\n    loop {\n        std::thread::sleep(D);\n    }\n}\n",
            Rule::NoBlockingInLoop,
        ),
        (
            "crates/demo/src/lazy_allow.rs",
            "// kite-lint: no-alloc\nfn hot() {\n    // kite-lint: allow(no-alloc)\n    let v = Vec::new();\n}\n",
            Rule::AllowWithoutReason,
        ),
    ];
    for (rel, src, rule) in mutations {
        let scratch = Scratch::new(rule.name());
        let found = scratch.lint_with(rel, src);
        assert!(
            found.iter().any(|(f, r)| f == rel && r == rule),
            "injected {} violation in {rel} was not detected (got {found:?})",
            rule.name()
        );
    }
}

#[test]
fn clean_tree_produces_no_violations() {
    let scratch = Scratch::new("clean");
    let found = scratch.lint_with(
        "crates/demo/src/lib.rs",
        "// SAFETY-free, allocation-free, annotation-free module.\nfn f() -> u8 {\n    7\n}\n",
    );
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn walk_skips_target_and_fixture_directories() {
    let scratch = Scratch::new("skips");
    // Violating files in skipped directories must not surface.
    for rel in ["target/debug/build/gen.rs", "crates/demo/fixtures/bad.rs"] {
        let path = scratch.0.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, "// kite-lint: no-alloc\nfn f() {\n    let v = Vec::new();\n}\n").unwrap();
    }
    let found = scratch.lint_with("crates/demo/src/lib.rs", "fn ok() {}\n");
    assert!(found.is_empty(), "{found:?}");
}
