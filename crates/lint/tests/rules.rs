//! Fixture-based rule tests: for every rule, a violating snippet, a clean
//! counterpart, a reasoned suppression, and a reasonless suppression (which
//! must itself be flagged). Sources are inline strings fed straight to
//! [`kite_lint::analyze_source`] — no fixture files on disk, so the
//! workspace walk can never accidentally lint them.

use kite_lint::{analyze_source, Rule, Violation};

/// Violations of `rule` in `src`, linted under a path inside the
/// ordering-justification scope.
fn scoped(src: &str, rule: Rule) -> Vec<Violation> {
    analyze_source("crates/kvs/src/fixture.rs", src)
        .into_iter()
        .filter(|v| v.rule == rule)
        .collect()
}

/// Violations of `rule` in `src`, linted under a neutral path.
fn plain(src: &str, rule: Rule) -> Vec<Violation> {
    analyze_source("crates/demo/src/fixture.rs", src)
        .into_iter()
        .filter(|v| v.rule == rule)
        .collect()
}

// ---------------------------------------------------------------------------
// no-alloc
// ---------------------------------------------------------------------------

#[test]
fn no_alloc_flags_allocation_in_annotated_region() {
    let src = r#"
// kite-lint: no-alloc
fn flush() {
    let batch: Vec<u8> = Vec::new();
    drop(batch);
}
"#;
    let v = plain(src, Rule::NoAlloc);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].line, 4);
    assert!(v[0].message.contains("Vec::new"));
}

#[test]
fn no_alloc_ignores_unannotated_code_and_tests() {
    let src = r#"
fn unannotated() {
    let batch: Vec<u8> = Vec::new();
    drop(batch);
}

// kite-lint: no-alloc
fn hot() {
    let x = pool.pop();
}

#[cfg(test)]
mod tests {
    // kite-lint: no-alloc
    fn helper() {
        let v = vec![1, 2, 3];
    }
}
"#;
    assert!(plain(src, Rule::NoAlloc).is_empty());
}

#[test]
fn no_alloc_region_ends_at_the_closing_brace() {
    let src = r#"
// kite-lint: no-alloc
fn hot() {
    let x = 1;
}

fn cold() {
    let v = Vec::with_capacity(64);
}
"#;
    assert!(plain(src, Rule::NoAlloc).is_empty());
}

#[test]
fn no_alloc_suppression_with_reason_is_honored() {
    let src = r#"
// kite-lint: no-alloc
fn flush() {
    // kite-lint: allow(no-alloc) — pool-dry cold path; steady state pops.
    let replacement = Vec::with_capacity(64);
}
"#;
    assert!(plain(src, Rule::NoAlloc).is_empty());
    assert!(plain(src, Rule::AllowWithoutReason).is_empty());
}

#[test]
fn no_alloc_suppression_without_reason_is_flagged() {
    let src = r#"
// kite-lint: no-alloc
fn flush() {
    // kite-lint: allow(no-alloc)
    let replacement = Vec::with_capacity(64);
}
"#;
    assert!(plain(src, Rule::NoAlloc).is_empty());
    let v = plain(src, Rule::AllowWithoutReason);
    assert_eq!(v.len(), 1, "{v:?}");
}

#[test]
fn suppression_covers_a_wrapped_statement() {
    // The allow sits above the statement's first line; the violating
    // construct is on the continuation line.
    let src = r#"
// kite-lint: no-alloc
fn flush() {
    // kite-lint: allow(no-alloc) — pool-dry cold path only.
    let replacement =
        pool.pop().unwrap_or_else(|| Vec::with_capacity(64));
}
"#;
    assert!(plain(src, Rule::NoAlloc).is_empty());
}

#[test]
fn suppression_for_a_different_rule_does_not_apply() {
    let src = r#"
// kite-lint: no-alloc
fn flush() {
    // kite-lint: allow(total-decode) — wrong rule on purpose.
    let batch: Vec<u8> = Vec::new();
}
"#;
    assert_eq!(plain(src, Rule::NoAlloc).len(), 1);
}

// ---------------------------------------------------------------------------
// safety-comment
// ---------------------------------------------------------------------------

#[test]
fn unsafe_without_safety_comment_is_flagged() {
    let src = r#"
fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    let v = plain(src, Rule::SafetyComment);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].line, 3);
}

#[test]
fn unsafe_with_safety_comment_above_is_clean() {
    let src = r#"
fn f(p: *const u8) -> u8 {
    // SAFETY: caller contract guarantees `p` is valid for reads.
    unsafe { *p }
}
"#;
    assert!(plain(src, Rule::SafetyComment).is_empty());
}

#[test]
fn safety_comment_applies_inside_tests_too() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        unsafe { core::hint::unreachable_unchecked() }
    }
}
"#;
    assert_eq!(plain(src, Rule::SafetyComment).len(), 1);
}

#[test]
fn unsafe_in_strings_and_comments_is_not_code() {
    let src = r##"
fn f() {
    let s = "unsafe";
    // unsafe in a comment
    let r = r#"unsafe"#;
}
"##;
    // The lexer must blank both literals and comments.
    assert!(plain(src, Rule::SafetyComment).is_empty());
}

// ---------------------------------------------------------------------------
// total-decode
// ---------------------------------------------------------------------------

#[test]
fn total_decode_flags_unwrap_and_indexing() {
    let src = r#"
// kite-lint: total-decode
fn decode(b: &[u8]) -> u32 {
    let x = b.first().unwrap();
    u32::from(b[0])
}
"#;
    let v = plain(src, Rule::TotalDecode);
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v[0].message.contains(".unwrap()"));
    assert!(v[1].message.contains("indexing"));
}

#[test]
fn total_decode_allows_total_constructs() {
    let src = r#"
// kite-lint: total-decode
fn decode(b: &[u8]) -> Option<u32> {
    let arr: [u8; 4] = b.get(0..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}
"#;
    assert!(plain(src, Rule::TotalDecode).is_empty());
}

#[test]
fn total_decode_ignores_type_syntax_and_patterns() {
    // `&'a [u8]`, slice patterns and array literals are not indexing.
    let src = r#"
// kite-lint: total-decode
fn decode<'a>(buf: &'a [u8]) -> &'a [u8] {
    let [_a, _b] = [1u8, 2u8];
    let _arr = [0u8; 4];
    buf
}
"#;
    assert!(plain(src, Rule::TotalDecode).is_empty());
}

#[test]
fn total_decode_flags_panic_macros() {
    let src = r#"
// kite-lint: total-decode
fn decode(tag: u8) -> u8 {
    match tag {
        0 => 0,
        _ => unreachable!("bad tag"),
    }
}
"#;
    assert_eq!(plain(src, Rule::TotalDecode).len(), 1);
}

// ---------------------------------------------------------------------------
// ordering-justification
// ---------------------------------------------------------------------------

#[test]
fn bare_ordering_in_scoped_crate_is_flagged() {
    let src = r#"
fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}
"#;
    let v = scoped(src, Rule::OrderingJustification);
    assert_eq!(v.len(), 1, "{v:?}");
}

#[test]
fn ordering_comment_on_statement_or_fn_satisfies_the_rule() {
    let on_stmt = r#"
fn bump(c: &AtomicU64) {
    // ordering: monitoring counter; no payload behind it.
    c.fetch_add(1, Ordering::Relaxed);
}
"#;
    let on_fn = r#"
// ordering: everything here is a monitoring counter.
fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}
"#;
    assert!(scoped(on_stmt, Rule::OrderingJustification).is_empty());
    assert!(scoped(on_fn, Rule::OrderingJustification).is_empty());
}

#[test]
fn ordering_comment_covers_multi_line_statements() {
    let src = r#"
fn claim(slot: &AtomicU64) -> bool {
    // ordering: Acquire on success pairs with the Release publish.
    slot.compare_exchange(
        0,
        1,
        Ordering::Acquire,
        Ordering::Relaxed,
    )
    .is_ok()
}
"#;
    assert!(scoped(src, Rule::OrderingJustification).is_empty());
}

#[test]
fn seqcst_needs_no_justification_and_scope_is_path_gated() {
    let seqcst = r#"
fn f(c: &AtomicU64) {
    c.store(1, Ordering::SeqCst);
}
"#;
    assert!(scoped(seqcst, Rule::OrderingJustification).is_empty());
    // Same bare Relaxed outside the scoped crates: not this rule's business.
    let bare = r#"
fn f(c: &AtomicU64) {
    c.store(1, Ordering::Relaxed);
}
"#;
    assert!(plain(bare, Rule::OrderingJustification).is_empty());
}

#[test]
fn kite_common_is_inside_the_ordering_scope() {
    // The packed membership cell (quorum/voter reads on every round) lives
    // in kite-common, so its atomics carry justifications too.
    let bare = r#"
fn epoch(cell: &AtomicU64) -> u32 {
    (cell.load(Ordering::Relaxed) >> 32) as u32
}
"#;
    let v: Vec<Violation> = analyze_source("crates/common/src/fixture.rs", bare)
        .into_iter()
        .filter(|v| v.rule == Rule::OrderingJustification)
        .collect();
    assert_eq!(v.len(), 1, "{v:?}");
}

// ---------------------------------------------------------------------------
// no-blocking-in-loop
// ---------------------------------------------------------------------------

#[test]
fn blocking_calls_in_event_loop_are_flagged() {
    let src = r#"
// kite-lint: event-loop
fn run(&mut self) {
    loop {
        std::thread::sleep(Duration::from_millis(1));
        let g = self.state.lock();
        self.stream.write_all(&buf);
    }
}
"#;
    let v = plain(src, Rule::NoBlockingInLoop);
    assert_eq!(v.len(), 3, "{v:?}");
}

#[test]
fn nonblocking_variants_are_clean() {
    let src = r#"
// kite-lint: event-loop
fn run(&mut self) {
    loop {
        while let Ok(c) = self.rx.try_recv() {
            self.register(c);
        }
        match self.poller.wait(&mut events, 0) {
            Ok(_) => {}
            Err(_) => break,
        }
    }
}
"#;
    assert!(plain(src, Rule::NoBlockingInLoop).is_empty());
}

// ---------------------------------------------------------------------------
// Diagnostics & ratchet
// ---------------------------------------------------------------------------

#[test]
fn diagnostic_format_is_file_line_rule_message() {
    let src = "// kite-lint: no-alloc\nfn f() {\n    let v = Vec::new();\n}\n";
    let v = analyze_source("crates/x/src/y.rs", src);
    assert_eq!(v.len(), 1);
    let rendered = v[0].to_string();
    assert!(
        rendered.starts_with("crates/x/src/y.rs:3: no-alloc: "),
        "unexpected diagnostic: {rendered}"
    );
}

#[test]
fn ratchet_keys_are_line_number_free() {
    let a = analyze_source("f.rs", "// kite-lint: no-alloc\nfn f() {\n    let v = Vec::new();\n}\n");
    // Same violation shifted three lines down: identical key.
    let b = analyze_source(
        "f.rs",
        "\n\n\n// kite-lint: no-alloc\nfn f() {\n    let v = Vec::new();\n}\n",
    );
    assert_eq!(a[0].key(), b[0].key());
    assert_ne!(a[0].line, b[0].line);
}

#[test]
fn ratchet_diffs_as_a_multiset() {
    use kite_lint::{parse_baseline, ratchet, ratchet_summary};
    let src = "// kite-lint: no-alloc\nfn f() {\n    let a = Vec::new();\n    let b = Vec::new();\n}\n";
    let current = analyze_source("f.rs", src);
    assert_eq!(current.len(), 2);

    // Empty baseline: both are new.
    let r = ratchet(&current, &parse_baseline("# header only\n"));
    assert_eq!(r.new.len(), 2);
    assert_eq!(r.fixed.len(), 0);
    assert_eq!(r.remaining, 0);

    // Baseline holds one copy: one grandfathered, one new (multiset, not set).
    let one = current[0].key();
    let r = ratchet(&current, &parse_baseline(&one));
    assert_eq!(r.new.len(), 1);
    assert_eq!(r.remaining, 1);

    // Baseline holds both plus a stale entry: nothing new, one fixed.
    let baseline = format!("{}\n{}\nstale.rs|no-alloc|gone()\n", current[0].key(), current[1].key());
    let r = ratchet(&current, &parse_baseline(&baseline));
    assert_eq!(r.new.len(), 0);
    assert_eq!(r.fixed, vec!["stale.rs|no-alloc|gone()".to_string()]);
    assert_eq!(r.remaining, 2);
    assert_eq!(ratchet_summary(&r), "0 new violations, 1 fixed, 2 grandfathered");
}
