//! One Kite node as a real process: cluster bootstrap over [`TcpNet`],
//! local and remote client sessions, watchdog, clean shutdown.
//!
//! [`NodeRuntime::launch`] is `kite::Cluster::launch` for **one** node of a
//! multi-process deployment: it builds the node's shared state, its
//! sessions (the same `SessionDriver::External` plumbing the in-process
//! cluster uses), its `Worker` actors, and drives them over the TCP
//! fabric. Remote clients claim sessions through the client protocol
//! (`kite::wire`) and get completions matched by op sequence number,
//! exactly like an in-process [`kite::SessionHandle`].

use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use kite::api::{Completion, Op};
use kite::session::{Session, SessionDriver};
use kite::{NodeShared, ProtocolMode, SessionHandle, Worker};
use kite_common::{ClusterConfig, KiteError, NodeId, Result, SessionId};
use kite_kvs::DurabilitySink;
use kite_wal::{RecoveryStats, Wal};
use parking_lot::Mutex;

use crate::fabric::{
    spawn_tcp_workers, ClientSessions, NodeStopHandle, TcpNet, TcpNetCfg, TcpWorkerIo,
};

type SessionPlumbing = (Sender<Op>, Receiver<Completion>);

/// Configuration of one node of a real-network deployment.
pub struct NodeConfig {
    /// Protocol/deployment parameters (must agree across the cluster:
    /// `nodes`, `workers_per_node` and `sessions_per_worker` define the
    /// topology every peer assumes).
    pub cluster: ClusterConfig,
    /// Protocol stack to run.
    pub mode: ProtocolMode,
    /// This node's id.
    pub me: NodeId,
    /// Fabric address of every node, indexed by node id.
    pub peers: Vec<String>,
    /// Pre-bound fabric listener (overrides `peers[me]` — lets tests bind
    /// `127.0.0.1:0` first and distribute real addresses).
    pub fabric_listener: Option<std::net::TcpListener>,
    /// Metrics/dump scrape endpoint address (e.g. `127.0.0.1:9100`). The
    /// listener is registered on worker 0's epoll loop — live observability
    /// costs zero extra threads. `None` disables the endpoint.
    pub metrics_addr: Option<String>,
    /// Pre-bound scrape listener (overrides `metrics_addr`; lets tests
    /// bind `127.0.0.1:0`).
    pub metrics_listener: Option<std::net::TcpListener>,
}

impl NodeConfig {
    /// A node config with no listener override and no metrics endpoint.
    pub fn new(cluster: ClusterConfig, mode: ProtocolMode, me: NodeId, peers: Vec<String>) -> Self {
        NodeConfig {
            cluster,
            mode,
            me,
            peers,
            fabric_listener: None,
            metrics_addr: None,
            metrics_listener: None,
        }
    }
}

/// A running Kite node over TCP.
pub struct NodeRuntime {
    cfg: ClusterConfig,
    mode: ProtocolMode,
    me: NodeId,
    net: TcpNet,
    stop: Option<NodeStopHandle>,
    shared: Arc<NodeShared>,
    slots: Arc<Mutex<Vec<Option<SessionPlumbing>>>>,
    wal: Option<Arc<Wal>>,
    recovery: Option<RecoveryStats>,
    metrics_addr: Option<SocketAddr>,
}

impl NodeRuntime {
    /// Build and start one node. Peer links dial in the background with
    /// backoff, so nodes may launch in any order.
    pub fn launch(cfg: NodeConfig) -> Result<NodeRuntime> {
        cfg.cluster.validate().map_err(KiteError::BadConfig)?;
        if cfg.peers.len() != cfg.cluster.nodes {
            return Err(KiteError::BadConfig(format!(
                "peer list has {} addresses for a {}-node cluster",
                cfg.peers.len(),
                cfg.cluster.nodes
            )));
        }
        if cfg.me.idx() >= cfg.cluster.nodes {
            return Err(KiteError::BadConfig(format!("node id {} out of range", cfg.me)));
        }
        let ccfg = cfg.cluster;
        let (net, ios) = TcpNet::bind(TcpNetCfg {
            me: cfg.me,
            peers: cfg.peers,
            workers: ccfg.workers_per_node,
            sessions_per_worker: ccfg.sessions_per_worker,
            listener: cfg.fabric_listener,
        })
        .map_err(|e| KiteError::Net(format!("bind fabric: {e}")))?;

        let shared = NodeShared::new(cfg.me, ccfg.clone(), Arc::clone(&net.counters));

        // Durability: recover whatever the previous incarnation made
        // durable *before* the workers (or the WAL sink — a sink observing
        // its own replay would double every record) can see the store, then
        // attach the group-commit log to the store's apply choke points.
        // Replaying through `apply_max` rebuilds the Merkle lattice, so the
        // first anti-entropy sweep against the peers heals exactly the
        // downtime delta.
        let (wal, recovery) = if ccfg.wal {
            let dir =
                std::path::Path::new(&ccfg.wal_dir).join(format!("node{}", cfg.me.idx()));
            let stats = kite_wal::recover_into(&dir, &shared.store)
                .map_err(|e| KiteError::Net(format!("wal recovery: {e}")))?;
            let src = Arc::clone(&shared);
            let wal = Wal::open(
                &dir,
                ccfg.wal_group_commit_ns,
                ccfg.wal_snapshot_interval_ns,
                Box::new(move |f| src.store.for_each_entry(|k, lc, v| f(k, lc, v))),
            )
            .map_err(|e| KiteError::Net(format!("wal open: {e}")))?;
            shared.store.attach_sink(Arc::clone(&wal) as Arc<dyn DurabilitySink>);
            (Some(wal), Some(stats))
        } else {
            (None, None)
        };

        // Metrics endpoint: bind (or adopt) the scrape listener and hand it
        // to worker 0's event loop. The whole observability plane — hub,
        // listener, scrape conns — rides the existing epoll budget; the
        // node's thread count is identical with metrics on or off.
        let metrics_listener = match (cfg.metrics_listener, &cfg.metrics_addr) {
            (Some(l), _) => Some(l),
            (None, Some(addr)) => Some(
                crate::fabric::bind_reuseaddr(addr)
                    .map_err(|e| KiteError::Net(format!("bind metrics {addr}: {e}")))?,
            ),
            (None, None) => None,
        };
        let mut metrics_addr = None;
        let mut ios = ios;
        if let Some(listener) = metrics_listener {
            metrics_addr = listener.local_addr().ok();
            let hub = crate::scrape::node_metrics_hub(
                cfg.me,
                format!("{:?}", cfg.mode),
                &shared,
                &net.counters,
                net.links(),
                wal.as_ref(),
                ccfg.workers_per_node,
            );
            ios[0].scrape = Some(crate::fabric::ScrapeSource { listener, hub });
        }

        // Session plumbing: identical wiring to `Cluster::launch`, one node.
        // The slot table is shared with the worker event loops, which serve
        // remote session claims directly (no bridge threads).
        let mut slot_vec: Vec<Option<SessionPlumbing>> = Vec::new();
        let mut workers: Vec<(Worker, TcpWorkerIo)> = Vec::new();
        for io in ios {
            let w = io.worker;
            let mut sessions = Vec::with_capacity(ccfg.sessions_per_worker);
            for i in 0..ccfg.sessions_per_worker {
                let slot = (w * ccfg.sessions_per_worker + i) as u32;
                let sid = SessionId::new(cfg.me, slot);
                let (op_tx, op_rx) = unbounded();
                let (done_tx, done_rx) = unbounded();
                let mut sess = Session::new(sid);
                sess.driver = SessionDriver::External { rx: op_rx, tx: done_tx };
                sessions.push(sess);
                slot_vec.push(Some((op_tx, done_rx)));
            }
            let worker = Worker::new(w, Arc::clone(&shared), cfg.mode, sessions, None);
            workers.push((worker, io));
        }
        let slots = Arc::new(Mutex::new(slot_vec));
        let rigs = workers
            .into_iter()
            .map(|(worker, io)| {
                let sessions = ClientSessions { me: cfg.me, slots: Arc::clone(&slots) };
                (worker, io, Some(sessions))
            })
            .collect();
        let stop = spawn_tcp_workers(rigs, &net);

        Ok(NodeRuntime {
            cfg: ccfg,
            mode: cfg.mode,
            me: cfg.me,
            net,
            stop: Some(stop),
            shared,
            slots,
            wal,
            recovery,
            metrics_addr,
        })
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// The deployment configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The protocol stack this node runs.
    pub fn mode(&self) -> ProtocolMode {
        self.mode
    }

    /// The address the fabric listener bound — peers dial this, and remote
    /// clients connect to the same port with a client hello.
    pub fn addr(&self) -> SocketAddr {
        self.net.local_addr()
    }

    /// Node-shared protocol state (store, epoch, delinquency) — for tests
    /// and diagnostics.
    pub fn shared(&self) -> &Arc<NodeShared> {
        &self.shared
    }

    /// This node's protocol counters.
    pub fn counters(&self) -> &kite_common::stats::ProtoCounters {
        &self.net.counters
    }

    /// Claim a **local** session on this node (same claim-once semantics
    /// as `Cluster::session`).
    pub fn session(&self, slot: u32) -> Result<SessionHandle> {
        let (tx, rx) = claim_slot(&self.slots, self.me, slot)?;
        Ok(SessionHandle::from_channels(SessionId::new(self.me, slot), tx, rx))
    }

    /// The node's write-ahead log, when durability is on.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// The address the metrics scrape endpoint bound (resolves `:0`), when
    /// the endpoint is enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The per-peer link table (frames/sheds/decode errors per link) — the
    /// transport-side stats the bench bins report per row.
    pub fn links(&self) -> &Arc<crate::link::LinkTable> {
        self.net.links()
    }

    /// Repoint peer `node`'s fabric address at runtime (empty string
    /// retires the slot). Returns whether the address actually changed;
    /// on a change the dial loops tear down any link to the old address
    /// and redial the new one from a fresh backoff ladder. This is the
    /// ops hook behind node replacement: when a slot's replacement comes
    /// up elsewhere, survivors repoint instead of restarting.
    pub fn set_peer_addr(&self, node: NodeId, addr: impl Into<String>) -> bool {
        self.net.set_peer_addr(node, addr)
    }

    /// What boot-time recovery found, when durability is on.
    pub fn recovery(&self) -> Option<&RecoveryStats> {
        self.recovery.as_ref()
    }

    /// Per-peer link state + counters dump (the transport half of a
    /// watchdog report), plus WAL flush/lag state when durability is on.
    pub fn describe(&self) -> String {
        let wal = match &self.wal {
            Some(w) => format!(" {}", w.describe()),
            None => String::new(),
        };
        format!(
            "node {} mode={:?} completed={} ae_repairs={} {}{wal}",
            self.me,
            self.mode,
            self.net.counters.completed.get(),
            self.net.counters.ae_repairs_applied.get(),
            self.net.describe()
        )
    }

    /// Arm a deadline watchdog: if the guard is not dropped in time, every
    /// worker prints its `Actor::describe` snapshot, the per-peer link
    /// table follows (a half-open connection or a peer stuck in backoff is
    /// exactly what this surfaces), and the process aborts.
    pub fn watchdog(&self, timeout: Duration) -> NodeWatchdog {
        let (disarm_tx, disarm_rx) = unbounded::<()>();
        let dump = self.stop.as_ref().expect("watchdog on a running node").dump_flag();
        let links = Arc::clone(self.net.links());
        let me = self.me;
        let handle = std::thread::Builder::new()
            .name(format!("kite-watchdog-{me}"))
            .spawn(move || {
                if disarm_rx.recv_timeout(timeout).is_ok() {
                    return;
                }
                eprintln!("\n!!!! kite-node {me} watchdog: no disarm within {timeout:?} !!!!");
                dump.store(true, Ordering::SeqCst);
                std::thread::sleep(Duration::from_secs(1));
                eprintln!("{}", links.describe());
                eprintln!("!!!! kite-node {me} watchdog: aborting !!!!");
                std::process::abort();
            })
            .expect("spawn watchdog");
        NodeWatchdog { disarm_tx, handle: Some(handle) }
    }

    /// Stop client serving, workers and the fabric, joining every thread.
    /// This is the SIGTERM path of the `kite-node` daemon.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // Stop the acceptor first (no new connections), then the worker
        // event loops — which close every socket they own on the way out.
        self.net.stop_flag().store(true, Ordering::SeqCst);
        if let Some(stop) = self.stop.take() {
            stop.stop_and_join();
        }
        // Workers are parked: nothing mutates the store anymore, so the
        // final flush + snapshot capture every applied write and the next
        // boot restarts with zero replay. Ordering matters — a WAL
        // shutdown with workers still running would lose their tail.
        if let Some(wal) = self.wal.take() {
            wal.shutdown();
        }
        // TcpNet::drop joins the fabric threads when `self` drops.
    }
}

impl Drop for NodeRuntime {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Guard returned by [`NodeRuntime::watchdog`]; dropping it disarms the
/// deadline.
pub struct NodeWatchdog {
    disarm_tx: Sender<()>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for NodeWatchdog {
    fn drop(&mut self) {
        let _ = self.disarm_tx.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn claim_slot(
    slots: &Mutex<Vec<Option<SessionPlumbing>>>,
    me: NodeId,
    slot: u32,
) -> Result<SessionPlumbing> {
    let mut slots = slots.lock();
    let entry = slots
        .get_mut(slot as usize)
        .ok_or_else(|| KiteError::SessionUnavailable(format!("no slot {slot} on {me}")))?;
    entry
        .take()
        .ok_or_else(|| KiteError::SessionUnavailable(format!("{me} slot {slot} taken")))
}

// ---------------------------------------------------------------------------
// In-process multi-node helper
// ---------------------------------------------------------------------------

/// Launch a whole cluster of [`NodeRuntime`]s **in one process** on
/// loopback TCP — every byte still crosses a real socket. Used by tests,
/// the `tcp_cluster` example and the throughput bin's `--transport tcp`;
/// real deployments run one `kite-node` process per node instead.
pub fn launch_local_cluster(cfg: ClusterConfig, mode: ProtocolMode) -> Result<Vec<NodeRuntime>> {
    let listeners: Vec<std::net::TcpListener> = (0..cfg.nodes)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()
        .map_err(|e| KiteError::Net(format!("bind loopback: {e}")))?;
    let peers: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().map(|a| a.to_string()))
        .collect::<std::io::Result<_>>()
        .map_err(|e| KiteError::Net(format!("local addr: {e}")))?;
    listeners
        .into_iter()
        .enumerate()
        .map(|(n, listener)| {
            // Metrics on by default: every in-process node gets a loopback
            // scrape endpoint on an ephemeral port (one extra fd on worker
            // 0's epoll loop; zero extra threads).
            let metrics_listener = std::net::TcpListener::bind("127.0.0.1:0")
                .map_err(|e| KiteError::Net(format!("bind metrics loopback: {e}")))?;
            NodeRuntime::launch(NodeConfig {
                cluster: cfg.clone(),
                mode,
                me: NodeId(n as u8),
                peers: peers.clone(),
                fabric_listener: Some(listener),
                metrics_addr: None,
                metrics_listener: Some(metrics_listener),
            })
        })
        .collect()
}
