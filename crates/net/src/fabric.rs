//! `TcpNet`: the real-socket fabric, run-to-completion event loops over
//! the same worker-facing surface as `kite_simnet::ThreadedNet`.
//!
//! One `TcpNet` serves **one node** of the cluster (the in-process fabrics
//! own all nodes; here every node is its own OS process — or its own
//! `TcpNet` instance when a test runs a whole cluster on loopback):
//!
//! * **One event loop per worker.** The worker thread *is* the I/O loop:
//!   an epoll instance (raw-libc FFI — the workspace carries no mio/tokio)
//!   watches every socket the worker owns, and readiness events, protocol
//!   ticks and outbox flushes all run on the same thread with no handoff
//!   queues. Thread budget per node: `workers + 1` (the acceptor), not
//!   `O(peers × workers)` writer/reader threads.
//! * **Worker peering (§6.3).** Worker *w* dials exactly one nonblocking
//!   connection to each peer node, announced by a [`wire::Hello::Peer`]
//!   handshake, and peers route inbound frames to *their* worker *w* —
//!   one connection per remote worker, like the paper's RDMA QP layout.
//!   Reconnect-with-backoff is loop state (a deadline per peer), not a
//!   thread blocked in `connect`.
//! * **Bounded outbound rings.** Each peer link drains through an
//!   [`OutRing`] of encoded frames via vectored writes. A peer that stops
//!   reading fills the ring and then *sheds* frames (counted on the link)
//!   — the fabric behaves like a lossy NIC under backpressure, which is
//!   exactly the failure model the protocols already recover from, so a
//!   stalled peer bounds sender memory instead of growing a writer queue.
//! * **Readiness-driven reads.** Inbound bytes accumulate in a per-
//!   connection buffer; complete frames decode into pool-recycled
//!   `Vec<Msg>` buffers and feed `Actor::on_envelope` directly. A
//!   malformed frame closes that connection — never panics a worker — and
//!   is counted on the link for the watchdog.
//! * **Remote clients in the loop.** Client connections (session claims)
//!   are served by the owning worker's loop too: `Submit` frames feed the
//!   session op channel, completions drain into the connection's ring.
//! * **Zero-allocation steady state.** Outbound: `Outbox::flush` batches
//!   encode into pooled byte buffers; the ring recycles them after the
//!   socket accepts the bytes, and drained `Vec<Msg>` batches go straight
//!   back to the outbox pool. Inbound: decode buffers circulate through
//!   the shared message pool; per-connection read buffers are retained
//!   across reads.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use kite::api::{Completion, Op};
use kite::wire::{self, ClientFrame, Hello};
use kite::Msg;
use kite_common::stats::ProtoCounters;
use kite_common::{NodeId, SessionId};
use kite_simnet::{Actor, Clock, Outbox, WallClock};
use parking_lot::Mutex;

use crate::link::LinkTable;
use crate::ring::{Drain, OutRing, Pool};
use crate::sys::{self, Poller, Waker, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Reconnect backoff floor.
const BACKOFF_MIN: Duration = Duration::from_millis(10);
/// Reconnect backoff ceiling.
const BACKOFF_MAX: Duration = Duration::from_millis(500);
/// Nonblocking dial deadline per attempt.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);
/// Handshake deadline for accepted connections.
const HELLO_TIMEOUT: Duration = Duration::from_secs(5);
/// Bound on pooled spare buffers (per pool).
const POOL_CAP: usize = 64;
/// Bytes read from one connection per readiness service (fairness bound —
/// level-triggered epoll re-reports anything left).
const READ_QUANTUM: usize = 256 << 10;
/// Read chunk size.
const READ_CHUNK: usize = 64 << 10;
/// Empty passes before the loop parks in `epoll_wait` with a timeout: a
/// few zero-timeout polls catch on_tick follow-ups cheaply, then the loop
/// sleeps — readiness (or the waker) ends the park immediately, and a
/// parked loop leaves the CPU to the peers it is waiting on.
const IDLE_SPIN: u32 = 4;
/// Park timeout once fully idle — bounds pure-timer latency (protocol
/// retransmit/keepalive cadence) and stop-flag responsiveness.
const IDLE_WAIT_MS: i32 = 1;

/// The cluster's dial targets, mutable at runtime: one `(address,
/// generation)` slot per node id. The generation bumps on every address
/// change, which is what lets a worker stuck deep in the redial backoff
/// ladder notice that the operator moved the peer and start over at the
/// backoff floor — without it, a node whose address was fixed after a
/// botched deploy keeps being dialed at the *old* address until the
/// process restarts (the dead-address bug this table replaces).
///
/// An empty address retires the slot: the loops stop dialing it and mark
/// its [`LinkTable`] rows [`crate::link::LinkPhase::Retired`]. Setting a
/// real address later revives it through the normal dial path.
pub struct PeerTable {
    slots: Mutex<Vec<(String, u64)>>,
}

impl PeerTable {
    /// A table seeded with the boot-time address list.
    pub fn new(addrs: Vec<String>) -> PeerTable {
        PeerTable { slots: Mutex::new(addrs.into_iter().map(|a| (a, 0)).collect()) }
    }

    /// Number of node slots.
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// True if the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().is_empty()
    }

    /// The current `(address, generation)` of `node`'s slot.
    pub fn get(&self, node: usize) -> (String, u64) {
        self.slots.lock()[node].clone()
    }

    /// The current generation of `node`'s slot (cheap staleness probe for
    /// the dial loop's hot path).
    pub fn generation(&self, node: usize) -> u64 {
        self.slots.lock()[node].1
    }

    /// Replace `node`'s dial address. Returns `true` if the address
    /// actually changed (and thus the generation bumped). An empty string
    /// retires the slot.
    pub fn set(&self, node: usize, addr: impl Into<String>) -> bool {
        let addr = addr.into();
        let mut slots = self.slots.lock();
        let slot = &mut slots[node];
        if slot.0 == addr {
            return false;
        }
        slot.0 = addr;
        slot.1 += 1;
        true
    }
}

/// Configuration of one node's fabric endpoint.
pub struct TcpNetCfg {
    /// This node's id.
    pub me: NodeId,
    /// Fabric address of every node, indexed by node id (`peers[me]` is the
    /// address *this* node listens on, unless `listener` overrides it).
    pub peers: Vec<String>,
    /// Worker threads per node (uniform across the cluster — worker
    /// peering needs both sides to agree).
    pub workers: usize,
    /// Session slots per worker — routes a remote client's slot claim to
    /// the worker whose loop will serve the connection.
    pub sessions_per_worker: usize,
    /// Pre-bound listener override: lets tests bind `127.0.0.1:0` first
    /// and distribute the real addresses.
    pub listener: Option<TcpListener>,
}

/// A freshly accepted, handshake-complete connection routed to a worker
/// loop by the acceptor.
enum NewConn {
    /// Peer fabric traffic from `src` (the hello's worker picked us).
    Peer {
        /// Sending node.
        src: NodeId,
        /// The connection (hello consumed, nonblocking).
        stream: TcpStream,
    },
    /// A remote client claiming session `slot`.
    Client {
        /// Claimed slot (node-wide index).
        slot: u32,
        /// The connection (hello consumed, nonblocking).
        stream: TcpStream,
    },
}

/// Everything a worker's event loop needs from the fabric: the conn intake
/// from the acceptor plus the shared pools, links and counters.
pub struct TcpWorkerIo {
    /// Node this IO bundle belongs to.
    pub node: NodeId,
    /// Worker index within the node.
    pub worker: usize,
    conn_rx: Receiver<NewConn>,
    waker: Arc<Waker>,
    peers: Arc<PeerTable>,
    links: Arc<LinkTable>,
    byte_pool: Arc<Pool<u8>>,
    msg_pool: Arc<Pool<Msg>>,
    counters: Arc<ProtoCounters>,
    clock: Arc<WallClock>,
    nodes: usize,
    net_stop: Arc<AtomicBool>,
    /// Optional metrics/dump endpoint served off this worker's epoll loop
    /// (set on exactly one worker by [`crate::NodeRuntime`]; the scrape
    /// plane adds connections to the loop, never threads to the node).
    pub(crate) scrape: Option<ScrapeSource>,
}

/// A pre-bound scrape listener plus the hub that renders its responses.
pub(crate) struct ScrapeSource {
    /// The listener (nonblocking; bound via the same `SO_REUSEADDR` path as
    /// the fabric listener).
    pub(crate) listener: TcpListener,
    /// Renders the `scrape` and `dump` views.
    pub(crate) hub: Arc<crate::scrape::MetricsHub>,
}

/// The session-slot table a worker loop claims remote sessions from —
/// shared with [`crate::NodeRuntime`], which claims local sessions from
/// the same table (claim-once semantics either way).
pub struct ClientSessions {
    /// This node (stamped into `HelloOk` session ids).
    pub me: NodeId,
    /// `slots[i]` holds the op/completion plumbing of session slot `i`
    /// until someone claims it.
    pub slots: Arc<Mutex<Vec<Option<(Sender<Op>, Receiver<Completion>)>>>>,
}

/// One node's fabric endpoint: the listener/acceptor thread plus shared
/// pools, per-node clock and counters (the `ThreadedNet` surface for one
/// node).
pub struct TcpNet {
    /// This node.
    pub me: NodeId,
    /// Cluster size.
    pub nodes: usize,
    /// Workers per node.
    pub workers: usize,
    /// Shared wall clock.
    pub clock: Arc<WallClock>,
    /// This node's protocol counters.
    pub counters: Arc<ProtoCounters>,
    links: Arc<LinkTable>,
    peers: Arc<PeerTable>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wakers: Vec<Arc<Waker>>,
    threads: Vec<JoinHandle<()>>,
}

impl TcpNet {
    /// Bind the fabric for one node and return the per-worker IO bundles.
    ///
    /// Peer links start dialing as soon as the worker loops run and keep
    /// retrying with backoff, so launch order across the cluster does not
    /// matter.
    pub fn bind(cfg: TcpNetCfg) -> std::io::Result<(TcpNet, Vec<TcpWorkerIo>)> {
        let nodes = cfg.peers.len();
        let me = cfg.me;
        assert!(me.idx() < nodes, "me out of range");
        assert!(cfg.workers > 0);

        let listener = match cfg.listener {
            Some(l) => l,
            None => bind_reuseaddr(&cfg.peers[me.idx()])?,
        };
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let clock = Arc::new(WallClock::new());
        let counters = Arc::new(ProtoCounters::default());
        let links = Arc::new(LinkTable::new(me, nodes, cfg.workers));
        let stop = Arc::new(AtomicBool::new(false));
        let byte_pool = Arc::new(Pool::<u8>::new(POOL_CAP));
        let msg_pool = Arc::new(Pool::<Msg>::new(POOL_CAP));
        let peers = Arc::new(PeerTable::new(cfg.peers));

        // Conn intake: one channel + waker per worker loop.
        let mut conn_txs = Vec::with_capacity(cfg.workers);
        let mut conn_rxs = Vec::with_capacity(cfg.workers);
        let mut wakers = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let (tx, rx) = unbounded::<NewConn>();
            conn_txs.push(tx);
            conn_rxs.push(rx);
            wakers.push(Arc::new(Waker::new()?));
        }

        let mut threads = Vec::new();
        {
            let stop = Arc::clone(&stop);
            let wakers = wakers.clone();
            let workers = cfg.workers;
            let spw = cfg.sessions_per_worker.max(1);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("kite-net-{me}-accept"))
                    .spawn(move || acceptor_loop(listener, nodes, workers, spw, conn_txs, wakers, stop))
                    .expect("spawn acceptor"),
            );
        }

        let ios = (0..cfg.workers)
            .zip(conn_rxs)
            .map(|(w, conn_rx)| TcpWorkerIo {
                node: me,
                worker: w,
                conn_rx,
                waker: Arc::clone(&wakers[w]),
                peers: Arc::clone(&peers),
                links: Arc::clone(&links),
                byte_pool: Arc::clone(&byte_pool),
                msg_pool: Arc::clone(&msg_pool),
                counters: Arc::clone(&counters),
                clock: Arc::clone(&clock),
                nodes,
                net_stop: Arc::clone(&stop),
                scrape: None,
            })
            .collect();

        Ok((
            TcpNet {
                me,
                nodes,
                workers: cfg.workers,
                clock,
                counters,
                links,
                peers,
                local_addr,
                stop,
                wakers,
                threads,
            },
            ios,
        ))
    }

    /// The address the fabric listener actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The per-peer link table (diagnostics; see [`LinkTable::describe`]).
    pub fn links(&self) -> &Arc<LinkTable> {
        &self.links
    }

    /// The mutable dial-target table shared with every worker loop.
    pub fn peers(&self) -> &Arc<PeerTable> {
        &self.peers
    }

    /// Point `node`'s slot at a new fabric address (empty retires it) and
    /// wake every worker loop so stuck backoff ladders reset immediately
    /// instead of on their next natural wakeup. Returns `true` if the
    /// address changed.
    pub fn set_peer_addr(&self, node: NodeId, addr: impl Into<String>) -> bool {
        let changed = self.peers.set(node.idx(), addr);
        if changed {
            for w in &self.wakers {
                w.wake();
            }
        }
        changed
    }

    /// The shared stop flag (the acceptor and the worker loops watch it).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Per-link state dump for watchdogs and shutdown reports.
    pub fn describe(&self) -> String {
        self.links.describe()
    }
}

impl Drop for TcpNet {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for w in &self.wakers {
            w.wake();
        }
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

/// Bind a listener with `SO_REUSEADDR`: a SIGKILLed node leaves its
/// accepted sockets in TIME_WAIT on the fabric port, and a restarted
/// replica must rebind the same address *now*, not in 60 seconds —
/// otherwise "restart the node" wedges the whole recovery story. `std`'s
/// `TcpListener::bind` does not set the option, so IPv4 binds go through
/// raw libc FFI (the workspace has no libc crate); other address families
/// fall back to the std path.
pub fn bind_reuseaddr(addr: &str) -> std::io::Result<TcpListener> {
    let sa = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no addrs"))?;
    let SocketAddr::V4(v4) = sa else { return TcpListener::bind(sa) };
    use std::os::fd::FromRawFd;
    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, val: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port: u16,    // network byte order
        addr: u32,    // network byte order
        zero: [u8; 8],
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    // SAFETY: plain-int syscalls plus one live stack sockaddr whose exact
    // size is passed; the fd is closed on every error path before return.
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let one: i32 = 1;
        setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4);
        let sin = SockaddrIn {
            family: AF_INET as u16,
            port: v4.port().to_be(),
            addr: u32::from(*v4.ip()).to_be(),
            zero: [0; 8],
        };
        if bind(fd, &sin, std::mem::size_of::<SockaddrIn>() as u32) < 0 {
            let e = std::io::Error::last_os_error();
            close(fd);
            return Err(e);
        }
        if listen(fd, 128) < 0 {
            let e = std::io::Error::last_os_error();
            close(fd);
            return Err(e);
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

// ---------------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------------

/// The node's single accept thread: nonblocking accepts, inline (also
/// nonblocking) hello handshakes with a per-connection deadline, then
/// routing to the owning worker's loop. No per-connection threads — a
/// connection that trickles its hello costs a list entry, not a thread.
// kite-lint: event-loop
fn acceptor_loop(
    listener: TcpListener,
    nodes: usize,
    workers: usize,
    sessions_per_worker: usize,
    conn_txs: Vec<Sender<NewConn>>,
    wakers: Vec<Arc<Waker>>,
    stop: Arc<AtomicBool>,
) {
    struct Pending {
        stream: TcpStream,
        hello: [u8; wire::HELLO_LEN],
        got: usize,
        deadline: Instant,
    }
    let mut pending: Vec<Pending> = Vec::new();
    // ordering: shutdown flag poll — seeing the store one iteration late
    // only delays teardown by one accept timeout; nothing is guarded by it.
    while !stop.load(Ordering::Relaxed) {
        let mut progress = false;
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(true);
                let _ = stream.set_nodelay(true);
                pending.push(Pending {
                    stream,
                    hello: [0u8; wire::HELLO_LEN],
                    got: 0,
                    deadline: Instant::now() + HELLO_TIMEOUT,
                });
                progress = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            // kite-lint: allow(no-blocking-in-loop) — accept-error backoff on
            // the dedicated acceptor thread; no data path waits on it.
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
        let now = Instant::now();
        let mut i = 0;
        while i < pending.len() {
            let p = &mut pending[i];
            let done = loop {
                if now >= p.deadline {
                    break true; // handshake deadline: drop
                }
                match p.stream.read(&mut p.hello[p.got..]) {
                    Ok(0) => break true,
                    Ok(n) => {
                        p.got += n;
                        progress = true;
                        if p.got < wire::HELLO_LEN {
                            continue;
                        }
                        let p = pending.swap_remove(i);
                        route_hello(
                            p.stream,
                            &p.hello,
                            nodes,
                            workers,
                            sessions_per_worker,
                            &conn_txs,
                            &wakers,
                        );
                        // swap_remove replaced index i; re-examine it.
                        break false;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break false,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break true,
                }
            };
            if done {
                pending.swap_remove(i);
            } else if i < pending.len() && pending[i].got < wire::HELLO_LEN {
                i += 1;
            }
        }
        if !progress {
            // kite-lint: allow(no-blocking-in-loop) — idle handshake poll on
            // the dedicated acceptor thread; workers park in epoll instead.
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// Decode a completed hello and hand the connection to its worker loop.
/// Out-of-topology peers and bad handshakes are dropped silently (same
/// policy as the threaded fabric).
fn route_hello(
    stream: TcpStream,
    hello: &[u8; wire::HELLO_LEN],
    nodes: usize,
    workers: usize,
    sessions_per_worker: usize,
    conn_txs: &[Sender<NewConn>],
    wakers: &[Arc<Waker>],
) {
    match wire::decode_hello(hello) {
        Ok(Hello::Peer { node, worker }) => {
            let worker = worker as usize;
            if node.idx() >= nodes || worker >= workers {
                return; // out-of-topology peer: drop
            }
            let _ = conn_txs[worker].send(NewConn::Peer { src: node, stream });
            wakers[worker].wake();
        }
        Ok(Hello::Client { slot }) => {
            // Route to the worker that owns the slot's session; an
            // out-of-range slot goes to worker 0, whose loop answers
            // `HelloErr` through the normal claim path.
            let worker = (slot as usize / sessions_per_worker).min(workers - 1);
            let _ = conn_txs[worker].send(NewConn::Client { slot, stream });
            wakers[worker].wake();
        }
        Err(_) => {} // bad handshake: drop
    }
}

// ---------------------------------------------------------------------------
// Worker event loop
// ---------------------------------------------------------------------------

/// Epoll token of the loop's waker eventfd.
const TOK_WAKER: u64 = 0;
/// Tokens `1..=nodes` are outbound peer links (dst = token - 1); inbound
/// connections start here.
fn conn_token_base(nodes: usize) -> u64 {
    1 + nodes as u64
}

/// Outbound link state machine — reconnect/backoff as loop state.
enum DialState {
    /// Waiting for the next dial attempt.
    Idle,
    /// Nonblocking connect in flight.
    Connecting,
    /// Established; ring drains through the socket.
    Connected,
}

struct PeerOut {
    state: DialState,
    stream: Option<TcpStream>,
    ring: OutRing,
    backoff: Duration,
    next_dial: Instant,
    dial_deadline: Instant,
    /// EPOLLOUT currently registered?
    want_out: bool,
    /// [`PeerTable`] generation the current dial target was read at; a
    /// mismatch in `dial_pass` means the address moved under us.
    addr_gen: u64,
}

impl PeerOut {
    fn new() -> PeerOut {
        PeerOut {
            state: DialState::Idle,
            stream: None,
            ring: OutRing::new(),
            backoff: BACKOFF_MIN,
            next_dial: Instant::now(),
            dial_deadline: Instant::now(),
            want_out: false,
            addr_gen: 0,
        }
    }
}

/// One inbound connection owned by a worker loop.
enum Conn {
    /// Peer fabric traffic.
    PeerIn { src: NodeId, stream: TcpStream, rbuf: Vec<u8> },
    /// A remote client session.
    Client {
        slot: u32,
        stream: TcpStream,
        rbuf: Vec<u8>,
        ring: OutRing,
        op_tx: Sender<Op>,
        done_rx: Receiver<Completion>,
        want_out: bool,
    },
    /// The node's metrics/dump listener — accepted scrape connections join
    /// this same slab, so the scrape plane costs epoll registrations, not
    /// threads.
    ScrapeListener { listener: TcpListener },
    /// One scrape connection: reads a one-line request (`scrape` or
    /// `dump`), writes the rendered text, closes. `done` flips once the
    /// response is queued; the conn closes when the ring drains.
    Scrape { stream: TcpStream, rbuf: Vec<u8>, ring: OutRing, want_out: bool, done: bool },
}

impl Conn {
    fn raw_fd(&self) -> std::os::fd::RawFd {
        use std::os::fd::AsRawFd;
        match self {
            Conn::PeerIn { stream, .. }
            | Conn::Client { stream, .. }
            | Conn::Scrape { stream, .. } => stream.as_raw_fd(),
            Conn::ScrapeListener { listener } => listener.as_raw_fd(),
        }
    }

    fn is_scrape_plane(&self) -> bool {
        matches!(self, Conn::ScrapeListener { .. } | Conn::Scrape { .. })
    }
}

/// Handle to stop and join one node's worker loops (the
/// `kite_simnet::StopHandle` surface for the TCP runtime).
pub struct NodeStopHandle {
    stop: Arc<AtomicBool>,
    dump: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl NodeStopHandle {
    /// Signal all workers to stop and wait for them to exit.
    pub fn stop_and_join(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// The shared stop flag.
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// The diagnostics flag: raising it makes every worker loop print an
    /// `Actor::describe` snapshot plus its fabric state (registered fds,
    /// ring occupancy, last-readiness timestamps) to stderr once.
    pub fn dump_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.dump)
    }
}

impl Drop for NodeStopHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Spawn one event-loop thread per `(actor, io, sessions)` rig over the
/// TCP fabric — the `kite_simnet::spawn_workers` surface, with the I/O
/// plane folded into the worker thread itself. Rigs serving remote client
/// sessions pass the node's slot table as the third element.
pub fn spawn_tcp_workers<A>(
    rigs: Vec<(A, TcpWorkerIo, Option<ClientSessions>)>,
    net: &TcpNet,
) -> NodeStopHandle
where
    A: Actor<Msg = Msg> + 'static,
{
    assert!(rigs.len() <= net.workers, "more rigs than fabric workers");
    let stop = Arc::new(AtomicBool::new(false));
    let dump = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::with_capacity(rigs.len());
    for (actor, io, sessions) in rigs {
        let stop = Arc::clone(&stop);
        let dump = Arc::clone(&dump);
        let name = format!("kite-tcp-{}-w{}", io.node, io.worker);
        handles.push(
            std::thread::Builder::new()
                .name(name)
                .spawn(move || match EventLoop::new(actor, io, sessions, stop, dump) {
                    Ok(mut lp) => lp.run(),
                    Err(e) => eprintln!("kite-net: event loop setup failed: {e}"),
                })
                .expect("spawn tcp worker"),
        );
    }
    NodeStopHandle { stop, dump, handles }
}

struct EventLoop<A: Actor<Msg = Msg>> {
    actor: A,
    me: NodeId,
    worker: usize,
    nodes: usize,
    clock: Arc<WallClock>,
    counters: Arc<ProtoCounters>,
    links: Arc<LinkTable>,
    byte_pool: Arc<Pool<u8>>,
    msg_pool: Arc<Pool<Msg>>,
    peers: Arc<PeerTable>,
    conn_rx: Receiver<NewConn>,
    waker: Arc<Waker>,
    sessions: Option<ClientSessions>,
    poller: Poller,
    peer_out: Vec<PeerOut>,
    conns: Vec<Option<Conn>>,
    /// Self-addressed batches (loopback without a socket).
    selfq: VecDeque<Vec<Msg>>,
    out: Outbox<Msg>,
    scratch: Vec<Vec<Msg>>,
    events: Vec<(u64, u32)>,
    stop: Arc<AtomicBool>,
    net_stop: Arc<AtomicBool>,
    dump: Arc<AtomicBool>,
    dumped: bool,
    /// Renders scrape/dump responses when this worker hosts the metrics
    /// endpoint (`None` on every other worker).
    scrape_hub: Option<Arc<crate::scrape::MetricsHub>>,
}

impl<A: Actor<Msg = Msg>> EventLoop<A> {
    fn new(
        actor: A,
        io: TcpWorkerIo,
        sessions: Option<ClientSessions>,
        stop: Arc<AtomicBool>,
        dump: Arc<AtomicBool>,
    ) -> std::io::Result<EventLoop<A>> {
        let mut io = io;
        let poller = Poller::new()?;
        poller.add(io.waker.fd(), TOK_WAKER, EPOLLIN)?;
        let peer_out = (0..io.nodes).map(|_| PeerOut::new()).collect();
        // The scrape listener (if this worker hosts it) occupies a normal
        // conn slab slot: readiness arrives through the same epoll_wait as
        // fabric traffic — zero extra threads for the metrics plane.
        let mut conns = Vec::new();
        let mut scrape_hub = None;
        if let Some(src) = io.scrape.take() {
            use std::os::fd::AsRawFd;
            src.listener.set_nonblocking(true)?;
            let fd = src.listener.as_raw_fd();
            poller.add(fd, conn_token_base(io.nodes), EPOLLIN)?;
            conns.push(Some(Conn::ScrapeListener { listener: src.listener }));
            scrape_hub = Some(src.hub);
        }
        Ok(EventLoop {
            actor,
            me: io.node,
            worker: io.worker,
            nodes: io.nodes,
            clock: io.clock,
            counters: io.counters,
            links: io.links,
            byte_pool: io.byte_pool,
            msg_pool: io.msg_pool,
            peers: io.peers,
            conn_rx: io.conn_rx,
            waker: io.waker,
            sessions,
            poller,
            peer_out,
            conns,
            selfq: VecDeque::new(),
            out: Outbox::new(io.nodes),
            scratch: Vec::with_capacity(io.nodes),
            events: Vec::with_capacity(64),
            stop,
            net_stop: io.net_stop,
            dump,
            dumped: false,
            scrape_hub,
        })
    }

    // ordering: the loop polls three advisory flags (stop, net-stop, dump
    // request); each is a standalone signal with no payload behind it, so a
    // one-iteration-stale Relaxed read is harmless by construction.
    // kite-lint: no-alloc
    // kite-lint: event-loop
    fn run(&mut self) {
        let mut idle: u32 = 0;
        while !self.stop.load(Ordering::Relaxed) && !self.net_stop.load(Ordering::Relaxed) {
            if !self.dumped && self.dump.load(Ordering::Relaxed) {
                self.dumped = true;
                self.dump_state();
            }
            let mut progress = false;

            // Newly accepted connections from the acceptor.
            while let Ok(nc) = self.conn_rx.try_recv() {
                self.register_conn(nc);
                progress = true;
            }

            // Self-addressed batches queued by the previous flush.
            for _ in 0..64 {
                let Some(mut msgs) = self.selfq.pop_front() else { break };
                let now = self.clock.now();
                self.actor.on_envelope(self.me, &mut msgs, now, &mut self.out);
                self.out.recycle(msgs);
                progress = true;
            }

            // Socket readiness. After a couple of empty passes, park in
            // epoll_wait: fd readiness (and the waker) ends the park
            // immediately, so the timeout only gates pure-timer work —
            // while a busier spin/yield ramp would steal the CPU from the
            // peer loops whose replies we are parked waiting for (decisive
            // on few-core machines).
            let timeout_ms = if progress || idle < IDLE_SPIN { 0 } else { IDLE_WAIT_MS };
            self.events.clear();
            let mut events = std::mem::take(&mut self.events);
            match self.poller.wait(&mut events, timeout_ms) {
                Ok(_) => {}
                Err(e) => {
                    eprintln!("kite-net {} w{}: epoll_wait failed: {e}", self.me, self.worker);
                    break;
                }
            }
            for &(tok, ev) in events.iter() {
                progress = true;
                if tok == TOK_WAKER {
                    self.waker.drain();
                } else if tok < conn_token_base(self.nodes) {
                    self.service_peer_out(NodeId((tok - 1) as u8), ev);
                } else {
                    self.service_conn((tok - conn_token_base(self.nodes)) as usize, ev);
                }
            }
            self.events = events;

            // Protocol tick (retransmissions, keepalives, session intake).
            let now = self.clock.now();
            if self.actor.on_tick(now, &mut self.out) {
                progress = true;
            }

            // Ship what the actor produced, then push client completions.
            if !self.out.is_empty() {
                self.flush_outbox();
                progress = true;
            }
            if self.sessions.is_some() && self.pump_completions() {
                progress = true;
            }

            // Dial pass: any disconnected peer whose backoff expired.
            self.dial_pass();

            if progress {
                idle = 0;
            } else {
                idle = idle.saturating_add(1);
                if idle < IDLE_SPIN {
                    std::hint::spin_loop();
                }
                // Past IDLE_SPIN the epoll_wait timeout above parks us.
            }
        }
        self.teardown();
    }

    // -- outbound peers ---------------------------------------------------

    fn dial_pass(&mut self) {
        let now = Instant::now();
        for dst in 0..self.nodes {
            if dst == self.me.idx() {
                continue;
            }
            // Address-change probe: if the operator repointed this slot
            // (see `TcpNet::set_peer_addr`), abandon whatever we were doing
            // against the old address and restart the backoff ladder at the
            // floor — a worker deep in backoff against a dead address must
            // not serve the *new* address its accumulated 500ms penalty.
            if self.peers.generation(dst) != self.peer_out[dst].addr_gen {
                if !matches!(self.peer_out[dst].state, DialState::Idle) {
                    self.peer_fail(NodeId(dst as u8));
                }
                let po = &mut self.peer_out[dst];
                po.addr_gen = self.peers.generation(dst);
                po.backoff = BACKOFF_MIN;
                po.next_dial = now;
            }
            match self.peer_out[dst].state {
                DialState::Idle if now >= self.peer_out[dst].next_dial => self.dial(dst, now),
                DialState::Connecting if now >= self.peer_out[dst].dial_deadline => {
                    self.peer_fail(NodeId(dst as u8))
                }
                _ => {}
            }
        }
    }

    fn dial(&mut self, dst: usize, now: Instant) {
        // Re-read the table on *every* attempt — the redial cycle is the
        // recovery path for a peer that moved, so it must pick up the new
        // address (and re-resolve a hostname) rather than cache the one it
        // first booted with.
        let (target, gen) = self.peers.get(dst);
        self.peer_out[dst].addr_gen = gen;
        if target.is_empty() {
            // Retired slot: no dialing, no backoff escalation. The
            // generation probe in `dial_pass` revives it instantly when an
            // address is set again; until then, recheck at the ceiling.
            let po = &mut self.peer_out[dst];
            po.backoff = BACKOFF_MIN;
            po.next_dial = now + BACKOFF_MAX;
            self.links.link(NodeId(dst as u8), self.worker).set_retired();
            return;
        }
        let addr = match target.to_socket_addrs().ok().and_then(|mut a| a.next()) {
            Some(a) => a,
            None => {
                self.schedule_redial(dst);
                return;
            }
        };
        let stream = match sys::connect_nonblocking(&addr) {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::Unsupported => {
                // Non-IPv4 fallback: a bounded blocking dial (only hit by
                // v6 deployments; loopback and datacenter configs are v4).
                match TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT) {
                    Ok(s) => {
                        let _ = s.set_nonblocking(true);
                        s
                    }
                    Err(_) => {
                        self.schedule_redial(dst);
                        return;
                    }
                }
            }
            Err(_) => {
                self.schedule_redial(dst);
                return;
            }
        };
        let _ = stream.set_nodelay(true);
        use std::os::fd::AsRawFd;
        if self.poller.add(stream.as_raw_fd(), 1 + dst as u64, EPOLLOUT).is_err() {
            self.schedule_redial(dst);
            return;
        }
        let po = &mut self.peer_out[dst];
        po.stream = Some(stream);
        po.state = DialState::Connecting;
        po.dial_deadline = now + CONNECT_TIMEOUT;
        po.want_out = true;
    }

    fn schedule_redial(&mut self, dst: usize) {
        let po = &mut self.peer_out[dst];
        po.state = DialState::Idle;
        po.stream = None;
        po.next_dial = Instant::now() + po.backoff;
        po.backoff = (po.backoff * 2).min(BACKOFF_MAX);
        self.links.link(NodeId(dst as u8), self.worker).set_backoff();
    }

    /// Outbound link readiness: connect completion, EOF probe, ring drain.
    // kite-lint: no-alloc
    // kite-lint: event-loop
    fn service_peer_out(&mut self, dst: NodeId, ev: u32) {
        let d = dst.idx();
        if self.peer_out[d].stream.is_none() {
            return; // stale event for a conn torn down earlier this batch
        }
        if let DialState::Connecting = self.peer_out[d].state {
            if ev & (EPOLLERR | EPOLLHUP) != 0 {
                self.peer_fail(dst);
                return;
            }
            if ev & EPOLLOUT != 0 {
                let healthy =
                    sys::take_socket_error(self.peer_out[d].stream.as_ref().expect("stream"));
                if healthy.is_err() {
                    self.peer_fail(dst);
                    return;
                }
                self.peer_established(dst);
            }
            return;
        }
        // Connected.
        if ev & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0 {
            self.peer_fail(dst);
            return;
        }
        if ev & EPOLLIN != 0 {
            // Peers never send data on our outbound connection — readable
            // means EOF/RST (or junk, which also costs the connection).
            let mut probe = [0u8; 64];
            match self.peer_out[d].stream.as_ref().expect("stream").read(&mut probe) {
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                _ => {
                    self.peer_fail(dst);
                    return;
                }
            }
        }
        if ev & EPOLLOUT != 0 {
            self.drain_peer_ring(dst);
        }
    }

    fn peer_established(&mut self, dst: NodeId) {
        let d = dst.idx();
        {
            let po = &mut self.peer_out[d];
            po.state = DialState::Connected;
            po.backoff = BACKOFF_MIN;
            // First bytes on the wire: the peer hello (rides the ring like
            // any frame; the ring is empty at connect time).
            let mut buf = self.byte_pool.pop();
            buf.extend_from_slice(&wire::encode_hello(Hello::Peer {
                node: self.me,
                worker: self.worker as u16,
            }));
            let _ = po.ring.push(buf);
        }
        self.links.link(dst, self.worker).set_connected();
        self.drain_peer_ring(dst);
    }

    // ordering: link-stat counters and ring gauges — monitoring state read
    // by the watchdog and tests; the loop that mutates them is their only
    // writer, so Relaxed publishes numbers, not invariants.
    /// Tear down an outbound link (dial failure or death) and schedule the
    /// redial. Ring contents are lost-and-counted, like frames on a downed
    /// link.
    fn peer_fail(&mut self, dst: NodeId) {
        let d = dst.idx();
        let link = self.links.link(dst, self.worker);
        let po = &mut self.peer_out[d];
        if let Some(stream) = po.stream.take() {
            use std::os::fd::AsRawFd;
            let _ = self.poller.del(stream.as_raw_fd());
        }
        if !po.ring.is_empty() {
            link.dropped_out.fetch_add(po.ring.len() as u64, Ordering::Relaxed);
            po.ring.clear_into(&self.byte_pool);
        }
        link.ring_frames.store(0, Ordering::Relaxed);
        link.ring_bytes.store(0, Ordering::Relaxed);
        po.want_out = false;
        self.schedule_redial(d);
    }

    // ordering: link-stat counters and ring gauges — monitoring state read
    // by the watchdog and tests; the loop that mutates them is their only
    // writer, so Relaxed publishes numbers, not invariants.
    /// Push ring bytes into the socket; toggles EPOLLOUT to match what's
    /// left.
    // kite-lint: no-alloc
    // kite-lint: event-loop
    fn drain_peer_ring(&mut self, dst: NodeId) {
        let d = dst.idx();
        let link = self.links.link(dst, self.worker);
        let po = &mut self.peer_out[d];
        let Some(stream) = po.stream.as_mut() else { return };
        let before_frames = po.ring.len();
        let before_bytes = po.ring.bytes();
        let outcome = po.ring.drain_to(stream, &self.byte_pool);
        let done = po.ring.len();
        if before_frames > done {
            link.frames_out.fetch_add((before_frames - done) as u64, Ordering::Relaxed);
        }
        if po.ring.bytes() < before_bytes {
            link.last_tx_ns.store(self.clock.now(), Ordering::Relaxed);
        }
        link.ring_frames.store(po.ring.len() as u64, Ordering::Relaxed);
        link.ring_bytes.store(po.ring.bytes() as u64, Ordering::Relaxed);
        match outcome {
            Ok(Drain::Emptied) => {
                if po.want_out {
                    po.want_out = false;
                    use std::os::fd::AsRawFd;
                    let _ = self.poller.modify(stream.as_raw_fd(), 1 + d as u64, EPOLLIN);
                }
            }
            Ok(Drain::Blocked) => {
                if !po.want_out {
                    po.want_out = true;
                    use std::os::fd::AsRawFd;
                    let _ =
                        self.poller.modify(stream.as_raw_fd(), 1 + d as u64, EPOLLIN | EPOLLOUT);
                }
            }
            Err(_) => self.peer_fail(dst),
        }
    }

    // ordering: link-stat counters and ring gauges — monitoring state read
    // by the watchdog and tests; the loop that mutates them is their only
    // writer, so Relaxed publishes numbers, not invariants.
    /// Encode-and-ship every outbox batch: remote batches into peer rings
    /// (shedding when a ring is full — bounded memory under backpressure),
    /// self batches onto the loopback queue. Batch buffers recycle into
    /// the outbox; steady-state flushes allocate nothing.
    // kite-lint: no-alloc
    // kite-lint: event-loop
    fn flush_outbox(&mut self) {
        let me = self.me;
        let worker = self.worker;
        let Self { out, peer_out, selfq, byte_pool, links, counters, scratch, .. } = self;
        // The stamp the actor set at the end of its last step: every frame
        // this flush emits was composed under that membership view.
        let stamp = out.stamp();
        let mut dirty = 0u64; // bitmask of peers with newly ringed frames
        out.flush(|dst, batch| {
            counters.msgs_sent.add(batch.len() as u64);
            counters.envelopes_sent.incr();
            if dst == me {
                selfq.push_back(batch);
                return;
            }
            let link = links.link(dst, worker);
            let po = &mut peer_out[dst.idx()];
            if let DialState::Connected = po.state {
                let mut buf = byte_pool.pop();
                wire::encode_frames(me, stamp, &batch, &mut buf);
                match po.ring.push(buf) {
                    Ok(()) => {
                        dirty |= 1 << dst.idx();
                        link.ring_frames.store(po.ring.len() as u64, Ordering::Relaxed);
                        link.ring_bytes.store(po.ring.bytes() as u64, Ordering::Relaxed);
                    }
                    Err(buf) => {
                        // Ring full: shed, exactly like a lossy link — the
                        // protocol's retransmission layer recovers once the
                        // peer reads again. Sender memory stays bounded.
                        link.shed_full.fetch_add(1, Ordering::Relaxed);
                        byte_pool.put(buf);
                    }
                }
            } else {
                // Link down: lossy NIC, not a buffer.
                link.dropped_out.fetch_add(1, Ordering::Relaxed);
            }
            scratch.push(batch);
        });
        for b in scratch.drain(..) {
            out.recycle(b);
        }
        for d in 0..self.nodes {
            if dirty & (1 << d) != 0 {
                self.drain_peer_ring(NodeId(d as u8));
            }
        }
    }

    // -- inbound connections ----------------------------------------------

    fn register_conn(&mut self, nc: NewConn) {
        let conn = match nc {
            NewConn::Peer { src, stream } => {
                Conn::PeerIn { src, stream, rbuf: Vec::with_capacity(READ_CHUNK) }
            }
            NewConn::Client { slot, stream } => match self.claim_session(slot) {
                Ok((op_tx, done_rx)) => {
                    let mut ring = OutRing::new();
                    let mut buf = self.byte_pool.pop();
                    let session = SessionId::new(self.me, slot);
                    wire::encode_client_frame(&ClientFrame::HelloOk { session }, &mut buf);
                    let _ = ring.push(buf);
                    Conn::Client {
                        slot,
                        stream,
                        rbuf: Vec::with_capacity(READ_CHUNK),
                        ring,
                        op_tx,
                        done_rx,
                        want_out: false,
                    }
                }
                Err(reason) => {
                    // Best-effort refusal; the frame is tiny, so a fresh
                    // socket buffer takes it without blocking the loop.
                    let mut stream = stream;
                    let mut buf = self.byte_pool.pop();
                    wire::encode_client_frame(&ClientFrame::HelloErr { reason }, &mut buf);
                    let _ = stream.write(&buf);
                    self.byte_pool.put(buf);
                    return;
                }
            },
        };
        // Slab insert + epoll registration.
        let idx = match self.conns.iter().position(|c| c.is_none()) {
            Some(i) => i,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        let fd = conn.raw_fd();
        let tok = conn_token_base(self.nodes) + idx as u64;
        if self.poller.add(fd, tok, EPOLLIN).is_err() {
            return; // conn dropped
        }
        self.conns[idx] = Some(conn);
        // A client conn starts with HelloOk queued — push it out now.
        self.service_conn_writable(idx);
    }

    fn claim_session(&mut self, slot: u32) -> std::result::Result<(Sender<Op>, Receiver<Completion>), String> {
        let Some(sessions) = &self.sessions else {
            return Err(format!("{} serves no remote sessions", self.me));
        };
        let mut slots = sessions.slots.lock();
        match slots.get_mut(slot as usize) {
            Some(entry) => {
                entry.take().ok_or_else(|| format!("{} slot {slot} taken", self.me))
            }
            None => Err(format!("no slot {slot} on {}", self.me)),
        }
    }

    /// Readiness on an inbound connection.
    // kite-lint: no-alloc
    // kite-lint: event-loop
    fn service_conn(&mut self, idx: usize, ev: u32) {
        if self.conns.get(idx).map_or(true, |c| c.is_none()) {
            return; // closed earlier in this event batch
        }
        if self.conns[idx].as_ref().is_some_and(|c| c.is_scrape_plane()) {
            // Scrape-plane traffic is cold by definition; it is serviced off
            // the annotated hot path (rendering a response allocates).
            self.service_scrape(idx, ev);
            return;
        }
        if ev & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(idx);
            return;
        }
        if ev & EPOLLIN != 0 && !self.service_conn_readable(idx) {
            self.close_conn(idx);
            return;
        }
        if ev & EPOLLRDHUP != 0 {
            // Half-close after we consumed what was readable: done.
            self.close_conn(idx);
            return;
        }
        if ev & EPOLLOUT != 0 {
            self.service_conn_writable(idx);
        }
    }

    /// Read-and-decode until `WouldBlock` (bounded by [`READ_QUANTUM`] for
    /// fairness). Returns `false` when the connection must close.
    // kite-lint: no-alloc
    // kite-lint: event-loop
    fn service_conn_readable(&mut self, idx: usize) -> bool {
        // Take the conn out of the slab so the actor (also `&mut self`)
        // can run against decoded frames without aliasing.
        let Some(mut conn) = self.conns[idx].take() else { return true };
        let mut alive = true;
        let mut budget = READ_QUANTUM;
        'read: while budget > 0 {
            let (stream, rbuf) = match &mut conn {
                Conn::PeerIn { stream, rbuf, .. } => (stream, rbuf),
                Conn::Client { stream, rbuf, .. } => (stream, rbuf),
                // Scrape-plane conns never reach this path (routed to
                // `service_scrape` by `service_conn`).
                Conn::ScrapeListener { .. } | Conn::Scrape { .. } => {
                    break 'read;
                }
            };
            let old = rbuf.len();
            rbuf.resize(old + READ_CHUNK, 0);
            match stream.read(&mut rbuf[old..]) {
                Ok(0) => {
                    rbuf.truncate(old);
                    alive = false;
                    break 'read;
                }
                Ok(n) => {
                    rbuf.truncate(old + n);
                    budget = budget.saturating_sub(n);
                    if !self.decode_conn_frames(&mut conn) {
                        alive = false;
                        break 'read;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    rbuf.truncate(old);
                    break 'read;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    rbuf.truncate(old);
                }
                Err(_) => {
                    rbuf.truncate(old);
                    alive = false;
                    break 'read;
                }
            }
        }
        self.conns[idx] = Some(conn);
        alive
    }

    // ordering: link-stat counters and ring gauges — monitoring state read
    // by the watchdog and tests; the loop that mutates them is their only
    // writer, so Relaxed publishes numbers, not invariants.
    /// Decode every complete frame buffered on `conn`. Returns `false` on
    /// a malformed frame (the connection is charged, never the worker).
    // kite-lint: no-alloc
    // kite-lint: event-loop
    fn decode_conn_frames(&mut self, conn: &mut Conn) -> bool {
        match conn {
            Conn::PeerIn { src, stream: _, rbuf } => {
                let src = *src;
                let link = self.links.link(src, self.worker);
                link.last_rx_ns.store(self.clock.now(), Ordering::Relaxed);
                let mut pos = 0usize;
                let ok = loop {
                    if rbuf.len() - pos < 4 {
                        break true;
                    }
                    let prefix = [rbuf[pos], rbuf[pos + 1], rbuf[pos + 2], rbuf[pos + 3]];
                    let blen = match wire::frame_body_len(prefix) {
                        Ok(l) => l,
                        Err(_) => {
                            link.decode_errors.fetch_add(1, Ordering::Relaxed);
                            break false;
                        }
                    };
                    if rbuf.len() - pos < 4 + blen {
                        break true; // partial frame: wait for more bytes
                    }
                    let mut msgs = self.msg_pool.pop();
                    match wire::decode_frame_body(&rbuf[pos + 4..pos + 4 + blen], &mut msgs) {
                        Ok((frame_src, mepoch)) if frame_src == src => {
                            link.frames_in.fetch_add(1, Ordering::Relaxed);
                            pos += 4 + blen;
                            let now = self.clock.now();
                            self.actor.on_envelope_stamped(src, mepoch, &mut msgs, now, &mut self.out);
                            self.msg_pool.put(msgs);
                        }
                        _ => {
                            // Malformed (or mis-attributed) frame: count,
                            // recycle, close.
                            link.decode_errors.fetch_add(1, Ordering::Relaxed);
                            self.msg_pool.put(msgs);
                            break false;
                        }
                    }
                };
                compact(rbuf, pos);
                ok
            }
            Conn::Client { rbuf, op_tx, .. } => {
                let mut pos = 0usize;
                let ok = loop {
                    if rbuf.len() - pos < 4 {
                        break true;
                    }
                    let prefix = [rbuf[pos], rbuf[pos + 1], rbuf[pos + 2], rbuf[pos + 3]];
                    let blen = u32::from_le_bytes(prefix) as usize;
                    if blen > wire::MAX_FRAME {
                        break false; // malformed client: drop the connection
                    }
                    if rbuf.len() - pos < 4 + blen {
                        break true;
                    }
                    match wire::decode_client_frame(&rbuf[pos + 4..pos + 4 + blen]) {
                        Ok(ClientFrame::Submit(op)) => {
                            pos += 4 + blen;
                            if op_tx.send(op).is_err() {
                                break false; // node shutting down
                            }
                        }
                        _ => break false, // anything else from a client is malformed
                    }
                };
                compact(rbuf, pos);
                ok
            }
            // Scrape-plane conns carry no fabric frames.
            Conn::ScrapeListener { .. } | Conn::Scrape { .. } => true,
        }
    }

    // kite-lint: no-alloc
    // kite-lint: event-loop
    fn service_conn_writable(&mut self, idx: usize) {
        let Some(Conn::Client { stream, ring, want_out, .. }) =
            self.conns.get_mut(idx).and_then(|c| c.as_mut())
        else {
            return; // peer-in conns never queue outbound bytes
        };
        use std::os::fd::AsRawFd;
        let tok = conn_token_base(self.nodes) + idx as u64;
        match ring.drain_to(stream, &self.byte_pool) {
            Ok(Drain::Emptied) => {
                if *want_out {
                    *want_out = false;
                    let _ = self.poller.modify(stream.as_raw_fd(), tok, EPOLLIN);
                }
            }
            Ok(Drain::Blocked) => {
                if !*want_out {
                    *want_out = true;
                    let _ = self.poller.modify(stream.as_raw_fd(), tok, EPOLLIN | EPOLLOUT);
                }
            }
            Err(_) => self.close_conn(idx),
        }
    }

    /// Move completed ops from every client session to its connection's
    /// ring. Batches all completions available this iteration into one
    /// frame buffer per connection (one writev downstream).
    fn pump_completions(&mut self) -> bool {
        let mut any = false;
        for idx in 0..self.conns.len() {
            let Some(Conn::Client { ring, done_rx, .. }) =
                self.conns[idx].as_mut()
            else {
                continue;
            };
            if done_rx.is_empty() {
                continue;
            }
            let mut buf = self.byte_pool.pop();
            // Ring-full backpressure: completions stay in the channel (the
            // client's own in-flight window bounds what can pile up).
            while ring.len() < 64 {
                match done_rx.try_recv() {
                    Ok(c) => {
                        wire::encode_client_frame(&ClientFrame::Completion(c), &mut buf);
                        if buf.len() >= 32 << 10 {
                            let full = std::mem::replace(&mut buf, self.byte_pool.pop());
                            if let Err(full) = ring.push(full) {
                                self.byte_pool.put(full);
                                break;
                            }
                        }
                    }
                    Err(_) => break,
                }
            }
            if buf.is_empty() {
                self.byte_pool.put(buf);
            } else if let Err(buf) = ring.push(buf) {
                self.byte_pool.put(buf);
            }
            any = true;
            self.service_conn_writable(idx);
        }
        any
    }

    // -- scrape plane ------------------------------------------------------

    /// Readiness on the metrics listener or a scrape connection. Cold path:
    /// not `no-alloc` annotated on purpose — rendering a response builds a
    /// string — but it still runs to completion on this worker's loop, so
    /// the endpoint consumes epoll budget, never a thread.
    fn service_scrape(&mut self, idx: usize, ev: u32) {
        if matches!(self.conns[idx], Some(Conn::ScrapeListener { .. })) {
            if ev & EPOLLIN == 0 {
                return;
            }
            // Take the listener out so accepted conns can be slab-inserted
            // (an insert scans for the first free slot — including `idx`).
            let Some(Conn::ScrapeListener { listener }) = self.conns[idx].take() else {
                return;
            };
            let mut accepted = Vec::new();
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(true);
                        accepted.push(stream);
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
            self.conns[idx] = Some(Conn::ScrapeListener { listener });
            for stream in accepted {
                self.register_scrape_conn(stream);
            }
            return;
        }
        if ev & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(idx);
            return;
        }
        if ev & EPOLLIN != 0 && !self.scrape_readable(idx) {
            self.close_conn(idx);
            return;
        }
        // EPOLLRDHUP is deliberately tolerated: a client may half-close
        // after sending its one-line request and still expects the
        // response; the conn closes itself once the ring drains.
        if ev & EPOLLOUT != 0 {
            self.scrape_writable(idx);
        }
    }

    fn register_scrape_conn(&mut self, stream: TcpStream) {
        let conn = Conn::Scrape {
            stream,
            rbuf: Vec::with_capacity(256),
            ring: OutRing::new(),
            want_out: false,
            done: false,
        };
        let idx = match self.conns.iter().position(|c| c.is_none()) {
            Some(i) => i,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        let fd = conn.raw_fd();
        let tok = conn_token_base(self.nodes) + idx as u64;
        if self.poller.add(fd, tok, EPOLLIN).is_err() {
            return; // conn dropped
        }
        self.conns[idx] = Some(conn);
    }

    /// Read until `WouldBlock`; once a full request line is buffered,
    /// render the response and queue it. Returns `false` to close.
    fn scrape_readable(&mut self, idx: usize) -> bool {
        let Some(mut conn) = self.conns[idx].take() else { return true };
        let mut alive = true;
        let mut respond = false;
        {
            let Conn::Scrape { stream, rbuf, done, .. } = &mut conn else {
                self.conns[idx] = Some(conn);
                return true;
            };
            loop {
                let old = rbuf.len();
                if old > 1024 {
                    // A "request" that long is not one of ours.
                    alive = false;
                    break;
                }
                rbuf.resize(old + 256, 0);
                match stream.read(&mut rbuf[old..]) {
                    Ok(0) => {
                        rbuf.truncate(old);
                        // EOF with the response already queued is the
                        // normal half-close; before a full request, close.
                        if !*done {
                            alive = false;
                        }
                        break;
                    }
                    Ok(n) => rbuf.truncate(old + n),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        rbuf.truncate(old);
                        break;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                        rbuf.truncate(old);
                    }
                    Err(_) => {
                        rbuf.truncate(old);
                        alive = false;
                        break;
                    }
                }
            }
            if alive && !*done && rbuf.contains(&b'\n') {
                respond = true;
                *done = true;
            }
        }
        if respond {
            let text = {
                let Conn::Scrape { rbuf, .. } = &conn else { unreachable!() };
                let line = rbuf.split(|&b| b == b'\n').next().unwrap_or(&[]);
                self.render_scrape_response(line)
            };
            let Conn::Scrape { ring, .. } = &mut conn else { unreachable!() };
            let mut buf = self.byte_pool.pop();
            buf.extend_from_slice(text.as_bytes());
            if ring.push(buf).is_err() {
                alive = false;
            }
        }
        self.conns[idx] = Some(conn);
        if respond {
            self.scrape_writable(idx);
            // The conn may have closed itself once the ring drained.
            return self.conns[idx].is_some();
        }
        alive
    }

    /// Render the response for one request line: `dump` returns this
    /// worker's watchdog text plus the node describe lines; anything else
    /// (conventionally `scrape`) returns the `key value` metrics view.
    fn render_scrape_response(&mut self, line: &[u8]) -> String {
        let word = std::str::from_utf8(line).unwrap_or("").trim();
        let mut out = String::new();
        match &self.scrape_hub {
            None => out.push_str("err no metrics hub on this worker\n"),
            Some(hub) => {
                if word.trim_start_matches('/') == "dump" {
                    let hub = Arc::clone(hub);
                    out = self.dump_text();
                    hub.render_dump_extra(&mut out);
                } else {
                    hub.render_metrics(&mut out);
                }
            }
        }
        out
    }

    fn scrape_writable(&mut self, idx: usize) {
        let Some(Conn::Scrape { stream, ring, want_out, done, .. }) =
            self.conns.get_mut(idx).and_then(|c| c.as_mut())
        else {
            return;
        };
        use std::os::fd::AsRawFd;
        let tok = conn_token_base(self.nodes) + idx as u64;
        match ring.drain_to(stream, &self.byte_pool) {
            Ok(Drain::Emptied) => {
                if *done {
                    // One-shot protocol: response flushed, we close.
                    self.close_conn(idx);
                } else if *want_out {
                    *want_out = false;
                    let _ = self.poller.modify(stream.as_raw_fd(), tok, EPOLLIN);
                }
            }
            Ok(Drain::Blocked) => {
                if !*want_out {
                    *want_out = true;
                    let _ = self.poller.modify(stream.as_raw_fd(), tok, EPOLLIN | EPOLLOUT);
                }
            }
            Err(_) => self.close_conn(idx),
        }
    }

    fn close_conn(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].take() else { return };
        let _ = self.poller.del(conn.raw_fd());
        if let Conn::Client { mut ring, .. } | Conn::Scrape { mut ring, .. } = conn {
            ring.clear_into(&self.byte_pool);
        }
        // The slot of a disconnected client stays claimed — sessions are
        // claim-once, exactly like the in-process cluster.
    }

    // -- diagnostics / shutdown -------------------------------------------

    // ordering: link-stat counters and ring gauges — monitoring state read
    // by the watchdog and tests; the loop that mutates them is their only
    // writer, so Relaxed publishes numbers, not invariants.
    /// Watchdog dump to stderr (the flag-raised path).
    fn dump_state(&mut self) {
        let s = self.dump_text();
        eprintln!("{s}");
    }

    /// The per-worker diagnostic text: the actor's protocol snapshot plus
    /// the loop's fabric state — registered fds, per-peer ring occupancy,
    /// last-readiness timestamps. Serves both the stderr watchdog dump and
    /// the scrape endpoint's on-demand `dump` view.
    fn dump_text(&mut self) -> String {
        let now = self.clock.now();
        let mut s = format!("==== watchdog dump {} w{} (t={now}ns) ====\n", self.me, self.worker);
        self.actor.describe(&mut s);
        use std::fmt::Write as _;
        let live_conns = self.conns.iter().filter(|c| c.is_some()).count();
        let _ = writeln!(
            s,
            "fabric loop: {live_conns} inbound conns + waker registered, selfq={}",
            self.selfq.len()
        );
        for c in self.conns.iter().flatten() {
            if let Conn::Client { slot, ring, .. } = c {
                let _ = writeln!(s, "  client s{slot}: ring={}f/{}B", ring.len(), ring.bytes());
            }
        }
        for d in 0..self.nodes {
            if d == self.me.idx() {
                continue;
            }
            let po = &self.peer_out[d];
            let link = self.links.link(NodeId(d as u8), self.worker);
            let state = match po.state {
                DialState::Idle => "Idle",
                DialState::Connecting => "Connecting",
                DialState::Connected => "Connected",
            };
            // ordering: Relaxed — diagnostic reads of the link's activity
            // timestamps; a stale value only ages the dump line.
            let _ = writeln!(
                s,
                "  out n{d}: {state} ring={}f/{}B want_out={} last_rx_ns={} last_tx_ns={}",
                po.ring.len(),
                po.ring.bytes(),
                po.want_out,
                link.last_rx_ns.load(Ordering::Relaxed),
                link.last_tx_ns.load(Ordering::Relaxed),
            );
        }
        s
    }

    fn teardown(&mut self) {
        for d in 0..self.nodes {
            let po = &mut self.peer_out[d];
            po.ring.clear_into(&self.byte_pool);
            po.stream = None;
        }
        for idx in 0..self.conns.len() {
            self.close_conn(idx);
        }
    }
}

/// Drop `buf[..pos]`, keeping the unparsed tail at the front.
fn compact(buf: &mut Vec<u8>, pos: usize) {
    if pos == 0 {
        return;
    }
    let len = buf.len();
    buf.copy_within(pos..len, 0);
    buf.truncate(len - pos);
}
