//! `TcpNet`: the real-socket fabric, same worker-facing surface as
//! `kite_simnet::ThreadedNet`.
//!
//! One `TcpNet` serves **one node** of the cluster (the in-process fabrics
//! own all nodes; here every node is its own OS process — or its own
//! `TcpNet` instance when a test runs a whole cluster on loopback):
//!
//! * **Worker peering (§6.3).** Worker *w* dials exactly one connection to
//!   each peer node, announced by a [`wire::Hello::Peer`] handshake, and
//!   peers route inbound frames to *their* worker *w* — one connection per
//!   remote worker, like the paper's RDMA QP layout.
//! * **Writer threads.** Each `(peer, worker)` pair owns a writer thread
//!   draining encoded frames into vectored writes (several outbox flushes
//!   coalesce into one syscall under load). A dead peer puts the link into
//!   reconnect-with-backoff; frames produced while the link is down are
//!   *dropped and counted* — the fabric behaves like a lossy NIC, which is
//!   exactly the failure model the protocols already recover from — so a
//!   restarted peer is re-dialed rather than wedging the cluster behind an
//!   unbounded queue.
//! * **Reader threads.** The listener accepts peer connections and frames
//!   bytes back into `Envelope<Msg>` batches, decoding into pool-recycled
//!   `Vec<Msg>` buffers ([`TcpHandle::recycle_inbound`] closes the loop),
//!   so the zero-allocation invariants survive the socket boundary. A
//!   malformed frame closes that connection — never panics a worker — and
//!   is counted on the link for the watchdog.
//! * **Zero-allocation steady state.** Outbound: `Outbox::flush` batches
//!   are encoded into pooled byte buffers and the drained `Vec<Msg>` goes
//!   straight back to the outbox pool; byte buffers return from the writer
//!   threads. Inbound: decode buffers circulate between readers and the
//!   worker loop. `Arc`-boxed Paxos payloads are encoded once per
//!   destination frame.

use std::io::{IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use kite::wire::{self, Hello};
use kite::Msg;
use kite_common::stats::ProtoCounters;
use kite_common::NodeId;
use kite_simnet::{Actor, Clock, Envelope, Outbox, WallClock};
use parking_lot::Mutex;

use crate::link::LinkTable;

/// Reconnect backoff floor.
const BACKOFF_MIN: Duration = Duration::from_millis(10);
/// Reconnect backoff ceiling.
const BACKOFF_MAX: Duration = Duration::from_millis(500);
/// Dial timeout per attempt.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);
/// Socket read timeout — bounds how long a blocked reader takes to notice
/// the stop flag.
const READ_TICK: Duration = Duration::from_millis(100);
/// Writer channel poll interval (stop-flag responsiveness).
const WRITE_TICK: Duration = Duration::from_millis(100);
/// Max frames gathered into one vectored write.
const WRITE_GATHER: usize = 16;
/// Bound on pooled spare buffers (per pool).
const POOL_CAP: usize = 64;

/// A bounded free-list of reusable `Vec<T>` buffers shared across threads.
pub(crate) struct Pool<T>(Mutex<Vec<Vec<T>>>);

impl<T> Pool<T> {
    fn new() -> Self {
        Pool(Mutex::new(Vec::new()))
    }

    fn pop(&self) -> Vec<T> {
        self.0.lock().pop().unwrap_or_default()
    }

    fn put(&self, mut buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        let mut pool = self.0.lock();
        if pool.len() < POOL_CAP {
            pool.push(buf);
        }
    }
}

/// Configuration of one node's fabric endpoint.
pub struct TcpNetCfg {
    /// This node's id.
    pub me: NodeId,
    /// Fabric address of every node, indexed by node id (`peers[me]` is the
    /// address *this* node listens on, unless `listener` overrides it).
    pub peers: Vec<String>,
    /// Worker threads per node (uniform across the cluster — worker
    /// peering needs both sides to agree).
    pub workers: usize,
    /// Pre-bound listener override: lets tests bind `127.0.0.1:0` first
    /// and distribute the real addresses.
    pub listener: Option<TcpListener>,
}

/// Everything a worker thread needs to talk to the TCP fabric — the
/// `kite_simnet::WorkerIo` shape with a [`TcpHandle`] as the sending half.
pub struct TcpWorkerIo {
    /// Node this IO bundle belongs to.
    pub node: NodeId,
    /// Worker index within the node.
    pub worker: usize,
    /// Incoming envelopes addressed to this `(node, worker)`.
    pub rx: Receiver<Envelope<Msg>>,
    /// Outgoing side.
    pub net: TcpHandle,
}

/// Sending half bound to one source worker (the `NetHandle` surface over
/// real sockets). Routes by `(destination node, own worker index)`.
pub struct TcpHandle {
    me: NodeId,
    worker: usize,
    writer_txs: Arc<Vec<Vec<Sender<Vec<u8>>>>>,
    /// Own worker's ingress: self-sends loop back without a socket.
    loopback: Sender<Envelope<Msg>>,
    links: Arc<LinkTable>,
    byte_pool: Arc<Pool<u8>>,
    msg_pool: Arc<Pool<Msg>>,
    counters: Arc<ProtoCounters>,
    /// Drained batch buffers staged during one flush, recycled into the
    /// outbox afterwards (steady-state sends allocate nothing).
    scratch: Vec<Vec<Msg>>,
}

impl TcpHandle {
    /// The node this handle belongs to.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// Encode and ship one batch to `dst`. Returns `true` if the frame was
    /// handed to the link (not necessarily delivered — a link in backoff
    /// drops it, like a lossy fabric).
    pub fn send(&mut self, dst: NodeId, msgs: Vec<Msg>) -> bool {
        debug_assert!(!msgs.is_empty());
        self.counters.msgs_sent.add(msgs.len() as u64);
        self.counters.envelopes_sent.incr();
        if dst == self.me {
            return self.loopback.send(Envelope { src: self.me, msgs }).is_ok();
        }
        let shipped = self.ship(dst, &msgs);
        self.msg_pool.put(msgs);
        shipped
    }

    /// Flush a whole outbox through this handle: encode each batch into a
    /// pooled byte buffer for its destination's writer thread, then recycle
    /// the batch buffer back into the outbox (the sending side of the
    /// buffer-recycling contract — steady-state flushes allocate nothing).
    pub fn flush(&mut self, out: &mut Outbox<Msg>) {
        let me = self.me;
        let worker = self.worker;
        let writer_txs = &self.writer_txs;
        let loopback = &self.loopback;
        let links = &self.links;
        let byte_pool = &self.byte_pool;
        let counters = &self.counters;
        let scratch = &mut self.scratch;
        out.flush(|dst, batch| {
            counters.msgs_sent.add(batch.len() as u64);
            counters.envelopes_sent.incr();
            if dst == me {
                let _ = loopback.send(Envelope { src: me, msgs: batch });
                return;
            }
            let link = links.link(dst, worker);
            if link.is_connected() {
                let mut buf = byte_pool.pop();
                wire::encode_frames(me, &batch, &mut buf);
                let _ = writer_txs[dst.idx()][worker].send(buf);
            } else {
                // Link down: the fabric is a lossy NIC, not a buffer — the
                // protocol's retransmission layer recovers; counted for
                // the watchdog.
                link.dropped_out.fetch_add(1, Ordering::Relaxed);
            }
            scratch.push(batch);
        });
        for b in scratch.drain(..) {
            out.recycle(b);
        }
    }

    /// Encode `msgs` as one frame and enqueue it on the destination's
    /// writer thread. A link in backoff drops the frame (counted).
    fn ship(&self, dst: NodeId, msgs: &[Msg]) -> bool {
        let link = self.links.link(dst, self.worker);
        if !link.is_connected() {
            link.dropped_out.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut buf = self.byte_pool.pop();
        wire::encode_frames(self.me, msgs, &mut buf);
        match self.writer_txs[dst.idx()][self.worker].send(buf) {
            Ok(()) => true,
            Err(_) => false, // fabric torn down
        }
    }

    /// Return a drained inbound envelope buffer to the decode pool (the
    /// receiving side of the buffer-recycling contract: readers draw their
    /// decode buffers from this pool).
    #[inline]
    pub fn recycle_inbound(&self, buf: Vec<Msg>) {
        self.msg_pool.put(buf);
    }
}

/// One node's fabric endpoint: listener + per-peer writer threads + shared
/// pools, plus the per-node clock and counters (the `ThreadedNet` surface
/// for one node).
pub struct TcpNet {
    /// This node.
    pub me: NodeId,
    /// Cluster size.
    pub nodes: usize,
    /// Workers per node.
    pub workers: usize,
    /// Shared wall clock.
    pub clock: Arc<WallClock>,
    /// This node's protocol counters.
    pub counters: Arc<ProtoCounters>,
    links: Arc<LinkTable>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    client_conns: Option<Receiver<(TcpStream, u32)>>,
}

impl TcpNet {
    /// Bind the fabric for one node and return the per-worker IO bundles.
    ///
    /// Peer links start dialing immediately and keep retrying with backoff,
    /// so launch order across the cluster does not matter.
    pub fn bind(cfg: TcpNetCfg) -> std::io::Result<(TcpNet, Vec<TcpWorkerIo>)> {
        let nodes = cfg.peers.len();
        let me = cfg.me;
        assert!(me.idx() < nodes, "me out of range");
        assert!(cfg.workers > 0);

        let listener = match cfg.listener {
            Some(l) => l,
            None => bind_reuseaddr(&cfg.peers[me.idx()])?,
        };
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let clock = Arc::new(WallClock::new());
        let counters = Arc::new(ProtoCounters::default());
        let links = Arc::new(LinkTable::new(me, nodes, cfg.workers));
        let stop = Arc::new(AtomicBool::new(false));
        let byte_pool = Arc::new(Pool::<u8>::new());
        let msg_pool = Arc::new(Pool::<Msg>::new());

        // Ingress channels, one per local worker.
        let mut ingress_tx = Vec::with_capacity(cfg.workers);
        let mut ingress_rx = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let (tx, rx) = unbounded::<Envelope<Msg>>();
            ingress_tx.push(tx);
            ingress_rx.push(rx);
        }
        let ingress_tx = Arc::new(ingress_tx);

        let mut threads = Vec::new();

        // Writer threads: one per (peer, worker).
        let mut writer_txs: Vec<Vec<Sender<Vec<u8>>>> = Vec::with_capacity(nodes);
        for dst in 0..nodes {
            let mut per_worker = Vec::with_capacity(cfg.workers);
            for w in 0..cfg.workers {
                let (tx, rx) = unbounded::<Vec<u8>>();
                if dst != me.idx() {
                    let addr = cfg.peers[dst].clone();
                    let links = Arc::clone(&links);
                    let byte_pool = Arc::clone(&byte_pool);
                    let stop = Arc::clone(&stop);
                    threads.push(
                        std::thread::Builder::new()
                            .name(format!("kite-net-{me}-w{w}-to-n{dst}"))
                            .spawn(move || {
                                writer_loop(
                                    addr,
                                    me,
                                    NodeId(dst as u8),
                                    w,
                                    rx,
                                    links,
                                    byte_pool,
                                    stop,
                                )
                            })
                            .expect("spawn writer"),
                    );
                }
                per_worker.push(tx);
            }
            writer_txs.push(per_worker);
        }
        let writer_txs = Arc::new(writer_txs);

        // Listener + reader threads. Client-kind connections are handed off
        // through a channel (stream + claimed slot) for whoever serves
        // remote sessions.
        let (client_tx, client_rx) = unbounded::<(TcpStream, u32)>();
        {
            let links = Arc::clone(&links);
            let msg_pool = Arc::clone(&msg_pool);
            let ingress = Arc::clone(&ingress_tx);
            let stop = Arc::clone(&stop);
            let workers = cfg.workers;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("kite-net-{me}-listen"))
                    .spawn(move || {
                        listener_loop(listener, nodes, workers, links, msg_pool, ingress, client_tx, stop)
                    })
                    .expect("spawn listener"),
            );
        }

        let ios = (0..cfg.workers)
            .zip(ingress_rx)
            .map(|(w, rx)| TcpWorkerIo {
                node: me,
                worker: w,
                rx,
                net: TcpHandle {
                    me,
                    worker: w,
                    writer_txs: Arc::clone(&writer_txs),
                    loopback: ingress_tx[w].clone(),
                    links: Arc::clone(&links),
                    byte_pool: Arc::clone(&byte_pool),
                    msg_pool: Arc::clone(&msg_pool),
                    counters: Arc::clone(&counters),
                    scratch: Vec::with_capacity(nodes),
                },
            })
            .collect();

        Ok((
            TcpNet {
                me,
                nodes,
                workers: cfg.workers,
                clock,
                counters,
                links,
                local_addr,
                stop,
                threads,
                client_conns: Some(client_rx),
            },
            ios,
        ))
    }

    /// The address the fabric listener actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The per-peer link table (diagnostics; see [`LinkTable::describe`]).
    pub fn links(&self) -> &Arc<LinkTable> {
        &self.links
    }

    /// Take the stream of accepted remote-client connections (hello already
    /// consumed; the claimed session slot rides alongside). `None` after
    /// the first call.
    pub fn take_client_conns(&mut self) -> Option<Receiver<(TcpStream, u32)>> {
        self.client_conns.take()
    }

    /// The shared stop flag (reader/writer threads watch it).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Per-link state dump for watchdogs and shutdown reports.
    pub fn describe(&self) -> String {
        self.links.describe()
    }
}

impl Drop for TcpNet {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

/// Bind a listener with `SO_REUSEADDR`: a SIGKILLed node leaves its
/// accepted sockets in TIME_WAIT on the fabric port, and a restarted
/// replica must rebind the same address *now*, not in 60 seconds —
/// otherwise "restart the node" wedges the whole recovery story. `std`'s
/// `TcpListener::bind` does not set the option, so IPv4 binds go through
/// raw libc FFI (the workspace has no libc crate); other address families
/// fall back to the std path.
fn bind_reuseaddr(addr: &str) -> std::io::Result<TcpListener> {
    let sa = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no addrs"))?;
    let SocketAddr::V4(v4) = sa else { return TcpListener::bind(sa) };
    use std::os::fd::FromRawFd;
    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, val: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port: u16,    // network byte order
        addr: u32,    // network byte order
        zero: [u8; 8],
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let one: i32 = 1;
        setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4);
        let sin = SockaddrIn {
            family: AF_INET as u16,
            port: v4.port().to_be(),
            addr: u32::from(*v4.ip()).to_be(),
            zero: [0; 8],
        };
        if bind(fd, &sin, std::mem::size_of::<SockaddrIn>() as u32) < 0 {
            let e = std::io::Error::last_os_error();
            close(fd);
            return Err(e);
        }
        if listen(fd, 128) < 0 {
            let e = std::io::Error::last_os_error();
            close(fd);
            return Err(e);
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

// ---------------------------------------------------------------------------
// Writer side
// ---------------------------------------------------------------------------

fn dial(addr: &str) -> std::io::Result<TcpStream> {
    let mut last = std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no addrs");
    for sa in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sa, CONNECT_TIMEOUT) {
            Ok(s) => return Ok(s),
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// Write every frame in `bufs`, gathering them into vectored writes.
fn write_frames(stream: &mut TcpStream, bufs: &[Vec<u8>]) -> std::io::Result<()> {
    let mut idx = 0usize; // first unwritten buffer
    let mut off = 0usize; // bytes of bufs[idx] already written
    while idx < bufs.len() {
        let mut slices: [IoSlice; WRITE_GATHER] = std::array::from_fn(|_| IoSlice::new(&[]));
        let mut n_slices = 0;
        for (i, b) in bufs.iter().enumerate().skip(idx).take(WRITE_GATHER) {
            let start = if i == idx { off } else { 0 };
            slices[n_slices] = IoSlice::new(&b[start..]);
            n_slices += 1;
        }
        let mut n = stream.write_vectored(&slices[..n_slices])?;
        if n == 0 {
            return Err(std::io::ErrorKind::WriteZero.into());
        }
        while n > 0 {
            let left = bufs[idx].len() - off;
            if n >= left {
                n -= left;
                idx += 1;
                off = 0;
            } else {
                off += n;
                n = 0;
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn writer_loop(
    addr: String,
    me: NodeId,
    dst: NodeId,
    worker: usize,
    rx: Receiver<Vec<u8>>,
    links: Arc<LinkTable>,
    byte_pool: Arc<Pool<u8>>,
    stop: Arc<AtomicBool>,
) {
    let link = links.link(dst, worker);
    let mut stream: Option<TcpStream> = None;
    let mut backoff = BACKOFF_MIN;
    let mut pending: Vec<Vec<u8>> = Vec::with_capacity(WRITE_GATHER);
    while !stop.load(Ordering::Relaxed) {
        if stream.is_none() {
            match dial(&addr) {
                Ok(mut s) => {
                    let _ = s.set_nodelay(true);
                    let _ = s.set_write_timeout(Some(Duration::from_secs(5)));
                    let hello = wire::encode_hello(Hello::Peer { node: me, worker: worker as u16 });
                    if s.write_all(&hello).is_ok() {
                        link.set_connected();
                        backoff = BACKOFF_MIN;
                        stream = Some(s);
                        continue;
                    }
                    link.set_backoff();
                }
                Err(_) => link.set_backoff(),
            }
            // Dialing failed: sleep the backoff in stop-checkable slices and
            // drop whatever queued up meanwhile — the link is a lossy NIC
            // while down, not an unbounded buffer.
            let deadline = std::time::Instant::now() + backoff;
            while std::time::Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
                std::thread::sleep(BACKOFF_MIN.min(deadline - std::time::Instant::now()));
            }
            while let Ok(buf) = rx.try_recv() {
                link.dropped_out.fetch_add(1, Ordering::Relaxed);
                byte_pool.put(buf);
            }
            backoff = (backoff * 2).min(BACKOFF_MAX);
            continue;
        }
        match rx.recv_timeout(WRITE_TICK) {
            Ok(first) => {
                pending.push(first);
                while pending.len() < WRITE_GATHER {
                    match rx.try_recv() {
                        Ok(b) => pending.push(b),
                        Err(_) => break,
                    }
                }
                let s = stream.as_mut().expect("connected");
                match write_frames(s, &pending) {
                    Ok(()) => {
                        link.frames_out.fetch_add(pending.len() as u64, Ordering::Relaxed);
                    }
                    Err(_) => {
                        // Died mid-batch: surface via link state, re-dial.
                        link.set_backoff();
                        link.dropped_out.fetch_add(pending.len() as u64, Ordering::Relaxed);
                        stream = None;
                    }
                }
                for b in pending.drain(..) {
                    byte_pool.put(b);
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Reader side
// ---------------------------------------------------------------------------

/// Read exactly `buf.len()` bytes, tolerating read-timeout ticks (so the
/// stop flag stays responsive). `Ok(false)` = clean EOF at a frame
/// boundary (only when nothing has been read yet).
pub(crate) fn read_exact_ticked(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
) -> std::io::Result<bool> {
    let mut off = 0;
    while off < buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Err(std::io::ErrorKind::Interrupted.into());
        }
        match stream.read(&mut buf[off..]) {
            Ok(0) => {
                if off == 0 {
                    return Ok(false);
                }
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            Ok(n) => off += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[allow(clippy::too_many_arguments)]
fn listener_loop(
    listener: TcpListener,
    nodes: usize,
    workers: usize,
    links: Arc<LinkTable>,
    msg_pool: Arc<Pool<Msg>>,
    ingress: Arc<Vec<Sender<Envelope<Msg>>>>,
    client_tx: Sender<(TcpStream, u32)>,
    stop: Arc<AtomicBool>,
) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        // Reap finished readers so a long-lived daemon's handle list is
        // bounded by *live* connections, not total connections ever.
        readers.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(READ_TICK));
                let links = Arc::clone(&links);
                let msg_pool = Arc::clone(&msg_pool);
                let ingress = Arc::clone(&ingress);
                let client_tx = client_tx.clone();
                let stop = Arc::clone(&stop);
                readers.push(
                    std::thread::Builder::new()
                        .name("kite-net-reader".into())
                        .spawn(move || {
                            // Bound the handshake: a connection that sends
                            // fewer than HELLO_LEN bytes and idles must not
                            // pin this thread (and its peer's 30 s client
                            // timeout) until node shutdown.
                            let hello_deadline =
                                std::time::Instant::now() + Duration::from_secs(5);
                            let mut hello = [0u8; wire::HELLO_LEN];
                            let mut got = 0;
                            while got < wire::HELLO_LEN {
                                if stop.load(Ordering::Relaxed)
                                    || std::time::Instant::now() >= hello_deadline
                                {
                                    return;
                                }
                                match stream.read(&mut hello[got..]) {
                                    Ok(0) => return,
                                    Ok(n) => got += n,
                                    Err(e)
                                        if e.kind() == std::io::ErrorKind::WouldBlock
                                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                                    Err(_) => return,
                                }
                            }
                            match wire::decode_hello(&hello) {
                                Ok(Hello::Peer { node, worker }) => {
                                    let worker = worker as usize;
                                    if node.idx() >= nodes || worker >= workers {
                                        return; // out-of-topology peer: drop
                                    }
                                    peer_reader_loop(
                                        stream, node, worker, &links, &msg_pool, &ingress, &stop,
                                    );
                                }
                                Ok(Hello::Client { slot }) => {
                                    // Hand the connection (hello consumed)
                                    // plus its claimed slot to the session
                                    // server.
                                    let _ = client_tx.send((stream, slot));
                                }
                                Err(_) => {} // bad handshake: drop
                            }
                        })
                        .expect("spawn reader"),
                );
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    for h in readers {
        let _ = h.join();
    }
}

fn peer_reader_loop(
    mut stream: TcpStream,
    src: NodeId,
    worker: usize,
    links: &LinkTable,
    msg_pool: &Pool<Msg>,
    ingress: &[Sender<Envelope<Msg>>],
    stop: &AtomicBool,
) {
    let link = links.link(src, worker);
    let mut body: Vec<u8> = Vec::with_capacity(4096);
    loop {
        let mut prefix = [0u8; 4];
        match read_exact_ticked(&mut stream, &mut prefix, stop) {
            Ok(true) => {}
            Ok(false) => return, // clean EOF
            Err(_) => return,
        }
        let len = match wire::frame_body_len(prefix) {
            Ok(l) => l,
            Err(_) => {
                // Oversized/garbage length: the stream cannot be resynced —
                // drop the connection (the peer re-dials and retransmits).
                link.decode_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        body.resize(len, 0);
        match read_exact_ticked(&mut stream, &mut body, stop) {
            Ok(true) => {}
            _ => return,
        }
        let mut msgs = msg_pool.pop();
        match wire::decode_frame_body(&body, &mut msgs) {
            Ok(frame_src) if frame_src == src => {
                link.frames_in.fetch_add(1, Ordering::Relaxed);
                if ingress[worker].send(Envelope { src, msgs }).is_err() {
                    return; // workers gone: tear down
                }
            }
            _ => {
                // Malformed frame (or a frame claiming a different source
                // than the handshake): count it, recycle the buffer, close
                // the connection. Never panics a worker.
                link.decode_errors.fetch_add(1, Ordering::Relaxed);
                msg_pool.put(msgs);
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker driving
// ---------------------------------------------------------------------------

/// Handle to stop and join one node's worker threads (the
/// `kite_simnet::StopHandle` surface for the TCP runtime).
pub struct NodeStopHandle {
    stop: Arc<AtomicBool>,
    dump: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl NodeStopHandle {
    /// Signal all workers to stop and wait for them to exit.
    pub fn stop_and_join(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// The shared stop flag.
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// The diagnostics flag: raising it makes every worker print an
    /// `Actor::describe` snapshot to stderr once, from its own thread.
    pub fn dump_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.dump)
    }
}

impl Drop for NodeStopHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Spawn one busy-polling thread per `(actor, io)` pair over the TCP
/// fabric — the same loop shape as `kite_simnet::spawn_workers`, minus the
/// in-process fault plane (real networks inject their own faults).
pub fn spawn_tcp_workers<A>(rigs: Vec<(A, TcpWorkerIo)>, net: &TcpNet) -> NodeStopHandle
where
    A: Actor<Msg = Msg> + 'static,
{
    let stop = Arc::new(AtomicBool::new(false));
    let dump = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::with_capacity(rigs.len());
    for (actor, io) in rigs {
        let stop = Arc::clone(&stop);
        let dump = Arc::clone(&dump);
        let clock = Arc::clone(&net.clock);
        let nodes = net.nodes;
        let name = format!("kite-tcp-{}-w{}", io.node, io.worker);
        handles.push(
            std::thread::Builder::new()
                .name(name)
                .spawn(move || tcp_worker_loop(actor, io, clock, nodes, stop, dump))
                .expect("spawn tcp worker"),
        );
    }
    NodeStopHandle { stop, dump, handles }
}

fn tcp_worker_loop<A: Actor<Msg = Msg>>(
    mut actor: A,
    io: TcpWorkerIo,
    clock: Arc<WallClock>,
    nodes: usize,
    stop: Arc<AtomicBool>,
    dump: Arc<AtomicBool>,
) {
    let me = io.node;
    let mut net = io.net;
    let rx = io.rx;
    let mut out: Outbox<Msg> = Outbox::new(nodes);
    let mut idle_iters: u32 = 0;
    let mut dumped = false;
    const MAX_ENVELOPES_PER_ITER: usize = 64;

    while !stop.load(Ordering::Relaxed) {
        if !dumped && dump.load(Ordering::Relaxed) {
            dumped = true;
            let now = clock.now();
            let mut s = format!("==== watchdog dump {me} w{} (t={now}ns) ====\n", io.worker);
            actor.describe(&mut s);
            eprintln!("{s}");
        }

        let mut progress = false;
        for _ in 0..MAX_ENVELOPES_PER_ITER {
            match rx.try_recv() {
                Ok(mut env) => {
                    actor.on_envelope(env.src, &mut env.msgs, clock.now(), &mut out);
                    // Inbound buffers circulate back to the decode pool —
                    // the socket-boundary half of the recycling contract.
                    net.recycle_inbound(env.msgs);
                    progress = true;
                }
                Err(_) => break,
            }
        }
        if actor.on_tick(clock.now(), &mut out) {
            progress = true;
        }
        if !out.is_empty() {
            net.flush(&mut out);
            progress = true;
        }

        if progress {
            idle_iters = 0;
        } else {
            idle_iters = idle_iters.saturating_add(1);
            if idle_iters < 64 {
                std::hint::spin_loop();
            } else if idle_iters < 256 {
                std::thread::yield_now();
            } else {
                std::thread::park_timeout(Duration::from_micros(100));
            }
        }
    }
}
