//! Per-peer link state: what the watchdog sees when a connection dies.
//!
//! Every `(peer node, worker)` pair owns one [`LinkState`]: the worker's
//! event loop flips it between connected and backoff as the TCP connection
//! lives and dies, both directions count frames, and the bounded outbound
//! ring publishes its occupancy and shed count here. A peer connection
//! dying mid-batch (or stalling and forcing sheds) therefore *surfaces* —
//! in [`LinkTable::describe`], printed by the node watchdog next to the
//! workers' `Actor::describe` dumps — instead of silently stalling
//! retransmissions until someone attaches strace.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use kite_common::NodeId;

/// Connection phase of one outbound link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkPhase {
    /// Never connected yet (still dialing for the first time).
    Connecting,
    /// Connected; frames flow.
    Connected,
    /// Lost the connection; redialing with backoff.
    Backoff,
    /// Administratively retired: the peer left the membership (or its
    /// address slot was emptied), so the loop stopped dialing it. A later
    /// address set revives the row through the normal dial path.
    Retired,
}

impl LinkPhase {
    fn from_u8(v: u8) -> LinkPhase {
        match v {
            1 => LinkPhase::Connected,
            2 => LinkPhase::Backoff,
            3 => LinkPhase::Retired,
            _ => LinkPhase::Connecting,
        }
    }
}

/// State + counters of one `(peer, worker)` link, shared between the
/// worker's event loop (which owns the socket) and diagnostics.
#[derive(Default)]
pub struct LinkState {
    phase: AtomicU8,
    /// Frames successfully written to the peer.
    pub frames_out: AtomicU64,
    /// Frames received and decoded from the peer.
    pub frames_in: AtomicU64,
    /// Outbound frames dropped because the link was down (the protocol's
    /// retransmission layer recovers these, exactly like a lossy fabric).
    pub dropped_out: AtomicU64,
    /// Inbound connections closed because a frame failed to decode — a
    /// malformed peer costs itself the connection, never the worker.
    pub decode_errors: AtomicU64,
    /// Successful (re)connections.
    pub connects: AtomicU64,
    /// Outbound frames shed because the bounded ring was full — the
    /// backpressure signal of a peer that stopped reading. Retransmission
    /// recovers these once the peer drains again.
    pub shed_full: AtomicU64,
    /// Gauge: frames currently queued in the outbound ring.
    pub ring_frames: AtomicU64,
    /// Gauge: bytes currently queued in the outbound ring.
    pub ring_bytes: AtomicU64,
    /// Wall-clock ns of the last inbound readiness on this link (0 = never).
    pub last_rx_ns: AtomicU64,
    /// Wall-clock ns of the last completed socket write (0 = never).
    pub last_tx_ns: AtomicU64,
}

impl LinkState {
    /// Current phase.
    // ordering: monitoring read of a standalone flag; no payload is
    // published through it, so Relaxed cannot reorder anything that matters.
    pub fn phase(&self) -> LinkPhase {
        LinkPhase::from_u8(self.phase.load(Ordering::Relaxed))
    }

    /// Is the outbound connection currently up?
    // ordering: advisory fast-path check — a stale read only means one more
    // frame queued to a dying link, which the drop counters then record.
    #[inline]
    pub fn is_connected(&self) -> bool {
        self.phase.load(Ordering::Relaxed) == 1
    }

    // ordering: the loop that flips the phase is the only writer and owns
    // the socket; readers are diagnostics and the advisory enqueue check.
    // Relaxed flips cannot race anything correctness-bearing.
    pub(crate) fn set_connected(&self) {
        self.phase.store(1, Ordering::Relaxed);
        self.connects.fetch_add(1, Ordering::Relaxed);
    }

    // ordering: same single-writer advisory flag as set_connected.
    pub(crate) fn set_backoff(&self) {
        self.phase.store(2, Ordering::Relaxed);
    }

    // ordering: same single-writer advisory flag as set_connected.
    pub(crate) fn set_retired(&self) {
        self.phase.store(3, Ordering::Relaxed);
    }
}

/// All of one node's links, indexed `[peer][worker]` (the `me` row exists
/// but stays `Connecting` forever — self-delivery never touches a socket).
pub struct LinkTable {
    me: NodeId,
    links: Vec<Vec<LinkState>>,
}

impl LinkTable {
    pub(crate) fn new(me: NodeId, nodes: usize, workers: usize) -> LinkTable {
        LinkTable {
            me,
            links: (0..nodes)
                .map(|_| (0..workers).map(|_| LinkState::default()).collect())
                .collect(),
        }
    }

    /// The link to `(peer, worker)`.
    #[inline]
    pub fn link(&self, peer: NodeId, worker: usize) -> &LinkState {
        &self.links[peer.idx()][worker]
    }

    /// Total inbound frames across all links (progress probe).
    // ordering: monotone counters summed for a progress heuristic; the sum
    // is racy by nature and Relaxed loses nothing.
    pub fn total_frames_in(&self) -> u64 {
        self.links
            .iter()
            .flatten()
            .map(|l| l.frames_in.load(Ordering::Relaxed))
            .sum()
    }

    /// Total outbound frames shed to ring backpressure across all links —
    /// the transport-health number the bench bins print per row.
    // ordering: monotone counters summed for reporting; Relaxed is exact
    // enough for a snapshot that is racy by nature.
    pub fn total_shed_full(&self) -> u64 {
        self.links
            .iter()
            .flatten()
            .map(|l| l.shed_full.load(Ordering::Relaxed))
            .sum()
    }

    /// Total inbound frames that failed to decode across all links (any
    /// nonzero value means wire corruption or a framing bug).
    // ordering: same monotone-snapshot argument as `total_shed_full`.
    pub fn total_decode_errors(&self) -> u64 {
        self.links
            .iter()
            .flatten()
            .map(|l| l.decode_errors.load(Ordering::Relaxed))
            .sum()
    }

    /// Human-readable per-link dump for the watchdog / shutdown report.
    // ordering: diagnostics snapshot — each counter is read independently;
    // cross-counter consistency is not promised, so Relaxed is exact enough.
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "links of {}:", self.me);
        for (n, per_node) in self.links.iter().enumerate() {
            if n == self.me.idx() {
                continue;
            }
            for (w, l) in per_node.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  peer n{n} w{w}: {:?} out={} in={} dropped={} shed={} ring={}f/{}B \
                     decode_errs={} connects={} last_rx_ns={} last_tx_ns={}",
                    l.phase(),
                    l.frames_out.load(Ordering::Relaxed),
                    l.frames_in.load(Ordering::Relaxed),
                    l.dropped_out.load(Ordering::Relaxed),
                    l.shed_full.load(Ordering::Relaxed),
                    l.ring_frames.load(Ordering::Relaxed),
                    l.ring_bytes.load(Ordering::Relaxed),
                    l.decode_errors.load(Ordering::Relaxed),
                    l.connects.load(Ordering::Relaxed),
                    l.last_rx_ns.load(Ordering::Relaxed),
                    l.last_tx_ns.load(Ordering::Relaxed),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_transition_and_describe() {
        let t = LinkTable::new(NodeId(0), 3, 2);
        let l = t.link(NodeId(1), 0);
        assert_eq!(l.phase(), LinkPhase::Connecting);
        assert!(!l.is_connected());
        l.set_connected();
        assert!(l.is_connected());
        l.set_backoff();
        assert_eq!(l.phase(), LinkPhase::Backoff);
        l.set_retired();
        assert_eq!(l.phase(), LinkPhase::Retired);
        l.frames_in.fetch_add(3, Ordering::Relaxed);
        let d = t.describe();
        assert!(d.contains("Retired"), "{d}");
        assert!(d.contains("in=3"), "{d}");
        assert_eq!(t.total_frames_in(), 3);
    }
}
