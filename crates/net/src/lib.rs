//! # kite-net
//!
//! The real-network transport of the Kite reproduction: the third
//! scheduler for the sans-io protocol actors. Where `kite-simnet` drives
//! the same `Worker` code through in-process channels (threaded) or a
//! deterministic event loop (sim), this crate drives it across **real TCP
//! sockets between real processes** — the step from protocol to deployable
//! replication layer.
//!
//! * [`fabric`] — [`TcpNet`]: per-peer writer threads draining
//!   `Outbox::flush` batches into vectored writes, reader threads framing
//!   bytes back into `Actor::on_envelope` deliveries, per-link
//!   reconnect-with-backoff and watchdog-visible link state.
//! * [`node`] — [`NodeRuntime`]: one Kite node as a process (session
//!   plumbing, workers over the fabric, remote-session serving, clean
//!   shutdown); [`launch_local_cluster`] runs a whole cluster on loopback
//!   inside one process for tests and benches.
//! * [`client`] — [`RemoteSession`]: the blocking `SessionHandle` API over
//!   a socket, matching completions by op sequence number.
//! * `kite-node` / `kite-client` (bins) — the daemon and the workload
//!   driver used by `scripts/e2e_tcp.sh`.
//!
//! The wire format itself lives in `kite::wire`; this crate only moves the
//! frames. The buffer-recycling contract of the in-process runtimes
//! survives the socket boundary: outbox batches are encoded into pooled
//! byte buffers and recycled immediately, and inbound frames decode into
//! pooled `Vec<Msg>` buffers that circulate between the reader threads and
//! the worker loop.

#![warn(missing_docs)]

pub mod client;
pub mod fabric;
pub mod link;
pub mod node;

pub use client::{RemoteSession, CLIENT_TIMEOUT};
pub use fabric::{spawn_tcp_workers, NodeStopHandle, TcpHandle, TcpNet, TcpNetCfg, TcpWorkerIo};
pub use link::{LinkPhase, LinkState, LinkTable};
pub use node::{launch_local_cluster, NodeConfig, NodeRuntime, NodeWatchdog};
