//! # kite-net
//!
//! The real-network transport of the Kite reproduction: the third
//! scheduler for the sans-io protocol actors. Where `kite-simnet` drives
//! the same `Worker` code through in-process channels (threaded) or a
//! deterministic event loop (sim), this crate drives it across **real TCP
//! sockets between real processes** — the step from protocol to deployable
//! replication layer.
//!
//! * [`fabric`] — [`TcpNet`]: one run-to-completion epoll event loop per
//!   worker (the worker thread *is* the I/O loop), nonblocking sockets,
//!   readiness-driven reads feeding `Actor::on_envelope`, vectored writes
//!   draining bounded per-peer outbound rings that shed under
//!   backpressure, per-link reconnect-with-backoff as loop state, and
//!   watchdog-visible link/ring state.
//! * [`sys`] — the raw-libc epoll/eventfd/nonblocking-connect FFI surface
//!   (the workspace carries no libc/mio/tokio crates).
//! * [`ring`] — the bounded outbound frame ring and the shared buffer
//!   pools.
//! * [`node`] — [`NodeRuntime`]: one Kite node as a process (session
//!   plumbing, workers over the fabric, in-loop remote-session serving,
//!   clean shutdown); [`launch_local_cluster`] runs a whole cluster on
//!   loopback inside one process for tests and benches.
//! * [`client`] — [`RemoteSession`]: the `SessionHandle` API over a
//!   socket, pipelined — many in-flight ops per connection, completions
//!   matched by op sequence number through a reorder window.
//! * `kite-node` / `kite-client` (bins) — the daemon and the workload
//!   driver used by `scripts/e2e_tcp.sh`.
//!
//! The wire format itself lives in `kite::wire`; this crate only moves the
//! frames. The buffer-recycling contract of the in-process runtimes
//! survives the socket boundary: outbox batches are encoded into pooled
//! byte buffers that the rings recycle once the kernel accepts the bytes,
//! and inbound frames decode into pooled `Vec<Msg>` buffers — steady-state
//! sends and receives allocate nothing.

#![warn(missing_docs)]

pub mod client;
pub mod fabric;
pub mod link;
pub mod node;
pub mod ring;
pub mod scrape;
pub mod sys;

pub use client::{RemoteSession, CLIENT_TIMEOUT};
pub use fabric::{
    bind_reuseaddr, spawn_tcp_workers, ClientSessions, NodeStopHandle, PeerTable, TcpNet,
    TcpNetCfg, TcpWorkerIo,
};
pub use link::{LinkPhase, LinkState, LinkTable};
pub use node::{launch_local_cluster, NodeConfig, NodeRuntime, NodeWatchdog};
