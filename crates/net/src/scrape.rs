//! The node-wide metrics hub behind the scrape endpoint.
//!
//! [`MetricsHub`] owns a [`kite_metrics::Registry`] populated with every
//! observable the daemon has — protocol counters, store probe, per-class op
//! latency, WAL watermarks and group-commit latency, per-link fabric stats —
//! bridged through `poll_fn`/`poll_histogram` closures so the live atomics
//! are read at scrape time instead of being copied into parallel storage.
//!
//! The hub itself is transport-agnostic: the TCP listener serving it lives
//! in [`crate::fabric`], registered on an *existing* worker epoll loop (no
//! extra threads — the scrape plane shares the fabric's epoll budget). Two
//! views exist:
//!
//! * `scrape` (the default): one `key value` line per metric;
//! * `dump`: the serving worker's watchdog text (`Actor::describe` + fabric
//!   loop state) followed by the node-level describe lines — the watchdog
//!   dump promoted from "raise a flag, read stderr" to on-demand pull.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use kite::NodeShared;
use kite_common::stats::{Counter as ProtoCounter, ProtoCounters};
use kite_common::NodeId;
use kite_metrics::Registry;
use kite_wal::Wal;

use crate::link::LinkTable;

/// Everything a scrape connection renders. Built once per node at launch
/// (registration allocates; scraping only reads).
pub struct MetricsHub {
    registry: Registry,
    /// Appends the node-level describe lines to a `dump` view (protocol
    /// mode, completed counts, link table, WAL health).
    dump_extra: Box<dyn Fn(&mut String) + Send + Sync>,
}

impl MetricsHub {
    /// Render the `key value` metrics view.
    pub fn render_metrics(&self, out: &mut String) {
        self.registry.render(out);
    }

    /// Append the node-level half of the `dump` view (the serving worker
    /// prepends its own loop state).
    pub fn render_dump_extra(&self, out: &mut String) {
        (self.dump_extra)(out);
    }

    /// The underlying registry (tests; additional registration).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

/// Re-export one protocol counter through the registry.
fn bridge(reg: &Registry, name: &str, counters: &Arc<ProtoCounters>, f: fn(&ProtoCounters) -> &ProtoCounter) {
    let c = Arc::clone(counters);
    reg.poll_fn(name, move || f(&c).get());
}

/// Build the hub for one node: bridge every layer's live counters into one
/// registry. `mode` is the protocol-mode tag shown in the `dump` view (the
/// scrape view is numeric-only `key value` lines).
pub fn node_metrics_hub(
    me: NodeId,
    mode: String,
    shared: &Arc<NodeShared>,
    counters: &Arc<ProtoCounters>,
    links: &Arc<LinkTable>,
    wal: Option<&Arc<Wal>>,
    workers: usize,
) -> Arc<MetricsHub> {
    let reg = Registry::new();
    let nodes = shared.cfg.nodes;

    reg.poll_fn("node_id", {
        let me = me.idx() as u64;
        move || me
    });

    // -- core protocol counters (ProtoCounters re-exported) ---------------
    bridge(&reg, "proto_completed", counters, |c| &c.completed);
    bridge(&reg, "proto_local_reads", counters, |c| &c.local_reads);
    bridge(&reg, "proto_slow_path_accesses", counters, |c| &c.slow_path_accesses);
    bridge(&reg, "proto_fast_releases", counters, |c| &c.fast_releases);
    bridge(&reg, "proto_slow_releases", counters, |c| &c.slow_releases);
    bridge(&reg, "proto_epoch_bumps", counters, |c| &c.epoch_bumps);
    bridge(&reg, "proto_envelopes_sent", counters, |c| &c.envelopes_sent);
    bridge(&reg, "proto_msgs_sent", counters, |c| &c.msgs_sent);
    bridge(&reg, "proto_acks_sent", counters, |c| &c.acks_sent);
    bridge(&reg, "proto_acks_coalesced", counters, |c| &c.acks_coalesced);
    bridge(&reg, "proto_msgs_batched", counters, |c| &c.msgs_batched);
    bridge(&reg, "proto_ae_digests_sent", counters, |c| &c.ae_digests_sent);
    bridge(&reg, "proto_ae_digest_keys", counters, |c| &c.ae_digest_keys);
    bridge(&reg, "proto_ae_summaries_sent", counters, |c| &c.ae_summaries_sent);
    bridge(&reg, "proto_ae_merkle_reqs", counters, |c| &c.ae_merkle_reqs);
    bridge(&reg, "proto_ae_digest_bytes", counters, |c| &c.ae_digest_bytes);
    bridge(&reg, "proto_ae_repair_reqs", counters, |c| &c.ae_repair_reqs);
    bridge(&reg, "proto_ae_repair_vals", counters, |c| &c.ae_repair_vals);
    bridge(&reg, "proto_ae_repairs_applied", counters, |c| &c.ae_repairs_applied);
    bridge(&reg, "proto_ae_repair_bytes", counters, |c| &c.ae_repair_bytes);

    // -- live membership (epoch-based reconfiguration) --------------------
    // The packed cell decomposes into three gauges so a scrape delta shows
    // a config change landing (epoch bumps) and a learner promoting
    // (voters gains a bit, learners loses it) without parsing the dump.
    reg.poll_fn("membership_epoch", {
        let s = Arc::clone(shared);
        move || s.membership.epoch() as u64
    });
    reg.poll_fn("membership_voters", {
        let s = Arc::clone(shared);
        move || s.voters().0 as u64
    });
    reg.poll_fn("membership_learners", {
        let s = Arc::clone(shared);
        move || s.membership.load().learners.0 as u64
    });
    bridge(&reg, "proto_membership_installs", counters, |c| &c.membership_installs);
    bridge(&reg, "proto_stale_epoch_dropped", counters, |c| &c.stale_epoch_dropped);
    bridge(&reg, "proto_membership_pulls", counters, |c| &c.membership_pulls);

    // -- kvs store: op counts + distinct-keys sketch ----------------------
    reg.poll_fn("store_len", {
        let s = Arc::clone(shared);
        move || s.store.len() as u64
    });
    // `store_len` counts claimed slots (reads probing fresh keys claim
    // too); `store_vals` counts only value-bearing keys, which is the
    // number anti-entropy actually converges across replicas.
    reg.poll_fn("store_vals", {
        let s = Arc::clone(shared);
        move || s.store.values() as u64
    });
    reg.poll_fn("store_writes", {
        let s = Arc::clone(shared);
        move || s.store_probe.writes.get()
    });
    reg.poll_fn("store_distinct_keys_est", {
        let s = Arc::clone(shared);
        move || s.store_probe.distinct_keys.estimate()
    });

    // -- per-class op latency, recorded at session retire -----------------
    for (class, _) in shared.op_latency.classes() {
        let s = Arc::clone(shared);
        reg.poll_histogram(&format!("op_{class}_latency_ns"), move || {
            s.op_latency
                .classes()
                .iter()
                .find(|(c, _)| *c == class)
                .map(|(_, h)| h.snapshot())
                .unwrap_or_default()
        });
    }

    // -- WAL: staged/durable watermarks + group-commit latency ------------
    if let Some(wal) = wal {
        let stat = |w: &Arc<Wal>, f: fn(&kite_wal::WalStats) -> u64| {
            let w = Arc::clone(w);
            move || f(&w.stats())
        };
        reg.poll_fn("wal_records", stat(wal, |s| s.records));
        reg.poll_fn("wal_appended_bytes", stat(wal, |s| s.appended_bytes));
        reg.poll_fn("wal_durable_bytes", stat(wal, |s| s.durable_bytes));
        reg.poll_fn("wal_lag_bytes", stat(wal, |s| s.lag_bytes));
        reg.poll_fn("wal_flush_batches", stat(wal, |s| s.flush_batches));
        reg.poll_fn("wal_fsyncs", stat(wal, |s| s.fsyncs));
        reg.poll_fn("wal_snapshots", stat(wal, |s| s.snapshots));
        let w = Arc::clone(wal);
        reg.poll_histogram("wal_commit_latency_ns", move || w.commit_latency().snapshot());
    }

    // -- per-link fabric stats (frames / sheds / decode errors / backoff) --
    /// Relaxed load of one link-stat counter, for the poll closures below.
    fn stat(c: &std::sync::atomic::AtomicU64) -> u64 {
        // ordering: Relaxed — a monitoring read of a monotone counter whose
        // only writers are the worker loops; a stale value is a slightly
        // old number, never a broken invariant.
        c.load(Ordering::Relaxed)
    }
    for peer in 0..nodes {
        if peer == me.idx() {
            continue;
        }
        for w in 0..workers {
            let field = |links: &Arc<LinkTable>,
                         f: fn(&crate::link::LinkState) -> u64| {
                let links = Arc::clone(links);
                let p = NodeId(peer as u8);
                move || f(links.link(p, w))
            };
            let pre = format!("link_n{peer}_w{w}");
            reg.poll_fn(&format!("{pre}_frames_out"), field(links, |l| stat(&l.frames_out)));
            reg.poll_fn(&format!("{pre}_frames_in"), field(links, |l| stat(&l.frames_in)));
            reg.poll_fn(&format!("{pre}_dropped_out"), field(links, |l| stat(&l.dropped_out)));
            reg.poll_fn(&format!("{pre}_shed_full"), field(links, |l| stat(&l.shed_full)));
            reg.poll_fn(&format!("{pre}_decode_errors"), field(links, |l| stat(&l.decode_errors)));
            reg.poll_fn(&format!("{pre}_connects"), field(links, |l| stat(&l.connects)));
            reg.poll_fn(&format!("{pre}_ring_frames"), field(links, |l| stat(&l.ring_frames)));
            reg.poll_fn(&format!("{pre}_ring_bytes"), field(links, |l| stat(&l.ring_bytes)));
            reg.poll_fn(&format!("{pre}_phase"), field(links, |l| l.phase() as u64));
        }
    }

    // -- dump view extras --------------------------------------------------
    let dump_extra: Box<dyn Fn(&mut String) + Send + Sync> = {
        let shared = Arc::clone(shared);
        let links = Arc::clone(links);
        let wal = wal.map(Arc::clone);
        Box::new(move |out: &mut String| {
            use std::fmt::Write as _;
            let _ = writeln!(
                out,
                "node {} mode={} completed={} ae_repairs={}",
                shared.me,
                mode,
                shared.counters.completed.get(),
                shared.counters.ae_repairs_applied.get(),
            );
            let _ = writeln!(
                out,
                "membership {} installs={} stale_dropped={} pulls={}",
                shared.membership.load(),
                shared.counters.membership_installs.get(),
                shared.counters.stale_epoch_dropped.get(),
                shared.counters.membership_pulls.get(),
            );
            let _ = writeln!(out, "{}", links.describe());
            if let Some(wal) = &wal {
                let _ = writeln!(out, "{}", wal.describe());
            }
        })
    };

    Arc::new(MetricsHub { registry: reg, dump_extra })
}
