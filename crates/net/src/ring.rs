//! Bounded per-peer outbound rings and the buffer pool behind them.
//!
//! A ring holds fully-encoded wire frames waiting for socket writability.
//! Capacity is bounded in both frames and bytes; a push that would exceed
//! either cap is refused and the frame is shed — the link behaves like a
//! lossy NIC under backpressure and protocol retransmission recovers, which
//! keeps a stalled peer from growing sender memory without bound.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Write};
use std::net::TcpStream;
use std::sync::Mutex;

/// Max frames queued per ring before new frames are shed.
pub const RING_CAP_FRAMES: usize = 1024;
/// Max bytes queued per ring before new frames are shed.
pub const RING_CAP_BYTES: usize = 8 << 20;
/// Max iovecs per `writev` call.
const WRITEV_BATCH: usize = 32;

/// Shared free-list of reusable buffers so steady-state encode/decode paths
/// allocate nothing. Buffers above the per-buffer byte cap are dropped rather
/// than cached.
pub struct Pool<T> {
    free: Mutex<Vec<Vec<T>>>,
    cap: usize,
}

impl<T> Pool<T> {
    /// Pool caching at most `cap` buffers.
    pub fn new(cap: usize) -> Pool<T> {
        Pool { free: Mutex::new(Vec::new()), cap }
    }

    /// Take a cleared buffer from the pool (or allocate a fresh one).
    pub fn pop(&self) -> Vec<T> {
        self.free.lock().unwrap().pop().unwrap_or_default()
    }

    /// Return a buffer to the pool. Contents are cleared.
    pub fn put(&self, mut buf: Vec<T>) {
        buf.clear();
        let mut free = self.free.lock().unwrap();
        if free.len() < self.cap {
            free.push(buf);
        }
    }
}

/// Outcome of a ring drain attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Drain {
    /// Every queued frame was written; EPOLLOUT interest can be dropped.
    Emptied,
    /// The socket would block with frames still queued; keep EPOLLOUT armed.
    Blocked,
}

/// Bounded queue of encoded frames with partial-write tracking and vectored
/// drain.
pub struct OutRing {
    q: VecDeque<Vec<u8>>,
    /// Bytes of `q[0]` already written to the socket.
    head_off: usize,
    bytes: usize,
    cap_frames: usize,
    cap_bytes: usize,
}

impl OutRing {
    /// Ring with the default caps.
    pub fn new() -> OutRing {
        OutRing::with_caps(RING_CAP_FRAMES, RING_CAP_BYTES)
    }

    /// Ring with explicit caps (tests shrink these to force sheds quickly).
    pub fn with_caps(cap_frames: usize, cap_bytes: usize) -> OutRing {
        OutRing { q: VecDeque::new(), head_off: 0, bytes: 0, cap_frames, cap_bytes }
    }

    /// Queued frame count.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Queued bytes (not yet handed to the kernel).
    pub fn bytes(&self) -> usize {
        self.bytes - self.head_off
    }

    /// Enqueue an encoded frame. `Err(buf)` hands the frame back when either
    /// cap would be exceeded — the caller counts the shed and recycles.
    pub fn push(&mut self, buf: Vec<u8>) -> Result<(), Vec<u8>> {
        if self.q.len() >= self.cap_frames || self.bytes + buf.len() > self.cap_bytes {
            return Err(buf);
        }
        self.bytes += buf.len();
        self.q.push_back(buf);
        Ok(())
    }

    /// Write as much as the socket accepts via `write_vectored`, recycling
    /// fully-written frames into `pool`. Io errors other than `WouldBlock`
    /// propagate (the caller tears the connection down).
    pub fn drain_to(&mut self, stream: &mut TcpStream, pool: &Pool<u8>) -> io::Result<Drain> {
        while !self.q.is_empty() {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(WRITEV_BATCH.min(self.q.len()));
            for (i, buf) in self.q.iter().take(WRITEV_BATCH).enumerate() {
                let start = if i == 0 { self.head_off } else { 0 };
                slices.push(IoSlice::new(&buf[start..]));
            }
            let n = match stream.write_vectored(&slices) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(Drain::Blocked),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            self.advance(n, pool);
        }
        Ok(Drain::Emptied)
    }

    fn advance(&mut self, mut n: usize, pool: &Pool<u8>) {
        while n > 0 {
            let head_len = self.q[0].len() - self.head_off;
            if n >= head_len {
                n -= head_len;
                self.bytes -= self.q[0].len();
                self.head_off = 0;
                let buf = self.q.pop_front().expect("ring head");
                pool.put(buf);
            } else {
                self.head_off += n;
                n = 0;
            }
        }
    }

    /// Drop everything queued (connection died); frames go back to the pool.
    pub fn clear_into(&mut self, pool: &Pool<u8>) {
        self.head_off = 0;
        self.bytes = 0;
        while let Some(buf) = self.q.pop_front() {
            pool.put(buf);
        }
    }
}

impl Default for OutRing {
    fn default() -> Self {
        OutRing::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_refuses_past_frame_cap() {
        let mut r = OutRing::with_caps(2, 1 << 20);
        assert!(r.push(vec![1]).is_ok());
        assert!(r.push(vec![2]).is_ok());
        assert!(r.push(vec![3]).is_err());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn push_refuses_past_byte_cap() {
        let mut r = OutRing::with_caps(64, 10);
        assert!(r.push(vec![0; 6]).is_ok());
        assert!(r.push(vec![0; 6]).is_err());
        assert!(r.push(vec![0; 4]).is_ok());
        assert_eq!(r.bytes(), 10);
    }
}
