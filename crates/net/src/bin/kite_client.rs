//! `kite-client`: remote-session workload driver for TCP deployments
//! (the client half of `scripts/e2e_tcp.sh`).
//!
//! Phases:
//!
//! * `mixed` — one remote session per listed server runs a mixed
//!   read/write/release/acquire/FAA/CAS-mutex workload. Every completion
//!   is recorded client-side (single process clock, so real-time edges are
//!   sound) and the history is checked against the **RCLin** axioms; the
//!   FAA counter total and the CAS-mutex-protected cell are verified
//!   exactly. Exit 0 iff everything holds.
//! * `put` — one release write (seeds a convergence sentinel).
//! * `poll` — relaxed-read one key on one node until it shows the expected
//!   value (how the script proves a restarted replica anti-entropy-caught-
//!   up: relaxed reads are local, so the value can only appear through
//!   repair).
//! * `fill` — bulk-load a deterministic key range with relaxed writes,
//!   striped across one session per listed server (how the WAL e2e phase
//!   builds a store big enough that "replay the tail" and "re-replicate
//!   the world" are measurably different).
//! * `hot` — flash-crowd writer: every session hammers ONE hot key with
//!   half its writes (the other half spread over a small cold range),
//!   from all listed servers at once. Pairs with `scrape` so the e2e
//!   script can prove ack coalescing keeps ack msgs/op sub-linear in
//!   node count even when a single key takes the whole cluster's write
//!   traffic (§6.3 of the paper).
//! * `scrape` — connect to a node's `--metrics-addr` endpoint, send one
//!   request line (`scrape`, or `dump` with `--view dump`), print the
//!   response, exit. No session, no protocol — plain TCP.
//! * `reconfig` — operator-facing membership changes: `--action
//!   show|add-learner|promote|retire` (with `--target N` for the
//!   mutators). Reads the current membership from the reserved key
//!   through an ordinary client session, derives the successor config,
//!   and strong-CASes it in — the change rides the same per-key Paxos as
//!   any workload RMW, retrying if a concurrent change wins the race.
//! * `openloop` — one pipelined session per listed server submits the
//!   typical Kite mix on a **fixed arrival schedule** (`--rate` ops/s per
//!   session for `--secs`), never waiting for completions; per-op latency
//!   is measured from the op's *scheduled* arrival, so queueing delay is
//!   included (no coordinated omission). Prints `p50_us=… p99_us=…
//!   p999_us=…` and fails if the run can't complete or the percentiles
//!   blow past sanity bounds.
//!
//! ```text
//! kite-client mixed    --servers a:p,b:p,c:p --slot 0 --ops 40
//! kite-client put      --servers a:p --slot 1 --key 900 --val 7777
//! kite-client poll     --servers c:p --slot 1 --key 900 --val 7777 --timeout-secs 20
//! kite-client fill     --servers a:p,b:p,c:p --slot 2 --key-base 1000 --count 20000
//! kite-client openloop --servers a:p,b:p,c:p --slot 5 --rate 1000 --secs 2
//! kite-client hot      --servers a:p,b:p,c:p --slot 8 --ops 2000 --key-base 40000
//! kite-client scrape   --servers 127.0.0.1:9100 [--view dump]
//! kite-client reconfig --servers a:p --slot 6 --action add-learner --target 3
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use kite_common::Key;
use kite_net::RemoteSession;
use kite_verify::{check_rc, History, OpKind, OpRecord, RcMode};

const DATA_BASE: u64 = 100;
const FLAG_BASE: u64 = 200;
const COUNTER: u64 = 300;
const LOCK: u64 = 301;
const CELL: u64 = 302;

fn fail(msg: String) -> ! {
    eprintln!("kite-client: FAIL: {msg}");
    std::process::exit(1);
}

struct Recorder {
    history: Arc<History>,
    base: Instant,
    session: kite_common::SessionId,
    seq: u64,
}

impl Recorder {
    fn record(&mut self, key: Key, kind: OpKind, invoked: Instant, completed: Instant) {
        self.history.record(OpRecord {
            session: self.session,
            session_seq: self.seq,
            key,
            kind,
            invoke: invoked.duration_since(self.base).as_nanos() as u64,
            complete: completed.duration_since(self.base).as_nanos() as u64,
        });
        self.seq += 1;
    }
}

/// Unique nonzero value: sessions stamp their writes so reads-from is
/// unambiguous for the checker.
fn uniq(session_idx: u64, ctr: &mut u64) -> u64 {
    *ctr += 1;
    (session_idx + 1) << 40 | *ctr
}

#[allow(clippy::too_many_arguments)]
fn mixed_session(
    addr: String,
    slot: u32,
    idx: usize,
    n: usize,
    ops: u64,
    key_base: u64,
    history: Arc<History>,
    base: Instant,
) -> Result<(), String> {
    let mut s = RemoteSession::connect(&addr, slot)
        .map_err(|e| format!("connect {addr} slot {slot}: {e}"))?;
    let mut rec = Recorder { history, base, session: s.id(), seq: 0 };
    let mut ctr = 0u64;
    let my_data = Key(key_base + DATA_BASE + idx as u64);
    let my_flag = Key(key_base + FLAG_BASE + idx as u64);
    let peer_flag = Key(key_base + FLAG_BASE + ((idx + 1) % n) as u64);
    let peer_data = Key(key_base + DATA_BASE + ((idx + 1) % n) as u64);
    let counter = Key(key_base + COUNTER);
    let lock = Key(key_base + LOCK);
    let cell = Key(key_base + CELL);
    let my_tag = (idx as u64 + 1) << 56 | 0xA5;
    let e = |e: kite_common::KiteError| format!("session {idx}: {e}");

    for _ in 0..ops {
        // Relaxed write + release of the paired flag (RC handoff pattern).
        let v = uniq(idx as u64, &mut ctr);
        let t0 = Instant::now();
        s.write(my_data, v).map_err(e)?;
        rec.record(my_data, OpKind::Write { v }, t0, Instant::now());
        let f = uniq(idx as u64, &mut ctr);
        let t0 = Instant::now();
        s.release(my_flag, f).map_err(e)?;
        rec.record(my_flag, OpKind::Release { v: f }, t0, Instant::now());

        // Acquire the neighbour's flag, then read their payload.
        let t0 = Instant::now();
        let got = s.acquire(peer_flag).map_err(e)?;
        rec.record(peer_flag, OpKind::Acquire { v: got.as_u64() }, t0, Instant::now());
        let t0 = Instant::now();
        let got = s.read(peer_data).map_err(e)?;
        rec.record(peer_data, OpKind::Read { v: got.as_u64() }, t0, Instant::now());

        // Consensus: shared FAA counter.
        let t0 = Instant::now();
        let old = s.fetch_add(counter, 1).map_err(e)?;
        rec.record(counter, OpKind::Rmw { observed: old, wrote: old + 1 }, t0, Instant::now());

        // Strong-CAS mutex protecting CELL: lock (CAS EMPTY → tag), bump,
        // unlock (release-write EMPTY — the repo's dist_mutex convention).
        // The lock key's ops are NOT recorded (lock/unlock reuse the same
        // values and the checker needs unique writes per key); mutual
        // exclusion is proven by CELL instead, whose increments are unique
        // exactly when critical sections never interleave.
        loop {
            let (ok, _) = s.cas_strong(lock, kite_common::Val::EMPTY, my_tag).map_err(e)?;
            if ok {
                break;
            }
            std::thread::yield_now();
        }
        let t0 = Instant::now();
        let c = s.read(cell).map_err(e)?.as_u64();
        rec.record(cell, OpKind::Read { v: c }, t0, Instant::now());
        let t0 = Instant::now();
        s.write(cell, c + 1).map_err(e)?;
        rec.record(cell, OpKind::Write { v: c + 1 }, t0, Instant::now());
        s.release(lock, kite_common::Val::EMPTY).map_err(e)?;
    }
    Ok(())
}

fn phase_mixed(servers: &[String], slot: u32, ops: u64, key_base: u64) {
    let n = servers.len();
    let history = Arc::new(History::new());
    let base = Instant::now();
    let mut handles = Vec::new();
    for (idx, addr) in servers.iter().enumerate() {
        let addr = addr.clone();
        let history = Arc::clone(&history);
        handles.push(std::thread::spawn(move || {
            mixed_session(addr, slot, idx, n, ops, key_base, history, base)
        }));
    }
    for h in handles {
        if let Err(msg) = h.join().expect("session thread panicked") {
            fail(msg);
        }
    }

    // Exact totals through one fresh verification session on server 0.
    let mut v = RemoteSession::connect(&servers[0], slot + 1)
        .unwrap_or_else(|e| fail(format!("verify session: {e}")));
    let total = v
        .acquire(Key(key_base + COUNTER))
        .unwrap_or_else(|e| fail(format!("counter: {e}")));
    let expect = n as u64 * ops;
    if total.as_u64() != expect {
        fail(format!("FAA counter {} != {} ({} sessions × {} ops)", total.as_u64(), expect, n, ops));
    }
    // Take the mutex once to synchronize with the last holder, then check
    // the protected cell.
    loop {
        let (ok, _) = v
            .cas_strong(Key(key_base + LOCK), kite_common::Val::EMPTY, 0xFEu64)
            .unwrap_or_else(|e| fail(format!("lock: {e}")));
        if ok {
            break;
        }
        std::thread::yield_now();
    }
    let cell = v.read(Key(key_base + CELL)).unwrap_or_else(|e| fail(format!("cell: {e}")));
    // Release the mutex: a later phase reuses these keys with fresh
    // sessions, and an abandoned lock would wedge them.
    v.release(Key(key_base + LOCK), kite_common::Val::EMPTY)
        .unwrap_or_else(|e| fail(format!("unlock: {e}")));
    if cell.as_u64() != expect {
        fail(format!("mutex-protected cell {} != {expect} — critical sections interleaved", cell.as_u64()));
    }

    match check_rc(&history, RcMode::Lin) {
        Ok(()) => println!(
            "kite-client: mixed OK — {} ops across {n} sessions, RC(Lin) checks passed, \
             FAA total {expect}, mutex cell {expect}",
            history.len()
        ),
        Err(err) => fail(format!("RC check failed: {err:?}")),
    }
}

/// Deterministic bulk load: key `key_base + i` gets value `i + 1`, write
/// `i` issued by session `i % servers`. Relaxed writes keep the load on
/// the fast path; the value rule lets any later phase (or a restarted
/// replica's poll) recompute what every key must hold.
fn phase_fill(servers: &[String], slot: u32, key_base: u64, count: u64) {
    let n = servers.len() as u64;
    let mut handles = Vec::new();
    for (idx, addr) in servers.iter().enumerate() {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || -> Result<u64, String> {
            let mut s = RemoteSession::connect(&addr, slot)
                .map_err(|e| format!("connect {addr} slot {slot}: {e}"))?;
            let mut written = 0;
            let mut i = idx as u64;
            while i < count {
                s.write(Key(key_base + i), i + 1).map_err(|e| format!("fill write {i}: {e}"))?;
                written += 1;
                i += n;
            }
            Ok(written)
        }));
    }
    let mut total = 0;
    for h in handles {
        match h.join().expect("fill thread panicked") {
            Ok(w) => total += w,
            Err(msg) => fail(msg),
        }
    }
    println!("kite-client: fill OK — {total} keys from {key_base} across {n} sessions");
}

/// Open-loop latency-under-load probe. Each session's i-th op is drawn
/// from the `MixCfg::typical(0.2)` class ratios (1% release / 4% acquire /
/// 19% write / 76% read) over hashed uniform keys above `key_base`, and is
/// submitted when its fixed schedule slot arrives whether or not earlier
/// ops completed. Sanity bounds are deliberately loose — this must pass on
/// a loaded single-core CI box — but tight enough to catch a wedged fabric
/// (which would otherwise only fail by timeout).
fn phase_openloop(servers: &[String], slot: u32, rate: u64, secs: u64, key_base: u64) {
    use kite::api::Op;
    let ops_per_session = (rate * secs) as usize;
    let interval = Duration::from_nanos(1_000_000_000 / rate.max(1));
    let mut handles = Vec::new();
    for (idx, addr) in servers.iter().enumerate() {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || -> Result<Vec<u64>, String> {
            let mut s = RemoteSession::connect(&addr, slot)
                .map_err(|e| format!("connect {addr} slot {slot}: {e}"))?;
            let e = |e: kite_common::KiteError| format!("openloop session {idx}: {e}");
            let mut sched: std::collections::VecDeque<Instant> = std::collections::VecDeque::new();
            let mut lat_us = Vec::with_capacity(ops_per_session);
            let start = Instant::now();
            let (mut submitted, mut done) = (0usize, 0usize);
            while done < ops_per_session {
                while submitted < ops_per_session {
                    let due = start + interval * submitted as u32;
                    if Instant::now() < due {
                        break;
                    }
                    let v = ((idx as u64 + 1) << 40) | (submitted as u64 + 1);
                    let key = Key(key_base + (v.wrapping_mul(0x9E3779B97F4A7C15) >> 16) % 4096);
                    let r = submitted % 100;
                    let op = if r < 1 {
                        Op::Release { key, val: kite_common::Val::from_u64(v) }
                    } else if r < 5 {
                        Op::Acquire { key }
                    } else if r < 24 {
                        Op::Write { key, val: kite_common::Val::from_u64(v) }
                    } else {
                        Op::Read { key }
                    };
                    sched.push_back(due);
                    s.submit(op).map_err(e)?;
                    submitted += 1;
                }
                match s.poll_completion().map_err(e)? {
                    Some((_c, arrival)) => {
                        let due = sched.pop_front().expect("scheduled time");
                        lat_us.push(arrival.saturating_duration_since(due).as_micros() as u64);
                        done += 1;
                    }
                    None if submitted == ops_per_session => {
                        s.flush().map_err(e)?;
                        let (_c, arrival) = s.next_completion_arrival().map_err(e)?;
                        let due = sched.pop_front().expect("scheduled time");
                        lat_us.push(arrival.saturating_duration_since(due).as_micros() as u64);
                        done += 1;
                    }
                    None => {
                        let next_due = start + interval * submitted as u32;
                        let nap = next_due
                            .saturating_duration_since(Instant::now())
                            .min(Duration::from_millis(1));
                        if !nap.is_zero() {
                            s.wait_event(nap).map_err(e)?;
                        }
                    }
                }
            }
            Ok(lat_us)
        }));
    }
    let mut lat_us: Vec<u64> = Vec::new();
    for h in handles {
        match h.join().expect("openloop thread panicked") {
            Ok(l) => lat_us.extend(l),
            Err(msg) => fail(msg),
        }
    }
    lat_us.sort_unstable();
    let pick = |q: f64| lat_us[((lat_us.len() - 1) as f64 * q).round() as usize];
    let (p50, p99, p999) = (pick(0.50), pick(0.99), pick(0.999));
    // Sanity: p50 under 1 s and p999 under the client's own 30 s op
    // timeout — a healthy fabric is orders of magnitude below both, while
    // a stalled event loop or leaked backpressure pushes the tail into
    // timeout territory.
    if p50 > 1_000_000 || p999 > 30_000_000 {
        fail(format!("openloop latency out of bounds: p50_us={p50} p99_us={p99} p999_us={p999}"));
    }
    println!(
        "kite-client: openloop OK — {} ops @ {rate}/s×{} sessions, \
         p50_us={p50} p99_us={p99} p999_us={p999}",
        lat_us.len(),
        servers.len()
    );
}

/// Flash-crowd writer: 50% of each session's writes land on ONE hot key,
/// the rest on a small cold range, with reads mixed in so the hot key is
/// also read-shared. All listed servers run concurrently and each session
/// keeps a deep pipeline in flight — the §6.3 regime where batching and
/// ack coalescing must keep ack *messages* per op sub-linear in node
/// count even though every hot-key write needs acks from every replica.
fn phase_hot(servers: &[String], slot: u32, ops: u64, key_base: u64) {
    use kite::api::Op;
    const WINDOW: usize = 64;
    let hot = Key(key_base);
    let mut handles = Vec::new();
    for (idx, addr) in servers.iter().enumerate() {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || -> Result<u64, String> {
            let mut s = RemoteSession::connect(&addr, slot)
                .map_err(|e| format!("connect {addr} slot {slot}: {e}"))?;
            let e = |e: kite_common::KiteError| format!("hot session {idx}: {e}");
            let (mut submitted, mut done) = (0u64, 0u64);
            while done < ops {
                while submitted < ops && s.outstanding() < WINDOW {
                    let i = submitted;
                    let v = ((idx as u64 + 1) << 40) | (i + 1);
                    let op = if i % 8 == 7 {
                        Op::Read { key: hot }
                    } else if i % 2 == 0 {
                        Op::Write { key: hot, val: kite_common::Val::from_u64(v) }
                    } else {
                        let cold =
                            Key(key_base + 1 + (v.wrapping_mul(0x9E3779B97F4A7C15) >> 16) % 256);
                        Op::Write { key: cold, val: kite_common::Val::from_u64(v) }
                    };
                    s.submit(op).map_err(e)?;
                    submitted += 1;
                }
                s.flush().map_err(e)?;
                s.next_completion_arrival().map_err(e)?;
                done += 1;
                while s.poll_completion().map_err(e)?.is_some() {
                    done += 1;
                }
            }
            Ok(ops)
        }));
    }
    let mut total = 0;
    for h in handles {
        match h.join().expect("hot thread panicked") {
            Ok(n) => total += n,
            Err(msg) => fail(msg),
        }
    }
    println!(
        "kite-client: hot OK — {total} write-heavy ops across {} sessions, hot key {}",
        servers.len(),
        hot.0
    );
}

/// Scrape a node's metrics endpoint: one request line out, whole response
/// in, printed verbatim. `view` is `scrape` (key-value metrics) or `dump`
/// (watchdog text).
fn phase_scrape(servers: &[String], view: &str) {
    use std::io::{Read as _, Write as _};
    for addr in servers {
        let mut stream = std::net::TcpStream::connect(addr)
            .unwrap_or_else(|e| fail(format!("connect metrics {addr}: {e}")));
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("set_read_timeout");
        stream
            .write_all(format!("{view}\n").as_bytes())
            .unwrap_or_else(|e| fail(format!("send request to {addr}: {e}")));
        let mut body = String::new();
        stream
            .read_to_string(&mut body)
            .unwrap_or_else(|e| fail(format!("read response from {addr}: {e}")));
        if body.is_empty() {
            fail(format!("empty {view} response from {addr}"));
        }
        print!("{body}");
    }
}

/// Membership changes through the front door: read the reserved key,
/// derive the successor [`Membership`], strong-CAS it in. The CAS-retry
/// loop makes concurrent operator actions safe — whoever loses the race
/// re-reads and re-derives against the winner's config, so epochs stay
/// gapless and no change is silently dropped. `cluster_nodes` is only
/// consulted before the *first* committed change, when the key is still
/// empty and the bootstrap membership (all slots voting) must be derived
/// locally — mutating actions then require it explicitly, because
/// guessing the slot count (e.g. from however many servers happen to be
/// listed) would install a wrong voter set cluster-wide.
fn phase_reconfig(
    servers: &[String],
    slot: u32,
    action: &str,
    target: Option<u8>,
    cluster_nodes: Option<usize>,
) {
    use kite_common::{Membership, NodeId, NodeSet, Val, MEMBERSHIP_KEY};
    let mut s = RemoteSession::connect(&servers[0], slot)
        .unwrap_or_else(|e| fail(format!("connect {}: {e}", servers[0])));
    loop {
        let cur_val: Val =
            s.acquire(MEMBERSHIP_KEY).unwrap_or_else(|e| fail(format!("read membership: {e}")));
        let stored = Membership::from_val(&cur_val);
        if action == "show" {
            match stored {
                Some(cur) => println!("kite-client: membership {cur}"),
                None => println!(
                    "kite-client: membership e0 (bootstrap — no config change committed yet)"
                ),
            }
            return;
        }
        let cur = stored.unwrap_or_else(|| Membership {
            epoch: 0,
            voters: NodeSet::all(cluster_nodes.unwrap_or_else(|| {
                fail(format!(
                    "reconfig {action}: membership key is empty (cluster still on bootstrap); \
                     pass --cluster-nodes N so the bootstrap voter set can be derived"
                ))
            })),
            learners: NodeSet::EMPTY,
        });
        let node =
            NodeId(target.unwrap_or_else(|| fail(format!("reconfig {action} needs --target N"))));
        let next = match action {
            "add-learner" => cur.with_learner(node),
            "promote" => cur.with_promoted(node),
            "retire" => cur.with_retired(node),
            a => fail(format!("unknown reconfig action {a} (show|add-learner|promote|retire)")),
        };
        if next.voters.is_empty() {
            fail(format!("refusing {action} {node}: successor config has no voters"));
        }
        let (ok, _) = s
            .cas_strong(MEMBERSHIP_KEY, cur_val, next.to_val())
            .unwrap_or_else(|e| fail(format!("config-change CAS: {e}")));
        if ok {
            println!("kite-client: reconfig {action} {node} OK — membership {next}");
            return;
        }
        // Lost the race with a concurrent config change: retry against it.
    }
}

fn phase_put(servers: &[String], slot: u32, key: u64, val: u64) {
    let mut s = RemoteSession::connect(&servers[0], slot)
        .unwrap_or_else(|e| fail(format!("connect: {e}")));
    s.release(Key(key), val).unwrap_or_else(|e| fail(format!("release: {e}")));
    println!("kite-client: put k{key}={val} OK");
}

fn phase_poll(servers: &[String], slot: u32, key: u64, val: u64, timeout: Duration) {
    let mut s = RemoteSession::connect(&servers[0], slot)
        .unwrap_or_else(|e| fail(format!("connect: {e}")));
    let deadline = Instant::now() + timeout;
    let mut last = 0;
    while Instant::now() < deadline {
        last = s.read(Key(key)).unwrap_or_else(|e| fail(format!("read: {e}"))).as_u64();
        if last == val {
            println!("kite-client: poll k{key}={val} OK (converged)");
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    fail(format!("k{key} never converged to {val} within {timeout:?} (last saw {last})"));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(phase) = args.first().cloned() else {
        eprintln!("usage: kite-client <mixed|put|poll|fill|openloop|hot|scrape|reconfig> --servers a,b,c [--slot N] [--ops N] [--key K] [--val V] [--timeout-secs T] [--key-base K] [--count N] [--rate R] [--secs S] [--view scrape|dump] [--action show|add-learner|promote|retire] [--target N] [--cluster-nodes K]");
        std::process::exit(2);
    };
    let mut opts: HashMap<String, String> = HashMap::new();
    let mut i = 1;
    while i < args.len() {
        let (Some(flag), Some(value)) = (args[i].strip_prefix("--"), args.get(i + 1)) else {
            eprintln!("kite-client: bad args near {:?}", args.get(i));
            std::process::exit(2);
        };
        opts.insert(flag.to_string(), value.clone());
        i += 2;
    }
    let servers: Vec<String> = opts
        .get("servers")
        .unwrap_or_else(|| fail("--servers required".into()))
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let slot: u32 = opts.get("slot").map(|v| v.parse().expect("slot")).unwrap_or(0);
    let num = |k: &str, d: u64| opts.get(k).map(|v| v.parse().expect(k)).unwrap_or(d);

    match phase.as_str() {
        "mixed" => phase_mixed(&servers, slot, num("ops", 25), num("key-base", 0)),
        "fill" => phase_fill(&servers, slot, num("key-base", 1000), num("count", 10_000)),
        "openloop" => phase_openloop(
            &servers,
            slot,
            num("rate", 1_000),
            num("secs", 2),
            num("key-base", 20_000),
        ),
        "hot" => phase_hot(&servers, slot, num("ops", 2_000), num("key-base", 40_000)),
        "scrape" => phase_scrape(&servers, opts.get("view").map_or("scrape", |v| v.as_str())),
        "reconfig" => phase_reconfig(
            &servers,
            slot,
            opts.get("action").map_or("show", |v| v.as_str()),
            opts.get("target").map(|v| v.parse().expect("target")),
            opts.get("cluster-nodes").map(|v| v.parse().expect("cluster-nodes")),
        ),
        "put" => phase_put(&servers, slot, num("key", 900), num("val", 7777)),
        "poll" => phase_poll(
            &servers,
            slot,
            num("key", 900),
            num("val", 7777),
            Duration::from_secs(num("timeout-secs", 20)),
        ),
        p => {
            eprintln!("kite-client: unknown phase {p}");
            std::process::exit(2);
        }
    }
}
