//! `kite-node`: one Kite replica as an OS process.
//!
//! ```text
//! kite-node --node 0 --peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 \
//!           [--workers 2] [--sessions-per-worker 4] [--keys 65536]
//!           [--mode kite|es|abd|paxos] [--anti-entropy on|off]
//!           [--anti-entropy-interval-ns N] [--anti-entropy-chunk SLOTS]
//!           [--keepalive-ns N] [--config cluster.toml]
//!           [--wal on|off] [--wal-dir DIR] [--wal-group-commit-ns N]
//!           [--wal-snapshot-interval-ns N] [--metrics-addr HOST:PORT]
//!           [--voters 0,1,2] [--learners 3] [--join HOST:PORT [--join-slot S]]
//! ```
//!
//! `--voters`/`--learners` pin the bootstrap (membership-epoch-0) sets;
//! by default every configured slot votes. `--join <seed-addr>` admits
//! this node into a **running** cluster before it starts serving: it
//! claims a client session on the seed, reads the current membership from
//! the reserved key and strong-CASes the add-learner successor config in
//! — the config change rides the same per-key Paxos as any workload RMW.
//! The node then launches normally and bulk-syncs as a non-voting
//! learner; `kite-client reconfig promote` makes it a voter once its
//! anti-entropy catch-up converges.
//!
//! `--metrics-addr` opens the plain-text scrape endpoint (`kite-client
//! scrape` / `nc`): one `key value` line per metric, or the full watchdog
//! dump when the request line is `dump`. The endpoint is served by worker
//! 0's existing epoll loop — no extra threads.
//!
//! Topology can also come from a TOML-ish config file (`key = value` lines,
//! `#` comments; command-line flags override it):
//!
//! ```text
//! node = 0
//! peers = "127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102"
//! workers = 2
//! mode = "kite"
//! ```
//!
//! The fabric listener also accepts remote client sessions (`kite-client`,
//! [`kite_net::RemoteSession`]). SIGTERM/SIGINT trigger a clean shutdown
//! through the worker stop-flag path: the process prints a final link
//! report and exits 0.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use kite::ProtocolMode;
use kite_common::{ClusterConfig, Membership, NodeId, NodeSet, MEMBERSHIP_KEY};
use kite_net::{NodeConfig, NodeRuntime, RemoteSession};

static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    STOP.store(true, Ordering::SeqCst);
}

/// Install `on_signal` for SIGTERM and SIGINT via raw libc `signal(2)` —
/// the workspace is dependency-free, so no signal crate.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `on_signal` is an async-signal-safe extern "C" fn (it only
    // stores to an atomic); signal(2) itself takes no pointers beyond it.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// Parse a TOML-ish `key = value` file into a flat map (strings may be
/// quoted; `#` starts a comment; no tables/arrays — the topology is flat).
fn parse_config_file(path: &str) -> Result<HashMap<String, String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut map = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((k, v)) = line.split_once('=') else {
            return Err(format!("{path}:{}: expected `key = value`", lineno + 1));
        };
        let v = v.trim().trim_matches('"').trim_matches('\'');
        map.insert(k.trim().to_string(), v.to_string());
    }
    Ok(map)
}

fn usage() -> ! {
    eprintln!(
        "usage: kite-node --node N --peers addr0,addr1,... \
         [--workers W] [--sessions-per-worker S] [--keys K] \
         [--mode kite|es|abd|paxos] [--anti-entropy on|off] \
         [--anti-entropy-interval-ns N] [--anti-entropy-chunk SLOTS] \
         [--keepalive-ns N] [--release-timeout-ns N] [--config FILE] \
         [--wal on|off] [--wal-dir DIR] [--wal-group-commit-ns N] \
         [--wal-snapshot-interval-ns N] [--metrics-addr HOST:PORT] \
         [--voters 0,1,2] [--learners 3] [--join HOST:PORT [--join-slot S]]"
    );
    std::process::exit(2);
}

/// Parse a comma-separated node-id list (`"0,1,2"`) into a [`NodeSet`].
fn parse_node_set(flag: &str, raw: &str) -> NodeSet {
    let mut set = NodeSet::EMPTY;
    for part in raw.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        match part.parse::<u8>() {
            Ok(id) if (id as usize) < kite_common::NodeId::MAX_NODES => set.insert(NodeId(id)),
            _ => {
                eprintln!("kite-node: bad --{flag} entry {part:?}");
                std::process::exit(2);
            }
        }
    }
    set
}

/// Admit `me` into a running cluster as a non-voting learner, through a
/// client session on `seed`. The add-learner successor config is
/// installed with a strong CAS on [`MEMBERSHIP_KEY`] — an ordinary
/// per-key Paxos RMW — and retried on CAS failure (losing the race just
/// means another config change landed first; re-read and re-derive).
/// Returns the membership epoch this node was admitted at.
fn join_as_learner(
    seed: &str,
    slot: u32,
    me: NodeId,
    cluster: &ClusterConfig,
) -> Result<u32, String> {
    let mut s = RemoteSession::connect(seed, slot)
        .map_err(|e| format!("connect seed {seed} slot {slot}: {e}"))?;
    loop {
        let cur_val =
            s.acquire(MEMBERSHIP_KEY).map_err(|e| format!("read membership: {e}"))?;
        // An empty value means no config change has ever committed: the
        // cluster is still on its bootstrap membership, which this node
        // can derive from the shared deployment config. Only a *stored*
        // membership counts as "already admitted" — the bootstrap
        // fallback lists every slot as a voter, so taking the early
        // return on it would skip the add-learner CAS entirely.
        let stored = Membership::from_val(&cur_val);
        let cur = stored.unwrap_or_else(|| Membership::bootstrap(cluster));
        if stored.is_some() && (cur.learners.contains(me) || cur.voters.contains(me)) {
            // A previous (interrupted) join attempt already landed.
            return Ok(cur.epoch);
        }
        let next = cur.with_learner(me);
        let (ok, _) = s
            .cas_strong(MEMBERSHIP_KEY, cur_val, next.to_val())
            .map_err(|e| format!("config-change CAS: {e}"))?;
        if ok {
            return Ok(next.epoch);
        }
    }
}

fn main() {
    // Collect `--flag value` pairs; a config file seeds the map first so
    // flags override it.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts: HashMap<String, String> = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(flag) = args[i].strip_prefix("--") else { usage() };
        let Some(value) = args.get(i + 1) else { usage() };
        if flag == "config" {
            match parse_config_file(value) {
                Ok(file) => {
                    for (k, v) in file {
                        opts.entry(k).or_insert(v);
                    }
                }
                Err(e) => {
                    eprintln!("kite-node: {e}");
                    std::process::exit(2);
                }
            }
        } else {
            opts.insert(flag.replace('-', "_"), value.clone());
        }
        i += 2;
    }

    let get = |k: &str| opts.get(k).cloned();
    let parse_u64 = |k: &str, d: u64| -> u64 {
        get(k).map(|v| v.parse().unwrap_or_else(|_| {
            eprintln!("kite-node: bad {k}: {v}");
            std::process::exit(2);
        })).unwrap_or(d)
    };

    let Some(node) = get("node").and_then(|v| v.parse::<u8>().ok()) else { usage() };
    let Some(peers_raw) = get("peers") else { usage() };
    let peers: Vec<String> = peers_raw.split(',').map(|s| s.trim().to_string()).collect();

    let mode = match get("mode").as_deref().unwrap_or("kite") {
        "kite" => ProtocolMode::Kite,
        "es" => ProtocolMode::EsOnly,
        "abd" => ProtocolMode::AbdOnly,
        "paxos" => ProtocolMode::PaxosOnly,
        m => {
            eprintln!("kite-node: unknown mode {m}");
            std::process::exit(2);
        }
    };

    let workers = parse_u64("workers", 2) as usize;
    let mut cluster = ClusterConfig::default()
        .nodes(peers.len())
        .workers_per_node(workers)
        .sessions_per_worker(parse_u64("sessions_per_worker", 4) as usize)
        .keys(parse_u64("keys", 1 << 16) as usize)
        .release_timeout_ns(parse_u64("release_timeout_ns", 1_000_000))
        .anti_entropy_keepalive_ns(parse_u64("keepalive_ns", 0));
    let (ae_interval, ae_chunk) = (cluster.anti_entropy_interval_ns, cluster.anti_entropy_chunk);
    cluster = cluster
        .anti_entropy_interval_ns(parse_u64("anti_entropy_interval_ns", ae_interval))
        .anti_entropy_chunk(parse_u64("anti_entropy_chunk", ae_chunk as u64) as usize);
    if let Some(ae) = get("anti_entropy") {
        cluster = cluster.anti_entropy(ae == "on" || ae == "true");
    }
    if let Some(wal) = get("wal") {
        cluster = cluster.wal(wal == "on" || wal == "true");
    }
    if let Some(dir) = get("wal_dir") {
        cluster = cluster.wal_dir(dir);
    }
    let (gc_default, snap_default) = (cluster.wal_group_commit_ns, cluster.wal_snapshot_interval_ns);
    cluster = cluster
        .wal_group_commit_ns(parse_u64("wal_group_commit_ns", gc_default))
        .wal_snapshot_interval_ns(parse_u64("wal_snapshot_interval_ns", snap_default));
    if let Some(v) = get("voters") {
        cluster = cluster.initial_voters(parse_node_set("voters", &v));
    }
    if let Some(l) = get("learners") {
        cluster = cluster.initial_learners(parse_node_set("learners", &l));
    }

    install_signal_handlers();

    // `--join`: commit the add-learner config change through the seed
    // BEFORE launching. The node then boots on its (now stale) bootstrap
    // membership and converges in one round trip: its first epoch-0
    // frames are dropped as stale by every peer, which answers with a
    // repair of the membership key — installing the real config, learner
    // bit included. Anti-entropy bulk-sync does the rest.
    if let Some(seed) = get("join") {
        let slot_default = (workers * cluster.sessions_per_worker) as u64 - 1;
        let join_slot = parse_u64("join_slot", slot_default) as u32;
        match join_as_learner(&seed, join_slot, NodeId(node), &cluster) {
            Ok(epoch) => println!(
                "kite-node: node {node} joined via {seed} as learner at membership epoch {epoch}"
            ),
            Err(e) => {
                eprintln!("kite-node: join via {seed} failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut node_cfg = NodeConfig::new(cluster, mode, NodeId(node), peers);
    node_cfg.metrics_addr = get("metrics_addr");
    let runtime = match NodeRuntime::launch(node_cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("kite-node: launch failed: {e}");
            std::process::exit(1);
        }
    };
    // Machine-greppable recovery line (the e2e script asserts the restart
    // replayed a tail instead of re-replicating the world).
    if let Some(r) = runtime.recovery() {
        println!(
            "kite-node: node {} recovered snapshot_entries={} wal_records={} segments={} \
             truncated={}",
            runtime.node(),
            r.snapshot_entries,
            r.replayed_records,
            r.segments,
            r.truncated
        );
    }
    // Machine-greppable readiness line (the e2e script waits for it —
    // extra detail goes after the `ready on <addr>` prefix it greps).
    match runtime.metrics_addr() {
        Some(m) => println!(
            "kite-node: node {} ready on {} (mode {:?}, {workers} event-loop worker(s), \
             metrics on {m})",
            runtime.node(),
            runtime.addr(),
            mode
        ),
        None => println!(
            "kite-node: node {} ready on {} (mode {:?}, {workers} event-loop worker(s))",
            runtime.node(),
            runtime.addr(),
            mode
        ),
    }

    while !STOP.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }

    eprintln!("kite-node: node {} shutting down\n{}", runtime.node(), runtime.describe());
    runtime.shutdown();
    println!("kite-node: clean exit");
}
