//! Remote client sessions: the [`kite::SessionHandle`] API over a socket.
//!
//! A [`RemoteSession`] connects to a `kite-node`'s listener with a client
//! hello claiming one session slot, then submits operations as
//! length-prefixed frames and receives completions in session order.
//! Completions are matched to calls by the op's session sequence number —
//! the same two-monotone-counter bookkeeping as the in-process handle, so
//! a late completion after a recovered timeout is retired instead of being
//! misattributed to the next call.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use kite::api::{Completion, Op, OpOutput};
use kite::wire::{self, ClientFrame, Hello};
use kite_common::{Key, KiteError, Result, SessionId, Val};

/// How long synchronous calls wait before reporting
/// [`KiteError::Timeout`] (matches the in-process client boundary).
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Socket read granularity (stop/deadline responsiveness).
const READ_TICK: Duration = Duration::from_millis(100);

/// A claimed remote session. Not `Clone` — a session is a single
/// program-order stream.
pub struct RemoteSession {
    id: SessionId,
    stream: TcpStream,
    /// Operations submitted; the next submission gets session seq
    /// `submitted`.
    submitted: u64,
    /// Completions received (they arrive in session order).
    retired: u64,
    wbuf: Vec<u8>,
    body: Vec<u8>,
}

/// Read exactly `buf.len()` bytes by `deadline`. A timeout with *nothing*
/// read is clean (`Ok(false)`: a frame boundary — the stream stays usable
/// and the completion is reconciled by a later call, like the in-process
/// handle's recovered timeouts). A timeout mid-read is an error: the
/// stream is desynced and the session unusable (a wedged server must not
/// hang the client forever).
fn read_exact_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
) -> Result<bool> {
    let mut off = 0;
    while off < buf.len() {
        match stream.read(&mut buf[off..]) {
            Ok(0) => return Err(KiteError::Shutdown), // server closed
            Ok(n) => off += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    if off == 0 {
                        return Ok(false);
                    }
                    return Err(KiteError::Net("timed out mid-frame".into()));
                }
            }
            Err(e) => return Err(KiteError::Net(format!("read: {e}"))),
        }
    }
    Ok(true)
}

impl RemoteSession {
    /// Connect to a node's listener at `addr` and claim session `slot`.
    pub fn connect(addr: &str, slot: u32) -> Result<RemoteSession> {
        let mut stream = TcpStream::connect(addr)
            .map_err(|e| KiteError::Net(format!("connect {addr}: {e}")))?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(READ_TICK))
            .map_err(|e| KiteError::Net(format!("set timeout: {e}")))?;
        stream
            .write_all(&wire::encode_hello(Hello::Client { slot }))
            .map_err(|e| KiteError::Net(format!("hello: {e}")))?;
        let mut s = RemoteSession {
            id: SessionId::new(kite_common::NodeId(0), slot),
            stream,
            submitted: 0,
            retired: 0,
            wbuf: Vec::with_capacity(256),
            body: Vec::with_capacity(256),
        };
        match s.read_frame(Instant::now() + CLIENT_TIMEOUT)? {
            ClientFrame::HelloOk { session } => {
                s.id = session;
                Ok(s)
            }
            ClientFrame::HelloErr { reason } => Err(KiteError::SessionUnavailable(reason)),
            other => Err(KiteError::Net(format!("unexpected hello reply: {other:?}"))),
        }
    }

    /// This session's id (node + slot), as assigned by the server.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Number of submitted-but-unretired operations.
    pub fn outstanding(&self) -> usize {
        (self.submitted - self.retired) as usize
    }

    fn read_frame(&mut self, deadline: Instant) -> Result<ClientFrame> {
        let mut prefix = [0u8; 4];
        if !read_exact_deadline(&mut self.stream, &mut prefix, deadline)? {
            return Err(KiteError::Timeout);
        }
        let len =
            wire::frame_body_len(prefix).map_err(|e| KiteError::Net(format!("bad frame: {e}")))?;
        self.body.resize(len, 0);
        // The frame has started: its body is normally already in flight;
        // the extended deadline only guards against a server dying with a
        // half-written frame (then: mid-frame error, not a clean timeout).
        if !read_exact_deadline(&mut self.stream, &mut self.body, deadline + CLIENT_TIMEOUT)? {
            return Err(KiteError::Timeout);
        }
        wire::decode_client_frame(&self.body).map_err(|e| KiteError::Net(format!("bad frame: {e}")))
    }

    // ---- async API ------------------------------------------------------

    /// Submit without waiting; completions arrive in session order via
    /// [`RemoteSession::next_completion`].
    pub fn submit(&mut self, op: Op) -> Result<()> {
        self.wbuf.clear();
        wire::encode_client_frame(&ClientFrame::Submit(op), &mut self.wbuf);
        self.stream
            .write_all(&self.wbuf)
            .map_err(|_| KiteError::Shutdown)?;
        self.submitted += 1;
        Ok(())
    }

    /// Wait for the next completion (session order).
    pub fn next_completion(&mut self) -> Result<Completion> {
        match self.read_frame(Instant::now() + CLIENT_TIMEOUT)? {
            ClientFrame::Completion(c) => {
                debug_assert_eq!(c.op_id.seq, self.retired, "completions arrive in session order");
                self.retired += 1;
                Ok(c)
            }
            other => Err(KiteError::Net(format!("unexpected frame: {other:?}"))),
        }
    }

    // ---- sync API -------------------------------------------------------

    fn call(&mut self, op: Op) -> Result<Completion> {
        // Retire stray completions of earlier (timed-out) ops first.
        while self.outstanding() > 0 {
            self.next_completion()?;
        }
        let seq = self.submitted;
        self.submit(op)?;
        loop {
            let c = self.next_completion()?;
            if c.op_id.seq == seq {
                return Ok(c);
            }
        }
    }

    /// Relaxed read.
    pub fn read(&mut self, key: Key) -> Result<Val> {
        match self.call(Op::Read { key })?.output {
            OpOutput::Value(v) => Ok(v),
            other => Err(KiteError::Net(format!("read completed with {other:?}"))),
        }
    }

    /// Relaxed write.
    pub fn write(&mut self, key: Key, val: impl Into<Val>) -> Result<()> {
        self.call(Op::Write { key, val: val.into() })?;
        Ok(())
    }

    /// Release write.
    pub fn release(&mut self, key: Key, val: impl Into<Val>) -> Result<()> {
        self.call(Op::Release { key, val: val.into() })?;
        Ok(())
    }

    /// Acquire read.
    pub fn acquire(&mut self, key: Key) -> Result<Val> {
        match self.call(Op::Acquire { key })?.output {
            OpOutput::Value(v) => Ok(v),
            other => Err(KiteError::Net(format!("acquire completed with {other:?}"))),
        }
    }

    /// Fetch-and-add; returns the previous value.
    pub fn fetch_add(&mut self, key: Key, delta: u64) -> Result<u64> {
        match self.call(Op::Faa { key, delta })?.output {
            OpOutput::Faa(old) => Ok(old),
            other => Err(KiteError::Net(format!("faa completed with {other:?}"))),
        }
    }

    /// Weak CAS; returns `(swapped, observed)`.
    pub fn cas_weak(
        &mut self,
        key: Key,
        expect: impl Into<Val>,
        new: impl Into<Val>,
    ) -> Result<(bool, Val)> {
        match self.call(Op::CasWeak { key, expect: expect.into(), new: new.into() })?.output {
            OpOutput::Cas { ok, observed } => Ok((ok, observed)),
            other => Err(KiteError::Net(format!("cas completed with {other:?}"))),
        }
    }

    /// Strong CAS; returns `(swapped, observed)`.
    pub fn cas_strong(
        &mut self,
        key: Key,
        expect: impl Into<Val>,
        new: impl Into<Val>,
    ) -> Result<(bool, Val)> {
        match self.call(Op::CasStrong { key, expect: expect.into(), new: new.into() })?.output {
            OpOutput::Cas { ok, observed } => Ok((ok, observed)),
            other => Err(KiteError::Net(format!("cas completed with {other:?}"))),
        }
    }
}
