//! Remote client sessions: the [`kite::SessionHandle`] API over a socket,
//! **pipelined**.
//!
//! A [`RemoteSession`] connects to a `kite-node`'s listener with a client
//! hello claiming one session slot, then submits operations as
//! length-prefixed frames over a nonblocking socket. Many operations may
//! be in flight at once: submissions batch into a write buffer (one flush
//! = one syscall for a whole window) and completions are matched by the
//! op's session sequence number through a reorder window — out-of-order
//! or duplicate completion frames resolve to the right call, a late
//! completion after a recovered timeout is retired instead of being
//! misattributed, and [`RemoteSession::next_completion`] always returns
//! completions in session order. The synchronous API (`read`, `write`,
//! `release`, …) is unchanged: it pipelines with window 1.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use kite::api::{Completion, Op, OpOutput};
use kite::wire::{self, ClientFrame, Hello};
use kite_common::{Key, KiteError, Result, SessionId, Val};

/// How long synchronous calls wait before reporting
/// [`KiteError::Timeout`] (matches the in-process client boundary).
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Auto-flush threshold: submissions buffered past this many bytes push
/// to the socket even without an explicit flush.
const WBUF_FLUSH: usize = 32 << 10;
/// Hard cap on buffered unsent bytes before `submit` blocks draining the
/// socket (keeps a backpressured client bounded).
const WBUF_CAP: usize = 4 << 20;
/// Read chunk size.
const READ_CHUNK: usize = 64 << 10;

/// A claimed remote session. Not `Clone` — a session is a single
/// program-order stream.
pub struct RemoteSession {
    id: SessionId,
    stream: TcpStream,
    /// Operations submitted; the next submission gets session seq
    /// `submitted`.
    submitted: u64,
    /// Completions retired in session order; `window[i]` (when filled)
    /// holds seq `retired + i`.
    retired: u64,
    /// Reorder window: completions that arrived, indexed by seq distance
    /// from `retired`, with their client-side arrival instant.
    window: VecDeque<Option<(Completion, Instant)>>,
    /// Duplicate completion frames dropped (stale seq or already-filled
    /// window slot).
    dups: u64,
    /// Encoded-but-unsent submissions; `wpos` bytes already written.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Unparsed inbound bytes.
    rbuf: Vec<u8>,
    /// A non-completion frame received out of band (hello replies).
    ctrl: Option<ClientFrame>,
}

impl RemoteSession {
    /// Connect to a node's listener at `addr` and claim session `slot`.
    pub fn connect(addr: &str, slot: u32) -> Result<RemoteSession> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| KiteError::Net(format!("connect {addr}: {e}")))?;
        stream.set_nodelay(true).ok();
        stream
            .set_nonblocking(true)
            .map_err(|e| KiteError::Net(format!("set nonblocking: {e}")))?;
        let mut s = RemoteSession {
            id: SessionId::new(kite_common::NodeId(0), slot),
            stream,
            submitted: 0,
            retired: 0,
            window: VecDeque::new(),
            dups: 0,
            wbuf: Vec::with_capacity(4096),
            wpos: 0,
            rbuf: Vec::with_capacity(READ_CHUNK),
            ctrl: None,
        };
        s.wbuf.extend_from_slice(&wire::encode_hello(Hello::Client { slot }));
        let deadline = Instant::now() + CLIENT_TIMEOUT;
        s.flush_until(deadline)?;
        // Wait for the hello reply.
        loop {
            // A refused claim is HelloErr-then-close: surface the reason,
            // not the EOF that follows it.
            let pumped = s.pump_reads();
            if let Some(ctrl) = s.ctrl.take() {
                return match ctrl {
                    ClientFrame::HelloOk { session } => {
                        s.id = session;
                        Ok(s)
                    }
                    ClientFrame::HelloErr { reason } => Err(KiteError::SessionUnavailable(reason)),
                    other => Err(KiteError::Net(format!("unexpected hello reply: {other:?}"))),
                };
            }
            pumped?;
            if !s.window.is_empty() {
                return Err(KiteError::Net("completion before hello reply".into()));
            }
            if Instant::now() >= deadline {
                return Err(KiteError::Timeout);
            }
            s.wait_progress(deadline)?;
        }
    }

    /// This session's id (node + slot), as assigned by the server.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Number of submitted-but-unretired operations.
    pub fn outstanding(&self) -> usize {
        (self.submitted - self.retired) as usize
    }

    /// Duplicate completion frames observed and dropped so far.
    pub fn duplicates(&self) -> u64 {
        self.dups
    }

    // ---- pipelined API --------------------------------------------------

    /// Queue one operation for submission and return its session sequence
    /// number. Buffered submissions push to the socket when the buffer
    /// grows past a threshold or on [`RemoteSession::flush`]; completions
    /// arrive (in session order) via [`RemoteSession::next_completion`] /
    /// [`RemoteSession::poll_completion`].
    pub fn submit(&mut self, op: Op) -> Result<u64> {
        let seq = self.submitted;
        wire::encode_client_frame(&ClientFrame::Submit(op), &mut self.wbuf);
        self.submitted += 1;
        if self.wbuf.len() - self.wpos >= WBUF_FLUSH {
            self.try_flush()?;
            if self.wbuf.len() - self.wpos >= WBUF_CAP {
                // Socket backpressure: drain (and keep reading, so a server
                // blocked on writing completions to us cannot deadlock the
                // pair) before buffering more.
                self.flush_until(Instant::now() + CLIENT_TIMEOUT)?;
            }
        }
        Ok(seq)
    }

    /// Push every buffered submission to the socket (blocking until the
    /// kernel takes them).
    pub fn flush(&mut self) -> Result<()> {
        self.flush_until(Instant::now() + CLIENT_TIMEOUT)
    }

    /// Nonblocking progress: flush what the socket accepts, read what has
    /// arrived, and return the next in-order completion if it is ready.
    /// The `Instant` is the completion frame's client-side arrival time
    /// (latency measurement without head-of-line skew).
    pub fn poll_completion(&mut self) -> Result<Option<(Completion, Instant)>> {
        self.try_flush()?;
        self.pump_reads()?;
        if let Some(front) = self.window.front_mut() {
            if front.is_some() {
                let (c, at) = self.window.pop_front().flatten().expect("front is some");
                self.retired += 1;
                return Ok(Some((c, at)));
            }
        }
        Ok(None)
    }

    /// Wait for the next completion (session order).
    pub fn next_completion(&mut self) -> Result<Completion> {
        self.next_completion_arrival().map(|(c, _)| c)
    }

    /// Wait for the next completion, also returning its arrival instant.
    pub fn next_completion_arrival(&mut self) -> Result<(Completion, Instant)> {
        let deadline = Instant::now() + CLIENT_TIMEOUT;
        loop {
            if let Some(got) = self.poll_completion()? {
                return Ok(got);
            }
            if Instant::now() >= deadline {
                return Err(KiteError::Timeout);
            }
            self.wait_progress(deadline)?;
        }
    }

    /// Sleep in `poll(2)` until the socket can make progress: readable
    /// always wakes; writable additionally wakes while unsent bytes are
    /// buffered. Blocking in the kernel (instead of a spin/park loop)
    /// matters on loaded or few-core machines — a waiting client must
    /// leave the CPU to the server loops it is waiting on.
    /// Public flavour of the progress wait for open-loop drivers: block up
    /// to `timeout` until the socket may have work (completion bytes
    /// readable, or buffered submits flushable), then return. The caller's
    /// next [`poll_completion`](Self::poll_completion) does the actual
    /// work. This lets a fixed-arrival-rate loop sleep between schedule
    /// slots instead of spinning — on few-core boxes a spinning client
    /// starves the very event loops it is waiting on.
    pub fn wait_event(&self, timeout: Duration) -> Result<()> {
        self.wait_progress(Instant::now() + timeout)
    }

    fn wait_progress(&self, deadline: Instant) -> Result<()> {
        use std::os::fd::AsRawFd;
        // Cap each sleep so the caller's deadline check still runs.
        let ms = deadline
            .saturating_duration_since(Instant::now())
            .min(Duration::from_millis(100))
            .as_millis()
            .max(1) as i32;
        let fd = self.stream.as_raw_fd();
        let r = if self.wpos < self.wbuf.len() {
            crate::sys::wait_rw(fd, ms)
        } else {
            crate::sys::wait_readable(fd, ms)
        };
        r.map(|_| ()).map_err(|e| KiteError::Net(format!("poll: {e}")))
    }

    // ---- socket plumbing ------------------------------------------------

    /// Write buffered bytes until the socket would block.
    fn try_flush(&mut self) -> Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(KiteError::Shutdown),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(KiteError::Net(format!("write: {e}"))),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        Ok(())
    }

    /// Flush everything buffered by `deadline`, reading inbound frames
    /// while blocked so the server can always make progress.
    fn flush_until(&mut self, deadline: Instant) -> Result<()> {
        loop {
            self.try_flush()?;
            if self.wpos == 0 && self.wbuf.is_empty() {
                return Ok(());
            }
            self.pump_reads()?;
            if Instant::now() >= deadline {
                return Err(KiteError::Net("timed out flushing submissions".into()));
            }
            self.wait_progress(deadline)?;
        }
    }

    /// Read until the socket would block; parse and dispatch every
    /// complete frame.
    fn pump_reads(&mut self) -> Result<()> {
        loop {
            let old = self.rbuf.len();
            self.rbuf.resize(old + READ_CHUNK, 0);
            match self.stream.read(&mut self.rbuf[old..]) {
                Ok(0) => {
                    self.rbuf.truncate(old);
                    self.parse_frames()?;
                    return Err(KiteError::Shutdown);
                }
                Ok(n) => {
                    self.rbuf.truncate(old + n);
                    self.parse_frames()?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.rbuf.truncate(old);
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.rbuf.truncate(old);
                }
                Err(e) => {
                    self.rbuf.truncate(old);
                    return Err(KiteError::Net(format!("read: {e}")));
                }
            }
        }
    }

    fn parse_frames(&mut self) -> Result<()> {
        let mut pos = 0usize;
        while self.rbuf.len() - pos >= 4 {
            let prefix =
                [self.rbuf[pos], self.rbuf[pos + 1], self.rbuf[pos + 2], self.rbuf[pos + 3]];
            let blen = wire::frame_body_len(prefix)
                .map_err(|e| KiteError::Net(format!("bad frame: {e}")))?;
            if self.rbuf.len() - pos < 4 + blen {
                break;
            }
            let frame = wire::decode_client_frame(&self.rbuf[pos + 4..pos + 4 + blen])
                .map_err(|e| KiteError::Net(format!("bad frame: {e}")))?;
            pos += 4 + blen;
            self.dispatch(frame)?;
        }
        if pos > 0 {
            let len = self.rbuf.len();
            self.rbuf.copy_within(pos..len, 0);
            self.rbuf.truncate(len - pos);
        }
        Ok(())
    }

    /// Slot a decoded frame: completions land in the reorder window by
    /// seq; duplicates (stale seq, or a window slot already filled) are
    /// dropped and counted — never misattributed.
    fn dispatch(&mut self, frame: ClientFrame) -> Result<()> {
        match frame {
            ClientFrame::Completion(c) => {
                let seq = c.op_id.seq;
                if seq < self.retired {
                    self.dups += 1; // already retired: stale duplicate
                    return Ok(());
                }
                if seq >= self.submitted {
                    return Err(KiteError::Net(format!(
                        "completion for unsubmitted seq {seq} (submitted {})",
                        self.submitted
                    )));
                }
                let idx = (seq - self.retired) as usize;
                if self.window.len() <= idx {
                    self.window.resize_with(idx + 1, || None);
                }
                match &mut self.window[idx] {
                    Some(_) => self.dups += 1, // duplicate in-window frame
                    slot @ None => *slot = Some((c, Instant::now())),
                }
                Ok(())
            }
            other => {
                self.ctrl = Some(other);
                Ok(())
            }
        }
    }

    // ---- sync API -------------------------------------------------------

    fn call(&mut self, op: Op) -> Result<Completion> {
        // Retire stray completions of earlier (timed-out) ops first.
        while self.outstanding() > 0 {
            self.next_completion()?;
        }
        let seq = self.submit(op)?;
        self.flush()?;
        loop {
            let c = self.next_completion()?;
            if c.op_id.seq == seq {
                return Ok(c);
            }
        }
    }

    /// Relaxed read.
    pub fn read(&mut self, key: Key) -> Result<Val> {
        match self.call(Op::Read { key })?.output {
            OpOutput::Value(v) => Ok(v),
            other => Err(KiteError::Net(format!("read completed with {other:?}"))),
        }
    }

    /// Relaxed write.
    pub fn write(&mut self, key: Key, val: impl Into<Val>) -> Result<()> {
        self.call(Op::Write { key, val: val.into() })?;
        Ok(())
    }

    /// Release write.
    pub fn release(&mut self, key: Key, val: impl Into<Val>) -> Result<()> {
        self.call(Op::Release { key, val: val.into() })?;
        Ok(())
    }

    /// Acquire read.
    pub fn acquire(&mut self, key: Key) -> Result<Val> {
        match self.call(Op::Acquire { key })?.output {
            OpOutput::Value(v) => Ok(v),
            other => Err(KiteError::Net(format!("acquire completed with {other:?}"))),
        }
    }

    /// Fetch-and-add; returns the previous value.
    pub fn fetch_add(&mut self, key: Key, delta: u64) -> Result<u64> {
        match self.call(Op::Faa { key, delta })?.output {
            OpOutput::Faa(old) => Ok(old),
            other => Err(KiteError::Net(format!("faa completed with {other:?}"))),
        }
    }

    /// Weak CAS; returns `(swapped, observed)`.
    pub fn cas_weak(
        &mut self,
        key: Key,
        expect: impl Into<Val>,
        new: impl Into<Val>,
    ) -> Result<(bool, Val)> {
        match self.call(Op::CasWeak { key, expect: expect.into(), new: new.into() })?.output {
            OpOutput::Cas { ok, observed } => Ok((ok, observed)),
            other => Err(KiteError::Net(format!("cas completed with {other:?}"))),
        }
    }

    /// Strong CAS; returns `(swapped, observed)`.
    pub fn cas_strong(
        &mut self,
        key: Key,
        expect: impl Into<Val>,
        new: impl Into<Val>,
    ) -> Result<(bool, Val)> {
        match self.call(Op::CasStrong { key, expect: expect.into(), new: new.into() })?.output {
            OpOutput::Cas { ok, observed } => Ok((ok, observed)),
            other => Err(KiteError::Net(format!("cas completed with {other:?}"))),
        }
    }
}

