//! Raw-libc epoll / eventfd / nonblocking-connect surface for the event loop.
//!
//! The workspace deliberately carries no `libc`/`mio`/`tokio` crates, so the
//! fabric talks to the kernel through the same hand-declared `extern "C"`
//! pattern already used for `SO_REUSEADDR` (`fabric::bind_reuseaddr`) and
//! `signal(2)` (the `kite-node` daemon). Everything here is Linux-specific;
//! the declarations match glibc's ABI on x86_64 (where `struct epoll_event`
//! is packed) and the generic layout elsewhere.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};

// epoll_ctl ops.
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// Readable readiness (also delivered with HUP/ERR so reads observe EOF).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (connect completion / ring drain).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd.
pub const EPOLLERR: u32 = 0x008;
/// Hangup (peer closed both directions).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write side.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;

const AF_INET: i32 = 2;
const SOCK_STREAM: i32 = 1;
const SOCK_NONBLOCK: i32 = 0x800;
const SOCK_CLOEXEC: i32 = 0x80000;
const SOL_SOCKET: i32 = 1;
const SO_ERROR: i32 = 4;
const EINPROGRESS: i32 = 115;

/// glibc packs `struct epoll_event` on x86_64 only.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct SockaddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

/// `struct pollfd` (poll(2)) — identical layout on every Linux ABI.
#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn connect(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
    fn getsockopt(fd: i32, level: i32, optname: i32, optval: *mut i32, optlen: *mut u32) -> i32;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// `POLLIN` for [`wait_readable`]/[`wait_rw`].
const POLL_IN: i16 = 0x001;
/// `POLLOUT` for [`wait_rw`].
const POLL_OUT: i16 = 0x004;

/// Block the calling thread until `fd` is readable (or `timeout_ms`
/// passes; `-1` = forever). Returns `Ok(true)` if readable/closed,
/// `Ok(false)` on timeout. The single-connection client uses this instead
/// of a spin/park loop — on a loaded (or single-core) box, a thread that
/// sleeps in `poll(2)` leaves the CPU to the event loops it is waiting on.
pub fn wait_readable(fd: RawFd, timeout_ms: i32) -> io::Result<bool> {
    wait_fd(fd, POLL_IN, timeout_ms)
}

/// Block until `fd` is readable **or** writable (used while flushing a
/// full outbound buffer without deadlocking against inbound completions).
pub fn wait_rw(fd: RawFd, timeout_ms: i32) -> io::Result<bool> {
    wait_fd(fd, POLL_IN | POLL_OUT, timeout_ms)
}

fn wait_fd(fd: RawFd, events: i16, timeout_ms: i32) -> io::Result<bool> {
    let mut pfd = PollFd { fd, events, revents: 0 };
    // SAFETY: `pfd` is a live stack value matching the kernel's pollfd
    // layout; nfds=1 bounds the kernel's access to exactly that one entry.
    let rc = unsafe { poll(&mut pfd, 1, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(false);
        }
        return Err(err);
    }
    Ok(rc > 0)
}

const MAX_EVENTS: usize = 64;

/// Thin level-triggered epoll wrapper. Tokens are opaque `u64`s chosen by the
/// event loop; one `Poller` is owned by exactly one worker thread.
pub struct Poller {
    epfd: i32,
    buf: [EpollEvent; MAX_EVENTS],
}

impl Poller {
    /// Create a new epoll instance.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: no pointers cross the boundary; the returned fd (or -1)
        // is validated below before use.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd, buf: [EpollEvent { events: 0, data: 0 }; MAX_EVENTS] })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest, data: token };
        // SAFETY: `ev` is a live stack value with the ABI-matching layout
        // declared above; the kernel reads it before the call returns.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with the given token and interest mask.
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest | EPOLLRDHUP)
    }

    /// Change the interest mask of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest | EPOLLRDHUP)
    }

    /// Deregister an fd. Missing registrations are ignored (close already
    /// removes fds from epoll sets).
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        match self.ctl(EPOLL_CTL_DEL, fd, 0, 0) {
            Err(e) if e.raw_os_error() == Some(2) => Ok(()), // ENOENT
            other => other,
        }
    }

    /// Wait up to `timeout_ms` (`0` = poll, `-1` = forever) and append
    /// `(token, events)` pairs to `out`. Returns the number of events.
    pub fn wait(&mut self, out: &mut Vec<(u64, u32)>, timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `self.buf` holds MAX_EVENTS initialized entries and we
        // pass exactly that capacity, so the kernel cannot write past it.
        let n = unsafe { epoll_wait(self.epfd, self.buf.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for i in 0..n as usize {
            let ev = self.buf[i];
            out.push((ev.data, ev.events));
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: `epfd` was returned by epoll_create1 and is owned solely
        // by this Poller; nobody closes it before Drop.
        unsafe { close(self.epfd) };
    }
}

/// Cross-thread wakeup for an event loop parked in `epoll_wait`: an eventfd
/// registered in the loop's poller. `wake()` is cheap and async-signal-safe.
pub struct Waker {
    fd: i32,
}

impl Waker {
    /// Create a nonblocking eventfd.
    pub fn new() -> io::Result<Waker> {
        // SAFETY: no pointers cross the boundary; the returned fd (or -1)
        // is validated below before use.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker { fd })
    }

    /// Raw fd for poller registration.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Make the owning loop's next `epoll_wait` return immediately.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: the pointer covers exactly the 8 live bytes of `one`;
        // eventfd writes consume a u64 counter increment.
        unsafe { write(self.fd, &one as *const u64 as *const u8, 8) };
    }

    /// Clear the pending wakeup count (called by the loop after readiness).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: `buf` is 8 writable bytes and we ask for exactly 8; a
        // short or failed read leaves it initialized either way.
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: `fd` came from eventfd and is owned solely by this Waker.
        unsafe { close(self.fd) };
    }
}

/// Start a nonblocking IPv4 connect. Returns the in-progress stream; the
/// caller registers it for `EPOLLOUT` and checks [`take_socket_error`] once
/// writable. Non-IPv4 addresses are refused (the fabric dials v4 loopback or
/// datacenter addresses; the listener side falls back to std for v6).
pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<TcpStream> {
    let v4 = match addr {
        SocketAddr::V4(v4) => v4,
        SocketAddr::V6(_) => {
            return Err(io::Error::new(io::ErrorKind::Unsupported, "event-loop dial is IPv4-only"))
        }
    };
    // SAFETY: no pointers cross the boundary; the returned fd (or -1) is
    // validated below before use.
    let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    let sa = SockaddrIn {
        sin_family: AF_INET as u16,
        sin_port: v4.port().to_be(),
        sin_addr: u32::from_ne_bytes(v4.ip().octets()),
        sin_zero: [0; 8],
    };
    // SAFETY: `sa` is a live stack value and the length passed is exactly
    // its size, so the kernel reads only initialized memory.
    let rc = unsafe { connect(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(EINPROGRESS) {
            // SAFETY: `fd` was created above and is not yet owned by any
            // wrapper; closing it here is the only cleanup path.
            unsafe { close(fd) };
            return Err(err);
        }
    }
    // SAFETY: fd is a freshly created, connected-or-connecting socket owned
    // by nobody else; from_raw_fd transfers that sole ownership.
    Ok(unsafe { TcpStream::from_raw_fd(fd) })
}

/// Fetch and clear `SO_ERROR` — `Ok(())` means the nonblocking connect (or the
/// socket generally) is healthy.
pub fn take_socket_error(stream: &TcpStream) -> io::Result<()> {
    let mut err: i32 = 0;
    let mut len: u32 = 4;
    // SAFETY: `err`/`len` are live stack values sized for SO_ERROR's i32
    // result; the kernel writes at most `len` bytes.
    let rc = unsafe { getsockopt(stream.as_raw_fd(), SOL_SOCKET, SO_ERROR, &mut err, &mut len) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    if err != 0 {
        return Err(io::Error::from_raw_os_error(err));
    }
    Ok(())
}
