//! Property test of the pipelined client's reorder window over a real
//! socket: a mock server completes a deep window of submitted ops in a
//! seeded-shuffled order with injected duplicate frames, and the client
//! must retire every op in session order, attribute each completion to
//! exactly the op that produced it, and count (not deliver) the
//! duplicates. This is the socket-path twin of the window bookkeeping the
//! sync API relies on.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::thread::JoinHandle;

use kite::api::{Completion, Op, OpOutput};
use kite::wire::{self, ClientFrame, Hello, HELLO_LEN};
use kite_common::{Key, NodeId, OpId, SessionId, Val};
use kite_net::RemoteSession;
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// The value the mock server reports for op `seq` — seq-dependent so a
/// misattributed completion is always detectable.
fn expected_val(seq: u64) -> u64 {
    seq.wrapping_mul(31).wrapping_add(7)
}

/// A one-connection mock node: handshake, read `n_ops` submissions, then
/// answer all of them in a shuffled order with some frames duplicated.
/// Returns the number of duplicate frames it injected.
fn mock_server(listener: TcpListener, n_ops: usize, seed: u64) -> JoinHandle<u64> {
    std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept client");
        let mut hello = [0u8; HELLO_LEN];
        conn.read_exact(&mut hello).expect("read hello");
        let slot = match wire::decode_hello(&hello) {
            Ok(Hello::Client { slot }) => slot,
            other => panic!("expected client hello, got {other:?}"),
        };
        let session = SessionId::new(NodeId(0), slot);
        let mut frame = Vec::new();
        wire::encode_client_frame(&ClientFrame::HelloOk { session }, &mut frame);
        conn.write_all(&frame).expect("send hello ok");

        // Collect the whole window of submissions; TCP preserves the
        // client's submission (= seq) order.
        let mut ops: Vec<Op> = Vec::with_capacity(n_ops);
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 64 << 10];
        while ops.len() < n_ops {
            let n = conn.read(&mut chunk).expect("read submits");
            assert!(n > 0, "client closed before submitting the window");
            buf.extend_from_slice(&chunk[..n]);
            let mut pos = 0;
            while buf.len() - pos >= 4 {
                let blen =
                    u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
                if buf.len() - pos - 4 < blen {
                    break;
                }
                match wire::decode_client_frame(&buf[pos + 4..pos + 4 + blen]) {
                    Ok(ClientFrame::Submit(op)) => ops.push(op),
                    other => panic!("expected submit, got {other:?}"),
                }
                pos += 4 + blen;
            }
            buf.drain(..pos);
        }

        // Complete every op, shuffled (Fisher–Yates on the seeded rng) and
        // with ~1 in 4 frames sent twice.
        let mut order: Vec<u64> = (0..n_ops as u64).collect();
        let mut rng = TestRng::from_seed(seed);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.below(i as u64 + 1) as usize);
        }
        let mut dups = 0u64;
        for &seq in &order {
            let completion = Completion {
                op_id: OpId::new(session, seq),
                op: ops[seq as usize].clone(),
                output: OpOutput::Value(Val::from_u64(expected_val(seq))),
                invoked_at: seq,
                completed_at: seq + 1,
            };
            frame.clear();
            wire::encode_client_frame(&ClientFrame::Completion(completion), &mut frame);
            let repeats = if rng.below(4) == 0 { 2 } else { 1 };
            dups += repeats - 1;
            for _ in 0..repeats {
                conn.write_all(&frame).expect("send completion");
            }
        }
        // Hold the connection open until the client hangs up, so the tail
        // of the window is never cut short by an early close.
        let mut sink = [0u8; 1024];
        while matches!(conn.read(&mut sink), Ok(n) if n > 0) {}
        dups
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any shuffle + duplication of a deep window's completions retires in
    /// exact session order with exact per-seq attribution.
    #[test]
    fn shuffled_duplicated_completions_resolve_by_seq(
        seed in any::<u64>(),
        n_ops in 2usize..256,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = mock_server(listener, n_ops, seed);

        let mut s = RemoteSession::connect(&addr, 3).expect("connect");
        prop_assert_eq!(s.id(), SessionId::new(NodeId(0), 3));

        // Fill the whole pipeline before reaping anything: every op is
        // outstanding at once, so the server's shuffle spans the full
        // window depth.
        for seq in 0..n_ops as u64 {
            let got = s.submit(Op::Write { key: Key(seq), val: Val::from_u64(seq) }).unwrap();
            prop_assert_eq!(got, seq);
        }
        s.flush().unwrap();
        prop_assert_eq!(s.outstanding(), n_ops);

        // Retirement must come back in seq order, each completion carrying
        // exactly its own op and its own seq-derived output.
        for seq in 0..n_ops as u64 {
            let c = s.next_completion().expect("completion");
            prop_assert_eq!(c.op_id.seq, seq);
            prop_assert_eq!(c.op.key(), Key(seq));
            match c.output {
                OpOutput::Value(v) => prop_assert_eq!(v.as_u64(), expected_val(seq)),
                other => prop_assert!(false, "unexpected output {:?}", other),
            }
        }
        prop_assert_eq!(s.outstanding(), 0);

        // Replay the server's rng consumption to know how many duplicate
        // frames it injected, then pump until the client has absorbed (and
        // counted) every one — trailing dups may still be in flight when
        // the last op retires.
        let expected_dups = {
            let mut rng = TestRng::from_seed(seed);
            for i in (1..n_ops).rev() {
                let _ = rng.below(i as u64 + 1);
            }
            (0..n_ops).filter(|_| rng.below(4) == 0).count() as u64
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while s.duplicates() < expected_dups && std::time::Instant::now() < deadline {
            prop_assert!(s.poll_completion().unwrap().is_none());
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        prop_assert_eq!(s.duplicates(), expected_dups);

        drop(s); // hang up so the server thread's drain loop ends
        let injected = server.join().expect("server thread");
        prop_assert_eq!(injected, expected_dups);
    }
}
