//! Integration test of the live-observability plane: a 3-node loopback
//! cluster under a flash-crowd write mix, scraped **mid-run** through each
//! node's metrics endpoint. Asserts the acceptance surface of the metrics
//! subsystem:
//!
//! * every node serves the plain-text `key value` view on its own port
//!   (the endpoint rides worker 0's existing epoll loop — no threads);
//! * protocol counters, per-link fabric stats, per-class latency
//!   histograms (p50/p99/p999) and WAL watermarks are all present;
//! * the HyperLogLog distinct-keys estimate lands within 5% of the exact
//!   distinct-key count tracked client-side;
//! * a second scrape observes progress (the view is live, not a snapshot
//!   taken at launch);
//! * the `dump` view returns the promoted watchdog text.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use kite::ProtocolMode;
use kite_common::{ClusterConfig, Key, NodeId};
use kite_net::{launch_local_cluster, RemoteSession};

fn cfg(wal_dir: &str) -> ClusterConfig {
    ClusterConfig::small()
        .keys(1 << 10)
        .sessions_per_worker(4)
        .release_timeout_ns(2_000_000)
        .wal(true)
        .wal_dir(wal_dir)
}

/// One scrape round-trip: connect, send the request line, read to EOF.
fn scrape(addr: &std::net::SocketAddr, view: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics endpoint");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    stream.write_all(format!("{view}\n").as_bytes()).expect("send request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read response");
    body
}

/// Parse `name value` out of a scrape body.
fn metric(body: &str, name: &str) -> Option<u64> {
    body.lines().find_map(|l| {
        let (k, v) = l.split_once(' ')?;
        (k == name).then(|| v.parse().expect("numeric metric value"))
    })
}

fn wait_for(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

#[test]
fn scrape_mid_run_under_flash_crowd() {
    let wal_dir = std::env::temp_dir().join(format!("kite-scrape-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let nodes = launch_local_cluster(cfg(wal_dir.to_str().expect("utf8")), ProtocolMode::Kite)
        .expect("launch");
    let maddrs: Vec<std::net::SocketAddr> =
        nodes.iter().map(|n| n.metrics_addr().expect("metrics endpoint enabled")).collect();

    // Flash-crowd phase 1: one session per node, half of every session's
    // writes on the single hot key 0, the rest on a hashed cold range.
    // Track the exact distinct-key set client-side as the HLL oracle.
    let mut sessions: Vec<RemoteSession> = nodes
        .iter()
        .map(|n| RemoteSession::connect(&n.addr().to_string(), 0).expect("session"))
        .collect();
    let mut exact: HashSet<u64> = HashSet::new();
    let mut drive = |sessions: &mut Vec<RemoteSession>, exact: &mut HashSet<u64>, ops: u64| {
        for i in 0..ops {
            for (idx, s) in sessions.iter_mut().enumerate() {
                let v = ((idx as u64 + 1) << 40) | (i + 1);
                let key = if i % 2 == 0 {
                    0
                } else {
                    1 + (v.wrapping_mul(0x9E3779B97F4A7C15) >> 16) % 1000
                };
                s.write(Key(key), v).expect("write");
                exact.insert(key);
                if i % 8 == 0 {
                    s.read(Key(0)).expect("read");
                }
            }
        }
    };
    drive(&mut sessions, &mut exact, 400);

    // Mid-run scrape of every node: sessions are still open, the cluster
    // keeps serving. The full acceptance surface must be present.
    let mut completed_first = Vec::new();
    for (n, addr) in maddrs.iter().enumerate() {
        let body = scrape(addr, "scrape");
        assert_eq!(metric(&body, "node_id"), Some(n as u64), "node {n} identity");
        assert!(metric(&body, "proto_completed").expect("proto_completed") > 0, "node {n}");
        assert!(metric(&body, "store_writes").expect("store_writes") > 0, "node {n}");
        // Per-class latency histograms with all three quantiles.
        for class in ["read", "write", "release", "acquire", "rmw"] {
            for stat in ["count", "p50", "p99", "p999"] {
                assert!(
                    metric(&body, &format!("op_{class}_latency_ns_{stat}")).is_some(),
                    "node {n} missing op_{class}_latency_ns_{stat}"
                );
            }
        }
        assert!(
            metric(&body, "op_write_latency_ns_count").expect("write count") > 0,
            "node {n} recorded no write latencies"
        );
        // WAL watermarks + group-commit latency histogram.
        assert!(metric(&body, "wal_appended_bytes").expect("wal watermark") > 0, "node {n}");
        assert!(metric(&body, "wal_durable_bytes").is_some(), "node {n}");
        assert!(metric(&body, "wal_commit_latency_ns_p99").is_some(), "node {n}");
        // Per-link fabric stats for every (peer, worker) pair, self excluded.
        for peer in 0..nodes.len() {
            if peer == n {
                assert!(
                    metric(&body, &format!("link_n{peer}_w0_frames_out")).is_none(),
                    "node {n} must not export a self-link"
                );
                continue;
            }
            for field in ["frames_out", "frames_in", "shed_full", "decode_errors", "phase"] {
                assert!(
                    metric(&body, &format!("link_n{peer}_w0_{field}")).is_some(),
                    "node {n} missing link_n{peer}_w0_{field}"
                );
            }
            assert!(
                metric(&body, &format!("link_n{peer}_w0_frames_out")).expect("frames") > 0,
                "node {n} link to {peer} moved no frames"
            );
            assert_eq!(
                metric(&body, &format!("link_n{peer}_w0_decode_errors")),
                Some(0),
                "node {n} link to {peer} saw decode errors"
            );
        }
        // Every line is exactly `key value` (the format contract the
        // shell-side e2e assertions parse with awk).
        for line in body.lines() {
            assert_eq!(line.split_whitespace().count(), 2, "bad line on node {n}: {line}");
        }
        completed_first.push(metric(&body, "proto_completed").expect("completed"));
    }

    // Flash-crowd phase 2, then re-scrape: the view must be live.
    drive(&mut sessions, &mut exact, 200);
    for (n, addr) in maddrs.iter().enumerate() {
        let body = scrape(addr, "scrape");
        assert!(
            metric(&body, "proto_completed").expect("completed") > completed_first[n],
            "node {n} scrape did not observe progress"
        );
    }

    // HLL distinct-keys estimate within 5% of the exact client-side count,
    // on every node (writes replicate everywhere, so all stores hold the
    // same key set; allow time for the last appliers to catch up).
    let exact_n = exact.len() as f64;
    for (n, addr) in maddrs.iter().enumerate() {
        assert!(
            wait_for(Duration::from_secs(20), || {
                let est = metric(&scrape(addr, "scrape"), "store_distinct_keys_est")
                    .expect("hll estimate") as f64;
                (est - exact_n).abs() / exact_n <= 0.05
            }),
            "node {n} HLL estimate stayed outside 5% of exact {exact_n}"
        );
    }

    // The dump view: the promoted watchdog text (worker loop state + node
    // describe + link table + WAL health).
    let dump = scrape(&maddrs[0], "dump");
    assert!(dump.contains("node n0"), "dump missing node line:\n{dump}");
    assert!(dump.contains("links of"), "dump missing link table:\n{dump}");
    assert!(dump.contains("wal"), "dump missing wal describe:\n{dump}");

    // Concurrent scrapes multiplex on the same loop without wedging it.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let addr = maddrs[0];
            std::thread::spawn(move || scrape(&addr, "scrape"))
        })
        .collect();
    for h in handles {
        assert!(h.join().expect("scrape thread").contains("proto_completed"));
    }
    // And the data plane still works after all that.
    sessions[0].write(Key(0), 0xF00Du64).expect("post-scrape write");
    assert_eq!(
        NodeId(0),
        nodes[0].node(),
        "sanity: runtime node identity"
    );

    drop(sessions);
    for n in nodes {
        n.shutdown();
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// A client that connects and disappears without sending a request line
/// must not wedge the loop or leak the conn slot.
#[test]
fn half_open_scrape_connections_are_harmless() {
    let nodes =
        launch_local_cluster(ClusterConfig::small().keys(1 << 8), ProtocolMode::Kite)
            .expect("launch");
    let addr = nodes[0].metrics_addr().expect("metrics endpoint");

    // Connect-and-drop, connect-and-idle, then a real scrape must still
    // be served promptly.
    drop(TcpStream::connect(addr).expect("connect"));
    let idle = TcpStream::connect(addr).expect("connect");
    let body = scrape(&addr, "scrape");
    assert!(body.contains("node_id 0"), "scrape after half-open clients:\n{body}");
    drop(idle);

    // Unknown request lines get the metrics view (the endpoint is
    // forgiving: anything that isn't `dump` is a scrape).
    let body = scrape(&addr, "/metrics");
    assert!(body.contains("proto_completed"), "unknown view fallback:\n{body}");

    for n in nodes {
        n.shutdown();
    }
}
