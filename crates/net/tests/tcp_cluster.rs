//! Integration tests of the TCP runtime: a whole cluster on loopback
//! sockets inside one process. Every byte crosses a real socket — these
//! are the in-process twin of `scripts/e2e_tcp.sh`.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use kite::wire::{self, Hello};
use kite::ProtocolMode;
use kite_common::{ClusterConfig, Key, NodeId};
use kite_net::{launch_local_cluster, NodeConfig, NodeRuntime, RemoteSession};

fn cfg() -> ClusterConfig {
    ClusterConfig::small()
        .keys(1 << 10)
        .sessions_per_worker(4)
        .release_timeout_ns(2_000_000)
        .anti_entropy_interval_ns(2_000_000)
        .anti_entropy_chunk(256)
}

/// Wait until `f` is true or the deadline passes.
fn wait_for(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

#[test]
fn mixed_workload_over_loopback_tcp() {
    let nodes = launch_local_cluster(cfg(), ProtocolMode::Kite).expect("launch");
    let _wd = nodes[0].watchdog(Duration::from_secs(120));
    let addr = |n: usize| nodes[n].addr().to_string();

    // Remote sessions on two nodes, a local one on the third: the RC
    // handoff pattern across real sockets.
    let mut producer = RemoteSession::connect(&addr(0), 0).expect("producer");
    let mut consumer = RemoteSession::connect(&addr(1), 0).expect("consumer");
    let mut local = nodes[2].session(0).expect("local session");

    producer.write(Key(1), 0xDA7Au64).unwrap();
    producer.release(Key(0), 0xF1A6u64).unwrap();
    assert!(
        wait_for(Duration::from_secs(30), || consumer.acquire(Key(0)).unwrap().as_u64()
            == 0xF1A6),
        "consumer never acquired the flag"
    );
    // The RC barrier invariant, across processes' worth of sockets.
    assert_eq!(consumer.read(Key(1)).unwrap().as_u64(), 0xDA7A);

    // Consensus across all three session kinds.
    const FAAS: u64 = 30;
    for _ in 0..FAAS {
        producer.fetch_add(Key(7), 1).unwrap();
        consumer.fetch_add(Key(7), 1).unwrap();
        local.fetch_add(Key(7), 1).unwrap();
    }
    let total = local.acquire(Key(7)).unwrap().as_u64();
    assert_eq!(total, 3 * FAAS, "FAA increments must not be lost or doubled");

    // A second claim of a taken slot is rejected with a clean error.
    let err = RemoteSession::connect(&addr(0), 0);
    assert!(err.is_err(), "slot 0 on node 0 was already claimed");

    for n in nodes {
        n.shutdown();
    }
}

#[test]
fn malformed_peer_frames_drop_the_connection_not_the_worker() {
    let nodes = launch_local_cluster(cfg(), ProtocolMode::Kite).expect("launch");
    let addr = nodes[0].addr();

    // A "peer" that handshakes correctly, then sends garbage: valid length
    // prefix, undecodable body. The node must close this connection and
    // keep serving — never panic a worker.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&wire::encode_hello(Hello::Peer { node: NodeId(1), worker: 0 })).unwrap();
        let garbage = [0xFFu8; 32];
        let mut frame = Vec::new();
        frame.extend_from_slice(&(garbage.len() as u32).to_le_bytes());
        frame.extend_from_slice(&garbage);
        s.write_all(&frame).unwrap();
        // Server should close on us; observe EOF (or reset) rather than a
        // wedged stream.
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = [0u8; 1];
        use std::io::Read;
        match s.read(&mut buf) {
            Ok(0) | Err(_) => {} // closed — the expected outcomes
            Ok(_) => panic!("server answered a garbage frame instead of dropping it"),
        }
    }

    // An oversized length prefix on a second connection.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&wire::encode_hello(Hello::Peer { node: NodeId(2), worker: 0 })).unwrap();
        s.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(100));
    }

    // The malformed connections are surfaced on the link table…
    assert!(
        wait_for(Duration::from_secs(10), || nodes[0].describe().contains("decode_errs=1")),
        "decode error must be counted for the watchdog: {}",
        nodes[0].describe()
    );

    // …and the cluster still serves clients end to end.
    let mut s = RemoteSession::connect(&nodes[1].addr().to_string(), 0).expect("connect");
    s.release(Key(3), 99u64).unwrap();
    assert_eq!(s.acquire(Key(3)).unwrap().as_u64(), 99);

    for n in nodes {
        n.shutdown();
    }
}

/// A node goes away (shutdown), the cluster keeps serving on its majority,
/// a sentinel is released meanwhile, and the node comes back **on the same
/// port**: peers must re-dial it (reconnect-with-backoff) and the idle-time
/// anti-entropy keepalive must converge its store without any new client
/// activity — the heal-time convergence story of the keepalive knob.
#[test]
fn restarted_node_redials_and_converges_by_keepalive() {
    let cfg = cfg().anti_entropy_keepalive_ns(10_000_000); // 10 ms keepalive
    let nodes = launch_local_cluster(cfg.clone(), ProtocolMode::Kite).expect("launch");
    let peers: Vec<String> = nodes.iter().map(|n| n.addr().to_string()).collect();

    // Take node 2 down (drop joins all its threads and closes its port).
    let mut nodes = nodes;
    let down = nodes.remove(2);
    down.shutdown();

    // The survivors still have their majority: write through node 0.
    let mut s = RemoteSession::connect(&peers[0], 0).expect("connect majority");
    s.release(Key(42), 0xBEEFu64).expect("release with one node down");

    // Restart node 2 on the same address.
    let node2 = NodeRuntime::launch(NodeConfig::new(
        cfg,
        ProtocolMode::Kite,
        NodeId(2),
        peers.clone(),
    ))
    .expect("rebind the same port after restart");

    // No further client activity anywhere: convergence must come from the
    // keepalive sweep reaching the rejoined replica. Relaxed reads are
    // local, so the sentinel appearing on node 2 proves repair traffic.
    let mut poll = node2.session(0).expect("local session on restarted node");
    assert!(
        wait_for(Duration::from_secs(30), || poll.read(Key(42)).unwrap().as_u64() == 0xBEEF),
        "restarted node never converged; links: {}",
        node2.describe()
    );

    node2.shutdown();
    for n in nodes {
        n.shutdown();
    }
}
