//! Dynamic membership over real sockets: rolling restarts under
//! RC-checked load, node replacement by learner bulk-sync, and the
//! dead-address reconnect fix (dial targets re-resolved from the live
//! peer table every backoff cycle).

use std::sync::Arc;
use std::time::{Duration, Instant};

use kite::ProtocolMode;
use kite_common::{ClusterConfig, Key, Membership, NodeId, NodeSet, Val, MEMBERSHIP_KEY};
use kite_net::{launch_local_cluster, LinkPhase, NodeConfig, NodeRuntime, RemoteSession};
use kite_verify::{check_rc, History, OpKind, OpRecord, RcMode};

fn cfg() -> ClusterConfig {
    ClusterConfig::small()
        .keys(1 << 10)
        .sessions_per_worker(4)
        .release_timeout_ns(2_000_000)
        .anti_entropy_interval_ns(2_000_000)
        .anti_entropy_chunk(256)
        .anti_entropy_keepalive_ns(10_000_000)
}

fn wait_for(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

/// Restart every node in turn — kill, rebind the same port, relaunch with
/// an empty store — while a client keeps a sustained mixed load running
/// against a surviving replica. Every op must complete (zero failed ops);
/// the recorded history must pass the RC(Lin) axioms; each restarted node
/// must re-converge before the next one goes down.
#[test]
fn rolling_restart_under_load_zero_failed_ops() {
    let cfg = cfg();
    let nodes = launch_local_cluster(cfg.clone(), ProtocolMode::Kite).expect("launch");
    let peers: Vec<String> = nodes.iter().map(|n| n.addr().to_string()).collect();
    let mut nodes: Vec<Option<NodeRuntime>> = nodes.into_iter().map(Some).collect();

    let history = Arc::new(History::new());
    let base = Instant::now();
    let mut uniq = 0u64;

    for round in 0..nodes.len() {
        let victim = round;
        let survivor = (round + 1) % nodes.len();

        // Fresh session per round (the victim of the previous round has
        // rebooted; sessions on a restarted node start unclaimed).
        let mut s = RemoteSession::connect(&peers[survivor], round as u32)
            .expect("connect survivor");
        let sid = s.id();
        let mut seq = 0u64;
        let mut record = |key: Key, kind: OpKind, t0: Instant, history: &History| {
            history.record(OpRecord {
                session: sid,
                session_seq: seq,
                key,
                kind,
                invoke: t0.duration_since(base).as_nanos() as u64,
                complete: Instant::now().duration_since(base).as_nanos() as u64,
            });
            seq += 1;
        };

        // Take the victim down mid-load.
        nodes[victim].take().expect("victim running").shutdown();

        // Sustained mixed load against the survivor: relaxed writes, a
        // release/acquire handoff, and a read-back — all while one
        // replica is dark. Any error fails the test: zero failed ops.
        for i in 0..40u64 {
            uniq += 1;
            let data = Key(100 + (i % 8));
            let flag = Key(200 + (i % 4));
            let t0 = Instant::now();
            s.write(data, uniq).unwrap_or_else(|e| panic!("round {round} write: {e}"));
            record(data, OpKind::Write { v: uniq }, t0, &history);
            uniq += 1;
            let t0 = Instant::now();
            s.release(flag, uniq).unwrap_or_else(|e| panic!("round {round} release: {e}"));
            record(flag, OpKind::Release { v: uniq }, t0, &history);
            let t0 = Instant::now();
            let got = s.acquire(flag).unwrap_or_else(|e| panic!("round {round} acquire: {e}"));
            record(flag, OpKind::Acquire { v: got.as_u64() }, t0, &history);
        }

        // Rebind the victim's port and bring it back with a fresh store.
        let reborn = NodeRuntime::launch(NodeConfig::new(
            cfg.clone(),
            ProtocolMode::Kite,
            NodeId(victim as u8),
            peers.clone(),
        ))
        .expect("rebind same port after restart");

        // Converge before the next round: drop a sentinel through the
        // survivor and poll it on the reborn node's local store (relaxed
        // reads are local — the value can only arrive through repair).
        let sentinel = Key(300 + round as u64);
        uniq += 1;
        let want = uniq;
        s.release(sentinel, want).expect("sentinel release");
        let mut local = reborn.session(0).expect("local session on reborn node");
        assert!(
            wait_for(Duration::from_secs(30), || local.read(sentinel).unwrap().as_u64() == want),
            "round {round}: reborn node never caught up; links: {}",
            reborn.describe()
        );
        nodes[victim] = Some(reborn);
    }

    assert_eq!(check_rc(&history, RcMode::Lin), Ok(()), "rolling restart violated RC(Lin)");
    for n in nodes.into_iter().flatten() {
        n.shutdown();
    }
}

/// The e2e replacement story in-process: node 2 dies for good; a config
/// change demotes its slot to learner; a **fresh** node 2 (same address,
/// empty store) comes up, learns the real membership through the
/// stale-epoch repair path, bulk-syncs the whole store via anti-entropy,
/// and is then promoted back to voter — after which releases wait for its
/// ack again.
#[test]
fn replacement_node_joins_as_learner_and_bulk_syncs() {
    const FILL: u64 = 400;
    let cfg = cfg();
    let nodes = launch_local_cluster(cfg.clone(), ProtocolMode::Kite).expect("launch");
    let peers: Vec<String> = nodes.iter().map(|n| n.addr().to_string()).collect();
    let mut nodes: Vec<Option<NodeRuntime>> = nodes.into_iter().map(Some).collect();

    // Node 2 dies for good (its replacement will share nothing but the
    // slot and the address).
    nodes[2].take().expect("node 2 running").shutdown();

    // Demote the dead slot to learner — the same add-learner CAS
    // `kite-node --join` issues, here through a survivor's session. The
    // RMW commits on the {0,1} majority of the epoch-0 voter set.
    let mut ops = RemoteSession::connect(&peers[0], 0).expect("connect node 0");
    let cur = ops.acquire(MEMBERSHIP_KEY).expect("read membership");
    assert!(Membership::from_val(&cur).is_none(), "no change committed yet");
    let m0 = Membership { epoch: 0, voters: NodeSet::all(3), learners: NodeSet::EMPTY };
    let m1 = m0.with_learner(NodeId(2));
    let (ok, _) = ops.cas_strong(MEMBERSHIP_KEY, cur, m1.to_val()).expect("config change");
    assert!(ok, "add-learner CAS must land on the surviving majority");

    // Build a store worth bulk-syncing, quorum {0,1} — no node 2 in the
    // barrier set, so this runs at full speed.
    for i in 0..FILL {
        ops.write(Key(500 + i % 400), Val::from_u64(i + 1)).expect("fill write");
    }
    ops.release(Key(450), Val::from_u64(0xD0E)).expect("fill release");

    // The replacement: same slot, same port, empty store, bootstrap
    // (epoch 0) membership. Its first frames are dropped as stale by the
    // epoch gate; the repair answer teaches it the real config.
    let reborn = NodeRuntime::launch(NodeConfig::new(
        cfg,
        ProtocolMode::Kite,
        NodeId(2),
        peers.clone(),
    ))
    .expect("launch replacement");
    assert!(
        wait_for(Duration::from_secs(30), || reborn.shared().mepoch() == 1),
        "replacement never learned the live membership; links: {}",
        reborn.describe()
    );
    assert_eq!(reborn.shared().voters(), NodeSet(0b011));
    assert!(reborn.shared().members().contains(NodeId(2)), "it knows it is the learner");

    // Learner bulk-sync: the whole fill must arrive by anti-entropy.
    let mut local = reborn.session(0).expect("local session on replacement");
    assert!(
        wait_for(Duration::from_secs(60), || local.read(Key(450)).unwrap().as_u64() == 0xD0E),
        "replacement never bulk-synced; links: {}",
        reborn.describe()
    );

    // Promote it: epoch 2, three voters again.
    let cur = ops.acquire(MEMBERSHIP_KEY).expect("re-read membership");
    let m2 = Membership::from_val(&cur).expect("epoch-1 value").with_promoted(NodeId(2));
    let (ok, _) = ops.cas_strong(MEMBERSHIP_KEY, cur, m2.to_val()).expect("promote");
    assert!(ok);
    assert!(
        wait_for(Duration::from_secs(30), || reborn.shared().mepoch() == 2),
        "promotion never reached the learner"
    );
    assert_eq!(reborn.shared().voters(), NodeSet::all(3));
    // Releases wait for all three voters again; completing proves the
    // promoted replica acks protocol rounds.
    ops.release(Key(451), Val::from_u64(0xF1A6)).expect("release across promoted voter");

    reborn.shutdown();
    for n in nodes.into_iter().flatten() {
        n.shutdown();
    }
}

/// The dead-address reconnect fix: a node whose peer table points at a
/// dead address sits in backoff — and used to stay there forever, because
/// the dial loop resolved the target once and cached it. Now each backoff
/// cycle re-resolves from the live peer table: repointing the address
/// mid-run tears the ladder down to its minimum and connects immediately.
#[test]
fn reconnect_follows_peer_address_change() {
    let cfg = cfg();
    let listeners: Vec<std::net::TcpListener> =
        (0..3).map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap()).collect();
    let addrs: Vec<String> =
        listeners.iter().map(|l| l.local_addr().unwrap().to_string()).collect();
    // A guaranteed-dead address: bind an ephemeral port, then free it.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };

    let mut listeners = listeners.into_iter();
    let launch = |me: u8, peers: Vec<String>, listener: std::net::TcpListener| {
        let mut nc = NodeConfig::new(cfg.clone(), ProtocolMode::Kite, NodeId(me), peers);
        nc.fabric_listener = Some(listener);
        NodeRuntime::launch(nc).expect("launch node")
    };
    // Node 0 believes peer 2 lives at the dead address; 1 and 2 are fine.
    let wrong = vec![addrs[0].clone(), addrs[1].clone(), dead];
    let n0 = launch(0, wrong, listeners.next().unwrap());
    let n1 = launch(1, addrs.clone(), listeners.next().unwrap());
    let n2 = launch(2, addrs.clone(), listeners.next().unwrap());

    // Node 0's outbound link to peer 2 must end up in backoff (connection
    // refused on every dial), on every worker's link row.
    let workers = cfg.workers_per_node;
    assert!(
        wait_for(Duration::from_secs(10), || (0..workers)
            .all(|w| n0.links().link(NodeId(2), w).phase() == LinkPhase::Backoff)),
        "dials to a dead address must land in backoff: {}",
        n0.describe()
    );

    // Repoint peer 2 at its real address — the fix under test. The dial
    // loops observe the generation bump, reset the ladder, and connect.
    assert!(n0.set_peer_addr(NodeId(2), addrs[2].clone()), "address must count as changed");
    assert!(
        wait_for(Duration::from_secs(10), || (0..workers)
            .all(|w| n0.links().link(NodeId(2), w).is_connected())),
        "repointed link never connected: {}",
        n0.describe()
    );
    // Repointing to the same address is a no-op.
    assert!(!n0.set_peer_addr(NodeId(2), addrs[2].clone()));

    // End to end: a release from node 0 needs acks from ALL voters, so it
    // only completes if protocol traffic now flows 0 → 2.
    let mut s = n0.session(0).expect("local session");
    s.release(Key(5), Val::from_u64(0xCAFE)).expect("release across the repointed link");

    for n in [n0, n1, n2] {
        n.shutdown();
    }
}
