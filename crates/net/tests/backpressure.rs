//! Backpressure fault test: a peer that accepts the connection and then
//! stops reading (a stalled receiver — the socket twin of a SIGSTOPped
//! process). The sender's outbound ring must stay bounded (ring caps, not
//! unbounded queue growth), surface the sheds on the link table, and
//! resume delivery the moment the peer drains again — the lossy-link
//! failure model of the simulated fabric, reproduced on real sockets.
//!
//! `scripts/stress.sh` loops this test to shake out timing-dependent
//! reconnect/shed races.

use std::io::Read;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kite::msg::Msg;
use kite_common::NodeId;
use kite_net::ring::{RING_CAP_BYTES, RING_CAP_FRAMES};
use kite_net::{spawn_tcp_workers, TcpNet, TcpNetCfg};
use kite_simnet::{Actor, Outbox};

/// Saturates the link to node 1: every tick emits a few ~8 KiB frames,
/// far faster than a stalled peer can absorb.
struct Flood;

impl Actor for Flood {
    type Msg = Msg;

    fn on_envelope(&mut self, _src: NodeId, msgs: &mut Vec<Msg>, _now: u64, _out: &mut Outbox<Msg>) {
        msgs.clear();
    }

    fn on_tick(&mut self, _now: u64, out: &mut Outbox<Msg>) -> bool {
        for _ in 0..4 {
            out.send(NodeId(1), Msg::AckBatch { rids: vec![0u64; 256] });
        }
        true
    }

    fn describe(&self, out: &mut String) {
        out.push_str("flood\n");
    }
}

fn wait_for(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn stalled_peer_bounds_sender_memory_and_recovery_resumes_flow() {
    // The "peer": a plain listener that accepts and then refuses to read
    // until told to drain.
    let mock = TcpListener::bind("127.0.0.1:0").expect("bind mock peer");
    let mock_addr = mock.local_addr().unwrap().to_string();
    let drain = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let mock_thread = {
        let drain = Arc::clone(&drain);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let (mut conn, _) = mock.accept().expect("accept flooder");
            conn.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
            // Stall phase: hold the connection open, read nothing.
            while !drain.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(10));
            }
            // Resume phase: swallow everything until the test ends.
            let mut sink = [0u8; 64 << 10];
            while !stop.load(Ordering::Relaxed) {
                match conn.read(&mut sink) {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => break,
                }
            }
        })
    };

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind node 0");
    let me_addr = listener.local_addr().unwrap().to_string();
    let (net, ios) = TcpNet::bind(TcpNetCfg {
        me: NodeId(0),
        peers: vec![me_addr, mock_addr],
        workers: 1,
        sessions_per_worker: 1,
        listener: Some(listener),
    })
    .expect("bind fabric");
    let rigs = ios.into_iter().map(|io| (Flood, io, None)).collect();
    let handle = spawn_tcp_workers(rigs, &net);

    let link = || net.links().link(NodeId(1), 0);

    // Phase 1 — stall. The kernel buffers absorb a few MB, then the ring
    // fills and pushes start shedding. Memory stays bounded by the ring
    // caps the whole time.
    assert!(
        wait_for(Duration::from_secs(30), || link().shed_full.load(Ordering::Relaxed) > 0),
        "flooding a stalled peer never shed a frame; links:\n{}",
        net.links().describe()
    );
    for _ in 0..20 {
        let frames = link().ring_frames.load(Ordering::Relaxed) as usize;
        let bytes = link().ring_bytes.load(Ordering::Relaxed) as usize;
        assert!(frames <= RING_CAP_FRAMES, "ring frame cap violated: {frames}");
        assert!(bytes <= RING_CAP_BYTES, "ring byte cap violated: {bytes}");
        std::thread::sleep(Duration::from_millis(5));
    }
    let shed_at_stall = link().shed_full.load(Ordering::Relaxed);
    let sent_at_stall = link().frames_out.load(Ordering::Relaxed);
    assert!(shed_at_stall > 0);

    // Phase 2 — resume. The peer drains; delivery must pick back up well
    // past where the stall pinned it.
    drain.store(true, Ordering::Relaxed);
    assert!(
        wait_for(Duration::from_secs(30), || {
            link().frames_out.load(Ordering::Relaxed) > sent_at_stall + 200
        }),
        "delivery never resumed after the peer drained; links:\n{}",
        net.links().describe()
    );

    stop.store(true, Ordering::Relaxed);
    handle.stop_and_join();
    drop(net);
    mock_thread.join().unwrap();
}
