//! # kite-bench
//!
//! Benchmark harnesses reproducing every figure of the Kite paper's
//! evaluation (§8). One binary per figure:
//!
//! | binary | paper artifact | what it prints |
//! |---|---|---|
//! | `fig5_write_ratio` | Figure 5 | throughput vs write ratio: ES, ABD, Paxos, ZAB, Kite(5% sync) |
//! | `fig6_sync_sweep` | Figure 6 | Kite vs ZAB across synchronization/RMW fractions |
//! | `fig7_write_only` | Figure 7 | write-only throughput: Derecho (ord/unord), ZAB, Kite writes/releases/RMWs |
//! | `fig8_datastructures` | Figure 8 | lock-free DS throughput: Kite vs Kite-ideal vs ZAB-ideal |
//! | `fig9_failure` | Figure 9 | throughput timeline across a 400 ms replica sleep |
//!
//! Plus one harness per design-choice ablation (DESIGN.md §5b):
//!
//! | binary | design choice | what it prints |
//! |---|---|---|
//! | `ablation_opts` | §4.3 release overlap, §4.3 slow-path stripping, §6.3 batching | latency/throughput with each optimization toggled |
//! | `ablation_timeout` | §8.4 release time-out | spurious-slow-path and outage-dip sweeps |
//! | `ablation_cas` | §6.1 weak CAS | contended Treiber stack, weak vs strong CAS |
//!
//! All harnesses run on the deterministic simulator in **virtual time**
//! (see DESIGN.md §4): absolute mreqs are not comparable to the paper's
//! 56 Gb-RDMA testbed, but the *shape* — who wins, crossover points,
//! recovery behaviour — is the reproduction target and is asserted where
//! the paper states it. Criterion micro-benchmarks for the substrate live
//! in `benches/`.

use kite_common::ClusterConfig;
use kite_simnet::SimCfg;

/// The standard simulated deployment for the figures: 5 replicas (the
/// paper's testbed size), 2 workers each, 8 sessions per worker.
pub fn paper_cluster() -> ClusterConfig {
    // 2 workers × 32 sessions per node: enough concurrent sessions that
    // multi-round protocols (Paxos: 4 rounds with the acked commit) hide
    // latency the way the paper's 800-sessions-per-node deployment does,
    // and enough offered load that ZAB's leader — not session latency — is
    // its binding constraint (the §8.2 comparison point).
    ClusterConfig::default()
        .nodes(5)
        .workers_per_node(2)
        .sessions_per_worker(32)
        .keys(1 << 16)
}

/// Simulator timing used by all figures (single-switch-datacenter-ish).
pub fn paper_sim(seed: u64) -> SimCfg {
    SimCfg { seed, ..Default::default() }
}

/// Default measurement windows (virtual nanoseconds).
pub const WARMUP_NS: u64 = 2_000_000;
pub const RUN_NS: u64 = 8_000_000;

/// Fixed-width table printing for harness output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a throughput cell.
pub fn fmt_mreqs(v: f64) -> String {
    format!("{v:.3}")
}

/// A named shape expectation from the paper, checked by the harnesses and
/// reported alongside the numbers (so EXPERIMENTS.md can record pass/fail).
pub struct ShapeCheck {
    pub name: &'static str,
    pub holds: bool,
    pub detail: String,
}

impl ShapeCheck {
    pub fn assert_all(checks: &[ShapeCheck]) {
        let mut failed = false;
        for c in checks {
            let status = if c.holds { "PASS" } else { "FAIL" };
            println!("[{status}] {} — {}", c.name, c.detail);
            failed |= !c.holds;
        }
        if failed {
            eprintln!("warning: some paper-shape checks failed (see above)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["w%", "ES", "Kite"]);
        t.row(vec!["1", "7.650", "5.260"]);
        t.row(vec!["100", "0.960", "0.840"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Kite"));
        assert!(lines[2].ends_with("5.260"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1"]);
    }

    #[test]
    fn paper_cluster_matches_testbed_shape() {
        let c = paper_cluster();
        assert_eq!(c.nodes, 5);
        assert!(c.validate().is_ok());
    }
}
